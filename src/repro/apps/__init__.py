"""The paper's evaluation applications: linear solvers (§4.1), the DNA
database with single list servers (§4.2), and the diffusion -> gradient ->
visualizer pipeline (§4.3)."""
