"""The reproduction scorecard: every qualitative claim the paper's
evaluation makes, checked programmatically.

``python -m repro.experiments validate`` runs the full battery at reduced
scale (seconds) and prints a pass/fail table; ``--paper-scale`` uses the
paper's exact parameters.  The benchmark suite asserts the same claims at
paper scale; this module makes the list explicit and runnable anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .fig2_solvers import run_fig2
from .fig4_dna import run_fig4
from .fig5_pipeline import run_fig5, run_overall


@dataclass
class Claim:
    id: str
    source: str          # where the paper makes the claim
    statement: str
    check: Callable[[dict], bool]


@dataclass
class ClaimResult:
    claim: Claim
    passed: bool
    detail: str = ""


def _data(paper_scale: bool) -> dict:
    if paper_scale:
        fig2 = run_fig2()
        fig4 = run_fig4()
        fig5 = run_fig5()
    else:
        fig2 = run_fig2(sizes=(100, 200, 300))
        fig4 = run_fig4(procs=(1, 2, 3, 4), n_seqs=80, rounds=8)
        fig5 = run_fig5(procs=(1, 2, 4), steps=20, n=32)
    return {"fig2": fig2, "fig4": fig4, "fig5": fig5}


def _fig2_distributed_wins(d):
    return all(r.t_distributed < r.t_same_server for r in d["fig2"])


def _fig2_max_decomposition(d):
    return all(
        max(r.t_direct, r.t_iterative) <= r.t_distributed
        <= max(r.t_direct, r.t_iterative) * 1.25 + 0.5
        for r in d["fig2"]
    )


def _fig2_solutions_agree(d):
    return all(r.difference < 1e-4 for r in d["fig2"])


def _fig2_gap_grows(d):
    gaps = [r.t_same_server - r.t_distributed for r in d["fig2"]]
    return gaps[-1] > gaps[0]


def _fig4_distributed_wins(d):
    return all(r.t_distributed < r.t_centralized
               for r in d["fig4"] if r.procs >= 2)


def _fig4_speedup(d):
    rows = d["fig4"]
    return rows[-1].t_centralized < rows[0].t_centralized


def _fig4_dip_at_three(d):
    by_p = {r.procs: r.difference for r in d["fig4"]}
    if 3 not in by_p or 2 not in by_p or 4 not in by_p:
        return True
    return by_p[3] < by_p[2] and by_p[4] > by_p[3]


def _fig5_all_fall(d):
    rows = d["fig5"]
    return all(b.t_overall < a.t_overall and b.t_diffusion < a.t_diffusion
               for a, b in zip(rows, rows[1:]))


def _fig5_overall_above_components(d):
    return all(r.t_overall > r.t_diffusion for r in d["fig5"])


def _fig5_sublinear(d):
    rows = d["fig5"]
    speedup = rows[0].t_overall / rows[-1].t_overall
    return speedup < (rows[-1].procs / rows[0].procs) * 0.85


def _s6_commthreads_help(d):
    from ..core import OrbConfig

    base = run_overall(2, steps=20, n=32,
                       config=OrbConfig(max_outstanding=1))
    relief = run_overall(2, steps=20, n=32,
                         config=OrbConfig(max_outstanding=4,
                                          communication_threads=True))
    return relief < base


CLAIMS = [
    Claim("fig2-distributed-wins", "§4.1 / Fig. 2",
          "distributed servers beat the single-server configuration",
          _fig2_distributed_wins),
    Claim("fig2-max-decomposition", "§4.1",
          "t = to + max{ti, td} with small communication overhead to",
          _fig2_max_decomposition),
    Claim("fig2-agreement", "§4.1",
          "the direct and iterative solutions agree",
          _fig2_solutions_agree),
    Claim("fig2-gap-grows", "§4.1 / Fig. 2",
          "the distributed advantage grows with problem size",
          _fig2_gap_grows),
    Claim("fig4-distributed-wins", "§4.2 / Fig. 4",
          "distributing single objects beats centralizing them (P >= 2)",
          _fig4_distributed_wins),
    Claim("fig4-speedup", "§4.2 / Fig. 4",
          "client time falls as server processors increase",
          _fig4_speedup),
    Claim("fig4-dip-at-3", "§4.2 / Fig. 4 (right)",
          "balancing by number, not weight, dents the difference at P=3",
          _fig4_dip_at_three),
    Claim("fig5-scaling", "§4.3 / Fig. 5",
          "all series fall with matched processor counts",
          _fig5_all_fall),
    Claim("fig5-overall-above", "§4.3 / Fig. 5",
          "the metaapplication stays above its diffusion component",
          _fig5_overall_above_components),
    Claim("fig5-flattening", "§4.3",
          "the advantages of distribution do not scale well (sub-linear)",
          _fig5_sublinear),
    Claim("s6-communication-threads", "§6 (future work)",
          "communication threads + deeper pipeline alleviate congestion",
          _s6_commthreads_help),
]


def validate(paper_scale: bool = False,
             claims: Optional[list[Claim]] = None) -> list[ClaimResult]:
    data = _data(paper_scale)
    results = []
    for claim in claims or CLAIMS:
        try:
            ok = bool(claim.check(data))
            results.append(ClaimResult(claim, ok))
        except Exception as exc:  # a crash is a failure with a reason
            results.append(ClaimResult(claim, False, f"error: {exc!r}"))
    return results


def format_report(results: list[ClaimResult]) -> str:
    lines = ["PARDIS reproduction scorecard", "=" * 64]
    for r in results:
        mark = "PASS" if r.passed else "FAIL"
        lines.append(f"[{mark}] {r.claim.id:<28} ({r.claim.source})")
        lines.append(f"       {r.claim.statement}")
        if r.detail:
            lines.append(f"       {r.detail}")
    passed = sum(r.passed for r in results)
    lines.append("=" * 64)
    lines.append(f"{passed}/{len(results)} claims reproduced")
    return "\n".join(lines)
