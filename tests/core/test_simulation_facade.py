"""Tests for the Simulation facade and default topology."""

import pytest

from repro.core import Simulation, default_network
from repro.netsim import ATM_155


class TestDefaultNetwork:
    def test_paper_testbed_shape(self):
        net = default_network()
        h1 = net.host("HOST_1")
        h2 = net.host("HOST_2")
        assert h1.nodes == 4          # 4-node SGI Onyx
        assert h2.nodes == 10         # 10-node SGI PowerChallenge
        assert h2.node_flops > h1.node_flops   # HOST_2 is the faster host
        assert net.profile_between("HOST_1", "HOST_2") is ATM_155


class TestFacade:
    def test_client_results_accessible(self):
        sim = Simulation()
        prog = sim.client(lambda ctx: ctx.rank * 10, host="HOST_1", nprocs=3)
        sim.run()
        assert prog.results == [0, 10, 20]

    def test_run_returns_final_virtual_time(self):
        sim = Simulation()
        sim.client(lambda ctx: ctx.compute(2.5), host="HOST_1")
        assert sim.run() == pytest.approx(2.5)

    def test_run_until(self):
        sim = Simulation()
        log = []

        def main(ctx):
            for _ in range(10):
                ctx.compute(1.0)
                log.append(ctx.now())

        sim.client(main, host="HOST_1")
        sim.run(until=3.5)
        assert log == [1.0, 2.0, 3.0]

    def test_server_is_daemon(self):
        sim = Simulation()
        sim.server(lambda ctx: ctx.poa.impl_is_ready(), host="HOST_2")
        sim.client(lambda ctx: None, host="HOST_1")
        sim.run()  # returns despite the server's infinite loop

    def test_args_passed_to_main(self):
        sim = Simulation()
        prog = sim.client(lambda ctx, a, b: a + b, host="HOST_1",
                          args=(1, 2))
        sim.run()
        assert prog.results == [3]

    def test_kernel_and_network_accessors(self):
        sim = Simulation()
        assert sim.kernel is sim.world.kernel
        assert sim.network is sim.world.network

    def test_start_time(self):
        sim = Simulation()
        prog = sim.client(lambda ctx: ctx.now(), host="HOST_1",
                          start_time=5.0)
        sim.run()
        assert prog.results == [5.0]

    def test_context_repr(self):
        sim = Simulation()
        out = {}
        sim.client(lambda ctx: out.update(r=repr(ctx)), host="HOST_1",
                   name="myclient")
        sim.run()
        assert "myclient" in out["r"]


class TestAdapterRegistry:
    def test_unknown_adapter_raises(self):
        from repro.core.errors import BindingError
        from repro.core.stubapi import resolve_adapter

        with pytest.raises(BindingError, match="no container adapter"):
            resolve_adapter("POOMA", "nonexistent_target")

    def test_known_adapters_resolve(self):
        from repro.core.stubapi import resolve_adapter
        from repro.packages.pooma.mapping import FieldAdapter
        from repro.packages.pstl.mapping import VectorAdapter

        assert isinstance(resolve_adapter("POOMA", "field"), FieldAdapter)
        assert isinstance(resolve_adapter("HPC++", "vector"), VectorAdapter)
