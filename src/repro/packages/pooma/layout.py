"""Grid layouts: how a 2-D domain is decomposed over contexts."""

from __future__ import annotations

from dataclasses import dataclass

from ...core.distribution import Distribution


@dataclass(frozen=True)
class GridLayout:
    """Block-row decomposition of an ``ny`` x ``nx`` grid over ``p``
    contexts: context ``r`` owns rows ``[row_start(r), row_stop(r))``.

    POOMA's real layouts are multi-dimensional; block-rows are all the
    paper's diffusion example needs and keep ghost exchange to two
    neighbours.
    """

    ny: int
    nx: int
    p: int

    def __post_init__(self) -> None:
        if self.ny < 1 or self.nx < 1:
            raise ValueError(f"grid must be at least 1x1, got {self.ny}x{self.nx}")
        if not (1 <= self.p <= self.ny):
            raise ValueError(
                f"cannot split {self.ny} rows over {self.p} contexts"
            )

    def _row_dist(self) -> Distribution:
        return Distribution.block(self.ny, self.p)

    def row_start(self, rank: int) -> int:
        ivs = self._row_dist().intervals(rank)
        return ivs[0][0] if ivs else 0

    def row_stop(self, rank: int) -> int:
        ivs = self._row_dist().intervals(rank)
        return ivs[0][1] if ivs else 0

    def local_rows(self, rank: int) -> int:
        return self.row_stop(rank) - self.row_start(rank)

    def owner_of_row(self, row: int) -> int:
        return self._row_dist().owner_of(row)

    def neighbors(self, rank: int) -> tuple[int | None, int | None]:
        """Contexts owning the rows just above and below mine."""
        up = rank - 1 if rank > 0 else None
        down = rank + 1 if rank < self.p - 1 else None
        return up, down

    def flat_distribution(self) -> Distribution:
        """The layout of the row-major flattened field as a 1-D
        distribution — the bridge to PARDIS distributed sequences
        ("a two dimensional array is represented as a vector in
        row-major order", §4.3)."""
        parts = []
        for r in range(self.p):
            a, b = self.row_start(r), self.row_stop(r)
            parts.append([(a * self.nx, b * self.nx)] if b > a else [])
        return Distribution.explicit(parts, self.ny * self.nx)
