"""Round-trip and layout tests for the CDR marshaling layer."""

import numpy as np
import pytest

from repro.cdr import (
    DSequenceTC,
    EnumTC,
    MarshalError,
    SequenceTC,
    StringTC,
    StructTC,
    TC_BOOLEAN,
    TC_CHAR,
    TC_DOUBLE,
    TC_FLOAT,
    TC_LONG,
    TC_LONGLONG,
    TC_OCTET,
    TC_SHORT,
    TC_ULONG,
    TC_ULONGLONG,
    TC_USHORT,
    decode,
    encode,
    wire_size,
)


class TestPrimitives:
    @pytest.mark.parametrize("tc,value", [
        (TC_OCTET, 255), (TC_SHORT, -12345), (TC_USHORT, 54321),
        (TC_LONG, -2**31), (TC_ULONG, 2**32 - 1),
        (TC_LONGLONG, -2**63), (TC_ULONGLONG, 2**64 - 1),
    ])
    def test_integer_roundtrip(self, tc, value):
        assert decode(tc, encode(tc, value)) == value

    @pytest.mark.parametrize("tc,value", [
        (TC_FLOAT, 1.5), (TC_DOUBLE, 3.14159265358979),
        (TC_DOUBLE, -0.0), (TC_DOUBLE, 1e300),
    ])
    def test_float_roundtrip(self, tc, value):
        assert decode(tc, encode(tc, value)) == value

    def test_float_single_precision_truncates(self):
        out = decode(TC_FLOAT, encode(TC_FLOAT, 1.0 / 3.0))
        assert out == pytest.approx(1.0 / 3.0, abs=1e-7)
        assert out != 1.0 / 3.0

    def test_boolean_roundtrip(self):
        assert decode(TC_BOOLEAN, encode(TC_BOOLEAN, True)) is True
        assert decode(TC_BOOLEAN, encode(TC_BOOLEAN, False)) is False

    def test_char_roundtrip(self):
        assert decode(TC_CHAR, encode(TC_CHAR, "Q")) == "Q"

    def test_char_rejects_multichar(self):
        with pytest.raises(MarshalError):
            encode(TC_CHAR, "ab")

    @pytest.mark.parametrize("tc,bad", [
        (TC_OCTET, 256), (TC_OCTET, -1), (TC_SHORT, 2**15),
        (TC_ULONG, -1), (TC_ULONG, 2**32),
    ])
    def test_integer_range_enforced(self, tc, bad):
        with pytest.raises(MarshalError):
            encode(tc, bad)

    def test_primitive_sizes_on_wire(self):
        assert len(encode(TC_OCTET, 1)) == 1
        assert len(encode(TC_SHORT, 1)) == 2
        assert len(encode(TC_LONG, 1)) == 4
        assert len(encode(TC_DOUBLE, 1.0)) == 8


class TestAlignment:
    def test_struct_padding_matches_cdr(self):
        # octet (1) + pad(3) + long (4) + pad(0) + double (8) = 16
        tc = StructTC("s", (("a", TC_OCTET), ("b", TC_LONG), ("c", TC_DOUBLE)))
        data = encode(tc, {"a": 1, "b": 2, "c": 3.0})
        assert len(data) == 16
        assert data[1:4] == b"\0\0\0"

    def test_no_padding_when_naturally_aligned(self):
        tc = StructTC("s", (("a", TC_LONG), ("b", TC_LONG)))
        assert len(encode(tc, {"a": 1, "b": 2})) == 8


class TestStrings:
    @pytest.mark.parametrize("s", ["", "hello", "ünïcødé", "a" * 1000])
    def test_roundtrip(self, s):
        assert decode(StringTC(), encode(StringTC(), s)) == s

    def test_wire_layout_length_prefix_and_nul(self):
        data = encode(StringTC(), "hi")
        assert data[:4] == (3).to_bytes(4, "little")
        assert data[4:7] == b"hi\0"

    def test_bound_enforced_on_encode(self):
        with pytest.raises(MarshalError):
            encode(StringTC(bound=3), "toolong")

    def test_bound_boundary_ok(self):
        tc = StringTC(bound=3)
        assert decode(tc, encode(tc, "abc")) == "abc"


class TestSequences:
    def test_double_sequence_roundtrip_numpy(self):
        tc = SequenceTC(TC_DOUBLE)
        arr = np.linspace(0, 1, 17)
        out = decode(tc, encode(tc, arr))
        np.testing.assert_array_equal(out, arr)
        assert isinstance(out, np.ndarray)

    def test_double_sequence_accepts_python_list(self):
        tc = SequenceTC(TC_DOUBLE)
        out = decode(tc, encode(tc, [1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_empty_sequence(self):
        tc = SequenceTC(TC_LONG)
        out = decode(tc, encode(tc, []))
        assert out.size == 0

    def test_string_sequence(self):
        tc = SequenceTC(StringTC())
        vals = ["alpha", "", "gamma"]
        assert decode(tc, encode(tc, vals)) == vals

    def test_nested_dynamically_sized(self):
        """The §4.1 matrix case: a sequence of variable-length rows."""
        row = SequenceTC(TC_DOUBLE)
        matrix = SequenceTC(row)
        rows = [np.arange(3, dtype=float), np.arange(5, dtype=float),
                np.array([], dtype=float)]
        out = decode(matrix, encode(matrix, rows))
        assert len(out) == 3
        for got, want in zip(out, rows):
            np.testing.assert_array_equal(got, want)

    def test_bound_enforced(self):
        tc = SequenceTC(TC_DOUBLE, bound=4)
        with pytest.raises(MarshalError):
            encode(tc, np.zeros(5))

    def test_bulk_fast_path_matches_element_wise(self):
        """Numpy fast path must produce the identical byte stream as
        element-by-element encoding."""
        from repro.cdr import CdrEncoder

        arr = np.array([1.0, -2.5, 3e10])
        fast = encode(SequenceTC(TC_DOUBLE), arr)
        slow = CdrEncoder()
        slow.put_ulong(3)
        for v in arr:
            slow.put_primitive(TC_DOUBLE, float(v))
        assert fast == slow.getvalue()

    def test_multidimensional_array_rejected(self):
        with pytest.raises(MarshalError):
            encode(SequenceTC(TC_DOUBLE), np.zeros((2, 2)))

    def test_ndarray_of_structs_takes_element_path(self):
        """An ndarray input must only take the numpy bulk path for numeric
        primitive elements; an object array of structs encodes
        element-wise (this used to crash in put_bulk)."""
        inner = StructTC("inner", (("v", TC_LONG),))
        tc = SequenceTC(inner)
        vals = np.array([{"v": 1}, {"v": 2}], dtype=object)
        assert decode(tc, encode(tc, vals)) == [{"v": 1}, {"v": 2}]

    def test_ndarray_of_strings_takes_element_path(self):
        tc = SequenceTC(StringTC())
        vals = np.array(["a", "bc"], dtype=object)
        assert decode(tc, encode(tc, vals)) == ["a", "bc"]

    def test_ndarray_of_wrong_elements_raises_marshal_error(self):
        inner = StructTC("inner", (("v", TC_LONG),))
        with pytest.raises(MarshalError):
            encode(SequenceTC(inner), np.arange(3, dtype=float))

    def test_ndarray_bound_still_enforced_on_element_path(self):
        tc = SequenceTC(StringTC(), bound=1)
        with pytest.raises(MarshalError):
            encode(tc, np.array(["a", "b"], dtype=object))


class TestEnums:
    def test_roundtrip_by_index_and_name(self):
        # Either input form decodes to the canonical member name.
        tc = EnumTC("status", ("OK", "PENDING", "FAILED"))
        assert decode(tc, encode(tc, 2)) == "FAILED"
        assert decode(tc, encode(tc, "PENDING")) == "PENDING"

    def test_bad_index_on_the_wire_rejected(self):
        tc = EnumTC("status", ("OK", "PENDING"))
        wide = EnumTC("wider", ("A", "B", "C", "D", "E"))
        with pytest.raises(MarshalError):
            decode(tc, encode(wide, 4))

    def test_unknown_member_rejected(self):
        tc = EnumTC("status", ("OK",))
        with pytest.raises(MarshalError):
            encode(tc, 5)
        with pytest.raises(ValueError):
            encode(tc, "NOPE")


class TestStructs:
    TC = StructTC("point", (("x", TC_DOUBLE), ("y", TC_DOUBLE),
                            ("label", StringTC())))

    def test_roundtrip_dict(self):
        v = {"x": 1.0, "y": -2.0, "label": "p1"}
        assert decode(self.TC, encode(self.TC, v)) == v

    def test_roundtrip_object_with_attrs(self):
        class P:
            x, y, label = 3.0, 4.0, "obj"

        out = decode(self.TC, encode(self.TC, P()))
        assert out == {"x": 3.0, "y": 4.0, "label": "obj"}

    def test_missing_field_rejected(self):
        with pytest.raises(MarshalError, match="label"):
            encode(self.TC, {"x": 1.0, "y": 2.0})

    def test_nested_struct(self):
        inner = StructTC("inner", (("v", TC_LONG),))
        outer = StructTC("outer", (("a", inner), ("b", SequenceTC(inner))))
        v = {"a": {"v": 1}, "b": [{"v": 2}, {"v": 3}]}
        assert decode(outer, encode(outer, v)) == v


class TestDSequence:
    def test_local_encoding_is_fragment_form(self):
        dtc = DSequenceTC(TC_DOUBLE, bound=1024)
        stc = SequenceTC(TC_DOUBLE)
        arr = np.arange(8, dtype=float)
        assert encode(dtc, arr) == encode(stc, arr)

    def test_distribution_attributes(self):
        dtc = DSequenceTC(TC_DOUBLE, bound=1024,
                          client_dist="BLOCK", server_dist="CONCENTRATED")
        assert dtc.client_dist == "BLOCK"
        assert dtc.server_dist == "CONCENTRATED"

    def test_default(self):
        assert DSequenceTC(TC_DOUBLE).default() == []


class TestErrors:
    def test_trailing_bytes_detected(self):
        data = encode(TC_LONG, 1) + b"junk"
        with pytest.raises(MarshalError, match="trailing"):
            decode(TC_LONG, data)

    def test_underrun_detected(self):
        with pytest.raises(MarshalError, match="underrun"):
            decode(TC_DOUBLE, b"\0\0")

    def test_wrong_type_for_string(self):
        with pytest.raises(MarshalError):
            encode(StringTC(), 42)

    def test_corrupt_string_terminator(self):
        data = bytearray(encode(StringTC(), "hi"))
        data[-1] = 7
        with pytest.raises(MarshalError, match="NUL"):
            decode(StringTC(), bytes(data))


class TestWireSize:
    def test_matches_actual_encoding(self):
        tc = SequenceTC(StringTC())
        v = ["abc", "defgh"]
        assert wire_size(tc, v) == len(encode(tc, v))
