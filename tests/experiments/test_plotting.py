"""ASCII chart renderer tests."""

from dataclasses import dataclass


from repro.experiments.plotting import ascii_chart, chart_rows


class TestAsciiChart:
    def test_empty(self):
        assert ascii_chart([], {}) == "(no data)"

    def test_contains_glyphs_and_legend(self):
        out = ascii_chart([1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]})
        assert "o up" in out
        assert "x down" in out
        assert "o" in out.splitlines()[0] or any(
            "o" in ln for ln in out.splitlines())

    def test_axis_labels(self):
        out = ascii_chart([0, 10], {"s": [0, 100]}, x_label="procs",
                          y_label="seconds")
        assert "procs" in out
        assert "seconds" in out
        assert "100" in out
        assert "10" in out

    def test_title(self):
        out = ascii_chart([1, 2], {"a": [1, 2]}, title="My Figure")
        assert out.splitlines()[0] == "My Figure"

    def test_constant_series_no_crash(self):
        out = ascii_chart([1, 2, 3], {"flat": [5, 5, 5]})
        assert "flat" in out

    def test_single_point(self):
        out = ascii_chart([1], {"p": [2.0]})
        assert "p" in out

    def test_monotone_series_renders_monotone(self):
        """The highest y value appears on an earlier line than the lowest."""
        out = ascii_chart([1, 2, 3, 4], {"d": [40, 30, 20, 10]},
                          width=20, height=10)
        lines = [ln for ln in out.splitlines() if "|" in ln]
        first = next(i for i, ln in enumerate(lines) if "o" in ln)
        last = max(i for i, ln in enumerate(lines) if "o" in ln)
        assert first < last


class TestChartRows:
    @dataclass
    class Row:
        n: int
        t: float

    def test_from_dataclass_rows(self):
        rows = [self.Row(1, 10.0), self.Row(2, 5.0)]
        out = chart_rows(rows, "n", ["t"], title="T")
        assert "o t" in out
        assert out.startswith("T")


class TestCliPlot:
    def test_plot_flag(self):
        import subprocess
        import sys

        r = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "--plot", "fig4",
             "--procs", "1", "2", "--nseqs", "30", "--rounds", "2"],
            capture_output=True, text=True, timeout=300,
        )
        assert r.returncode == 0
        assert "Figure 4 left" in r.stdout
        assert "t_centralized" in r.stdout
