"""Fault injection through the interceptor chain.

Robustness tests need to force failures at precise points of the request
path without reaching into engine internals.  The
:class:`FaultInjectionInterceptor` raises a chosen exception at any of
the five interception points, optionally filtered by operation name and
limited to a number of firings:

    faults = FaultInjectionInterceptor()
    orb.register_interceptor(faults)
    faults.inject("receive_request", op="scale", times=1)
    # next scale() request is shed server-side with a SystemException

Because the faults surface through the ordinary interceptor points, the
engine's recovery machinery is exercised exactly as it would be by a
real failure: error replies, dead-lettered fragments, failed futures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import SystemException
from .interceptors import POINTS, RequestInterceptor

__all__ = ["FaultInjectionInterceptor", "FaultRule"]


@dataclass
class FaultRule:
    """One armed fault: raise ``exc`` at ``point`` (for ``op``, if set),
    at most ``times`` times (``None`` means every time)."""

    point: str
    exc: BaseException
    op: Optional[str] = None
    times: Optional[int] = 1
    fired: int = field(default=0)

    def matches(self, point: str, op_name: str) -> bool:
        if self.point != point:
            return False
        if self.op is not None and self.op != op_name:
            return False
        return self.times is None or self.fired < self.times


class FaultInjectionInterceptor(RequestInterceptor):
    """Raises configured exceptions at configured interception points."""

    name = "fault-injection"

    def __init__(self) -> None:
        self.rules: list[FaultRule] = []

    def inject(self, point: str, *, op: Optional[str] = None,
               exc: Optional[BaseException] = None,
               times: Optional[int] = 1) -> FaultRule:
        """Arm a fault; returns the rule (its ``fired`` counter tells the
        test how often it actually triggered)."""
        if point not in POINTS:
            raise ValueError(
                f"unknown interception point {point!r}; one of {POINTS}"
            )
        if exc is None:
            exc = SystemException(f"injected fault at {point}")
        rule = FaultRule(point, exc, op, times)
        self.rules.append(rule)
        return rule

    def reset(self) -> None:
        self.rules.clear()

    def _fire(self, point: str, op_name: str) -> None:
        for rule in self.rules:
            if rule.matches(point, op_name):
                rule.fired += 1
                raise rule.exc

    # -- the five points all funnel into _fire -----------------------------

    def send_request(self, info) -> None:
        self._fire("send_request", info.op_name)

    def receive_reply(self, info) -> None:
        self._fire("receive_reply", info.op_name)

    def receive_exception(self, info) -> None:
        self._fire("receive_exception", info.op_name)

    def receive_request(self, info) -> None:
        self._fire("receive_request", info.op_name)

    def send_reply(self, info) -> None:
        self._fire("send_reply", info.op_name)

    def finish_request(self, info) -> None:
        # The chain swallows exceptions at this point (the request is
        # already terminal); the rule's ``fired`` counter still proves
        # that the completion notification ran.
        self._fire("finish_request", info.op_name)
