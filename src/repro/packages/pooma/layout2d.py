"""Two-dimensional block decomposition for POOMA fields.

The paper's diffusion example needs only block-rows
(:class:`~repro.packages.pooma.layout.GridLayout`); real POOMA decomposes
in both dimensions.  :class:`GridLayout2D` tiles an ``ny`` x ``nx`` grid
over a ``py`` x ``px`` process grid, and :class:`Field2D` carries one
ghost cell on every side with a two-phase edge exchange (left/right first,
then up/down including the exchanged corners — so 9-point stencils see
correct corner ghosts).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ...core.distribution import Distribution
from ...runtime.collectives import _next_tag, gather
from .stencil import STENCIL_FLOPS_PER_POINT, nine_point_stencil


class GridLayout2D:
    """Block tiling of an ``ny`` x ``nx`` grid over ``py`` x ``px``
    contexts; context ``rank`` sits at grid position
    ``(rank // px, rank % px)``."""

    def __init__(self, ny: int, nx: int, py: int, px: int) -> None:
        if ny < 1 or nx < 1:
            raise ValueError(f"grid must be at least 1x1, got {ny}x{nx}")
        if py < 1 or px < 1 or py > ny or px > nx:
            raise ValueError(
                f"cannot tile {ny}x{nx} over {py}x{px} contexts"
            )
        self.ny, self.nx = ny, nx
        self.py, self.px = py, px
        self._rows = Distribution.block(ny, py)
        self._cols = Distribution.block(nx, px)

    @property
    def p(self) -> int:
        return self.py * self.px

    def coords(self, rank: int) -> tuple[int, int]:
        if not (0 <= rank < self.p):
            raise ValueError(f"rank {rank} out of range for {self.p} contexts")
        return divmod(rank, self.px)

    def rank_at(self, ry: int, rx: int) -> int:
        return ry * self.px + rx

    def row_range(self, rank: int) -> tuple[int, int]:
        ry, _ = self.coords(rank)
        ivs = self._rows.intervals(ry)
        return ivs[0] if ivs else (0, 0)

    def col_range(self, rank: int) -> tuple[int, int]:
        _, rx = self.coords(rank)
        ivs = self._cols.intervals(rx)
        return ivs[0] if ivs else (0, 0)

    def local_shape(self, rank: int) -> tuple[int, int]:
        (r0, r1), (c0, c1) = self.row_range(rank), self.col_range(rank)
        return (r1 - r0, c1 - c0)

    def neighbors(self, rank: int) -> dict:
        """{"up": rank|None, "down": ..., "left": ..., "right": ...}"""
        ry, rx = self.coords(rank)
        return {
            "up": self.rank_at(ry - 1, rx) if ry > 0 else None,
            "down": self.rank_at(ry + 1, rx) if ry < self.py - 1 else None,
            "left": self.rank_at(ry, rx - 1) if rx > 0 else None,
            "right": self.rank_at(ry, rx + 1) if rx < self.px - 1 else None,
        }

    def flat_distribution(self) -> Distribution:
        """Row-major flattening: each context owns one interval per local
        row (the bridge to PARDIS distributed sequences)."""
        parts = []
        for rank in range(self.p):
            (r0, r1), (c0, c1) = self.row_range(rank), self.col_range(rank)
            parts.append([(r * self.nx + c0, r * self.nx + c1)
                          for r in range(r0, r1)] if c1 > c0 else [])
        return Distribution.explicit(parts, self.ny * self.nx)


class Field2D:
    """A 2-D field tiled in both dimensions, one ghost cell per side."""

    def __init__(self, layout: GridLayout2D, rank: int, rts=None,
                 initial: Optional[np.ndarray] = None) -> None:
        self.layout = layout
        self.rank = rank
        self.rts = rts
        rows, cols = layout.local_shape(rank)
        self.data = np.zeros((rows + 2, cols + 2))
        if initial is not None:
            initial = np.asarray(initial, dtype=float)
            (r0, r1), (c0, c1) = (layout.row_range(rank),
                                  layout.col_range(rank))
            if initial.shape == (layout.ny, layout.nx):
                self.data[1:-1, 1:-1] = initial[r0:r1, c0:c1]
            elif initial.shape == (rows, cols):
                self.data[1:-1, 1:-1] = initial
            else:
                raise ValueError(
                    f"initial data of shape {initial.shape} matches neither "
                    f"the global grid nor the local tile {(rows, cols)}"
                )

    @property
    def interior(self) -> np.ndarray:
        return self.data[1:-1, 1:-1]

    @interior.setter
    def interior(self, values) -> None:
        self.data[1:-1, 1:-1] = values

    def fill(self, fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> None:
        (r0, r1), (c0, c1) = (self.layout.row_range(self.rank),
                              self.layout.col_range(self.rank))
        yy, xx = np.meshgrid(np.arange(r0, r1), np.arange(c0, c1),
                             indexing="ij")
        self.interior = fn(yy, xx)

    # -- communication ----------------------------------------------------------

    def exchange_ghosts(self) -> None:
        """Two-phase edge exchange: columns first, then rows *including*
        the just-received column ghosts, so diagonal (corner) ghost cells
        end up correct — required by 9-point stencils."""
        if self.rts is None or self.layout.p == 1:
            return
        nb = self.layout.neighbors(self.rank)
        self._swap(nb["left"], nb["right"],
                   send_left=lambda: self.data[1:-1, 1].copy(),
                   send_right=lambda: self.data[1:-1, -2].copy(),
                   recv_left=lambda v: self.data.__setitem__(
                       (slice(1, -1), 0), v),
                   recv_right=lambda v: self.data.__setitem__(
                       (slice(1, -1), -1), v))
        self._swap(nb["up"], nb["down"],
                   send_left=lambda: self.data[1, :].copy(),
                   send_right=lambda: self.data[-2, :].copy(),
                   recv_left=lambda v: self.data.__setitem__(0, v),
                   recv_right=lambda v: self.data.__setitem__(-1, v))

    def _swap(self, lo, hi, send_left, send_right, recv_left, recv_right):
        rts = self.rts
        tag = _next_tag(rts)
        if lo is not None:
            rts.send_reserved(lo, ("to_lo", send_left()), tag)
        if hi is not None:
            rts.send_reserved(hi, ("to_hi", send_right()), tag)
        for _ in range(int(lo is not None) + int(hi is not None)):
            msg = rts.recv(tag=tag)
            kind, edge = msg.payload
            if kind == "to_hi":     # sent by my lower-index neighbour
                recv_left(edge)
            else:                   # sent by my higher-index neighbour
                recv_right(edge)

    def assemble(self, root: int = 0) -> Optional[np.ndarray]:
        if self.rts is None or self.layout.p == 1:
            return self.interior.copy()
        pieces = gather(
            self.rts,
            (self.layout.row_range(self.rank),
             self.layout.col_range(self.rank), self.interior.copy()),
            root=root,
        )
        if pieces is None:
            return None
        full = np.zeros((self.layout.ny, self.layout.nx))
        for (r0, r1), (c0, c1), tile in pieces:
            full[r0:r1, c0:c1] = tile
        return full


def diffusion_step_2d(field: Field2D, alpha: float = 0.1,
                      charge: bool = True) -> None:
    """One 9-point diffusion step on a 2-D-tiled field (zero-flux walls)."""
    field.exchange_ghosts()
    lay = field.layout
    padded = field.data.copy()
    (r0, r1), (c0, c1) = lay.row_range(field.rank), lay.col_range(field.rank)
    if r0 == 0:
        padded[0, :] = padded[1, :]
    if r1 == lay.ny:
        padded[-1, :] = padded[-2, :]
    if c0 == 0:
        padded[:, 0] = padded[:, 1]
    if c1 == lay.nx:
        padded[:, -1] = padded[:, -2]
    field.interior = nine_point_stencil(padded, alpha)
    if charge and field.rts is not None:
        rows, cols = field.interior.shape
        field.rts.charge_flops(rows * cols * STENCIL_FLOPS_PER_POINT)
