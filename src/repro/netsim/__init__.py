"""Simulated network substrate (the reproduction's NexusLite).

Hosts with per-node compute rates, links with latency/bandwidth/overhead
profiles, and a framed-packet transport with synchronous vs. oneway send
semantics.
"""

from .profiles import (
    ATM_155,
    ETHERNET_10,
    ETHERNET_100,
    LOOPBACK,
    PRESETS,
    SGI_SHMEM,
    SP2_SWITCH,
    LinkProfile,
)
from .topology import Host, Network, NoRouteError
from .transport import ANY, Address, Endpoint, Packet, Transport, estimate_nbytes

__all__ = [
    "ANY",
    "ATM_155",
    "Address",
    "ETHERNET_10",
    "ETHERNET_100",
    "Endpoint",
    "Host",
    "LOOPBACK",
    "LinkProfile",
    "Network",
    "NoRouteError",
    "PRESETS",
    "Packet",
    "SGI_SHMEM",
    "SP2_SWITCH",
    "Transport",
    "estimate_nbytes",
]
