#!/usr/bin/env python3
"""Parameter study across a farm of solver servers — the §4.1 motivation
("similar interactions occur in parameter study for physical simulation
and algorithm development") scaled up with futures and object references.

A coordinator object hands out per-server worker references (the CORBA
factory pattern); the client fans a sweep of regularization parameters
out across all workers with non-blocking invocations, harvesting futures
as they resolve.

Run:  python examples/parameter_study.py [N_WORKERS] [N_POINTS]
"""

import sys

import numpy as np

from repro.core import OrbConfig, Simulation
from repro.idl import compile_idl
from repro.netsim import ATM_155, Host, Network

IDL = """
    typedef dsequence<double, 100000> vec;
    interface solver_worker {
        double residual(in double regularization, in long n);
    };
    interface coordinator {
        long worker_count();
        solver_worker get_worker(in long i);
    };
"""
stubs = compile_idl(IDL, module_name="param_study_stubs")


def farm_main(ctx, n_workers):
    """One parallel server hosting a coordinator plus per-thread workers
    (single objects sharing the parallel server, §4.2 style)."""

    class WorkerImpl(stubs.solver_worker_skel):
        def residual(self, regularization, n):
            rng = np.random.default_rng(int(regularization * 1e6) % 2**31)
            a = rng.uniform(0, 1, (n, n)) + np.eye(n) * (n * regularization)
            b = rng.uniform(-1, 1, n)
            x = np.linalg.solve(a, b)
            ctx.charge_flops((2 / 3) * n ** 3)
            return float(np.linalg.norm(a @ x - b))

    workers = []
    if ctx.rank < n_workers:
        ref = ctx.poa.activate(WorkerImpl(), f"worker-{ctx.rank}",
                               kind="single")
        workers.append(ref)
    ctx.barrier()

    if ctx.rank == 0:
        all_refs = [ctx.orb.repository(ctx.namespace).lookup(f"worker-{i}")
                    for i in range(n_workers)]

        class CoordinatorImpl(stubs.coordinator_skel):
            def worker_count(self):
                return len(all_refs)

            def get_worker(self, i):
                return all_refs[i]            # object reference by value

        ctx.poa.activate(CoordinatorImpl(), "coordinator", kind="single")
    ctx.poa.impl_is_ready()


def client_main(ctx, n_points, n):
    coord = stubs.coordinator._bind("coordinator")
    n_workers = coord.worker_count()
    workers = [coord.get_worker(i) for i in range(n_workers)]
    print(f"[client] sweep of {n_points} points over {n_workers} workers")

    params = np.linspace(0.5, 3.0, n_points)
    t0 = ctx.now()
    futures = {}
    for i, p in enumerate(params):
        w = workers[i % n_workers]            # round-robin fan-out
        futures[p] = w.residual_nb(float(p), n)
    results = {p: fut.value() for p, fut in futures.items()}
    elapsed = ctx.now() - t0

    best = min(results, key=results.get)
    print(f"[client] best regularization: {best:.3f} "
          f"(residual {results[best]:.2e})")
    print(f"[client] sweep time: {elapsed:.2f} virtual s "
          f"(~{elapsed / n_points:.2f} s/point amortized)")

    # The same sweep serialized on one worker, for contrast.
    t0 = ctx.now()
    for p in params:
        workers[0].residual(float(p), n)
    serial = ctx.now() - t0
    print(f"[client] single-worker sweep: {serial:.2f} virtual s "
          f"-> farm speedup {serial / elapsed:.1f}x")


def main():
    n_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    n_points = int(sys.argv[2]) if len(sys.argv) > 2 else 18
    n = 48

    net = Network()
    net.add_host(Host("CLIENT", nodes=1, node_flops=5.2e6))
    net.add_host(Host("FARM", nodes=max(n_workers, 2), node_flops=6.6e6))
    net.connect("CLIENT", "FARM", ATM_155)

    sim = Simulation(network=net, config=OrbConfig(max_outstanding=4))
    sim.server(farm_main, host="FARM", nprocs=n_workers, args=(n_workers,),
               name="solver-farm")
    sim.client(client_main, host="CLIENT", args=(n_points, n))
    sim.run()


if __name__ == "__main__":
    main()
