"""Paper §3.4: "Packages based on different run-time systems can
interoperate only in distributed mode" — clients and servers running on
*different* RTS backends interoperate through the ORB."""

import itertools

import numpy as np
import pytest

from repro.core import Simulation
from repro.idl import compile_idl
from repro.runtime import MPIRuntime, PoomaRuntime, TulipRuntime

IDL = """
    typedef dsequence<double, 4096> vec;
    interface summer { double total(in vec v); };
"""

BACKENDS = {"mpi": MPIRuntime, "tulip": TulipRuntime, "pooma": PoomaRuntime}


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="cross_rts_stubs")


@pytest.mark.parametrize(
    "client_rts,server_rts",
    list(itertools.product(sorted(BACKENDS), sorted(BACKENDS))),
)
def test_any_client_rts_talks_to_any_server_rts(mod, client_rts, server_rts):
    sim = Simulation()

    def server_main(ctx):
        from repro.runtime import collectives as coll

        class Impl(mod.summer_skel):
            def total(self, v):
                local = float(np.sum(v.owned_data))
                return coll.allreduce(ctx.rts, local, lambda a, b: a + b)

        ctx.poa.activate(Impl(), "summer", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=2,
               rts_factory=BACKENDS[server_rts])
    out = {}

    def client(ctx):
        s = mod.summer._spmd_bind("summer")
        v = ctx.dseq(np.arange(12.0))
        out[ctx.rank] = s.total(v)

    sim.client(client, host="HOST_1", nprocs=2,
               rts_factory=BACKENDS[client_rts])
    sim.run()
    assert out == {0: 66.0, 1: 66.0}


def test_marshaling_is_shared_across_backends(mod):
    """The §4.1 note: the same generated marshaling routines serve network
    transport and intra-domain transport — byte streams from one backend's
    world decode in another's (they are the same CDR)."""
    from repro.cdr import SequenceTC, TC_DOUBLE, decode, encode

    tc = SequenceTC(TC_DOUBLE)
    data = np.arange(5.0)
    wire = encode(tc, data)
    np.testing.assert_array_equal(decode(tc, wire), data)
