"""The reproduction scorecard validates all claims at reduced scale."""

import subprocess
import sys

import pytest

from repro.experiments.validate import (
    CLAIMS,
    Claim,
    format_report,
    validate,
)


@pytest.fixture(scope="module")
def results():
    return validate(paper_scale=False)


def test_all_claims_pass(results):
    failed = [r.claim.id for r in results if not r.passed]
    assert not failed, f"claims failed: {failed}"


def test_every_evaluation_claim_is_covered(results):
    ids = {r.claim.id for r in results}
    # one or more claims per evaluation section + the §6 experiment
    assert any(i.startswith("fig2") for i in ids)
    assert any(i.startswith("fig4") for i in ids)
    assert any(i.startswith("fig5") for i in ids)
    assert "s6-communication-threads" in ids


def test_report_format(results):
    text = format_report(results)
    assert "scorecard" in text
    assert f"{len(CLAIMS)}/{len(CLAIMS)} claims reproduced" in text
    assert "PASS" in text


def test_crashing_claim_reports_failure():
    bad = Claim("boom", "nowhere", "always crashes",
                lambda d: 1 / 0)
    out = validate(paper_scale=False, claims=[bad])
    assert not out[0].passed
    assert "error" in out[0].detail
    assert "FAIL" in format_report(out)


def test_cli_exit_codes():
    r = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "validate"],
        capture_output=True, text=True, timeout=600,
    )
    assert r.returncode == 0
    assert "11/11" in r.stdout or "claims reproduced" in r.stdout
