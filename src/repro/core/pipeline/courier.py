"""The fragment courier: the ORB's one implementation of distributed-
argument fragment movement.

Before this package existed, the schedule→extract→fragment→send half and
the receive→insert half of distributed-argument transfer were each
implemented twice (client in-args and server out-args; server in-args
and client out-args).  The courier owns all four:

* :meth:`FragmentCourier.send_fragments` — the send loop, used for
  client "in" arguments and server "out" results alike;
* :meth:`FragmentCourier.receive_fragments` — the blocking
  receive/insert loop, used for server "in" arguments;
* :meth:`FragmentCourier.insert_fragment` — the single-fragment insert
  step the client's progress engine pumps for "out" results (fragments
  are matched, not ordered, so the client inserts them as they arrive);
* :func:`redistribute_exchange` — the same extract/insert engine over a
  run-time-system channel, backing
  :meth:`~repro.core.dsequence.DistributedSequence.redistribute`.

``transfer.extract`` and ``transfer.insert`` are called from nowhere
else in the tree.

Fragment payloads travel on one of two lanes.  The classic lane CDR-
encodes ``sequence<element>`` into a fresh ``bytes``; the zero-copy lane
(numeric elements, ndarray data, :func:`repro.cdr.fast_path_enabled`)
writes the identical wire bytes once into a :class:`PooledBuffer` leased
from the world transport's :class:`~repro.cdr.buffers.BufferPool` and
decodes by aliasing, not copying.  The lease rides the
:class:`~repro.core.request.Fragment`; whoever consumes (or discards)
the fragment must call :func:`release_fragment`.
"""

from __future__ import annotations

import numpy as np

from ...cdr import CdrDecoder, CdrEncoder, SequenceTC, TypeCode
from ...cdr import buffers as _buffers
from ...cdr import encoder as _cdr_encoder
from ...cdr.buffers import get_pool
from ...cdr.decoder import decode_bulk_payload
from ...cdr.encoder import encode_bulk_payload
from ...cdr.typecodes import PrimitiveTC
from ..distribution import Distribution
from ..request import Fragment
from .. import transfer as _transfer

__all__ = ["FragmentCourier", "fragment_payload", "fragment_values",
           "redistribute_exchange", "release_fragment"]


def fragment_payload(element: TypeCode, values, pool=None):
    """Encode one fragment's element run (``sequence<element>``).

    Returns ``bytes`` on the classic lane, or a ``PooledBuffer`` lease on
    the zero-copy lane; both carry identical wire bytes.  The caller owns
    a returned lease.
    """
    # Inlined fast_path_enabled()/is_numeric_primitive(): this dispatch
    # runs once per fragment, squarely on the hot path.
    if (_buffers._ENABLED and isinstance(values, np.ndarray)
            and isinstance(element, PrimitiveTC) and element.name != "char"):
        return encode_bulk_payload(element, values,
                                   pool if pool is not None else get_pool())
    data = CdrEncoder().encode(SequenceTC(element), values).getvalue()
    meter = _cdr_encoder._MARSHAL_METER
    if meter is not None:
        meter.on_encode(len(data))
    stats = (pool if pool is not None else get_pool()).stats
    stats.fallback_encodes += 1
    return data


def fragment_values(element: TypeCode, payload, pool=None):
    """Decode one fragment's element run.

    Zero-copy lane payloads come back as a read-only ndarray aliasing the
    payload storage — consume it before releasing the buffer.
    """
    stats = (pool if pool is not None else get_pool()).stats
    if (_buffers._ENABLED and isinstance(element, PrimitiveTC)
            and element.name != "char"):
        stats.fast_decodes += 1
        return decode_bulk_payload(element, payload)
    if not isinstance(payload, (bytes, bytearray, memoryview)):
        payload = payload.tobytes()   # PooledBuffer sent while lane now off
    dec = CdrDecoder(payload)
    meter = _cdr_encoder._MARSHAL_METER
    if meter is not None:
        meter.on_decode(len(payload))
    stats.fallback_decodes += 1
    return dec.decode(SequenceTC(element))


def release_fragment(frag) -> None:
    """Return a fragment's pooled payload, if it has one (else no-op).

    Safe on ``bytes`` payloads and on already-released leases; every
    fragment consumer and every drain path funnels through here.
    """
    release = getattr(getattr(frag, "payload", None), "release", None)
    if release is not None:
        release()


class FragmentCourier:
    """Per-thread fragment mover bound to one :class:`PardisContext`."""

    __slots__ = ("ctx", "transport")

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.transport = ctx.orb.world.transport

    # -- sending -----------------------------------------------------------

    def send_fragments(self, *, src_dist: Distribution, dst_dist: Distribution,
                       rank: int, local_data, element: TypeCode, req_id,
                       param: str, endpoints, tag: int,
                       oneway: bool = False) -> int:
        """Ship this thread's overlap of ``src_dist -> dst_dist`` directly
        to the destination threads; returns the bytes injected."""
        sched = _transfer.cached_schedule(src_dist, dst_dist)
        src_addr = self.ctx.endpoint.address
        pool = self.transport.buffer_pool
        nbytes = 0
        for item in sched:
            if item.src_rank != rank:
                continue
            values = _transfer.extract(src_dist, rank, local_data,
                                       item.intervals)
            frag = Fragment(req_id, param, rank, item.intervals,
                            fragment_payload(element, values, pool))
            frag_nb = frag.nbytes()
            self.transport.send(src_addr, endpoints[item.dst_rank], frag,
                                tag=tag, nbytes=frag_nb, oneway=oneway)
            nbytes += frag_nb
        return nbytes

    # -- receiving ---------------------------------------------------------

    @staticmethod
    def expected_fragments(src_dist: Distribution, dst_dist: Distribution,
                           rank: int) -> int:
        """How many fragments of ``src_dist -> dst_dist`` target ``rank``."""
        sched = _transfer.cached_schedule(src_dist, dst_dist)
        return sum(1 for t in sched if t.dst_rank == rank)

    def receive_fragments(self, *, dist: Distribution, rank: int, local_data,
                          element: TypeCode, req_id, param: str,
                          expected: int, tag: int, reason: str) -> None:
        """Blocking receive/insert loop: collect exactly ``expected``
        fragments of ``param`` and insert them by global index."""
        channel = self.ctx.endpoint.channel

        def match(env):
            pkt = env.payload
            return (pkt.tag == tag and pkt.body.req_id == req_id
                    and pkt.body.param == param)

        for _ in range(expected):
            frag = channel.receive(match, reason=reason).payload.body
            self.insert_fragment(dist, rank, local_data, element, frag)

    def insert_fragment(self, dist: Distribution, rank: int, local_data,
                        element: TypeCode, frag: Fragment) -> None:
        """Insert one received fragment into local storage, then return
        its pooled payload (also on decode/insert failure)."""
        pool = self.transport.buffer_pool
        try:
            values = fragment_values(element, frag.payload, pool)
            _transfer.insert(dist, rank, local_data, tuple(frag.intervals),
                             values)
        finally:
            release_fragment(frag)


# ---------------------------------------------------------------------------
# RTS-channel exchange (redistribution)
# ---------------------------------------------------------------------------


def redistribute_exchange(element: TypeCode, src_dist: Distribution,
                          dst_dist: Distribution, rank: int, src_data,
                          dst_data, rts) -> None:
    """Collective fragment exchange over the program's run-time system:
    every thread ships its overlaps of ``src_dist -> dst_dist`` and
    collects what lands on it (the engine behind
    ``DistributedSequence.redistribute``)."""
    from ...runtime.collectives import _next_tag

    sched = _transfer.cached_schedule(src_dist, dst_dist)
    tag = _next_tag(rts)
    for item in _transfer.outgoing(sched, rank):
        values = _transfer.extract(src_dist, rank, src_data, item.intervals)
        payload = fragment_payload(element, values)
        rts.send_reserved(item.dst_rank, (item.intervals, payload), tag,
                          nbytes=len(payload))
    for item in _transfer.local_items(sched, rank):
        values = _transfer.extract(src_dist, rank, src_data, item.intervals)
        _transfer.insert(dst_dist, rank, dst_data, item.intervals, values)
    for _ in range(len(_transfer.incoming(sched, rank))):
        msg = rts.recv(tag=tag)
        intervals, payload = msg.payload
        try:
            values = fragment_values(element, payload)
            _transfer.insert(dst_dist, rank, dst_data, tuple(intervals),
                             values)
        finally:
            release = getattr(payload, "release", None)
            if release is not None:
                release()
