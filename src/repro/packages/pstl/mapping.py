"""PARDIS <-> HPC++ PSTL container mapping (``#pragma HPC++:vector``).

Compiling with ``-hpcxx`` makes pragma'd dsequence parameters marshal
directly into :class:`DVector` objects — "a '-hpcxx' option will cause it
to generate stub code suitable for PSTL distributed vector" (§4.3).
"""

from __future__ import annotations

import numpy as np

from ...core.distribution import Distribution
from ...core.dsequence import DistributedSequence
from ...core.stubapi import current_context, register_adapter
from .dvector import DVector


class VectorAdapter:
    """Container adapter between PSTL distributed vectors and PARDIS
    distributed sequences (both 1-D; block layouts map directly)."""

    def handles(self, value) -> bool:
        return isinstance(value, DVector)

    def unwrap(self, vec: DVector, element_tc) -> DistributedSequence:
        return DistributedSequence.adopt(vec.local, vec.dist, vec.rank,
                                         element_tc)

    def wrap(self, dseq: DistributedSequence) -> DVector:
        ctx = current_context()
        dist = dseq.dist
        if dist.kind not in ("BLOCK", "EXPLICIT", "TEMPLATE", "CONCENTRATED"):
            dist = Distribution.block(dseq.dist.n, dseq.dist.p)
            dseq = dseq.redistribute(dist, ctx.rts)
        return DVector(len(dseq), dseq.rank, dist.p, ctx.rts,
                       local=np.asarray(dseq.owned_data, dtype=float),
                       dist=dist)


register_adapter("HPC++", "vector", VectorAdapter())
