"""Conformance tests run against every RTS backend (paper §2.2: the ORB
requires only a minimal message-passing contract, satisfiable by multiple
run-time systems)."""

import pytest

from repro.netsim import ANY
from repro.runtime import ReservedTagError, PARDIS_TAG_BASE
from repro.runtime.tulip import OneSidedError, TulipRuntime



def run_spmd(world, nprocs, main, rts_factory, host="hostA", args=()):
    prog = world.launch(main, host=host, nprocs=nprocs,
                        rts_factory=rts_factory, args=args)
    world.run()
    return prog.results


class TestIdentity:
    def test_rank_and_nprocs(self, world, rts_factory):
        res = run_spmd(world, 4, lambda rts: (rts.rank, rts.nprocs), rts_factory)
        assert res == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_program_backref(self, world, rts_factory):
        res = run_spmd(world, 2, lambda rts: rts.program.name, rts_factory)
        assert res == ["prog0", "prog0"]


class TestPointToPoint:
    def test_ring_pass(self, world, rts_factory):
        def main(rts):
            nxt = (rts.rank + 1) % rts.nprocs
            prev = (rts.rank - 1) % rts.nprocs
            rts.send(nxt, f"token-{rts.rank}", tag=1)
            return rts.recv(src=prev, tag=1).payload

        res = run_spmd(world, 5, main, rts_factory)
        assert res == [f"token-{(i - 1) % 5}" for i in range(5)]

    def test_tag_selectivity(self, world, rts_factory):
        def main(rts):
            if rts.rank == 0:
                rts.send(1, "low", tag=1)
                rts.send(1, "high", tag=2)
                return None
            a = rts.recv(tag=2).payload
            b = rts.recv(tag=1).payload
            return (a, b)

        res = run_spmd(world, 2, main, rts_factory)
        assert res[1] == ("high", "low")

    def test_any_source(self, world, rts_factory):
        def main(rts):
            if rts.rank == 0:
                got = sorted(rts.recv(src=ANY, tag=3).payload for _ in range(3))
                return got
            rts.send(0, rts.rank, tag=3)
            return None

        res = run_spmd(world, 4, main, rts_factory)
        assert res[0] == [1, 2, 3]

    def test_message_order_fifo_per_pair(self, world, rts_factory):
        def main(rts):
            if rts.rank == 0:
                for i in range(10):
                    rts.send(1, i, tag=0)
                return None
            return [rts.recv(src=0, tag=0).payload for _ in range(10)]

        res = run_spmd(world, 2, main, rts_factory)
        assert res[1] == list(range(10))

    def test_iprobe(self, world, rts_factory):
        def main(rts):
            if rts.rank == 0:
                rts.send(1, "x", tag=5)
                return None
            while not rts.iprobe(tag=5):
                rts.compute(1e-4)
            return rts.recv(tag=5).payload

        res = run_spmd(world, 2, main, rts_factory)
        assert res[1] == "x"

    def test_reserved_tag_rejected_for_user_send(self, world, rts_factory):
        def main(rts):
            with pytest.raises(ReservedTagError):
                rts.send(0, "nope", tag=PARDIS_TAG_BASE + 1)

        run_spmd(world, 1, main, rts_factory)

    def test_send_reserved_allows_pardis_tags(self, world, rts_factory):
        def main(rts):
            if rts.rank == 0:
                rts.send_reserved(1, "orb", PARDIS_TAG_BASE + 1)
                return None
            return rts.recv(tag=PARDIS_TAG_BASE + 1).payload

        res = run_spmd(world, 2, main, rts_factory)
        assert res[1] == "orb"

    def test_messages_cost_time(self, world, rts_factory):
        def main(rts):
            if rts.rank == 0:
                rts.send(1, b"z" * 1_000_000, tag=0, nbytes=1_000_000)
                return rts.now()
            rts.recv(tag=0)
            return rts.now()

        res = run_spmd(world, 2, main, rts_factory)
        assert res[0] > 0.0
        assert res[1] >= res[0]


class TestTimeCharging:
    def test_compute_advances_clock(self, world, rts_factory):
        def main(rts):
            t0 = rts.now()
            rts.compute(2.5)
            return rts.now() - t0

        assert run_spmd(world, 1, main, rts_factory) == [2.5]

    def test_charge_flops_uses_host_rate(self, world, rts_factory):
        def main(rts):
            t0 = rts.now()
            rts.charge_flops(1e7)  # host rate is 1e7 flops/s
            return rts.now() - t0

        assert run_spmd(world, 1, main, rts_factory) == [pytest.approx(1.0)]


class TestBarrier:
    def test_barrier_synchronizes(self, world, rts_factory):
        def main(rts):
            rts.compute(rts.rank * 1.0)
            rts.barrier()
            return rts.now()

        res = run_spmd(world, 4, main, rts_factory)
        slowest = 3.0
        for t in res:
            assert t >= slowest
            assert t < slowest + 0.01  # barrier cost is small but nonzero

    def test_barrier_single_thread(self, world, rts_factory):
        run_spmd(world, 1, lambda rts: rts.barrier(), rts_factory)


class TestOneSided:
    def test_get_registered_object(self, world):
        def main(rts):
            rts.register("vec", [10 * rts.rank, 10 * rts.rank + 1])
            rts.barrier()
            if rts.rank == 0:
                return rts.get(1, "vec")
            return None

        res = run_spmd(world, 2, main, TulipRuntime)
        assert res[0] == [10, 11]

    def test_get_with_selector(self, world):
        def main(rts):
            rts.register("vec", list(range(100)))
            rts.barrier()
            if rts.rank == 1:
                return rts.get(0, "vec", selector=lambda v: v[42])
            return None

        res = run_spmd(world, 2, main, TulipRuntime)
        assert res[1] == 42

    def test_put_with_updater(self, world):
        def main(rts):
            data = [0, 0, 0]
            rts.register("buf", data)
            rts.barrier()
            if rts.rank == 1:
                rts.put(0, "buf", (1, 99),
                        updater=lambda obj, v: obj.__setitem__(v[0], v[1]))
            rts.barrier()
            return data if rts.rank == 0 else None

        res = run_spmd(world, 2, main, TulipRuntime)
        assert res[0] == [0, 99, 0]

    def test_get_unregistered_raises(self, world):
        def main(rts):
            with pytest.raises(OneSidedError):
                rts.get(0, "missing")

        run_spmd(world, 1, main, TulipRuntime)

    def test_onesided_charges_time(self, world):
        def main(rts):
            rts.register("big", b"x" * 1_000_000)
            rts.barrier()
            if rts.rank == 0:
                t0 = rts.now()
                rts.get(1, "big")
                return rts.now() - t0
            return None

        res = run_spmd(world, 2, main, TulipRuntime)
        assert res[0] > 1e-4  # ~5.5ms at 180 MB/s


class TestPoomaVocabulary:
    def test_context_aliases(self, world):
        from repro.runtime import PoomaRuntime

        def main(rts):
            return (rts.context, rts.ncontexts)

        res = run_spmd(world, 3, main, PoomaRuntime)
        assert res == [(0, 3), (1, 3), (2, 3)]

    def test_csend_creceive(self, world):
        from repro.runtime import PoomaRuntime

        def main(rts):
            if rts.context == 0:
                rts.csend(1, "field-data", tag=4)
                return None
            return rts.creceive(context=0, tag=4).payload

        res = run_spmd(world, 2, main, PoomaRuntime)
        assert res[1] == "field-data"


class TestPrograms:
    def test_two_programs_coexist(self, world, rts_factory):
        def main(rts):
            rts.send((rts.rank + 1) % rts.nprocs, rts.program.name, tag=0)
            return rts.recv(tag=0).payload

        p1 = world.launch(main, host="hostA", nprocs=2, rts_factory=rts_factory)
        p2 = world.launch(main, host="hostB", nprocs=3, rts_factory=rts_factory)
        world.run()
        assert p1.results == ["prog0", "prog0"]
        assert p2.results == ["prog1", "prog1", "prog1"]

    def test_program_too_big_for_host(self, world):
        with pytest.raises(ValueError, match="nodes"):
            world.launch(lambda rts: None, host="hostA", nprocs=99)

    def test_node_offset_allows_colocation(self, world):
        p1 = world.launch(lambda rts: rts.program.address(rts.rank).node,
                          host="hostA", nprocs=2, node_offset=0)
        p2 = world.launch(lambda rts: rts.program.address(rts.rank).node,
                          host="hostA", nprocs=2, node_offset=2)
        world.run()
        assert p1.results == [0, 1]
        assert p2.results == [2, 3]

    def test_zero_threads_rejected(self, world):
        with pytest.raises(ValueError):
            world.launch(lambda rts: None, host="hostA", nprocs=0)
