"""Operator tooling: packet tracing, lifecycle observation, summaries."""

from .metrics import ComputeMeter, attach_meter
from .observe import (
    RequestObserver,
    Span,
    TraceSession,
    attach_observer,
    detach_observer,
    validate_chrome_trace,
)
from .trace import PacketTrace, TraceRecord, attach_tracer

__all__ = ["ComputeMeter", "PacketTrace", "RequestObserver", "Span",
           "TraceRecord", "TraceSession", "attach_meter", "attach_observer",
           "attach_tracer", "detach_observer", "validate_chrome_trace"]
