"""Packet tracing for simulated PARDIS deployments.

Attach a :class:`PacketTrace` to a world's transport to record every
message (send time, arrival, endpoints, tag class, bytes), then query per
link/tag summaries or render a text timeline — the observability layer a
1997 paper collected with printf.

Record storage is a bounded :class:`RingBuffer` (default 64k records):
long simulations keep the most recent window instead of growing without
bound, and the ``dropped`` counter says how much history was lost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..netsim import Packet, Transport
from ..runtime.tags import (
    PARDIS_TAG_BASE,
    TAG_ARG_FRAGMENT,
    TAG_COLLECTIVE_BASE,
    TAG_REPLY_HEADER,
    TAG_REQUEST_HEADER,
    TAG_RESULT_FRAGMENT,
)

_TAG_CLASSES = {
    TAG_REQUEST_HEADER: "request",
    TAG_REPLY_HEADER: "reply",
    TAG_ARG_FRAGMENT: "arg-fragment",
    TAG_RESULT_FRAGMENT: "result-fragment",
}


def tag_class(tag: int) -> str:
    """Human-readable class of a message tag."""
    named = _TAG_CLASSES.get(tag)
    if named:
        return named
    if tag >= TAG_COLLECTIVE_BASE:
        return "collective"
    if tag >= PARDIS_TAG_BASE:
        return "pardis-internal"
    return "user"


#: default capacity of the bounded record stores (packets and spans)
DEFAULT_CAPACITY = 65536


class RingBuffer:
    """Append-only bounded store that sheds its *oldest* records.

    A drop-in replacement for the unbounded lists the observability
    layer used to keep: supports ``append``, ``len``, iteration, and
    indexing, and counts evictions in ``dropped``.  ``capacity=None``
    means unbounded.
    """

    __slots__ = ("_records", "capacity", "dropped")

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._records: deque = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, record) -> None:
        if self.capacity is not None and len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)

    def extend(self, records) -> None:
        for record in records:
            self.append(record)

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._records)[index]
        return self._records[index]

    def __repr__(self) -> str:
        return (f"<RingBuffer {len(self._records)}/{self.capacity} "
                f"dropped={self.dropped}>")


@dataclass(frozen=True)
class TraceRecord:
    send_time: float
    arrival: float
    src: str
    dst: str
    tag: int
    kind: str
    nbytes: int

    @property
    def latency(self) -> float:
        return self.arrival - self.send_time


@dataclass
class PacketTrace:
    """Recorder of every packet a transport moves (bounded: once
    ``capacity`` records accumulate, the oldest are shed and counted in
    ``records.dropped``)."""

    records: RingBuffer = field(
        default_factory=lambda: RingBuffer(DEFAULT_CAPACITY))

    @property
    def dropped(self) -> int:
        return self.records.dropped

    def __call__(self, pkt: Packet) -> None:
        self.records.append(TraceRecord(
            send_time=pkt.send_time, arrival=pkt.arrival,
            src=str(pkt.src), dst=str(pkt.dst),
            tag=pkt.tag, kind=tag_class(pkt.tag), nbytes=pkt.nbytes,
        ))

    def __len__(self) -> int:
        return len(self.records)

    # -- queries --------------------------------------------------------------

    def by_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def bytes_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + r.nbytes
        return out

    def bytes_between_hosts(self) -> dict[tuple[str, str], int]:
        out: dict[tuple[str, str], int] = {}
        for r in self.records:
            key = (r.src.split(":")[0], r.dst.split(":")[0])
            out[key] = out.get(key, 0) + r.nbytes
        return out

    def summary(self) -> str:
        head = (f"{len(self.records)} packets, "
                f"{sum(r.nbytes for r in self.records)} bytes")
        if self.dropped:
            head += f" ({self.dropped} oldest records dropped)"
        lines = [head]
        for kind, nbytes in sorted(self.bytes_by_kind().items()):
            count = len(self.by_kind(kind))
            lines.append(f"  {kind:>16}: {count:6d} packets {nbytes:10d} bytes")
        return "\n".join(lines)

    def timeline(self, limit: int = 40, kinds: Optional[set] = None) -> str:
        """Text timeline of the first ``limit`` matching packets."""
        lines = []
        for r in self.records:
            if kinds is not None and r.kind not in kinds:
                continue
            lines.append(
                f"{r.send_time * 1e3:10.3f}ms -> {r.arrival * 1e3:10.3f}ms "
                f"{r.kind:>16} {r.src} -> {r.dst} ({r.nbytes} B)"
            )
            if len(lines) >= limit:
                lines.append("...")
                break
        return "\n".join(lines)


def attach_tracer(transport: Transport) -> PacketTrace:
    """Install a :class:`PacketTrace` on a transport; returns it."""
    trace = PacketTrace()
    transport.on_send = trace
    return trace
