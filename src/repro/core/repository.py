"""Object and Implementation Repositories (paper §2.2).

"Databases which define a naming domain for interacting objects.  On
activation, every object registers with an object repository, which is
searched when the client requests a connection to a specific object.  Each
repository is associated with a unique namespace; configuring clients and
servers to work with different repositories allows the programmer to split
the namespace for interacting objects."

The Implementation Repository stores, for non-persistent servers, how an
object's server is to be activated (the paper's ``register`` facility);
activation agents consume those records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..netsim import Address
from .errors import ObjectNotFound


@dataclass
class ObjectRef:
    """An interoperable object reference (the PARDIS IOR)."""

    name: str
    repo_id: str                    # interface repository id
    kind: str                       # "spmd" | "single"
    program_id: int
    host: str
    nthreads: int                   # server computing threads
    owner_rank: int                 # servicing thread for single objects
    endpoints: tuple[Address, ...]  # ORB endpoint of every server thread
    #: server-side overrides: (op, param) -> distribution kind for "in"
    #: arguments, set before registration (paper §3.2)
    in_dists: dict = field(default_factory=dict)

    @property
    def root_endpoint(self) -> Address:
        return self.endpoints[self.owner_rank if self.kind == "single" else 0]


class ObjectRepository:
    """Name -> :class:`ObjectRef` within one namespace."""

    def __init__(self, namespace: str = "default") -> None:
        self.namespace = namespace
        self._objects: dict[str, ObjectRef] = {}

    def register(self, ref: ObjectRef) -> None:
        if ref.name in self._objects:
            raise ValueError(
                f"object {ref.name!r} already registered in namespace "
                f"{self.namespace!r}"
            )
        self._objects[ref.name] = ref

    def unregister(self, name: str) -> None:
        self._objects.pop(name, None)

    def lookup(self, name: str) -> ObjectRef:
        try:
            return self._objects[name]
        except KeyError:
            raise ObjectNotFound(
                f"no object {name!r} in namespace {self.namespace!r}"
            ) from None

    def contains(self, name: str) -> bool:
        return name in self._objects

    def names(self) -> list[str]:
        return sorted(self._objects)


@dataclass
class ActivationRecord:
    """How to start the server that implements an object (paper: the
    ``register`` facility of the Implementation Repository)."""

    object_name: str
    server_main: Callable           # main(ctx) run on every computing thread
    host: str
    nprocs: int
    rts_factory: Optional[Callable] = None
    node_offset: int = 0
    program_name: Optional[str] = None
    args: tuple = ()


class ImplementationRepository:
    """Object name -> :class:`ActivationRecord`."""

    def __init__(self) -> None:
        self._records: dict[str, ActivationRecord] = {}

    def register(self, record: ActivationRecord) -> None:
        self._records[record.object_name] = record

    def lookup(self, name: str) -> Optional[ActivationRecord]:
        return self._records.get(name)

    def names(self) -> list[str]:
        return sorted(self._records)
