"""Activation-agent edge cases, repository error paths, and per-binding
flow-control overrides."""

import pytest

from repro.core import (
    ActivationError,
    ObjectNotFound,
    OrbConfig,
    Simulation,
)
from repro.core.repository import ObjectRef, ObjectRepository
from repro.idl import compile_idl

IDL = """
    interface edge {
        long echo(in long x);
    };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="activation_edge_stubs")


class TestActivationEdges:
    def test_activation_timeout_is_a_clear_error(self, mod):
        """A server that launches but never registers its object fails
        the bind with an ActivationError naming the timeout — not a
        silent hang."""

        def lazy_server(ctx):
            ctx.compute(1.0)                  # never activates anything

        sim = Simulation(config=OrbConfig(activation_timeout=0.02))
        sim.register_implementation("edge", lazy_server,
                                    host="HOST_2", nprocs=1)
        out = {}

        def client(ctx):
            with pytest.raises(ActivationError,
                               match="timed out after 0.02"):
                mod.edge._bind("edge")
            out["ok"] = True

        sim.client(client, host="HOST_1")
        sim.run()
        assert out["ok"]

    def test_non_activating_agent_names_host_and_mode(self, mod):
        sim = Simulation()
        sim.register_implementation("edge", lambda ctx: None,
                                    host="HOST_2", nprocs=1)
        sim.orb.set_activating("HOST_2", False)
        out = {}

        def client(ctx):
            with pytest.raises(ActivationError,
                               match="non-activating mode"):
                mod.edge._bind("edge")
            out["ok"] = True

        sim.client(client, host="HOST_1")
        sim.run()
        assert out["ok"]

    def test_agent_reactivates_exited_server(self, mod):
        """The agent relaunches a non-persistent server whose threads
        have all exited, but never doubles a live one."""
        launches = []

        def brief_server(ctx):
            launches.append(ctx.now())

            class Impl(mod.edge_skel):
                def __init__(self):
                    self.served = 0

                def echo(self, x):
                    self.served += 1
                    return x

            servant = Impl()
            ctx.poa.activate(servant, "edge", kind="spmd")
            while servant.served < 1:
                ctx.poa.process_requests()
                ctx.compute(1e-3)
            ctx.poa.deactivate("edge")

        sim = Simulation()
        sim.register_implementation("edge", brief_server,
                                    host="HOST_2", nprocs=1)

        def client(ctx):
            assert mod.edge._bind("edge").echo(1) == 1
            ctx.compute(0.1)                  # first generation retires
            record = ctx.orb.impl_repository.lookup("edge")
            agent = ctx.orb.agent("HOST_2")
            agent.activate(record, "default")     # relaunch
            agent.activate(record, "default")     # no-op: still alive
            assert mod.edge._bind("edge").echo(2) == 2

        sim.client(client, host="HOST_1")
        sim.run()
        assert len(launches) == 2


class TestRepositoryErrorPaths:
    def _ref(self, name="a", program_id=1):
        return ObjectRef(name=name, repo_id="IDL:x:1.0", kind="single",
                         program_id=program_id, host="h", nthreads=1,
                         owner_rank=0, endpoints=())

    def test_lookup_unknown_names_object_and_namespace(self):
        repo = ObjectRepository("blue")
        with pytest.raises(ObjectNotFound, match="'ghost'.*'blue'"):
            repo.lookup("ghost")

    def test_unregister_unknown_is_idempotent(self):
        repo = ObjectRepository()
        repo.unregister("never-there")
        repo.unregister("never-there", program_id=3)

    def test_duplicate_register_names_namespace_and_program(self):
        repo = ObjectRepository("red")
        repo.register(self._ref(program_id=7))
        with pytest.raises(ValueError, match="'red'.*program 7"):
            repo.register(self._ref(program_id=7))

    def test_same_name_across_namespaces_never_conflicts(self):
        red, blue = ObjectRepository("red"), ObjectRepository("blue")
        red.register(self._ref(program_id=1))
        blue.register(self._ref(program_id=1))
        assert red.lookup("a").program_id == 1
        assert blue.lookup("a").program_id == 1
        red.unregister("a")
        assert blue.contains("a")             # namespaces stay isolated


class TestPerBindFlowControl:
    def test_max_outstanding_override_allows_overlap(self, mod):
        """A per-bind ``max_outstanding`` widens the pipeline window for
        that binding only: with a window of 2, two non-blocking requests
        leave back-to-back and only the third waits for a reply."""
        service = 0.2
        sim = Simulation(config=OrbConfig(max_outstanding=1))

        def server_main(ctx):
            class Impl(mod.edge_skel):
                def echo(self, x):
                    ctx.compute(service)
                    return x

            ctx.poa.activate(Impl(), "slow", kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_2", nprocs=1)
        out = {}

        def client(ctx):
            narrow = mod.edge._bind("slow")
            t0 = ctx.now()
            f1 = narrow.echo_nb(1)
            f2 = narrow.echo_nb(2)            # waits for f1's reply
            out["narrow_second_send"] = ctx.now() - t0
            f1.value(), f2.value()

            wide = mod.edge._bind("slow", max_outstanding=2)
            t0 = ctx.now()
            g1 = wide.echo_nb(1)
            g2 = wide.echo_nb(2)              # fits in the window
            out["wide_second_send"] = ctx.now() - t0
            g3 = wide.echo_nb(3)              # window full: waits
            out["wide_third_send"] = ctx.now() - t0
            out["values"] = (g1.value(), g2.value(), g3.value())

        sim.client(client, host="HOST_1")
        sim.run()
        assert out["values"] == (1, 2, 3)
        assert out["narrow_second_send"] >= service
        assert out["wide_second_send"] < service / 2
        assert out["wide_third_send"] >= service
