"""Figure 5: overall performance of the pipelined metaapplication vs the
performance of its components.

"The POOMA diffusion component was executing on a 10-node SGI PC and so
was the sequential process visualizing its output.  The gradient component
was executing on up to 8 nodes of an IBM SP/2; its visualizing process was
running on an SGI Indy workstation.  The machines were communicating via
an Ethernet connection. ... The input was a 128x128 grid; the application
was executed over 100 time-steps with the gradient computation requested
every 5-th time-step."

Three series vs matched processor count (1..8): overall metaapplication
time (client perspective), the diffusion component alone, and the gradient
component alone.  The reproduction exhibits the paper's two non-scaling
mechanisms: non-blocking-but-not-oneway sends charge the client the full
injection time, and with one outstanding request per binding the pipeline
congests when the gradient's service time exceeds the request interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import OrbConfig, Simulation
from ..netsim import ETHERNET_10, Host, Network, SGI_SHMEM, SP2_SWITCH
from ..apps.diffusion import diffusion_client_main
from ..apps.gradient import gradient_server_main, parallel_magnitude_gradient
from ..apps.interfaces import PIPELINE_N, pipeline_stubs
from ..apps.visualizer import visualizer_server_main

PAPER_PROCS = tuple(range(1, 9))
PAPER_STEPS = 100
PAPER_GRADIENT_EVERY = 5

#: calibrated 1997-scale effective per-node rates (see EXPERIMENTS.md):
#: the POOMA stencil retires ~0.69 Mflop/s/node, the SP/2 gradient code
#: ~0.17 Mflop/s/node — only their ratios to the fixed Ethernet transfer
#: time matter for the figure's shape.
SGI_PC_FLOPS = 6.9e5
SP2_FLOPS = 1.7e5
INDY_FLOPS = 1.0e6


def _network(jitter: float = 0.0, seed: int = 0) -> Network:
    net = Network(jitter=jitter, seed=seed)
    net.add_host(Host("SGI_PC", nodes=10, node_flops=SGI_PC_FLOPS,
                      intra=SGI_SHMEM))
    net.add_host(Host("SP2", nodes=8, node_flops=SP2_FLOPS,
                      intra=SP2_SWITCH))
    net.add_host(Host("INDY", nodes=1, node_flops=INDY_FLOPS))
    net.connect("SGI_PC", "SP2", ETHERNET_10)
    net.connect("SP2", "INDY", ETHERNET_10)
    net.connect("SGI_PC", "INDY", ETHERNET_10)
    return net


@dataclass
class Fig5Row:
    procs: int
    t_overall: float     # the full metaapplication, client perspective
    t_diffusion: float   # diffusion component alone (with its visualizer)
    t_gradient: float    # gradient component alone


def _sim(config: OrbConfig | None = None, jitter: float = 0.0,
         seed: int = 0) -> Simulation:
    return Simulation(network=_network(jitter, seed),
                      config=config or OrbConfig(max_outstanding=1))


def run_overall(procs: int, steps: int = PAPER_STEPS,
                gradient_every: int = PAPER_GRADIENT_EVERY,
                n: int = PIPELINE_N,
                config: OrbConfig | None = None,
                jitter: float = 0.0, seed: int = 0, session=None) -> float:
    """Full pipeline: diffusion (SGI PC) -> gradient (SP2) -> visualizers."""
    sim = _sim(config, jitter, seed)
    if session is not None:
        session.attach(sim, label=f"fig5 p={procs} overall seed={seed}")
    sim.server(visualizer_server_main, host="SGI_PC", nprocs=1,
               node_offset=9, args=("diff_visualizer",), name="viz-diff")
    sim.server(visualizer_server_main, host="INDY", nprocs=1,
               args=("grad_visualizer",), name="viz-grad")
    sim.server(gradient_server_main, host="SP2", nprocs=procs,
               args=(n, "grad_visualizer"), name="gradient")
    reports: dict = {}
    sim.client(diffusion_client_main, host="SGI_PC", nprocs=procs,
               args=(steps, gradient_every, n, 0.1, "field_operations",
                     "diff_visualizer", reports), name="diffusion")
    sim.run()
    return max(r.elapsed for r in reports.values())


def run_diffusion_alone(procs: int, steps: int = PAPER_STEPS,
                        n: int = PIPELINE_N,
                        jitter: float = 0.0, seed: int = 0,
                        session=None) -> float:
    """The diffusion component with its visualizer but no gradient."""
    sim = _sim(jitter=jitter, seed=seed)
    if session is not None:
        session.attach(sim, label=f"fig5 p={procs} diffusion seed={seed}")
    sim.server(visualizer_server_main, host="SGI_PC", nprocs=1,
               node_offset=9, args=("diff_visualizer",), name="viz-diff")
    reports: dict = {}
    sim.client(diffusion_client_main, host="SGI_PC", nprocs=procs,
               args=(steps, 5, n, 0.1, None, "diff_visualizer", reports),
               name="diffusion")
    sim.run()
    return max(r.elapsed for r in reports.values())


def run_gradient_alone(procs: int, requests: int | None = None,
                       steps: int = PAPER_STEPS,
                       gradient_every: int = PAPER_GRADIENT_EVERY,
                       n: int = PIPELINE_N,
                       jitter: float = 0.0, seed: int = 0,
                       session=None) -> float:
    """The gradient component alone: the same number of gradient requests
    the pipeline issues (field transfer + compute + its visualizer),
    driven back to back from the SGI PC."""
    if requests is None:
        requests = steps // gradient_every
    sim = _sim(jitter=jitter, seed=seed)
    if session is not None:
        session.attach(sim, label=f"fig5 p={procs} gradient seed={seed}")
    sim.server(visualizer_server_main, host="INDY", nprocs=1,
               args=("grad_visualizer",), name="viz-grad")
    sim.server(gradient_server_main, host="SP2", nprocs=procs,
               args=(n, "grad_visualizer"), name="gradient")
    out: dict = {}

    def driver(ctx):
        mod = pipeline_stubs(None)
        grad = mod.field_operations._spmd_bind("field_operations")
        data = np.linspace(0.0, 1.0, n * n)
        t0 = ctx.now()
        for _ in range(requests):
            grad.gradient(data)  # blocking: pure component throughput
        out["total"] = ctx.now() - t0

    sim.client(driver, host="SGI_PC", nprocs=1, name="grad-driver")
    sim.run()
    return out["total"]


def run_fig5(procs=PAPER_PROCS, steps: int = PAPER_STEPS,
             gradient_every: int = PAPER_GRADIENT_EVERY,
             n: int = PIPELINE_N, repeats: int = 1,
             jitter: float = 0.0, session=None) -> list[Fig5Row]:
    """Regenerate the Figure 5 series ("in each case shown the number of
    processors of the diffusion application was matching the number of
    processors of the gradient computation").

    With ``repeats > 1`` and a nonzero ``jitter``, each point is the mean
    of several differently-seeded measurements — the paper's "values shown
    are the average over a series of measurements taken at different
    times".
    """

    def mean(fn):
        return sum(fn(seed) for seed in range(repeats)) / repeats

    rows = []
    for p in procs:
        rows.append(Fig5Row(
            procs=p,
            t_overall=mean(lambda s: run_overall(
                p, steps, gradient_every, n, jitter=jitter, seed=s,
                session=session)),
            t_diffusion=mean(lambda s: run_diffusion_alone(
                p, steps, n, jitter=jitter, seed=s, session=session)),
            t_gradient=mean(lambda s: run_gradient_alone(
                p, steps=steps, gradient_every=gradient_every, n=n,
                jitter=jitter, seed=s, session=session)),
        ))
    return rows
