"""The paper's IDL, verbatim in spirit, compiled once per package option.

Three IDL texts correspond to the three evaluation sections:

* §4.1 — two linear-solver interfaces with a matrix of dynamically-sized
  rows (``dsequence<sequence<double>>``);
* §4.2 — the DNA database and its single list servers;
* §4.3 — field operations and the visualizer, with pragma mappings for
  POOMA and HPC++ PSTL.
"""

from __future__ import annotations

from functools import lru_cache

from ..idl import compile_idl

SOLVER_IDL = """
    typedef sequence<double> row;
    typedef dsequence<row> matrix;
    typedef dsequence<double> vector;
    interface direct {
        void solve(in matrix A, in vector B, out vector X);
    };
    interface iterative {
        void solve(in double tol, in matrix A, in vector B, out vector X);
    };
"""

DNA_IDL = """
    enum status { SEARCH_DONE, SEARCH_PARTIAL };
    typedef sequence<string> dna_list;
    interface list_server {
        void match(in string s, out dna_list l);
    };
    interface dna_db {
        status search(in string s);
    };
"""

PIPELINE_IDL = """
    const long N = 128;
    #pragma HPC++:vector
    #pragma POOMA:field
    typedef dsequence<double, N*N, BLOCK, BLOCK> field;
    interface visualizer {
        void show(in field myfield);
    };
    interface field_operations {
        void gradient(in field myfield);
    };
"""

#: grid side of the §4.3 experiment
PIPELINE_N = 128


@lru_cache(maxsize=None)
def solver_stubs():
    return compile_idl(SOLVER_IDL, module_name="pardis_app_solvers")


@lru_cache(maxsize=None)
def dna_stubs():
    return compile_idl(DNA_IDL, module_name="pardis_app_dna")


@lru_cache(maxsize=None)
def pipeline_stubs(package: str | None = None):
    suffix = {"POOMA": "pooma", "HPC++": "hpcxx", None: "plain"}[package]
    return compile_idl(PIPELINE_IDL, package=package,
                       module_name=f"pardis_app_pipeline_{suffix}")
