"""PARDIS ORB services layer: replication, admission control, throttling.

Classic ORB practice (TAO's load balancer, RT-CORBA's queueing policies)
puts replica selection and overload policy *above* the request engine —
on the naming/binding seam and the portable-interceptor seam — rather
than inside it.  This package does the same for the reproduction:

* :mod:`repro.services.replicas` — replica groups over the Object
  Repository: pluggable selection policies (round-robin, least-loaded,
  locality-aware), liveness probing with an ALIVE/SUSPECT/DEAD health
  model, transparent failover retry for blocking invocations, and
  re-activation of dead non-persistent replicas through the
  ActivationAgent;
* :mod:`repro.services.admission` — server-side admission control: a
  bounded per-POA request queue with FIFO / priority / earliest-deadline
  first scheduling, overload shedding (clients see
  :class:`~repro.core.errors.TransientException`), and load/backpressure
  reports piggybacked on reply service contexts;
* :mod:`repro.services.throttle` — the client half of the backpressure
  contract: a portable interceptor that honors server hints and overload
  replies with jittered exponential backoff.

The wire contract (service-context keys) lives in
:mod:`repro.core.request`; everything here is optional — a world that
never touches this package pays nothing on the request path.
"""

from .admission import AdmissionController, PriorityInterceptor
from .replicas import (
    ALIVE,
    DEAD,
    SUSPECT,
    LeastLoaded,
    LoadReportInterceptor,
    LocalityAware,
    ReplicaGroup,
    RoundRobin,
    SelectionPolicy,
    failover_invoke,
    make_policy,
)
from .throttle import ThrottleInterceptor

__all__ = [
    "ALIVE",
    "DEAD",
    "SUSPECT",
    "AdmissionController",
    "LeastLoaded",
    "LoadReportInterceptor",
    "LocalityAware",
    "PriorityInterceptor",
    "ReplicaGroup",
    "RoundRobin",
    "SelectionPolicy",
    "ThrottleInterceptor",
    "failover_invoke",
    "make_policy",
]
