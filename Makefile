# Convenience targets.  `install` uses the legacy editable path because
# this environment is offline and has no `wheel` package (PEP-517
# editable builds need it); with wheel available, `pip install -e .`
# works too.

.PHONY: install test bench figures all

install:
	python setup.py develop

test:
	python -m pytest tests/

bench:
	python -m pytest benchmarks/ --benchmark-only

figures:
	python -m repro.experiments all --plot

all: install test bench
