"""Shape assertions for the Figure 5 reproduction (reduced scale)."""

import pytest

from repro.core import OrbConfig
from repro.experiments.fig5_pipeline import (
    Fig5Row,
    run_fig5,
    run_gradient_alone,
    run_overall,
)

SMALL = dict(steps=20, gradient_every=5, n=32)


@pytest.fixture(scope="module")
def rows():
    return run_fig5(procs=(1, 2, 4), **SMALL)


def test_all_series_fall_with_processors(rows):
    for a, b in zip(rows, rows[1:]):
        assert b.t_overall < a.t_overall
        assert b.t_diffusion < a.t_diffusion
        assert b.t_gradient < a.t_gradient


def test_overall_above_diffusion_component(rows):
    """Distributing the application brings advantages, but the overall
    time stays above the diffusion component (pipeline cost)."""
    for r in rows:
        assert r.t_overall > r.t_diffusion


def test_scaling_flattens(rows):
    """The paper's observation: the advantages do not scale well — the
    overall speedup from 1 to 4 processors is clearly sub-linear."""
    speedup = rows[0].t_overall / rows[-1].t_overall
    procs_ratio = rows[-1].procs / rows[0].procs
    assert speedup < procs_ratio * 0.85


def test_diffusion_alone_scales_better_than_overall(rows):
    s_diff = rows[0].t_diffusion / rows[-1].t_diffusion
    s_all = rows[0].t_overall / rows[-1].t_overall
    assert s_diff > s_all


def test_gradient_component_has_transfer_floor():
    """The gradient component includes the Ethernet field transfer, which
    does not shrink with processors."""
    t4 = run_gradient_alone(4, requests=4, n=32)
    t8 = run_gradient_alone(8, requests=4, n=32)
    assert t8 > t4 * 0.5  # far from linear scaling


def test_congestion_relief_with_larger_window():
    """With one outstanding request per binding the pipeline congests;
    widening the window (or offloading sends) reduces the overall time —
    the §6 discussion."""
    tight = run_overall(2, config=OrbConfig(max_outstanding=1), **SMALL)
    wide = run_overall(2, config=OrbConfig(
        max_outstanding=4, communication_threads=True), **SMALL)
    assert wide < tight


def test_rows_structured(rows):
    assert all(isinstance(r, Fig5Row) for r in rows)
