"""Shape assertions for the Figure 2 reproduction (reduced scale)."""

import pytest

from repro.experiments import format_table
from repro.experiments.fig2_solvers import Fig2Row, run_fig2


@pytest.fixture(scope="module")
def rows():
    return run_fig2(sizes=(100, 200, 300))


def test_solutions_agree(rows):
    """The two methods solve the same system: the client's difference
    metric is at the tolerance scale."""
    for r in rows:
        assert r.difference < 1e-4


def test_distributed_beats_same_server(rows):
    """The headline: substantial speedup from putting the slower
    application on the faster remote resource."""
    for r in rows:
        assert r.t_distributed < r.t_same_server


def test_distributed_is_max_plus_overhead(rows):
    """t = to + max{ti, td} with small to (the paper's decomposition)."""
    for r in rows:
        lower = max(r.t_direct, r.t_iterative)
        assert r.t_distributed >= lower
        assert r.t_distributed < lower * 1.25 + 0.5


def test_gap_grows_with_problem_size(rows):
    gaps = [r.t_same_server - r.t_distributed for r in rows]
    assert gaps[-1] > gaps[0]


def test_times_increase_with_problem_size(rows):
    for a, b in zip(rows, rows[1:]):
        assert b.t_direct > a.t_direct
        assert b.t_iterative > a.t_iterative
        assert b.t_distributed > a.t_distributed


def test_iterative_slower_than_direct_on_its_host(rows):
    """The premise of the experiment: the iterative method is the slower
    application (hence it goes to the faster host)."""
    for r in rows:
        assert r.t_iterative > r.t_direct * 0.8


def test_format_table(rows):
    text = format_table(rows, "fig2")
    assert "t_distributed" in text
    assert str(rows[0].n) in text


def test_rows_are_structured(rows):
    assert all(isinstance(r, Fig2Row) for r in rows)
    assert [r.n for r in rows] == [100, 200, 300]
