"""Link performance profiles.

A :class:`LinkProfile` captures the three parameters the evaluation
actually depends on: per-message latency, sustained bandwidth, and the
fixed per-message CPU overhead paid by the sender (protocol processing,
buffer handoff).  Presets correspond to the interconnects used in the
paper's testbed (155 Mb/s dedicated ATM, shared 10 Mb/s Ethernet) plus the
intra-host fabrics of the simulated machines.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkProfile:
    """Performance envelope of a communication link.

    Parameters
    ----------
    name:
        Human-readable label used in traces and reprs.
    latency:
        One-way message latency in seconds (time of flight + switching).
    bandwidth:
        Sustained payload bandwidth in **bytes per second**.
    cpu_overhead:
        Fixed per-message CPU time charged to the sending thread
        (protocol stack traversal, descriptor setup).
    shared:
        Whether concurrent transfers serialize on the link (true for the
        paper's Ethernet segment; false for node-private fabrics).
    """

    name: str
    latency: float
    bandwidth: float
    cpu_overhead: float = 0.0
    shared: bool = True

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0 or self.cpu_overhead < 0:
            raise ValueError(f"invalid link profile parameters: {self!r}")

    def serialization_time(self, nbytes: int) -> float:
        """Time to push ``nbytes`` through the link at full bandwidth."""
        return nbytes / self.bandwidth

    def transfer_time(self, nbytes: int) -> float:
        """Uncontended end-to-end time for one ``nbytes`` message."""
        return self.cpu_overhead + self.serialization_time(nbytes) + self.latency


def _mbit(x: float) -> float:
    """Megabits/s -> bytes/s."""
    return x * 1e6 / 8.0


#: Dedicated 155 Mb/s ATM (the HOST1--HOST2 link of the paper's testbed).
#: ~60% payload efficiency accounts for AAL5/IP framing.
ATM_155 = LinkProfile("ATM-155", latency=500e-6, bandwidth=_mbit(155) * 0.60,
                      cpu_overhead=120e-6)

#: Shared 10 Mb/s Ethernet (the SGI--SP/2 path in sections 4.2/4.3).
ETHERNET_10 = LinkProfile("Ethernet-10", latency=1.2e-3, bandwidth=_mbit(10) * 0.75,
                          cpu_overhead=250e-6)

#: 100 Mb/s switched Ethernet, used by ablation benchmarks.
ETHERNET_100 = LinkProfile("Ethernet-100", latency=300e-6, bandwidth=_mbit(100) * 0.85,
                           cpu_overhead=150e-6)

#: Shared-memory fabric inside an SGI multiprocessor.
SGI_SHMEM = LinkProfile("SGI-shmem", latency=8e-6, bandwidth=180e6,
                        cpu_overhead=4e-6, shared=False)

#: IBM SP/2 high-performance switch.
SP2_SWITCH = LinkProfile("SP2-switch", latency=40e-6, bandwidth=35e6,
                         cpu_overhead=25e-6, shared=False)

#: Loopback for messages a thread sends to itself (local bypass uses no
#: network at all; this exists for completeness of the model).
LOOPBACK = LinkProfile("loopback", latency=1e-7, bandwidth=2e9,
                       cpu_overhead=0.0, shared=False)

PRESETS = {
    p.name: p
    for p in (ATM_155, ETHERNET_10, ETHERNET_100, SGI_SHMEM, SP2_SWITCH, LOOPBACK)
}
