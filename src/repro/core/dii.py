"""Dynamic invocation: calling objects without compiled stubs.

CORBA pairs the static (stub-based) invocation interface with a Dynamic
Invocation Interface driven by the Interface Repository.  PARDIS inherits
the idea: interface definitions registered at servant activation let a
client build requests at run time —

>>> proxy = dynamic_bind("calculator")        # no generated module needed
>>> proxy.invoke("add", 2.0, 3.0)
5.0

Useful for bridges, scripting and debugging tools; the examples and tests
use it to talk to servers whose stub modules they never imported.
"""

from __future__ import annotations

from typing import Optional

from .errors import BadOperation, BindingError
from .futures import Future
from .interfacedef import InterfaceDef
from .invocation import Binding, invoke


class InterfaceRepository:
    """repo_id -> :class:`InterfaceDef`, filled at servant activation."""

    def __init__(self) -> None:
        self._interfaces: dict[str, InterfaceDef] = {}

    def register(self, iface: InterfaceDef) -> None:
        self._interfaces[iface.repo_id] = iface

    def lookup(self, repo_id: str) -> InterfaceDef:
        try:
            return self._interfaces[repo_id]
        except KeyError:
            raise BadOperation(
                f"interface {repo_id!r} is not in the interface repository"
            ) from None

    def contains(self, repo_id: str) -> bool:
        return repo_id in self._interfaces

    def repo_ids(self) -> list[str]:
        return sorted(self._interfaces)


class DynamicProxy:
    """A stubless proxy: operations invoked by name, marshaling driven by
    the interface definition from the Interface Repository."""

    def __init__(self, binding: Binding, iface: InterfaceDef) -> None:
        self._binding = binding
        self._interface = iface

    def _op(self, name: str):
        op = self._interface.ops.get(name)
        if op is None:
            raise BadOperation(
                f"{self._interface.name} has no operation {name!r} "
                f"(available: {sorted(self._interface.ops)})"
            )
        return op

    def invoke(self, op_name: str, *in_args, _distributions=None):
        """Blocking dynamic invocation."""
        return invoke(self._binding, self._op(op_name), in_args,
                      _distributions, blocking=True)

    def invoke_nb(self, op_name: str, *in_args, futures: tuple = (),
                  _distributions=None) -> Future:
        """Non-blocking dynamic invocation; returns a future."""
        return invoke(self._binding, self._op(op_name), in_args,
                      _distributions, placeholders=tuple(futures),
                      blocking=False)

    def operations(self) -> list[str]:
        return sorted(self._interface.ops)

    def __repr__(self) -> str:
        return (f"<DynamicProxy {self._binding.ref.name!r} "
                f"({self._interface.repo_id})>")


def _interface_repository(orb) -> InterfaceRepository:
    ir = orb.world.services.get("interface_repository")
    if ir is None:
        ir = orb.world.services["interface_repository"] = InterfaceRepository()
    return ir


def dynamic_bind(name: str, host: Optional[str] = None,
                 collective: bool = False) -> DynamicProxy:
    """Bind to an object by name without generated stubs.

    The object's interface definition must be in the Interface Repository
    (servant activation puts it there).
    """
    from .stubapi import current_context

    ctx = current_context()
    ref = ctx.orb.resolve(name, ctx)
    if host is not None and ref.host != host:
        raise BindingError(
            f"object {name!r} lives on host {ref.host!r}, not {host!r}"
        )
    iface = _interface_repository(ctx.orb).lookup(ref.repo_id)
    return DynamicProxy(Binding(ctx, ref, collective=collective), iface)
