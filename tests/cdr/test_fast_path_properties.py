"""Generative wire-parity tests for the zero-copy marshaling lane.

The zero-copy lane (`encode_bulk_payload`/`decode_bulk_payload`) must be
byte-for-byte indistinguishable from the classic CDR stream for every
numeric element type, every value pattern (including NaN payloads and
denormals, generated here from raw bytes), and every input layout
(non-contiguous slices, reversed strides, empty arrays).  The properties
hold at the courier level too, where the lane switch actually lives.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdr import (
    BufferPool,
    CdrEncoder,
    SequenceTC,
    TC_BOOLEAN,
    TC_DOUBLE,
    TC_FLOAT,
    TC_LONG,
    TC_LONGLONG,
    TC_OCTET,
    TC_SHORT,
    TC_ULONG,
    TC_ULONGLONG,
    TC_USHORT,
    decode,
    decode_bulk_payload,
    encode_bulk_payload,
    fast_path,
)
from repro.core.pipeline.courier import fragment_payload, fragment_values

NUMERIC_TCS = [TC_OCTET, TC_BOOLEAN, TC_SHORT, TC_USHORT, TC_LONG,
               TC_ULONG, TC_LONGLONG, TC_ULONGLONG, TC_FLOAT, TC_DOUBLE]


@st.composite
def tc_and_array(draw, max_bytes=512):
    """A numeric typecode plus an array reinterpreted from raw bytes —
    covers NaN bit patterns, denormals, and extreme integers for free."""
    tc = draw(st.sampled_from(NUMERIC_TCS))
    raw = draw(st.binary(min_size=0, max_size=max_bytes))
    n = len(raw) // tc.size
    return tc, np.frombuffer(raw[:n * tc.size], dtype=tc.dtype)


@st.composite
def tc_and_strided(draw):
    """Like :func:`tc_and_array` but sliced non-contiguously: arbitrary
    offset, step up to 4, optionally reversed (negative strides)."""
    tc, base = draw(tc_and_array(max_bytes=1024))
    offset = draw(st.integers(min_value=0, max_value=max(0, base.size)))
    step = draw(st.integers(min_value=1, max_value=4))
    arr = base[offset::step]
    if draw(st.booleans()):
        arr = arr[::-1]
    return tc, arr


def slow_wire(tc, arr) -> bytes:
    return CdrEncoder().encode(SequenceTC(tc), arr).getvalue()


def fast_wire(tc, arr, pool) -> bytes:
    buf = encode_bulk_payload(tc, arr, pool)
    try:
        return bytes(buf.view())
    finally:
        buf.release()


@given(tc_and_array())
def test_fast_encode_matches_slow_wire_bytes(case):
    tc, arr = case
    pool = BufferPool()
    assert fast_wire(tc, arr, pool) == slow_wire(tc, arr)
    assert pool.stats.outstanding == 0


@given(tc_and_strided())
def test_fast_encode_matches_slow_on_non_contiguous_input(case):
    tc, arr = case
    pool = BufferPool()
    assert fast_wire(tc, arr, pool) == slow_wire(tc, arr)


@given(tc_and_array())
def test_fast_decode_roundtrips_exactly(case):
    """fast-decode(fast-encode(x)) is byte-identical to x, and the
    decoded array is a read-only alias, not a copy."""
    tc, arr = case
    pool = BufferPool()
    buf = encode_bulk_payload(tc, arr, pool)
    out = decode_bulk_payload(tc, buf)
    assert out.dtype == arr.dtype
    assert out.tobytes() == arr.tobytes()
    assert not out.flags.writeable
    assert not out.flags.owndata
    buf.release()


@given(tc_and_array())
def test_lanes_decode_each_other(case):
    """Cross-lane: slow decode of a fast payload and fast decode of a
    slow payload both reproduce the values."""
    tc, arr = case
    pool = BufferPool()
    buf = encode_bulk_payload(tc, arr, pool)
    via_slow = decode(SequenceTC(tc), buf.tobytes())
    assert np.asarray(via_slow).tobytes() == arr.tobytes()
    buf.release()
    via_fast = decode_bulk_payload(tc, slow_wire(tc, arr))
    assert via_fast.tobytes() == arr.tobytes()


@given(tc_and_array())
def test_courier_lanes_produce_identical_wire_bytes(case):
    """The dispatch point itself: fragment_payload with the lane on and
    off yields the same bytes, and fragment_values round-trips both."""
    tc, arr = case
    pool = BufferPool()
    with fast_path(True):
        buf = fragment_payload(tc, arr, pool)
        fast_out = fragment_values(tc, buf, pool)
        fast_bytes = bytes(buf.view())
    with fast_path(False):
        wire = fragment_payload(tc, arr, pool)
        slow_out = fragment_values(tc, wire, pool)
    assert fast_bytes == wire
    assert np.asarray(fast_out).tobytes() == np.asarray(slow_out).tobytes()
    buf.release()
    assert pool.stats.outstanding == 0


@settings(max_examples=25)
@given(st.sampled_from(NUMERIC_TCS),
       st.lists(st.floats(min_value=-100, max_value=100,
                          allow_nan=False), max_size=32))
def test_casting_parity_from_float_arrays(tc, values):
    """Both lanes apply numpy's (unsafe) cast identically when the array
    dtype differs from the element type."""
    arr = np.array(values, dtype="f8")
    pool = BufferPool()
    assert fast_wire(tc, arr, pool) == slow_wire(tc, arr)


@given(st.sampled_from(NUMERIC_TCS))
def test_empty_array_parity(tc):
    pool = BufferPool()
    arr = np.array([], dtype=tc.dtype)
    wire = fast_wire(tc, arr, pool)
    assert wire == slow_wire(tc, arr)
    out = decode_bulk_payload(tc, wire)
    assert out.size == 0


@given(tc_and_array(max_bytes=96))
def test_pool_reuse_does_not_leak_stale_bytes(case):
    """A recycled bucket may hold stale bytes past the payload length;
    the payload region itself must always be freshly written."""
    tc, arr = case
    pool = BufferPool()
    # Dirty a bucket with a larger payload first.
    big = np.arange(64, dtype=tc.dtype)
    encode_bulk_payload(tc, big, pool).release()
    assert fast_wire(tc, arr, pool) == slow_wire(tc, arr)
