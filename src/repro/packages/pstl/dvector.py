"""The PSTL distributed vector."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...core.distribution import Distribution
from ...runtime.collectives import gather


class DVector:
    """A block-distributed 1-D vector of doubles, HPC++-PSTL style.

    Each computing thread holds a contiguous block; parallel algorithms
    (:mod:`repro.packages.pstl.algorithms`) iterate the local block and
    combine with RTS collectives.
    """

    def __init__(self, n: int, rank: int, nprocs: int, rts=None,
                 local: Optional[np.ndarray] = None,
                 dist: Optional[Distribution] = None) -> None:
        self.dist = dist if dist is not None else Distribution.block(n, nprocs)
        if self.dist.n != n:
            raise ValueError("distribution length does not match n")
        self.rank = rank
        self.rts = rts
        size = self.dist.local_size(rank)
        if local is None:
            self.local = np.zeros(size)
        else:
            local = np.asarray(local, dtype=float)
            if local.shape != (size,):
                raise ValueError(
                    f"local block of {local.shape} does not match the "
                    f"expected size {size}"
                )
            self.local = local

    @classmethod
    def from_global(cls, data, rank: int, nprocs: int, rts=None) -> "DVector":
        data = np.asarray(data, dtype=float)
        dist = Distribution.block(len(data), nprocs)
        a, b = dist.intervals(rank)[0] if dist.intervals(rank) else (0, 0)
        return cls(len(data), rank, nprocs, rts, local=data[a:b].copy(),
                   dist=dist)

    def __len__(self) -> int:
        return self.dist.n

    @property
    def local_size(self) -> int:
        return len(self.local)

    def local_range(self) -> tuple[int, int]:
        ivs = self.dist.intervals(self.rank)
        return ivs[0] if ivs else (0, 0)

    def assemble(self, root: int = 0) -> Optional[np.ndarray]:
        """Collective: the whole vector on ``root``."""
        if self.rts is None or self.dist.p == 1:
            return self.local.copy()
        pieces = gather(self.rts, (self.local_range()[0], self.local.copy()),
                        root=root)
        if pieces is None:
            return None
        out = np.zeros(len(self))
        for start, block in pieces:
            out[start:start + len(block)] = block
        return out

    def copy(self) -> "DVector":
        return DVector(len(self), self.rank, self.dist.p, self.rts,
                       local=self.local.copy(), dist=self.dist)

    def __repr__(self) -> str:
        return (f"<DVector n={len(self)} rank={self.rank}/{self.dist.p} "
                f"local={self.local_size}>")
