"""Finer-grained ORB behaviours: inout parameters, attributes over the
wire, binding type checks, DSeqFactory bounds, UserException mechanics."""

import numpy as np
import pytest

from repro.core import BindingError, Simulation, UserException
from repro.idl import compile_idl

IDL = """
    typedef dsequence<double, 16> shortvec;
    exception limit_hit { long limit; };
    interface stateful {
        readonly attribute long generation;
        attribute double gain;
        void amplify(inout double level);
        void stretch(inout shortvec v);
        long bump(in long by) raises (limit_hit);
    };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="orb_details_stubs")


def make_servant(mod, ctx):
    from repro.core import DistributedSequence

    class StatefulImpl(mod.stateful_skel):
        def __init__(self):
            self.generation = 4
            self.gain = 2.0
            self.count = 0

        def amplify(self, level):
            return level * self.gain

        def stretch(self, v):
            return DistributedSequence(
                v.element, v.dist, v.rank, np.asarray(v.owned_data) * 3.0)

        def bump(self, by):
            if self.count + by > 5:
                raise mod.limit_hit(limit=5)
            self.count += by
            return self.count

    return StatefulImpl()


def run_client(mod, client_main, nprocs_server=1, nprocs_client=1):
    sim = Simulation()

    def server_main(ctx):
        ctx.poa.activate(make_servant(mod, ctx), "stateful", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=nprocs_server)
    out = {}

    def wrapped(ctx):
        out[ctx.rank] = client_main(ctx)

    sim.client(wrapped, host="HOST_1", nprocs=nprocs_client)
    sim.run()
    return out


class TestInout:
    def test_scalar_inout_roundtrip(self, mod):
        def main(ctx):
            s = mod.stateful._bind("stateful")
            return s.amplify(3.0)

        assert run_client(mod, main)[0] == 6.0

    def test_distributed_inout(self, mod):
        def main(ctx):
            s = mod.stateful._spmd_bind("stateful")
            v = mod.shortvec(np.arange(8.0))
            w = s.stretch(v)
            np.testing.assert_array_equal(
                np.asarray(w.owned_data),
                3.0 * np.asarray(v.owned_data))
            return True

        assert run_client(mod, main, nprocs_server=2, nprocs_client=2) == \
            {0: True, 1: True}


class TestAttributesOverTheWire:
    def test_readonly_get(self, mod):
        def main(ctx):
            s = mod.stateful._bind("stateful")
            return s._get_generation()

        assert run_client(mod, main)[0] == 4

    def test_get_set_cycle(self, mod):
        def main(ctx):
            s = mod.stateful._bind("stateful")
            before = s._get_gain()
            s._set_gain(5.5)
            return (before, s._get_gain())

        assert run_client(mod, main)[0] == (2.0, 5.5)

    def test_readonly_has_no_setter(self, mod):
        assert not hasattr(mod.stateful, "_set_generation")


class TestUserExceptionMechanics:
    def test_fields_by_position_and_keyword(self, mod):
        e1 = mod.limit_hit(5)
        e2 = mod.limit_hit(limit=5)
        assert e1.limit == e2.limit == 5

    def test_too_many_positional(self, mod):
        with pytest.raises(TypeError, match="positional"):
            mod.limit_hit(1, 2)

    def test_is_pardis_user_exception(self, mod):
        assert issubclass(mod.limit_hit, UserException)

    def test_raise_after_state_change_rolls_nothing_back(self, mod):
        """Exceptions propagate; already-applied server state stays (no
        transactional semantics — like CORBA)."""

        def main(ctx):
            s = mod.stateful._bind("stateful")
            s.bump(4)
            with pytest.raises(mod.limit_hit) as ei:
                s.bump(4)
            assert ei.value.limit == 5
            return s.bump(1)

        assert run_client(mod, main)[0] == 5


class TestBindingChecks:
    def test_wrong_interface_rejected(self, mod):
        other = compile_idl("interface different { void f(); };",
                            module_name="orb_details_other")

        def main(ctx):
            with pytest.raises(BindingError, match="implements"):
                other.different._bind("stateful")
            return True

        assert run_client(mod, main)[0] is True

    def test_host_hint_mismatch_rejected(self, mod):
        def main(ctx):
            with pytest.raises(BindingError, match="HOST_1"):
                mod.stateful._bind("stateful", "HOST_1")  # lives on HOST_2
            return True

        assert run_client(mod, main)[0] is True

    def test_unknown_operation_through_invoke(self, mod):
        def main(ctx):
            s = mod.stateful._bind("stateful")
            with pytest.raises(BindingError, match="no operation"):
                s._invoke("quux", ())
            return True

        assert run_client(mod, main)[0] is True


class TestDSeqFactoryBounds:
    def test_bound_enforced(self, mod):
        def main(ctx):
            with pytest.raises(ValueError, match="bound"):
                mod.shortvec(np.zeros(17))
            return True

        sim = Simulation()
        out = {}

        def wrapped(ctx):
            out["ok"] = main(ctx)

        sim.client(wrapped, host="HOST_1", nprocs=1)
        sim.run()
        assert out["ok"]

    def test_requires_context(self, mod):
        with pytest.raises(BindingError, match="context"):
            mod.shortvec(4)
