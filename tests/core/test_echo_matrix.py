"""Echo-server matrix: every IDL type category travels through a real
invocation unchanged (in -> server -> out), including property-based
randomized payloads."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Simulation
from repro.idl import compile_idl

ECHO_IDL = """
    enum mood { HAPPY, GRUMPY, SLEEPY };
    struct point { double x; double y; string tag; };
    union blob switch (long) {
        case 1: double d;
        case 2: string s;
        default: long n;
    };
    typedef double triple[3];
    typedef sequence<point> points;
    typedef sequence<sequence<long>> table;
    interface echo {
        double f_double(in double v, out double w);
        string f_string(in string v, out string w);
        mood f_enum(in mood v, out mood w);
        point f_struct(in point v, out point w);
        blob f_union(in blob v, out blob w);
        triple f_array(in triple v, out triple w);
        points f_structseq(in points v, out points w);
        table f_nested(in table v, out table w);
        boolean f_bool(in boolean v, out boolean w);
    };
"""


@pytest.fixture(scope="module")
def world():
    """One long-lived simulation is too stateful for many tests; instead
    expose a runner that builds a fresh one per invocation batch."""
    mod = compile_idl(ECHO_IDL, module_name="echo_matrix_stubs")

    def run(calls):
        sim = Simulation()

        def server_main(ctx):
            class EchoImpl(mod.echo_skel):
                pass

            for op in mod.echo._interface.ops:
                setattr(EchoImpl, op,
                        (lambda self, v: (v, v)))
            ctx.poa.activate(EchoImpl(), "echo", kind="spmd")
            ctx.poa.impl_is_ready()

        results = []

        def client(ctx):
            e = mod.echo._bind("echo")
            for op, value in calls:
                results.append(getattr(e, op)(value))

        sim.client(client, host="HOST_1")
        sim.server(server_main, host="HOST_2", nprocs=1)
        sim.run()
        return results

    run.mod = mod
    return run


def both(result):
    ret, out = result
    return ret, out


class TestEchoMatrix:
    def test_double(self, world):
        [(r, o)] = world([("f_double", 3.25)])
        assert r == o == 3.25

    def test_string_unicode(self, world):
        [(r, o)] = world([("f_string", "héllo wörld")])
        assert r == o == "héllo wörld"

    def test_enum(self, world):
        mod = world.mod
        [(r, o)] = world([("f_enum", mod.mood.GRUMPY)])
        assert r == o == "GRUMPY"

    def test_struct(self, world):
        mod = world.mod
        [(r, o)] = world([("f_struct", mod.point(x=1.0, y=-2.0, tag="p"))])
        assert r == o == {"x": 1.0, "y": -2.0, "tag": "p"}

    def test_union_all_arms(self, world):
        vals = [(1, 2.5), (2, "txt"), (7, 99)]
        results = world([("f_union", v) for v in vals])
        assert [r for r, _ in results] == vals

    def test_array(self, world):
        [(r, o)] = world([("f_array", np.array([1.0, 2.0, 3.0]))])
        np.testing.assert_array_equal(r, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(o, r)

    def test_sequence_of_structs(self, world):
        mod = world.mod
        pts = [mod.point(x=float(i), y=0.0, tag=f"t{i}") for i in range(3)]
        [(r, o)] = world([("f_structseq", pts)])
        assert [p["tag"] for p in r] == ["t0", "t1", "t2"]

    def test_nested_dynamic_table(self, world):
        table = [[1, 2, 3], [], [9]]
        [(r, o)] = world([("f_nested", table)])
        assert [list(map(int, row)) for row in r] == table

    def test_bool(self, world):
        [(r, o)] = world([("f_bool", True)])
        assert r is True and o is True


@settings(max_examples=10, deadline=None)
@given(
    d=st.floats(allow_nan=False, allow_infinity=False),
    s=st.text(max_size=40),
    disc=st.sampled_from([1, 2, 7]),
)
def test_property_random_payloads_echo(d, s, disc):
    # Build one world per example (cheap: milliseconds).
    mod = compile_idl(ECHO_IDL, module_name="echo_matrix_prop_stubs")
    sim = Simulation()

    def server_main(ctx):
        class EchoImpl(mod.echo_skel):
            def f_double(self, v):
                return (v, v)

            def f_string(self, v):
                return (v, v)

            def f_union(self, v):
                return (v, v)

        ctx.poa.activate(EchoImpl(), "echo", kind="spmd")
        ctx.poa.impl_is_ready()

    out = {}

    def client(ctx):
        e = mod.echo._bind("echo")
        out["d"] = e.f_double(d)[0]
        out["s"] = e.f_string(s)[0]
        union_val = (disc, {1: d, 2: s, 7: 42}[disc])
        out["u"] = e.f_union(union_val)[0]

    sim.server(server_main, host="HOST_2", nprocs=1)
    sim.client(client, host="HOST_1")
    sim.run()
    assert out["d"] == d
    assert out["s"] == s
    assert out["u"] == (disc, {1: d, 2: s, 7: 42}[disc])
