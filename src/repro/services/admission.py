"""Server-side admission control: bounded queues, scheduling, shedding.

An :class:`AdmissionController` attached to a POA
(``ctx.poa.set_admission(...)``) turns the historic
dispatch-whatever-arrives request loop into a bounded queue:

* headers that arrive while a request is being served are swept into the
  queue; arrivals beyond ``capacity`` are **shed** — the client gets a
  prompt reply carrying the overload marker and raises
  :class:`~repro.core.errors.TransientException` (the request was never
  executed, so retrying is safe);
* the next request to serve is chosen by the scheduling ``policy``:
  ``"fifo"`` (arrival order), ``"priority"`` (highest
  ``pardis.priority`` service context first, FIFO within a level — see
  :class:`PriorityInterceptor`), or ``"edf"`` (earliest
  ``pardis.deadline`` first, reusing
  :class:`~repro.core.pipeline.deadline.DeadlineInterceptor` stamps;
  undated requests go last in arrival order);
* every reply (success and failure) is stamped with a load report, and
  with a backpressure hint once the queue passes its high watermark —
  the inputs to least-loaded selection and client-side throttling.

SPMD caveat: only the thread that receives requests directly from
clients (rank 0) makes shed/ordering decisions.  Rank 0 forwards a
header to its peers at *dispatch* time, so peers see headers already in
rank 0's chosen order; their controllers queue forwarded headers in a
separate always-admitted FIFO served first, which replays that order
deterministically instead of re-deciding (and possibly diverging).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..core.pipeline.deadline import DEADLINE_CONTEXT
from ..core.pipeline.interceptors import ClientRequestInfo, RequestInterceptor
from ..core.request import (
    BACKPRESSURE_CONTEXT,
    LOAD_CONTEXT,
    PRIORITY_CONTEXT,
    RequestHeader,
)

__all__ = ["AdmissionController", "PriorityInterceptor", "SCHEDULING_POLICIES"]

SCHEDULING_POLICIES = ("fifo", "priority", "edf")


class AdmissionController:
    """Bounded request queue + scheduling policy for one POA thread.

    ``capacity`` bounds *queued* (not yet dispatched) direct requests;
    ``high_watermark`` (fraction of capacity) is where backpressure
    hints start; ``backoff_hint`` is the suggested client back-off in
    virtual seconds carried by those hints.
    """

    def __init__(self, capacity: int = 16, policy: str = "fifo",
                 high_watermark: float = 0.75,
                 backoff_hint: float = 5e-3,
                 sweep_budget: Optional[int] = None) -> None:
        if policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; "
                f"known: {SCHEDULING_POLICIES}"
            )
        if capacity < 1:
            raise ValueError("admission capacity must be >= 1")
        self.capacity = capacity
        self.policy = policy
        self.high_watermark = high_watermark
        self.backoff_hint = backoff_hint
        #: max arrivals swept (admitted or shed) per scheduling decision.
        #: Shedding costs virtual time (the refusal reply goes over the
        #: transport), so an unbounded sweep under sustained overload
        #: keeps finding fresh retries and never returns to serving the
        #: queue — a receive livelock.  Bounding the sweep guarantees
        #: queued requests are served between bursts of shedding.
        self.sweep_budget = (sweep_budget if sweep_budget is not None
                             else max(2 * capacity, 8))
        self.ctx = None
        #: (header, enqueue time, arrival seq) of queued direct requests
        self._queue: list[tuple[RequestHeader, float, int]] = []
        #: forwarded SPMD headers: always admitted, served first, FIFO
        self._forwarded: deque = deque()
        self._seq = 0
        # -- counters (surfaced via the metrics registry) --
        self.accepted = 0
        self.shed = 0
        self.served = 0
        self.max_depth = 0
        self.total_wait = 0.0

    def attach(self, ctx) -> None:
        """Bind to the serving thread's context (POA.set_admission)."""
        self.ctx = ctx

    @property
    def program_name(self) -> Optional[str]:
        return self.ctx.program.name if self.ctx is not None else None

    @property
    def queue_depth(self) -> int:
        return len(self._queue) + len(self._forwarded)

    # -- queue ---------------------------------------------------------------

    def offer(self, hdr: RequestHeader, now: float) -> bool:
        """Admit or refuse one arrived header.  Returns False exactly
        when the caller must shed it."""
        if hdr.forwarded:
            self._forwarded.append(hdr)
            return True
        if len(self._queue) >= self.capacity:
            self.shed += 1
            return False
        self._seq += 1
        self._queue.append((hdr, now, self._seq))
        self.accepted += 1
        if self.queue_depth > self.max_depth:
            self.max_depth = self.queue_depth
        return True

    def pop(self, now: float) -> Optional[RequestHeader]:
        """Next header to dispatch under the scheduling policy (None
        when nothing is queued)."""
        if self._forwarded:
            return self._forwarded.popleft()
        if not self._queue:
            return None
        if self.policy == "fifo":
            idx = 0
        elif self.policy == "priority":
            idx = min(
                range(len(self._queue)),
                key=lambda i: (
                    -self._queue[i][0].service_contexts.get(
                        PRIORITY_CONTEXT, 0),
                    self._queue[i][2],
                ),
            )
        else:  # edf
            idx = min(
                range(len(self._queue)),
                key=lambda i: (
                    self._queue[i][0].service_contexts.get(
                        DEADLINE_CONTEXT, float("inf")),
                    self._queue[i][2],
                ),
            )
        hdr, enqueued, _ = self._queue.pop(idx)
        self.served += 1
        self.total_wait += now - enqueued
        return hdr

    # -- reply stamping ------------------------------------------------------

    def stamp_reply(self, contexts: dict) -> None:
        """Piggyback the load report (always) and the backpressure hint
        (past the high watermark) on an outgoing reply's contexts."""
        depth = len(self._queue)
        contexts[LOAD_CONTEXT] = {
            "program_id": (self.ctx.program.program_id
                           if self.ctx is not None else -1),
            "queue_depth": depth,
            "capacity": self.capacity,
        }
        if depth >= self.high_watermark * self.capacity:
            contexts[BACKPRESSURE_CONTEXT] = self.backoff_hint

    def __repr__(self) -> str:
        return (f"<AdmissionController {self.policy} depth="
                f"{self.queue_depth}/{self.capacity} shed={self.shed}>")


class PriorityInterceptor(RequestInterceptor):
    """Client-side companion of the ``"priority"`` scheduling policy:
    stamps each outgoing request with a priority level (per-operation
    overrides win over the default; level 0 is never stamped)."""

    name = "priority"

    def __init__(self, default: int = 0,
                 per_op: Optional[dict] = None) -> None:
        self.default = default
        self.per_op = dict(per_op or {})

    def send_request(self, info: ClientRequestInfo) -> None:
        level = self.per_op.get(info.op_name, self.default)
        if level:
            info.service_contexts[PRIORITY_CONTEXT] = level
