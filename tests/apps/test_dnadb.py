"""Correctness tests for the DNA matchers and database servants."""

from hypothesis import given, settings, strategies as st

from repro.apps.dnadb import (
    ALPHABET,
    CATEGORIES,
    MATCHERS,
    classify,
    generate_database,
    matches_addition,
    matches_deletion,
    matches_exact,
    matches_substitution,
    matches_transposition,
)

dna = st.text(alphabet=ALPHABET, min_size=0, max_size=30)
query = st.text(alphabet=ALPHABET, min_size=2, max_size=6)


class TestMatchers:
    def test_exact(self):
        assert matches_exact("AACGTA", "ACGT")
        assert not matches_exact("AAAA", "ACGT")

    def test_transposition(self):
        # window "ACTG" with adjacent swap at 2,3 gives "ACGT"
        assert matches_transposition("TTACTGTT", "ACGT")
        assert not matches_transposition("ACGT", "ACGT")  # exact, not derived
        assert not matches_transposition("TTTT", "ACGT")

    def test_deletion(self):
        # "AGT" is "ACGT" minus the C
        assert matches_deletion("TTAGTTT", "ACGT")
        assert not matches_deletion("TTTTTT", "ACGT")

    def test_substitution(self):
        # "AGGT" differs from "ACGT" in one place
        assert matches_substitution("TTAGGTTT", "ACGT")
        assert not matches_substitution("TTTTTAAA", "ACGT")

    def test_addition(self):
        # "ACCGT" is "ACGT" with a C inserted
        assert matches_addition("TTACCGTTT", "ACGT")
        assert not matches_addition("ACGT", "ACGT")

    def test_short_query_edge_cases(self):
        assert not matches_transposition("ACGT", "A")
        assert not matches_deletion("ACGT", "A")


@settings(max_examples=300, deadline=None)
@given(seq=dna, s=query)
def test_property_matchers_agree_with_brute_force(seq, s):
    """Each matcher individually agrees with the generate-all-variants
    oracle (modulo the priority order, checked via classify)."""
    oracle = {
        "exact": s in seq,
        "transposition": any(
            v in seq for v in (
                s[:j] + s[j + 1] + s[j] + s[j + 2:] for j in range(len(s) - 1)
            ) if v != s
        ),
        "deletion": any(
            (s[:j] + s[j + 1:]) in seq for j in range(len(s))
            if s[:j] + s[j + 1:]
        ),
        "substitution": any(
            (s[:j] + c + s[j + 1:]) in seq
            for j in range(len(s)) for c in ALPHABET if c != s[j]
        ),
        "addition": any(
            (s[:j] + c + s[j:]) in seq
            for j in range(len(s) + 1) for c in ALPHABET
        ),
    }
    assert matches_exact(seq, s) == oracle["exact"]
    assert matches_transposition(seq, s) == oracle["transposition"]
    assert matches_deletion(seq, s) == oracle["deletion"]
    assert matches_substitution(seq, s) == oracle["substitution"]
    assert matches_addition(seq, s) == oracle["addition"]


@settings(max_examples=100, deadline=None)
@given(seq=dna, s=query)
def test_property_classify_priority_order(seq, s):
    cat = classify(seq, s)
    if cat is None:
        assert not any(m(seq, s) for m in MATCHERS.values())
    else:
        idx = CATEGORIES.index(cat)
        assert MATCHERS[cat](seq, s)
        for earlier in CATEGORIES[:idx]:
            assert not MATCHERS[earlier](seq, s)


class TestDatabase:
    def test_reproducible(self):
        a = generate_database(50, "ACGTAC", seed=3)
        b = generate_database(50, "ACGTAC", seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        assert generate_database(50, "ACGTAC", seed=3) != \
            generate_database(50, "ACGTAC", seed=4)

    def test_alphabet_and_length(self):
        db = generate_database(30, "ACGTAC", seq_len=40)
        assert all(len(s) >= 40 for s in db)
        assert all(set(s) <= set(ALPHABET) for s in db)

    def test_plants_matches_of_every_category(self):
        db = generate_database(400, "ACGTAC", seed=7)
        found = {classify(seq, "ACGTAC") for seq in db}
        assert found >= set(CATEGORIES)


class TestServerEndToEnd:
    def test_search_returns_done_and_lists_fill(self):
        from repro.core import Simulation
        from repro.netsim import ATM_155, Host, Network
        from repro.apps.dnadb import dna_server_main, list_server_name
        from repro.apps.interfaces import dna_stubs

        net = Network()
        net.add_host(Host("C", nodes=1))
        net.add_host(Host("S", nodes=4))
        net.connect("C", "S", ATM_155)
        sim = Simulation(network=net)
        sim.server(dna_server_main, host="S", nprocs=3,
                   args=(60, "ACGTAC", "distributed"))
        out = {}

        def client(ctx):
            mod = dna_stubs()
            db = mod.dna_db._bind("dna_database")
            out["status"] = db.search("ACGTAC")
            lists = {}
            for cat in CATEGORIES:
                srv = mod.list_server._bind(list_server_name(cat))
                lists[cat] = srv.match("ACG")
            out["lists"] = lists

        sim.client(client, host="C", nprocs=1)
        sim.run()
        mod = dna_stubs()
        # enum results decode to the member name
        assert out["status"] == mod.status.SEARCH_DONE.name
        assert mod.status[out["status"]] is mod.status.SEARCH_DONE
        total = sum(len(v) for v in out["lists"].values())
        assert total > 0

    def test_search_results_match_oracle(self):
        """The distributed parallel search finds exactly the sequences the
        sequential classifier finds."""
        from repro.core import Simulation
        from repro.netsim import ATM_155, Host, Network
        from repro.apps.dnadb import dna_server_main, list_server_name
        from repro.apps.interfaces import dna_stubs

        q = "ACGTAC"
        db = generate_database(80, q, seed=7)
        expected = {cat: sorted(s for s in db if classify(s, q) == cat)
                    for cat in CATEGORIES}

        net = Network()
        net.add_host(Host("C", nodes=1))
        net.add_host(Host("S", nodes=4))
        net.connect("C", "S", ATM_155)
        sim = Simulation(network=net)
        sim.server(dna_server_main, host="S", nprocs=4,
                   args=(80, q, "centralized"))
        out = {}

        def client(ctx):
            mod = dna_stubs()
            dbp = mod.dna_db._bind("dna_database")
            dbp.search(q)
            for cat in CATEGORIES:
                srv = mod.list_server._bind(list_server_name(cat))
                # match("") returns the whole collected list
                out[cat] = sorted(srv.match(q))

        sim.client(client, host="C", nprocs=1)
        sim.run()
        for cat in CATEGORIES:
            assert out[cat] == [s for s in expected[cat] if q in s] or \
                sorted(set(out[cat])) == expected[cat]
