"""ASCII line charts for experiment series.

No plotting library ships with the reproduction environment, so the
figures render as text: good enough to *see* the crossovers and the
flattening the paper's graphs show, and diffable in CI output.
"""

from __future__ import annotations

from typing import Sequence

#: per-series glyphs, in order
GLYPHS = "ox+*#@"


def ascii_chart(x: Sequence[float], series: dict[str, Sequence[float]],
                title: str = "", width: int = 64, height: int = 18,
                x_label: str = "", y_label: str = "") -> str:
    """Render one or more y-series over shared x values.

    >>> print(ascii_chart([1, 2, 3], {"t": [3.0, 2.0, 1.5]}))  # doctest: +SKIP
    """
    if not x or not series:
        return "(no data)"
    xs = list(map(float, x))
    all_y = [float(v) for ys in series.values() for v in ys]
    y_min = min(all_y + [0.0])
    y_max = max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def col(xv: float) -> int:
        return round((xv - x_min) / (x_max - x_min) * (width - 1))

    def row(yv: float) -> int:
        return (height - 1) - round((yv - y_min) / (y_max - y_min)
                                    * (height - 1))

    for si, (name, ys) in enumerate(series.items()):
        glyph = GLYPHS[si % len(GLYPHS)]
        pts = [(col(xv), row(float(yv))) for xv, yv in zip(xs, ys)]
        # connect consecutive points with interpolated marks
        for (c0, r0), (c1, r1) in zip(pts, pts[1:]):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for k in range(steps + 1):
                c = round(c0 + (c1 - c0) * k / steps)
                r = round(r0 + (r1 - r0) * k / steps)
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for c, r in pts:
            grid[r][c] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    pad = max(len(top_label), len(bottom_label))
    for i, grow in enumerate(grid):
        if i == 0:
            label = top_label.rjust(pad)
        elif i == height - 1:
            label = bottom_label.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(grow)}")
    lines.append(" " * pad + " +" + "-" * width)
    x_axis = f"{x_min:.4g}".ljust(width - 8) + f"{x_max:.4g}".rjust(8)
    lines.append(" " * pad + "  " + x_axis)
    if x_label:
        lines.append(" " * pad + "  " + x_label.center(width))
    legend = "   ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(("(" + y_label + ")  " if y_label else "") + legend)
    return "\n".join(lines)


def chart_rows(rows: Sequence, x_field: str, y_fields: Sequence[str],
               title: str = "", **kwargs) -> str:
    """Chart dataclass rows: ``chart_rows(fig2_rows, "n", ["t_direct", ...])``."""
    xs = [getattr(r, x_field) for r in rows]
    series = {f: [getattr(r, f) for r in rows] for f in y_fields}
    return ascii_chart(xs, series, title=title, x_label=x_field, **kwargs)
