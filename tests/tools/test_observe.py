"""End-to-end tests for the request-lifecycle observability layer."""

import numpy as np
import pytest

from repro.cdr.encoder import get_marshal_meter
from repro.core import Simulation
from repro.core import transfer as _transfer
from repro.idl import compile_idl
from repro.tools import (
    RequestObserver,
    TraceSession,
    detach_observer,
    validate_chrome_trace,
)
from repro.tools.observe import CLIENT_PHASES, SERVER_PHASES, Span

IDL = """
    typedef dsequence<double> vec;
    interface stats {
        double total(in vec xs);
        oneway void note(in long x);
    };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="observe_stubs")


@pytest.fixture(autouse=True)
def _clean_globals():
    """The observer installs process-global hooks; never leak them."""
    yield
    from repro.cdr.encoder import set_marshal_meter

    set_marshal_meter(None)
    _transfer.set_observer(None)


def run_observed(mod, nprocs=2, requests=3):
    sim = Simulation()
    obs = sim.attach_observer(label="t")

    def server_main(ctx):
        class Impl(mod.stats_skel):
            def total(self, xs):
                ctx.compute(1e-3)
                return float(np.sum(np.asarray(xs.owned_data)))

            def note(self, x):
                pass

        ctx.poa.activate(Impl(), "stats", kind="spmd")
        ctx.poa.impl_is_ready()

    # One server thread holds the whole sequence, so ``total`` is global;
    # two client threads still exercise the fragment paths.
    sim.server(server_main, host="HOST_2", nprocs=1, name="stats-server")
    out = {}

    def client_main(ctx):
        s = mod.stats._spmd_bind("stats")
        data = ctx.dseq(np.arange(16.0))
        s.note(7)
        out["totals"] = [s.total(data) for _ in range(requests)]

    sim.client(client_main, host="HOST_1", nprocs=nprocs, name="stats-client")
    sim.run()
    return sim, obs, out


class TestObserverEndToEnd:
    def test_every_lifecycle_phase_recorded(self, mod):
        _sim, obs, out = run_observed(mod)
        assert out["totals"] == [120.0] * 3
        phases = {s.phase for s in obs.spans}
        for phase in ("marshal", "send", "wait", "unmarshal",
                      "dispatch", "recv_args", "compute", "reply"):
            assert phase in phases, f"no {phase} span recorded"
        for s in obs.spans:
            assert s.t1 >= s.t0
            assert s.side in ("client", "server")

    def test_requests_tracked_to_completion(self, mod):
        _sim, obs, _out = run_observed(mod, requests=2)
        done = obs.completed_requests()
        ops = {op for (_r, _p, _rk, op, _lat) in done}
        assert "total" in ops and "note" in ops
        assert all(lat >= 0 for (*_x, lat) in done)
        # Every issued request reached a terminal state.
        assert all(rec[2] is not None for rec in obs.requests.values())
        statuses = {rec[3] for rec in obs.requests.values()}
        assert statuses <= {"ok", "oneway"}

    def test_breakdown_answers_where_time_went(self, mod):
        _sim, obs, _out = run_observed(mod, requests=1)
        req = next(r for (r, _p, _rk, op, _l) in obs.completed_requests()
                   if op == "total")
        breakdown = obs.request_breakdown(req)
        assert "wait" in breakdown and "compute" in breakdown
        # the servant charges 1 ms of virtual compute per call
        assert breakdown["compute"] >= 1e-3
        # the client's wait covers at least the server's compute
        assert breakdown["wait"] >= breakdown["compute"] / 2

    def test_byte_and_transfer_counters(self, mod):
        _sim, obs, _out = run_observed(mod)
        assert obs.cdr_bytes["encoded"] > 0
        assert obs.cdr_bytes["decoded"] > 0
        assert obs.transfer["schedules"] > 0
        assert obs.transfer["elements"] > 0
        assert len(obs.packet_trace) > 0
        assert obs.bytes_by_op().get("total", 0) > 0

    def test_chrome_trace_valid_and_complete(self, mod):
        _sim, obs, _out = run_observed(mod)
        trace = obs.chrome_trace()
        n = validate_chrome_trace(
            trace, require_phases=("marshal", "send", "wait", "unmarshal",
                                   "dispatch", "recv_args", "compute",
                                   "reply", "transport"))
        assert n == len(trace["traceEvents"])
        import json

        json.dumps(trace)  # must be serializable as-is

    def test_report_mentions_ops_and_percentiles(self, mod):
        _sim, obs, _out = run_observed(mod)
        text = obs.report()
        assert "total" in text
        assert "p50" in text and "p99" in text
        assert "requests:" in text
        assert "cdr streams:" in text

    def test_detach_restores_globals(self, mod):
        sim, obs, _out = run_observed(mod)
        assert get_marshal_meter() is obs
        assert _transfer.get_observer() is obs
        removed = detach_observer(sim.world)
        assert removed is obs
        assert sim.orb.observer is None
        assert get_marshal_meter() is None
        assert _transfer.get_observer() is None
        assert obs.packet_trace not in sim.world.transport.observers


class TestDisabledByDefault:
    def test_no_observer_without_attach(self, mod):
        sim = Simulation()
        assert sim.orb.observer is None
        assert sim.world.transport.observers == []
        assert get_marshal_meter() is None
        assert _transfer.get_observer() is None

    def test_run_unobserved_records_nothing(self, mod):
        sim = Simulation()

        def server_main(ctx):
            class Impl(mod.stats_skel):
                def total(self, xs):
                    return 0.0

                def note(self, x):
                    pass

            ctx.poa.activate(Impl(), "stats", kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_2", nprocs=1)

        def client_main(ctx):
            s = mod.stats._spmd_bind("stats")
            s.total(ctx.dseq(np.arange(4.0)))

        sim.client(client_main, host="HOST_1", nprocs=1)
        sim.run()  # nothing to assert beyond: no observer, no crash


class TestTraceSession:
    def test_merged_runs_get_distinct_pids(self):
        session = TraceSession()
        for i in range(2):
            obs = RequestObserver(label=f"run{i}")
            obs.span("marshal", "op", f"r{i}", "prog", 0, 0.0, 1e-6)
            session.runs.append(obs)
        trace = session.chrome_trace()
        validate_chrome_trace(trace, require_phases=("marshal",))
        pids = {ev["pid"] for ev in trace["traceEvents"]}
        assert len(pids) >= 2

    def test_write_and_reload(self, tmp_path):
        session = TraceSession()
        obs = RequestObserver()
        obs.span("compute", "op", "r", "prog", 0, 0.0, 2.0)
        session.runs.append(obs)
        path = tmp_path / "trace.json"
        session.write(str(path))
        import json

        reloaded = json.loads(path.read_text())
        assert validate_chrome_trace(reloaded,
                                     require_phases=("compute",)) > 0


class TestValidation:
    def test_rejects_malformed(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace([])
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "ts": 0.0}]})
        with pytest.raises(ValueError, match="no spans"):
            validate_chrome_trace({"traceEvents": []},
                                  require_phases=("compute",))

    def test_phase_lists_cover_span_sites(self):
        assert set(CLIENT_PHASES) & set(SERVER_PHASES) == set()


# ---------------------------------------------------------------------------
# Bounded stores: the ring buffers shed oldest-first and count every loss
# ---------------------------------------------------------------------------


class TestBoundedStores:
    def test_span_ring_buffer_sheds_oldest(self):
        obs = RequestObserver(span_capacity=4)
        for i in range(10):
            obs.span("compute", "op", f"r{i}", "prog", 0, float(i), i + 0.5)
        assert len(obs.spans) == 4
        assert obs.spans.dropped == 6
        assert [s.req for s in obs.spans] == ["r6", "r7", "r8", "r9"]

    def test_request_store_bounded(self):
        obs = RequestObserver(span_capacity=3)
        for i in range(5):
            obs.request_started(f"r{i}", "op", "prog", 0, float(i))
        assert len(obs.requests) == 3
        assert obs.requests_dropped == 2
        # the survivors are the most recent three
        assert {req for (req, _p, _r) in obs.requests} == {"r2", "r3", "r4"}

    def test_packet_ring_buffer_counts_drops(self):
        from types import SimpleNamespace

        obs = RequestObserver(packet_capacity=2)
        for _ in range(5):
            obs.packet_trace(SimpleNamespace(
                send_time=0.0, arrival=1e-3, src="a:0", dst="b:0",
                tag=0, nbytes=8))
        assert len(obs.packet_trace) == 2
        assert obs.packet_trace.dropped == 3
        assert "3 oldest records dropped" in obs.packet_trace.summary()

    def test_report_surfaces_store_drops(self):
        obs = RequestObserver(span_capacity=2)
        for i in range(4):
            obs.span("compute", "op", f"r{i}", "prog", 0, 0.0, 1.0)
        assert "store drops: 2 spans" in obs.report()

    def test_report_surfaces_dead_letters(self):
        from types import SimpleNamespace

        obs = RequestObserver()
        obs.span("compute", "op", "r", "prog", 0, 0.0, 1.0)
        obs.orb = SimpleNamespace(dead_fragments=2, dead_result_fragments=1)
        assert ("dead-lettered: 2 argument fragments, 1 result fragments"
                in obs.report())

    def test_unbounded_when_capacity_is_none(self):
        obs = RequestObserver(span_capacity=None, packet_capacity=None)
        for i in range(100):
            obs.span("compute", "op", f"r{i}", "prog", 0, 0.0, 1.0)
            obs.request_started(f"r{i}", "op", "prog", 0, 0.0)
        assert len(obs.spans) == 100
        assert obs.spans.dropped == 0
        assert obs.requests_dropped == 0


# ---------------------------------------------------------------------------
# Stitched trees and cross-world flow arrows
# ---------------------------------------------------------------------------


def _annotated(obs, phase, req, program, rank, t0, t1, trace, span, parent,
               op="work"):
    obs.spans.append(Span(phase, op, req, program, rank, t0, t1, 0,
                          trace, span, parent))


class TestTraceTreeAndFlows:
    def test_trace_tree_renders_hops_and_rank_envelopes(self):
        obs = RequestObserver()
        _annotated(obs, "marshal", "1", "cli", 0, 0.0, 0.1, "t1", "c:1", "")
        _annotated(obs, "wait", "1", "cli", 1, 0.05, 0.4, "t1", "c:1", "")
        _annotated(obs, "dispatch", "1", "srv", 0, 0.2, 0.3, "t1", "s:1",
                   "c:1")
        tree = obs.trace_tree()
        assert tree.startswith("trace t1 — 2 node(s)")
        assert "client work @cli [ranks 0-1]" in tree
        assert "server work @srv [rank 0]" in tree
        assert "+0.200000s after parent" in tree

    def test_trace_tree_without_tracer_notes_absence(self):
        obs = RequestObserver()
        obs.span("compute", "op", "r", "prog", 0, 0.0, 1.0)
        assert "no annotated spans" in obs.trace_tree()

    def test_cross_world_edges_emit_matched_flow_events(self):
        obs = RequestObserver()
        _annotated(obs, "marshal", "1", "cli", 0, 0.0, 0.4, "t1", "c:1", "")
        _annotated(obs, "dispatch", "1", "srv", 0, 0.2, 0.3, "t1", "s:1",
                   "c:1")
        trace = obs.chrome_trace()
        flows = [ev for ev in trace["traceEvents"] if ev.get("cat") == "flow"]
        assert {ev["ph"] for ev in flows} == {"s", "f"}
        assert {ev["id"] for ev in flows} == {"s:1"}
        n = validate_chrome_trace(trace, require_flow_events=1)
        assert n == len(trace["traceEvents"])

    def test_same_program_nesting_emits_no_flow_arrows(self):
        obs = RequestObserver()
        _annotated(obs, "marshal", "1", "cli", 0, 0.0, 0.4, "t1", "c:1", "")
        _annotated(obs, "marshal", "2", "cli", 0, 0.1, 0.2, "t1", "c:2",
                   "c:1")
        trace = obs.chrome_trace()
        assert not [ev for ev in trace["traceEvents"]
                    if ev.get("cat") == "flow"]

    def test_validation_enforces_flow_event_floor(self):
        obs = RequestObserver()
        obs.span("compute", "op", "r", "prog", 0, 0.0, 1.0)
        with pytest.raises(ValueError, match="flow event"):
            validate_chrome_trace(obs.chrome_trace(), require_flow_events=1)

    def test_validation_rejects_unmatched_flow(self):
        trace = {"traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "ts": 0.0, "dur": 1.0},
            {"name": "trace", "cat": "flow", "ph": "s", "id": "a",
             "ts": 0.0, "pid": 1},
        ]}
        with pytest.raises(ValueError, match="unmatched flow"):
            validate_chrome_trace(trace)
