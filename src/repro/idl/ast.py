"""Abstract syntax tree for the PARDIS IDL."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

# ---------------------------------------------------------------------------
# Type expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrimType:
    """octet/boolean/char/short/ushort/long/ulong/longlong/ulonglong/
    float/double — already normalized (``unsigned long`` -> ``ulong``)."""

    name: str


@dataclass(frozen=True)
class StringType:
    bound: Optional[int] = None


@dataclass(frozen=True)
class SeqType:
    element: "TypeExpr"
    bound: Optional[int] = None


@dataclass(frozen=True)
class DSeqType:
    """PARDIS distributed sequence (paper §3.2)."""

    element: "TypeExpr"
    bound: Optional[int] = None
    client_dist: str = "BLOCK"
    server_dist: str = "BLOCK"


@dataclass(frozen=True)
class ArrayType:
    """Fixed-size array introduced by a declarator: ``T name[d0][d1]``."""

    element: "TypeExpr"
    dims: tuple  # of ConstExpr


@dataclass(frozen=True)
class NamedType:
    """Reference to a declared type by (possibly scoped) name."""

    scoped_name: tuple[str, ...]

    @property
    def text(self) -> str:
        return "::".join(self.scoped_name)


@dataclass(frozen=True)
class VoidType:
    pass


TypeExpr = Union[PrimType, StringType, SeqType, DSeqType, NamedType,
                 ArrayType, VoidType]

# ---------------------------------------------------------------------------
# Const expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object  # int | float | str | bool


@dataclass(frozen=True)
class ConstRef:
    scoped_name: tuple[str, ...]


@dataclass(frozen=True)
class UnaryExpr:
    op: str
    operand: "ConstExpr"


@dataclass(frozen=True)
class BinaryExpr:
    op: str
    left: "ConstExpr"
    right: "ConstExpr"


ConstExpr = Union[Literal, ConstRef, UnaryExpr, BinaryExpr]

# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Pragma:
    """``#pragma PACKAGE:structure`` — applies to the next dsequence typedef
    (paper §3.4/§4.3).  Several pragmas may stack onto one typedef."""

    package: str
    target: str
    line: int = 0


@dataclass
class Typedef:
    name: str
    type: TypeExpr
    pragmas: list[Pragma] = field(default_factory=list)


@dataclass
class ConstDecl:
    name: str
    type: TypeExpr
    value: ConstExpr


@dataclass
class StructMember:
    name: str
    type: TypeExpr


@dataclass
class StructDecl:
    name: str
    members: list[StructMember]


@dataclass
class EnumDecl:
    name: str
    members: list[str]


@dataclass
class UnionCase:
    """One arm of a union: labels is a list of ConstExpr, or the string
    "default" for the default arm."""

    labels: list
    name: str
    type: TypeExpr


@dataclass
class UnionDecl:
    name: str
    discriminator: TypeExpr
    cases: list


@dataclass
class ExceptionDecl:
    name: str
    members: list[StructMember]


@dataclass
class Param:
    direction: str  # "in" | "out" | "inout"
    type: TypeExpr
    name: str


@dataclass
class Operation:
    name: str
    return_type: TypeExpr
    params: list[Param]
    oneway: bool = False
    raises: list[NamedType] = field(default_factory=list)


@dataclass
class Attribute:
    name: str
    type: TypeExpr
    readonly: bool = False


@dataclass
class InterfaceDecl:
    name: str
    bases: list[NamedType]
    body: list  # Operation | Attribute | Typedef | ConstDecl | ...


@dataclass
class ModuleDecl:
    name: str
    body: list


@dataclass
class Specification:
    """A parsed IDL file."""

    definitions: list
