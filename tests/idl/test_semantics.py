"""Semantic analysis tests."""

import pytest

from repro.cdr import DSequenceTC, SequenceTC, StringTC, TC_DOUBLE, TC_LONG
from repro.idl import compile_spec
from repro.idl.semantics import IdlSemanticError


def test_typedef_resolves_to_typecode():
    spec = compile_spec("typedef sequence<double> v;")
    assert spec.typedefs[0].tc == SequenceTC(TC_DOUBLE, None)


def test_const_evaluation_with_arithmetic():
    spec = compile_spec("const long N = 128; const long M = N * N - 1;")
    assert [c.value for c in spec.consts] == [128, 128 * 128 - 1]


def test_const_hex_and_shift():
    spec = compile_spec("const long A = 0x10 << 2;")
    assert spec.consts[0].value == 64


def test_const_string():
    spec = compile_spec('const string GREETING = "hello";')
    assert spec.consts[0].value == "hello"


def test_const_type_mismatch():
    with pytest.raises(IdlSemanticError, match="integer"):
        compile_spec('const long N = "nope";')


def test_const_division_by_zero():
    with pytest.raises(IdlSemanticError, match="zero"):
        compile_spec("const long N = 1 / 0;")


def test_bound_uses_const():
    spec = compile_spec("const long N = 4; typedef dsequence<double, N*N> f;")
    assert spec.typedefs[-1].tc.bound == 16


def test_bound_must_be_positive_integer():
    with pytest.raises(IdlSemanticError, match="positive"):
        compile_spec("typedef sequence<double, 0> v;")
    with pytest.raises(IdlSemanticError, match="positive"):
        compile_spec("const double X = 1.5; typedef sequence<double, X> v;")


def test_unknown_type():
    with pytest.raises(IdlSemanticError, match="mystery"):
        compile_spec("typedef mystery t;")


def test_use_before_declaration_rejected():
    with pytest.raises(IdlSemanticError, match="unknown name"):
        compile_spec("typedef later t; typedef long later;")


def test_duplicate_definition():
    with pytest.raises(IdlSemanticError, match="duplicate"):
        compile_spec("typedef long t; typedef double t;")


def test_duplicate_enum_member():
    with pytest.raises(IdlSemanticError, match="duplicate"):
        compile_spec("enum e { A, A };")


def test_enum_member_usable_as_const():
    spec = compile_spec("enum e { A, B, C }; const long N = C;")
    assert spec.consts[0].value == 2


def test_nested_dsequence_rejected():
    with pytest.raises(IdlSemanticError, match="nested"):
        compile_spec("typedef dsequence<dsequence<double>> bad;")


def test_nested_dsequence_via_typedef_rejected():
    with pytest.raises(IdlSemanticError, match="nested"):
        compile_spec("""
            typedef dsequence<double> inner;
            typedef dsequence<inner> bad;
        """)


def test_dsequence_of_sequence_allowed():
    spec = compile_spec("typedef dsequence<sequence<double>> matrix;")
    tc = spec.typedefs[0].tc
    assert isinstance(tc, DSequenceTC)
    assert isinstance(tc.element, SequenceTC)


def test_module_scoping():
    spec = compile_spec("""
        module M {
            typedef long t;
            interface i { void f(in t x); };
        };
    """)
    iface = spec.interfaces[0]
    assert iface.qname == ("M", "i")
    assert iface.ops[0].params[0].tc == TC_LONG


def test_scoped_name_lookup_across_modules():
    spec = compile_spec("""
        module A { typedef string<8> name; };
        interface i { void f(in A::name n); };
    """)
    assert spec.interfaces[0].ops[0].params[0].tc == StringTC(8)


def test_interface_inheritance_collects_ops():
    spec = compile_spec("""
        interface base { void f(); };
        interface derived : base { void g(); };
    """)
    derived = spec.interface("derived")
    assert [op.name for op in derived.all_ops()] == ["f", "g"]


def test_diamond_inheritance_dedupes():
    spec = compile_spec("""
        interface a { void f(); };
        interface b : a { void g(); };
        interface c : a { void h(); };
        interface d : b, c { void i(); };
    """)
    names = [op.name for op in spec.interface("d").all_ops()]
    assert sorted(names) == ["f", "g", "h", "i"]
    assert len(names) == 4


def test_operation_override_rejected():
    with pytest.raises(IdlSemanticError, match="overloading"):
        compile_spec("""
            interface base { void f(); };
            interface derived : base { void f(); };
        """)


def test_inherit_from_non_interface():
    with pytest.raises(IdlSemanticError, match="non-interface"):
        compile_spec("typedef long t; interface i : t { void f(); };")


def test_duplicate_operation_rejected():
    with pytest.raises(IdlSemanticError, match="overloading"):
        compile_spec("interface i { void f(); void f(); };")


def test_duplicate_param_rejected():
    with pytest.raises(IdlSemanticError, match="duplicate"):
        compile_spec("interface i { void f(in long x, in long x); };")


def test_raises_must_be_exception():
    with pytest.raises(IdlSemanticError, match="non-exception"):
        compile_spec("""
            struct s { long v; };
            interface i { void f() raises (s); };
        """)


def test_exception_not_usable_as_type():
    with pytest.raises(IdlSemanticError, match="data type"):
        compile_spec("""
            exception e { string why; };
            interface i { void f(in e x); };
        """)


def test_interface_param_becomes_object_reference():
    from repro.cdr import ObjectRefTC

    spec = compile_spec("""
        interface other { void g(); };
        interface i { void f(in other x); };
    """)
    tc = spec.interface("i").ops[0].params[0].tc
    assert tc == ObjectRefTC("IDL:other:1.0")


def test_plain_object_type_is_wildcard_reference():
    from repro.cdr import ObjectRefTC

    spec = compile_spec("interface i { void f(in Object o); };")
    assert spec.interface("i").ops[0].params[0].tc == ObjectRefTC(None)


def test_oneway_constraints():
    with pytest.raises(IdlSemanticError, match="oneway"):
        compile_spec("interface i { oneway long f(); };")
    with pytest.raises(IdlSemanticError, match="oneway"):
        compile_spec("interface i { oneway void f(out long x); };")


def test_pragma_on_non_dsequence_rejected():
    with pytest.raises(IdlSemanticError, match="dsequence"):
        compile_spec("#pragma POOMA:field\ntypedef sequence<double> v;")


def test_pragma_recorded_on_typedef():
    spec = compile_spec("""
        #pragma POOMA:field
        typedef dsequence<double, 16> f;
    """)
    assert spec.typedefs[0].pragmas[0].package == "POOMA"


def test_operation_distributed_flag():
    spec = compile_spec("""
        typedef dsequence<double> v;
        interface i {
            void f(in v x);
            void g(in long n);
        };
    """)
    ops = {op.name: op for op in spec.interfaces[0].ops}
    assert ops["f"].has_distributed_args is True
    assert ops["g"].has_distributed_args is False


def test_attribute_cannot_be_distributed():
    with pytest.raises(IdlSemanticError, match="distributed"):
        compile_spec("""
            typedef dsequence<double> v;
            interface i { attribute v data; };
        """)


def test_absolute_scoped_name():
    spec = compile_spec("""
        typedef long t;
        module M {
            typedef double t;
            interface i { void f(in ::t x); };
        };
    """)
    assert spec.interfaces[0].ops[0].params[0].tc == TC_LONG
