"""Compute-utilization metering."""

import pytest

from repro.core import Simulation
from repro.tools import ComputeMeter, attach_meter


def test_meter_accumulates_per_node():
    sim = Simulation()
    meter = attach_meter(sim.world)

    def main(ctx):
        ctx.compute(1.0 + ctx.rank)

    sim.client(main, host="HOST_1", nprocs=2)
    elapsed = sim.run()
    assert meter.busy_seconds("HOST_1", 0) == pytest.approx(1.0)
    assert meter.busy_seconds("HOST_1", 1) == pytest.approx(2.0)
    assert meter.busy_seconds("HOST_1") == pytest.approx(3.0)
    util = meter.utilization("HOST_1", nodes=2, elapsed=elapsed)
    assert 0.7 < util <= 1.0


def test_meter_report_format():
    sim = Simulation()
    meter = attach_meter(sim.world)
    sim.client(lambda ctx: ctx.compute(0.5), host="HOST_1")
    sim.run()
    report = meter.report(0.5)
    assert "HOST_1" in report
    assert "%" in report


def test_meter_empty_edge_cases():
    m = ComputeMeter()
    assert m.busy_seconds("nowhere") == 0.0
    assert m.utilization("nowhere", nodes=0, elapsed=0.0) == 0.0


def test_pipeline_utilization_diagnoses_flattening():
    """At high processor counts the diffusion nodes sit mostly idle —
    the utilization view of the Fig-5 flattening."""
    from repro.experiments.fig5_pipeline import _network
    from repro.apps.diffusion import diffusion_client_main
    from repro.apps.visualizer import visualizer_server_main

    utils = {}
    for procs in (1, 8):
        sim = Simulation(network=_network())
        meter = attach_meter(sim.world)
        sim.server(visualizer_server_main, host="SGI_PC", nprocs=1,
                   node_offset=9, args=("diff_visualizer",))
        reports = {}
        sim.client(diffusion_client_main, host="SGI_PC", nprocs=procs,
                   args=(20, 5, 32, 0.1, None, "diff_visualizer", reports))
        elapsed = sim.run()
        utils[procs] = meter.utilization("SGI_PC", nodes=procs,
                                         elapsed=elapsed)
    assert utils[8] < utils[1]
