"""Repositories, activation agents, namespaces, local bypass, flow
control and communication-thread offload."""

import numpy as np
import pytest

from repro.core import (
    ActivationError,
    ObjectNotFound,
    OrbConfig,
    Simulation,
)
from repro.core.repository import ObjectRef, ObjectRepository
from repro.idl import compile_idl

PING_IDL = """
    interface ping {
        long echo(in long x);
    };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(PING_IDL, module_name="ping_stubs_svc")


def make_servant(mod, log=None):
    class PingImpl(mod.ping_skel):
        def echo(self, x):
            if log is not None:
                log.append(x)
            return x

    return PingImpl()


def server_main_factory(mod, name="pinger", log=None):
    def server_main(ctx):
        ctx.poa.activate(make_servant(mod, log), name, kind="spmd")
        ctx.poa.impl_is_ready()

    return server_main


class TestObjectRepository:
    def _ref(self, name="o"):
        return ObjectRef(name=name, repo_id="IDL:x:1.0", kind="single",
                         program_id=0, host="h", nthreads=1, owner_rank=0,
                         endpoints=())

    def test_register_lookup(self):
        repo = ObjectRepository("ns")
        repo.register(self._ref("a"))
        assert repo.lookup("a").name == "a"
        assert repo.contains("a")
        assert repo.names() == ["a"]

    def test_duplicate_rejected(self):
        repo = ObjectRepository()
        repo.register(self._ref("a"))
        with pytest.raises(ValueError, match="already"):
            repo.register(self._ref("a"))

    def test_unknown_lookup(self):
        with pytest.raises(ObjectNotFound):
            ObjectRepository().lookup("ghost")

    def test_unregister(self):
        repo = ObjectRepository()
        repo.register(self._ref("a"))
        repo.unregister("a")
        assert not repo.contains("a")
        repo.unregister("a")  # idempotent


class TestActivation:
    def test_on_demand_activation(self, mod):
        """Binding to a non-running object launches its server via the
        activation agent and the Implementation Repository."""
        sim = Simulation()
        sim.register_implementation(
            "pinger", server_main_factory(mod), host="HOST_2", nprocs=2)
        result = {}

        def client_main(ctx):
            p = mod.ping._bind("pinger")
            result["echo"] = p.echo(7)
            result["time"] = ctx.now()

        sim.client(client_main, host="HOST_1")
        sim.run()
        assert result["echo"] == 7
        assert result["time"] > 0

    def test_activation_happens_once(self, mod):
        sim = Simulation()
        sim.register_implementation(
            "pinger", server_main_factory(mod), host="HOST_2", nprocs=1)

        def client_main(ctx):
            a = mod.ping._bind("pinger")
            b = mod.ping._bind("pinger")
            return a.echo(1) + b.echo(2)

        sim.client(client_main, host="HOST_1")
        sim.client(client_main, host="HOST_1", node_offset=1)
        sim.run()
        servers = [p for p in sim.world.programs if "pinger" in p.name]
        assert len(servers) == 1

    def test_non_activating_mode(self, mod):
        """Paper §2.2: the programmer can configure the system to work in
        an activating and non-activating mode."""
        sim = Simulation()
        sim.register_implementation(
            "pinger", server_main_factory(mod), host="HOST_2", nprocs=1)
        sim.orb.set_activating("HOST_2", False)
        result = {}

        def client_main(ctx):
            with pytest.raises(ActivationError):
                mod.ping._bind("pinger")
            result["ok"] = True

        sim.client(client_main, host="HOST_1")
        sim.run()
        assert result["ok"]

    def test_no_record_no_agent(self, mod):
        sim = Simulation()

        def client_main(ctx):
            with pytest.raises(ObjectNotFound):
                mod.ping._bind("never-registered")

        sim.client(client_main, host="HOST_1")
        sim.run()


class TestNamespaces:
    def test_namespace_isolation(self, mod):
        """Configuring clients and servers with different repositories
        splits the namespace (paper §2.2)."""
        sim = Simulation()
        sim.server(server_main_factory(mod), host="HOST_2", nprocs=1,
                   namespace="blue")
        result = {}

        def red_client(ctx):
            with pytest.raises(ObjectNotFound):
                mod.ping._bind("pinger")
            result["red"] = True

        def blue_client(ctx):
            result["blue"] = mod.ping._bind("pinger").echo(3)

        sim.client(red_client, host="HOST_1", namespace="red")
        sim.client(blue_client, host="HOST_1", namespace="blue",
                   node_offset=1)
        sim.run()
        assert result == {"red": True, "blue": 3}

    def test_same_name_in_two_namespaces(self, mod):
        sim = Simulation()
        log_a, log_b = [], []
        sim.server(server_main_factory(mod, log=log_a), host="HOST_2",
                   nprocs=1, namespace="a")
        sim.server(server_main_factory(mod, log=log_b), host="HOST_2",
                   nprocs=1, namespace="b", node_offset=1)

        def client(ctx, ns_log_val):
            mod.ping._bind("pinger").echo(ns_log_val)

        sim.client(client, host="HOST_1", namespace="a", args=(1,))
        sim.client(client, host="HOST_1", namespace="b", node_offset=1,
                   args=(2,))
        sim.run()
        assert log_a == [1] and log_b == [2]


class TestLocalBypass:
    def test_local_invocation_bypasses_network(self, mod):
        """§4.1: invocation on a local object becomes a direct call to the
        object, bypassing the network transport."""
        sim = Simulation()
        result = {}

        def main(ctx):
            servant = make_servant(mod)
            ctx.poa.activate(servant, "pinger", kind="spmd")
            p = mod.ping._bind("pinger")
            packets_before = sim.world.transport.packets_sent
            t0 = ctx.now()
            result["echo"] = p.echo(9)
            result["dt"] = ctx.now() - t0
            result["packets"] = sim.world.transport.packets_sent - packets_before
            result["bypasses"] = sim.orb.local_bypasses

        sim.client(main, host="HOST_1")
        sim.run()
        assert result["echo"] == 9
        assert result["packets"] == 0
        assert result["bypasses"] == 1
        assert result["dt"] < 1e-4  # microseconds, not network time

    def test_switching_host_changes_only_binding(self, mod):
        """The Fig-2 development story: the same client code works whether
        the object is local or remote."""
        for remote in (False, True):
            sim = Simulation()
            if remote:
                sim.server(server_main_factory(mod), host="HOST_2", nprocs=1)
            result = {}

            def main(ctx):
                if not remote:
                    ctx.poa.activate(make_servant(mod), "pinger", kind="spmd")
                p = mod.ping._bind("pinger")
                result["echo"] = p.echo(5)
                result["local"] = p._is_local

            sim.client(main, host="HOST_1")
            sim.run()
            assert result["echo"] == 5
            assert result["local"] is (not remote)


class TestFlowControl:
    def test_max_outstanding_limits_pipeline(self, mod):
        """With one outstanding request per binding (the default), a new
        non-blocking invocation blocks until the previous reply — the
        §4.3 congestion mechanism."""

        sim = Simulation(config=OrbConfig(max_outstanding=1))
        mod_slow = mod

        class SlowImpl(mod_slow.ping_skel):
            def __init__(self, ctx):
                self.ctx = ctx

            def echo(self, x):
                self.ctx.compute(1.0)
                return x

        def server_main(ctx):
            ctx.poa.activate(SlowImpl(ctx), "slow", kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_2", nprocs=1)
        result = {}

        def client_main(ctx):
            p = mod_slow.ping._bind("slow")
            t0 = ctx.now()
            f1 = p.echo_nb(1)
            t1 = ctx.now() - t0
            f2 = p.echo_nb(2)   # must wait for f1's reply
            t2 = ctx.now() - t0
            f2.value()
            result.update(t1=t1, t2=t2)

        sim.client(client_main, host="HOST_1")
        sim.run()
        assert result["t1"] < 0.1          # first nb call returns fast
        assert result["t2"] > 0.9          # second waits a full service time

    def test_larger_window_allows_pipelining(self, mod):
        sim = Simulation(config=OrbConfig(max_outstanding=4))

        class SlowImpl(mod.ping_skel):
            def __init__(self, ctx):
                self.ctx = ctx

            def echo(self, x):
                self.ctx.compute(1.0)
                return x

        def server_main(ctx):
            ctx.poa.activate(SlowImpl(ctx), "slow", kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_2", nprocs=1)
        result = {}

        def client_main(ctx):
            p = mod.ping._bind("slow")
            t0 = ctx.now()
            futs = [p.echo_nb(i) for i in range(3)]
            result["issue_time"] = ctx.now() - t0
            result["values"] = [f.value() for f in futs]

        sim.client(client_main, host="HOST_1")
        sim.run()
        assert result["issue_time"] < 0.1
        assert result["values"] == [0, 1, 2]


class TestCommunicationThreads:
    def test_offload_reduces_sender_time(self, mod):
        """The §6 future-work experiment: delegating sends to a
        communication thread frees the computing thread from paying
        serialization time."""
        IDL = """
            typedef dsequence<double, 1000000> bigvec;
            interface sink { void put(in bigvec v); };
        """
        big = compile_idl(IDL, module_name="sink_stubs_ct")

        times = {}
        for offload in (False, True):
            sim = Simulation(config=OrbConfig(
                communication_threads=offload, max_outstanding=8))

            class SinkImpl(big.sink_skel):
                def put(self, v):
                    return None

            def server_main(ctx):
                ctx.poa.activate(SinkImpl(), "sink", kind="spmd")
                ctx.poa.impl_is_ready()

            sim.server(server_main, host="HOST_2", nprocs=1)

            def client_main(ctx):
                s = big.sink._bind("sink")
                v = np.ones(200_000)  # 1.6 MB
                t0 = ctx.now()
                s.put_nb(v)
                times[offload] = ctx.now() - t0

            sim.client(client_main, host="HOST_1")
            sim.run()
        assert times[True] < times[False] / 2
