"""Tests for the 2-D POOMA decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.packages.pooma.layout2d import (
    Field2D,
    GridLayout2D,
    diffusion_step_2d,
)
from repro.runtime import PoomaRuntime

from ..runtime.conftest import make_world
from .test_pooma import reference_diffusion


def run_contexts(nprocs, main):
    world = make_world(nodes=max(nprocs, 2))
    prog = world.launch(main, host="hostA", nprocs=nprocs,
                        rts_factory=PoomaRuntime)
    world.run()
    return prog.results


class TestGridLayout2D:
    def test_coords_roundtrip(self):
        lay = GridLayout2D(8, 8, 2, 3)
        for rank in range(6):
            ry, rx = lay.coords(rank)
            assert lay.rank_at(ry, rx) == rank

    def test_tile_shapes_cover_grid(self):
        lay = GridLayout2D(7, 5, 2, 2)
        total = sum(r * c for r, c in
                    (lay.local_shape(k) for k in range(lay.p)))
        assert total == 35

    def test_neighbors(self):
        lay = GridLayout2D(6, 6, 2, 2)
        assert lay.neighbors(0) == {"up": None, "down": 2,
                                    "left": None, "right": 1}
        assert lay.neighbors(3) == {"up": 1, "down": None,
                                    "left": 2, "right": None}

    def test_invalid(self):
        with pytest.raises(ValueError):
            GridLayout2D(2, 2, 3, 1)
        with pytest.raises(ValueError):
            GridLayout2D(0, 2, 1, 1)
        with pytest.raises(ValueError):
            GridLayout2D(4, 4, 2, 2).coords(4)

    @settings(max_examples=40, deadline=None)
    @given(ny=st.integers(1, 20), nx=st.integers(1, 20),
           py=st.integers(1, 4), px=st.integers(1, 4))
    def test_property_flat_distribution_partitions(self, ny, nx, py, px):
        if py > ny or px > nx:
            return
        d = GridLayout2D(ny, nx, py, px).flat_distribution()
        assert sum(d.counts) == ny * nx
        if ny * nx:
            d.validate()


class TestField2D:
    def test_initial_from_global(self):
        lay = GridLayout2D(4, 6, 2, 2)
        init = np.arange(24.0).reshape(4, 6)
        f = Field2D(lay, rank=3, initial=init)
        np.testing.assert_array_equal(f.interior, init[2:4, 3:6])

    def test_fill_global_coordinates(self):
        lay = GridLayout2D(4, 4, 2, 2)
        f = Field2D(lay, rank=3)
        f.fill(lambda y, x: y * 10.0 + x)
        assert f.interior[0, 0] == 22.0

    def test_bad_initial_shape(self):
        lay = GridLayout2D(4, 4, 2, 2)
        with pytest.raises(ValueError, match="shape"):
            Field2D(lay, 0, initial=np.zeros((3, 5)))

    def test_ghost_exchange_includes_corners(self):
        """The two-phase exchange gives diagonal neighbours' values in the
        corner ghost cells (what 9-point stencils need)."""

        def main(rts):
            lay = GridLayout2D(4, 4, 2, 2)
            f = Field2D(lay, rts.rank, rts)
            f.interior = np.full(lay.local_shape(rts.rank),
                                 float(rts.rank))
            f.exchange_ghosts()
            if rts.rank == 0:
                # my bottom-right corner ghost comes from rank 3
                return f.data[-1, -1]
            return None

        res = run_contexts(4, main)
        assert res[0] == 3.0

    def test_assemble(self):
        def main(rts):
            lay = GridLayout2D(5, 4, 2, 2)
            f = Field2D(lay, rts.rank, rts)
            f.fill(lambda y, x: y * 100.0 + x)
            return f.assemble(root=0)

        res = run_contexts(4, main)
        expected = np.add.outer(np.arange(5) * 100.0, np.arange(4.0))
        np.testing.assert_array_equal(res[0], expected)


class TestDiffusion2D:
    @pytest.mark.parametrize("py,px", [(1, 1), (2, 2), (2, 3), (3, 2)])
    def test_matches_sequential_reference(self, py, px):
        ny = nx = 12
        steps = 5
        init = np.zeros((ny, nx))
        init[5:7, 5:7] = 100.0
        expected = reference_diffusion(init, steps)

        def main(rts):
            lay = GridLayout2D(ny, nx, py, px)
            f = Field2D(lay, rts.rank, rts, initial=init)
            for _ in range(steps):
                diffusion_step_2d(f, alpha=0.1)
            return f.assemble(root=0)

        res = run_contexts(py * px, main)
        np.testing.assert_allclose(res[0], expected, atol=1e-12)

    def test_2d_tiling_matches_row_decomposition(self):
        """Both decompositions of the same problem agree exactly."""
        from repro.packages.pooma import Field, GridLayout, diffusion_step

        ny = nx = 10
        init = np.random.default_rng(3).uniform(0, 1, (ny, nx))

        def rows_main(rts):
            f = Field(GridLayout(ny, nx, rts.nprocs), rts.rank, rts,
                      initial=init)
            for _ in range(4):
                diffusion_step(f)
            return f.assemble(root=0)

        def tiles_main(rts):
            f = Field2D(GridLayout2D(ny, nx, 2, 2), rts.rank, rts,
                        initial=init)
            for _ in range(4):
                diffusion_step_2d(f)
            return f.assemble(root=0)

        rows = run_contexts(4, rows_main)[0]
        tiles = run_contexts(4, tiles_main)[0]
        np.testing.assert_allclose(rows, tiles, atol=1e-12)

    def test_charges_time(self):
        def main(rts):
            f = Field2D(GridLayout2D(8, 8, 1, 1), 0, rts)
            t0 = rts.now()
            diffusion_step_2d(f)
            return rts.now() - t0

        assert run_contexts(1, main)[0] > 0
