"""Collective operations layered over the minimal RTS contract.

The paper restricts the RTS interface to basic point-to-point primitives;
everything collective (barriers, broadcasts, the gathers/scatters used by
the argument-transfer engine) is built here, on top, and therefore works
identically over every RTS backend.

Each collective call consumes one tag from a per-thread rotating window
(:func:`repro.runtime.tags.collective_tag`).  Because SPMD threads invoke
collectives in the same order, the counters — and hence the tags — agree
across ranks without any negotiation.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..netsim import estimate_nbytes
from .interface import RuntimeSystem
from .tags import collective_tag


def _next_tag(rts: RuntimeSystem) -> int:
    seq = getattr(rts, "_coll_seq", 0)
    rts._coll_seq = seq + 1
    return collective_tag(seq)


def bcast(rts: RuntimeSystem, value: Any = None, root: int = 0,
          nbytes: Optional[int] = None) -> Any:
    """Binomial-tree broadcast; returns the root's value on every rank."""
    tag = _next_tag(rts)
    size, rank = rts.nprocs, rts.rank
    vrank = (rank - root) % size
    mask = 1
    # Receive phase: find my parent.
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            value = rts.recv(src=parent, tag=tag).payload
            break
        mask <<= 1
    else:
        mask = 1 << max(0, size.bit_length())
    # Send phase: forward to children below my break-out mask.
    mask >>= 1
    while mask:
        if vrank + mask < size and vrank & (mask - 1) == 0 and not (vrank & mask):
            child = ((vrank + mask) + root) % size
            rts.send_reserved(child, value, tag, nbytes=nbytes)
        mask >>= 1
    return value


def gather(rts: RuntimeSystem, value: Any, root: int = 0) -> Optional[list]:
    """Gather one value per rank to ``root`` (rank order); ``None`` elsewhere."""
    tag = _next_tag(rts)
    if rts.rank == root:
        out = [None] * rts.nprocs
        out[root] = value
        for src in range(rts.nprocs):
            if src != root:
                out[src] = rts.recv(src=src, tag=tag).payload
        return out
    rts.send_reserved(root, value, tag)
    return None


def scatter(rts: RuntimeSystem, values: Optional[list], root: int = 0) -> Any:
    """Scatter one value per rank from ``root``."""
    tag = _next_tag(rts)
    if rts.rank == root:
        if values is None or len(values) != rts.nprocs:
            raise ValueError("scatter root needs exactly nprocs values")
        for dst in range(rts.nprocs):
            if dst != root:
                rts.send_reserved(dst, values[dst], tag,
                                  nbytes=estimate_nbytes(values[dst]))
        return values[root]
    return rts.recv(src=root, tag=tag).payload


def allgather(rts: RuntimeSystem, value: Any) -> list:
    """Gather to rank 0 then broadcast the assembled list."""
    gathered = gather(rts, value, root=0)
    return bcast(rts, gathered, root=0)


def reduce(rts: RuntimeSystem, value: Any, op: Callable[[Any, Any], Any],
           root: int = 0) -> Any:
    """Binary-tree reduction with operator ``op``; result valid on root."""
    tag = _next_tag(rts)
    size, rank = rts.nprocs, rts.rank
    vrank = (rank - root) % size
    mask = 1
    acc = value
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            rts.send_reserved(parent, acc, tag)
            break
        partner = vrank | mask
        if partner < size:
            other = rts.recv(src=(partner + root) % size, tag=tag).payload
            acc = op(acc, other)
        mask <<= 1
    return acc if rank == root else None


def allreduce(rts: RuntimeSystem, value: Any,
              op: Callable[[Any, Any], Any]) -> Any:
    return bcast(rts, reduce(rts, value, op, root=0), root=0)


def alltoall(rts: RuntimeSystem, values: list) -> list:
    """Personalized all-to-all: ``values[d]`` goes to rank ``d``; returns the
    list indexed by source rank."""
    if len(values) != rts.nprocs:
        raise ValueError("alltoall needs exactly nprocs values")
    tag = _next_tag(rts)
    out = [None] * rts.nprocs
    out[rts.rank] = values[rts.rank]
    # Deterministic exchange order: everyone sends ascending, then receives.
    for dst in range(rts.nprocs):
        if dst != rts.rank:
            rts.send_reserved(dst, values[dst], tag,
                              nbytes=estimate_nbytes(values[dst]))
    for src in range(rts.nprocs):
        if src != rts.rank:
            out[src] = rts.recv(src=src, tag=tag).payload
    return out


def barrier(rts: RuntimeSystem) -> None:
    """All threads synchronize; leaves at the last arrival (plus the cost
    of the two small collective phases)."""
    gather(rts, None, root=0)
    bcast(rts, None, root=0)
