"""Marshaling microbenchmarks (real wall-clock, not virtual time).

The IDL compiler generates marshaling automatically, including for
dynamically-sized nested types (§4.1); these benchmarks measure the CDR
layer's actual throughput so regressions in the hot encode/decode paths
are visible.
"""

import numpy as np
import pytest

from repro.cdr import (
    SequenceTC,
    StringTC,
    StructTC,
    TC_DOUBLE,
    TC_LONG,
    decode,
    encode,
)

FLAT = SequenceTC(TC_DOUBLE)
NESTED = SequenceTC(SequenceTC(TC_DOUBLE))
RECORDS = SequenceTC(StructTC("rec", (
    ("id", TC_LONG), ("name", StringTC()), ("values", SequenceTC(TC_DOUBLE)),
)))


@pytest.mark.benchmark(group="marshal-flat")
@pytest.mark.parametrize("n", [1_000, 100_000])
def test_encode_flat_doubles(benchmark, n):
    data = np.arange(n, dtype=float)
    out = benchmark(encode, FLAT, data)
    benchmark.extra_info["wire_bytes"] = len(out)


@pytest.mark.benchmark(group="marshal-flat")
@pytest.mark.parametrize("n", [1_000, 100_000])
def test_decode_flat_doubles(benchmark, n):
    wire = encode(FLAT, np.arange(n, dtype=float))
    out = benchmark(decode, FLAT, wire)
    assert len(out) == n


@pytest.mark.benchmark(group="marshal-nested")
@pytest.mark.parametrize("rows", [10, 200])
def test_encode_matrix_of_rows(benchmark, rows):
    """The §4.1 matrix shape: dynamically-sized rows."""
    data = [np.arange(rows, dtype=float) for _ in range(rows)]
    out = benchmark(encode, NESTED, data)
    benchmark.extra_info["wire_bytes"] = len(out)


@pytest.mark.benchmark(group="marshal-nested")
@pytest.mark.parametrize("rows", [10, 200])
def test_decode_matrix_of_rows(benchmark, rows):
    wire = encode(NESTED, [np.arange(rows, dtype=float) for _ in range(rows)])
    out = benchmark(decode, NESTED, wire)
    assert len(out) == rows


@pytest.mark.benchmark(group="marshal-records")
def test_roundtrip_heterogeneous_records(benchmark):
    data = [
        {"id": i, "name": f"record-{i}", "values": np.arange(i % 7, dtype=float)}
        for i in range(200)
    ]

    def roundtrip():
        return decode(RECORDS, encode(RECORDS, data))

    out = benchmark(roundtrip)
    assert len(out) == 200


@pytest.mark.benchmark(group="marshal-fastpath")
def test_bulk_fast_path_speedup(benchmark):
    """The numpy fast path must beat element-wise encoding by a wide
    margin — that is why it exists."""
    import time

    from repro.cdr import CdrEncoder

    data = np.arange(50_000, dtype=float)

    def fast():
        return encode(FLAT, data)

    def slow():
        enc = CdrEncoder()
        enc.put_ulong(len(data))
        for v in data:
            enc.put_primitive(TC_DOUBLE, float(v))
        return enc.getvalue()

    wire_fast = benchmark(fast)
    t0 = time.perf_counter()
    wire_slow = slow()
    slow_s = time.perf_counter() - t0
    assert wire_fast == wire_slow
    benchmark.extra_info["elementwise_s"] = round(slow_s, 4)


def _race(fn_a, fn_b, repeats=15, inner=8):
    """Min-of-N timing of two functions with the rounds interleaved, so
    both see the same machine conditions; returns (best_a, best_b) in
    seconds per call."""
    import time

    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn_a()
        best_a = min(best_a, (time.perf_counter() - t0) / inner)
        t0 = time.perf_counter()
        for _ in range(inner):
            fn_b()
        best_b = min(best_b, (time.perf_counter() - t0) / inner)
    return best_a, best_b


@pytest.mark.benchmark(group="marshal-zerocopy")
@pytest.mark.parametrize("nbytes", [64 * 1024, 1024 * 1024],
                         ids=["64KiB", "1MiB"])
def test_zero_copy_fragment_roundtrip_speedup(benchmark, nbytes):
    """The tentpole ablation: a numeric fragment's encode→decode round
    trip on the zero-copy lane (one pooled write, aliasing decode) vs the
    classic lane (three encode copies + a decode copy) must be at least
    2x faster at >= 64 KiB — the acceptance bar for the lane's existence."""
    from repro.cdr import BufferPool, fast_path
    from repro.core.pipeline.courier import fragment_payload, fragment_values

    n = nbytes // 8
    data = np.arange(n, dtype=float)
    pool = BufferPool()

    def roundtrip():
        payload = fragment_payload(TC_DOUBLE, data, pool)
        out = fragment_values(TC_DOUBLE, payload, pool)
        s = float(out[-1])
        release = getattr(payload, "release", None)
        if release is not None:
            release()
        return s

    with fast_path(True):
        assert roundtrip() == float(n - 1)
        buf = fragment_payload(TC_DOUBLE, data, pool)
    with fast_path(False):
        assert roundtrip() == float(n - 1)
        # Wire parity between the lanes, byte for byte.
        assert bytes(buf.view()) == fragment_payload(TC_DOUBLE, data, pool)
    buf.release()

    def fast():
        with fast_path(True):
            return roundtrip()

    def slow():
        with fast_path(False):
            return roundtrip()

    fast_s, slow_s = _race(fast, slow)
    speedup = slow_s / fast_s
    benchmark.extra_info["fast_s"] = round(fast_s, 7)
    benchmark.extra_info["slow_s"] = round(slow_s, 7)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    # The reported timing respects the session's --fast-path flag.
    benchmark(roundtrip)
    assert speedup >= 2.0, (
        f"zero-copy lane only {speedup:.2f}x faster at {nbytes} bytes "
        f"(fast {fast_s * 1e6:.1f} us, slow {slow_s * 1e6:.1f} us)"
    )
