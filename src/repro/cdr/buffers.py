"""Reusable buffers for the CDR zero-copy fragment lane.

The marshaling hot path of a distributed invocation is fragment movement:
every request encodes each thread-to-thread fragment of every distributed
argument, and every reply does the same for distributed results.  The
original lane allocated fresh ``bytes`` per fragment three times over
(``ndarray.tobytes()`` → ``bytearray.extend`` → ``getvalue()``); the fast
lane writes the payload **once**, directly into a buffer borrowed from a
:class:`BufferPool`, and hands the resulting :class:`PooledBuffer` lease
through transfer and decode as a view (see ``docs/PROTOCOL.md``,
"Zero-copy fragment lane").

Lifetime rules (enforced by the courier/POA/request-state code):

* the **encoder** (sending side) acquires the lease; ownership travels
  with the :class:`~repro.core.request.Fragment` that carries it;
* the **consumer** releases it — normally right after the fragment's
  values are inserted into local storage, otherwise whichever drain
  discards the fragment (the POA dead-letter sweep, or the client's
  failed-request drain);
* :meth:`PooledBuffer.release` is idempotent, and a lease that is never
  released is simply reclaimed by the garbage collector — the pool is an
  allocation-rate optimization, never a correctness requirement.

The pool is size-bucketed (powers of two) with a bounded free list per
bucket, so steady-state fragment traffic of a given shape recycles the
same few buffers instead of allocating per request.
"""

from __future__ import annotations

__all__ = [
    "BufferPool",
    "PooledBuffer",
    "ZeroCopyStats",
    "fast_path",
    "fast_path_enabled",
    "get_pool",
    "set_fast_path",
    "set_pool",
]

#: Smallest bucket capacity; sub-256-byte payloads share one bucket.
_MIN_BUCKET = 256

#: Buffers kept per bucket.  SPMD traffic needs roughly (threads in
#: flight x fragments per thread) concurrent leases of one size; beyond
#: the bound, releases simply drop the buffer for the GC.
_MAX_FREE_PER_BUCKET = 16


class ZeroCopyStats:
    """Counters for the zero-copy lane and its pool.

    ``fast_encodes``/``fast_decodes`` count fragments that took the bulk
    lane; ``fallback_encodes``/``fallback_decodes`` count fragments that
    fell back to the element-wise CDR stream (non-numeric elements, list
    data, or the lane disabled).  ``borrows``/``returns`` track lease
    balance — they must match once all in-flight fragments are consumed,
    which is what the exception-path regression tests assert.
    """

    __slots__ = ("fast_encodes", "fast_decodes", "fallback_encodes",
                 "fallback_decodes", "bytes_fast", "borrows", "returns",
                 "pool_hits", "pool_misses")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    @property
    def outstanding(self) -> int:
        """Leases borrowed but not yet returned."""
        return self.borrows - self.returns

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (f"<ZeroCopyStats fast={self.fast_encodes}/"
                f"{self.fast_decodes} fallback={self.fallback_encodes}/"
                f"{self.fallback_decodes} leases={self.borrows}/"
                f"{self.returns}>")


class PooledBuffer:
    """One borrowed buffer: ``data[:length]`` is the wire payload.

    Supports ``len()`` and the parts of the ``bytes`` protocol the
    transport and the fragment consumers need.  ``release()`` returns the
    backing storage to the pool; any view taken before release must not
    be read afterwards (the storage may be re-leased and overwritten).
    """

    __slots__ = ("pool", "data", "length", "released", "views")

    def __init__(self, pool: "BufferPool", data: bytearray,
                 length: int, views: dict) -> None:
        self.pool = pool
        self.data = data
        self.length = length
        self.released = False
        #: per-dtype (writable, readonly) full-buffer ndarray views,
        #: created lazily by the CDR bulk lanes and recycled with the
        #: backing bytearray — steady-state traffic never re-runs
        #: ``np.frombuffer``
        self.views = views

    def __len__(self) -> int:
        return self.length

    def view(self) -> memoryview:
        """Writable view of the payload (encode side)."""
        if self.released:
            raise ValueError("view of a released PooledBuffer")
        return memoryview(self.data)[:self.length]

    def readonly(self) -> memoryview:
        """Read-only view of the payload (decode side)."""
        if self.released:
            raise ValueError("view of a released PooledBuffer")
        return memoryview(self.data).toreadonly()[:self.length]

    def tobytes(self) -> bytes:
        """Copy out the payload (escape hatch for code that must own it)."""
        if self.released:
            raise ValueError("copy of a released PooledBuffer")
        return bytes(self.data[:self.length])

    def release(self) -> bool:
        """Return the storage to the pool; idempotent (False on repeat)."""
        if self.released:
            return False
        self.released = True
        self.pool._give_back(self)
        return True

    def __repr__(self) -> str:
        state = "released" if self.released else "live"
        return f"<PooledBuffer {self.length}B/{len(self.data)}B {state}>"


class BufferPool:
    """Size-bucketed (power-of-two) pool of reusable ``bytearray`` s."""

    __slots__ = ("_free", "max_free_per_bucket", "stats")

    def __init__(self, max_free_per_bucket: int = _MAX_FREE_PER_BUCKET) -> None:
        #: capacity -> [(bytearray, views dict), ...]
        self._free: dict[int, list] = {}
        self.max_free_per_bucket = max_free_per_bucket
        self.stats = ZeroCopyStats()

    @staticmethod
    def bucket_of(nbytes: int) -> int:
        """Capacity of the bucket serving an ``nbytes`` payload."""
        if nbytes <= _MIN_BUCKET:
            return _MIN_BUCKET
        return 1 << (nbytes - 1).bit_length()

    def acquire(self, nbytes: int) -> PooledBuffer:
        """Borrow a buffer with capacity >= ``nbytes``; its payload length
        is exactly ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"cannot lease {nbytes} bytes")
        cap = self.bucket_of(nbytes)
        stats = self.stats
        stats.borrows += 1
        free = self._free.get(cap)
        if free:
            stats.pool_hits += 1
            data, views = free.pop()
        else:
            stats.pool_misses += 1
            data, views = bytearray(cap), {}
        return PooledBuffer(self, data, nbytes, views)

    def _give_back(self, buf: "PooledBuffer") -> None:
        self.stats.returns += 1
        free = self._free.setdefault(len(buf.data), [])
        if len(free) < self.max_free_per_bucket:
            free.append((buf.data, buf.views))

    def free_buffers(self) -> int:
        return sum(len(v) for v in self._free.values())

    def clear(self) -> None:
        """Drop all pooled storage (counters are kept)."""
        self._free.clear()

    def __repr__(self) -> str:
        return (f"<BufferPool {self.free_buffers()} free, "
                f"{self.stats.outstanding} outstanding>")


# ---------------------------------------------------------------------------
# Global default pool + lane switch
# ---------------------------------------------------------------------------

#: Process-wide default pool, used where no world-scoped pool is at hand
#: (e.g. RTS-channel redistribution).  Each simulated world's transport
#: owns its own pool so runs stay isolated.
_POOL = BufferPool()

#: Whether the zero-copy fragment lane is taken at all.  Off means every
#: fragment travels as the classic one-shot CDR ``bytes`` — the ablation
#: the ``--fast-path off`` benchmark flag measures.
_ENABLED = True


def get_pool() -> BufferPool:
    return _POOL


def set_pool(pool: BufferPool) -> BufferPool:
    """Install a new default pool; returns the previous one."""
    global _POOL
    prev, _POOL = _POOL, pool
    return prev


def fast_path_enabled() -> bool:
    return _ENABLED


def set_fast_path(on: bool) -> bool:
    """Enable/disable the zero-copy lane; returns the previous setting."""
    global _ENABLED
    prev, _ENABLED = _ENABLED, bool(on)
    return prev


class fast_path:
    """Context manager scoping a lane setting: ``with fast_path(False): ...``"""

    def __init__(self, on: bool) -> None:
        self.on = on
        self._prev = None

    def __enter__(self) -> "fast_path":
        self._prev = set_fast_path(self.on)
        return self

    def __exit__(self, *exc) -> None:
        set_fast_path(self._prev)
