"""Linear-equation solvers for the §4.1 experiment.

"A scenario in which the same system of linear equations is solved by a
direct method and an iterative method; the returned solutions are then
compared to calculate agreement between these two methods."

Both solvers are SPMD servants over the paper's IDL (matrix as a
distributed sequence of dynamically-sized rows).  The iterative solver is
a genuinely parallel Jacobi iteration (local mat-vec + allgather of the
iterate); the direct solver assembles the system through the server's
communication domain and factorizes, charging the flops of a parallel
dense LU.  Virtual compute time is charged through the host's per-node
rate, so *where* a server runs determines how fast it is — the mechanism
behind the Fig-2 curves.
"""

from __future__ import annotations

import numpy as np

from ..core.distribution import Distribution
from ..core.dsequence import DistributedSequence
from ..runtime import collectives as coll
from .interfaces import solver_stubs


def direct_flops(n: int) -> float:
    """Effective flops of the direct dense solve (LU ~ 2/3 n^3)."""
    return (2.0 / 3.0) * n ** 3


def jacobi_sweep_flops(n: int) -> float:
    """Effective flops of one Jacobi sweep.  The factor above the bare
    2n^2 mat-vec is the method/package overhead that makes the iterative
    solver the intrinsically slower application, as in the paper
    ("putting the slower application on a faster remote resource")."""
    return 6.8 * n * n


#: Jacobi iteration cap (the generated systems converge well before).
MAX_ITERATIONS = 400


def generate_system(n: int, seed: int = 12345) -> tuple[np.ndarray, np.ndarray]:
    """A reproducible diagonally-dominant dense system (so both methods
    converge and agree)."""
    rng = np.random.default_rng(seed + n)
    # Positive off-diagonal entries make the Jacobi iteration matrix
    # non-negative, so its spectral radius equals the row-sum ratio —
    # a convergence factor we control exactly.  exp(-16.5/n) makes the
    # iteration count grow roughly linearly with n (as iterative solvers'
    # do in practice), keeping the iterative method the slower one across
    # the whole 200..1200 sweep like the paper's Fig. 2.
    a = rng.uniform(0.0, 1.0, size=(n, n))
    off_sums = a.sum(axis=1) - np.diag(a)
    rho = float(np.exp(-16.5 / n))
    a[np.diag_indices(n)] = off_sums / rho
    b = rng.uniform(-1.0, 1.0, size=n)
    return a, b


def rows_to_matrix(rows) -> np.ndarray:
    """Local dsequence-of-rows fragment -> 2-D array."""
    if not len(rows):
        return np.zeros((0, 0))
    return np.vstack([np.asarray(r, dtype=float) for r in rows])


def _assemble_rows(ctx, A) -> np.ndarray:
    """Gather the full matrix on every thread (replicated assembly)."""
    local = rows_to_matrix(A.owned_data)
    pieces = coll.allgather(
        ctx.rts, (tuple(A.dist.intervals(ctx.rank)), local))
    n = len(A)
    full = np.zeros((n, n))
    for intervals, block in pieces:
        row = 0
        for a, b in intervals:
            full[a:b, :] = block[row:row + (b - a)]
            row += b - a
    return full


def make_direct_servant(ctx):
    """Direct method: assemble + (model-charged) parallel LU."""
    mod = solver_stubs()

    class DirectImpl(mod.direct_skel):
        def __init__(self):
            self.solves = 0

        def solve(self, A, B):
            n = len(B)
            full = _assemble_rows(ctx, A)
            rhs = B.gather(ctx.rts, root=0)
            rhs = coll.bcast(ctx.rts, rhs, root=0)
            ctx.charge_flops(direct_flops(n) / ctx.nprocs)
            x = np.linalg.solve(full, rhs)
            self.solves += 1
            return DistributedSequence.from_global(
                x, Distribution.block(n, ctx.nprocs), ctx.rank)

    return DirectImpl()


def make_iterative_servant(ctx):
    """Jacobi iteration, data-parallel over block rows."""
    mod = solver_stubs()

    class IterativeImpl(mod.iterative_skel):
        def __init__(self):
            self.iterations_run = 0

        def solve(self, tol, A, B):
            local_a = rows_to_matrix(A.owned_data)
            n = len(B)
            ivs = A.dist.intervals(ctx.rank)
            lo, hi = ivs[0] if ivs else (0, 0)
            local_b = np.asarray(B.owned_data, dtype=float)
            diag = (np.array([local_a[i - lo, i] for i in range(lo, hi)])
                    if hi > lo else np.zeros(0))
            x = np.zeros(n)
            sweep = jacobi_sweep_flops(n) / ctx.nprocs
            it = 0
            for it in range(MAX_ITERATIONS):
                if hi > lo:
                    sigma = local_a @ x - diag * x[lo:hi]
                    new_local = (local_b - sigma) / diag
                else:
                    new_local = np.zeros(0)
                ctx.charge_flops(sweep)
                pieces = coll.allgather(ctx.rts, (lo, new_local))
                new_x = np.zeros(n)
                for start, block in pieces:
                    new_x[start:start + len(block)] = block
                delta = float(np.max(np.abs(new_x - x))) if n else 0.0
                x = new_x
                if delta < tol:
                    break
            self.iterations_run = it + 1
            return DistributedSequence.from_global(
                x, Distribution.block(n, ctx.nprocs), ctx.rank)

    return IterativeImpl()


def generate_spd_system(n: int, seed: int = 321) -> tuple[np.ndarray, np.ndarray]:
    """A reproducible symmetric positive-definite system (for CG)."""
    rng = np.random.default_rng(seed + n)
    c = rng.uniform(-1.0, 1.0, size=(n, n))
    a = (c @ c.T) / n + np.eye(n) * 2.0
    b = rng.uniform(-1.0, 1.0, size=n)
    return a, b


def cg_sweep_flops(n: int) -> float:
    """Effective flops of one CG iteration (mat-vec + 2 dots + 3 axpys)."""
    return 2.0 * n * n + 10.0 * n


def make_cg_servant(ctx):
    """Conjugate gradients, genuinely distributed: block-row mat-vec with
    an allgather of the direction vector, dot products via allreduce.

    Implements the same §4.1 ``iterative`` interface as the Jacobi
    servant — an alternative method for the same metaapplication slot
    (the paper's intro: "algorithm development").
    """
    mod = solver_stubs()

    class CgImpl(mod.iterative_skel):
        def __init__(self):
            self.iterations_run = 0

        def solve(self, tol, A, B):
            local_a = rows_to_matrix(A.owned_data)
            n = len(B)
            ivs = A.dist.intervals(ctx.rank)
            lo, hi = ivs[0] if ivs else (0, 0)
            local_b = np.asarray(B.owned_data, dtype=float)

            def matvec(v):
                ctx.charge_flops(cg_sweep_flops(n) / ctx.nprocs)
                return local_a @ v if hi > lo else np.zeros(0)

            def dot(ul, vl):
                local = float(ul @ vl) if len(ul) else 0.0
                return coll.allreduce(ctx.rts, local, lambda a, b: a + b)

            def assemble(local):
                pieces = coll.allgather(ctx.rts, (lo, local))
                full = np.zeros(n)
                for start, block in pieces:
                    full[start:start + len(block)] = block
                return full

            x_local = np.zeros(hi - lo)
            r_local = local_b.copy()
            p_local = r_local.copy()
            rs = dot(r_local, r_local)
            it = 0
            for it in range(MAX_ITERATIONS):
                if rs <= tol * tol:
                    break
                p_full = assemble(p_local)
                ap_local = matvec(p_full)
                alpha = rs / max(dot(p_local, ap_local), 1e-300)
                x_local = x_local + alpha * p_local
                r_local = r_local - alpha * ap_local
                rs_new = dot(r_local, r_local)
                p_local = r_local + (rs_new / max(rs, 1e-300)) * p_local
                rs = rs_new
            self.iterations_run = it
            dist = Distribution.block(n, ctx.nprocs)
            return DistributedSequence(B.element, dist, ctx.rank, x_local)

    return CgImpl()


def direct_server_main(ctx, object_name: str = "direct_solver"):
    """Server main: activate a direct solver and serve forever."""
    ctx.poa.activate(make_direct_servant(ctx), object_name, kind="spmd")
    ctx.poa.impl_is_ready()


def iterative_server_main(ctx, object_name: str = "itrt_solver",
                          method: str = "jacobi"):
    """Iterative-solver server; ``method`` picks the algorithm behind the
    same IDL interface ("jacobi" or "cg")."""
    servant = (make_cg_servant(ctx) if method == "cg"
               else make_iterative_servant(ctx))
    ctx.poa.activate(servant, object_name, kind="spmd")
    ctx.poa.impl_is_ready()


def matrix_as_rows(a: np.ndarray) -> list[np.ndarray]:
    """2-D array -> list of row arrays (the dsequence element form)."""
    return [a[i, :].copy() for i in range(a.shape[0])]


def compute_difference(x1, x2) -> float:
    """The client's agreement metric between the two solutions."""
    return float(np.max(np.abs(np.asarray(x1, dtype=float)
                               - np.asarray(x2, dtype=float))))
