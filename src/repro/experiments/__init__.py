"""Experiment harnesses: one module per evaluation figure.

Each module exposes ``run_figN(...)`` returning structured rows and a
``format_table`` helper that prints the same series the paper plots.  The
benchmark suite (``benchmarks/``) drives these at paper scale; the tests
drive them at reduced scale and assert the qualitative shape.
"""

from .common import format_table
from .fig2_solvers import Fig2Row, run_fig2
from .fig4_dna import Fig4Row, run_fig4
from .fig5_pipeline import Fig5Row, run_fig5

__all__ = [
    "Fig2Row",
    "Fig4Row",
    "Fig5Row",
    "format_table",
    "run_fig2",
    "run_fig4",
    "run_fig5",
]
