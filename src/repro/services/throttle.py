"""Client-side throttling: the client half of the backpressure contract.

Admission-controlled servers annotate replies two ways (see
:mod:`repro.services.admission`): a ``pardis.backpressure`` hint when
their queue passes its high watermark, and a ``pardis.overload`` marker
on shed requests.  The :class:`ThrottleInterceptor` honors both with
jittered exponential backoff, charged as compute time *before* the next
request leaves the same client thread — so a backed-off client thread
simply offers load later, which is exactly what the saturation
experiment measures.

Jitter comes from a seeded ``random.Random`` so simulations stay
deterministic.
"""

from __future__ import annotations

import random

from ..core.pipeline.interceptors import ClientRequestInfo, RequestInterceptor
from ..core.request import BACKPRESSURE_CONTEXT, OVERLOAD_CONTEXT

__all__ = ["ThrottleInterceptor"]


class ThrottleInterceptor(RequestInterceptor):
    """Backs off request emission per client thread.

    * an **overload** reply (request shed) multiplies the thread's delay
      (``base_backoff`` at first, then exponential up to ``max_backoff``);
    * a **backpressure** hint on any reply raises the delay to at least
      the server's suggested value;
    * a clean reply with no hint decays the delay toward zero.

    Every applied delay is jittered by up to ±``jitter`` (fraction) to
    de-synchronize retrying clients.
    """

    name = "throttle"

    def __init__(self, base_backoff: float = 1e-3, multiplier: float = 2.0,
                 max_backoff: float = 0.25, decay: float = 0.5,
                 jitter: float = 0.2, seed: int = 0) -> None:
        self.base_backoff = base_backoff
        self.multiplier = multiplier
        self.max_backoff = max_backoff
        self.decay = decay
        self.jitter = jitter
        self._rng = random.Random(seed)
        #: (program_id, thread rank) -> current pre-send delay
        self._delay: dict[tuple, float] = {}
        #: counters for tests / metrics
        self.throttled = 0
        self.total_backoff = 0.0

    def _key(self, info: ClientRequestInfo) -> tuple:
        return (info.ctx.program.program_id, info.ctx.rank)

    def _jittered(self, delay: float) -> float:
        if self.jitter <= 0.0:
            return delay
        return delay * (1.0 + self.jitter * (2.0 * self._rng.random() - 1.0))

    # -- interception points -------------------------------------------------

    def send_request(self, info: ClientRequestInfo) -> None:
        delay = self._delay.get(self._key(info), 0.0)
        if delay > 0.0:
            pause = self._jittered(delay)
            self.throttled += 1
            self.total_backoff += pause
            info.ctx.compute(pause)

    def receive_reply(self, info: ClientRequestInfo) -> None:
        key = self._key(info)
        hint = info.reply_service_contexts.get(BACKPRESSURE_CONTEXT)
        if hint:
            self._delay[key] = min(self.max_backoff,
                                   max(self._delay.get(key, 0.0), hint))
            return
        current = self._delay.get(key, 0.0)
        if current > 0.0:
            decayed = current * self.decay
            if decayed < self.base_backoff / 4.0:
                self._delay.pop(key, None)
            else:
                self._delay[key] = decayed

    def receive_exception(self, info: ClientRequestInfo) -> None:
        if not info.reply_service_contexts.get(OVERLOAD_CONTEXT):
            return
        key = self._key(info)
        current = self._delay.get(key, 0.0)
        grown = (self.base_backoff if current <= 0.0
                 else current * self.multiplier)
        hint = info.reply_service_contexts.get(BACKPRESSURE_CONTEXT, 0.0)
        self._delay[key] = min(self.max_backoff, max(grown, hint))
