"""Distribution templates for distributed sequences (paper §3.2).

A :class:`Distribution` describes how the ``n`` elements of a distributed
sequence are partitioned over the ``p`` computing threads of a parallel
program: BLOCK (uniform contiguous blocks), CYCLIC (round-robin),
CONCENTRATED (everything on one thread) or an arbitrary proportion
TEMPLATE ("a distribution template ... describes in what proportions the
elements of a sequence should be distributed among the processors").

Internally every distribution is a per-rank list of half-open global index
intervals; the transfer engine intersects interval lists to build
communication schedules, so any two distributions can be converted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

Interval = tuple[int, int]


def _merge(intervals: list[Interval]) -> list[Interval]:
    """Coalesce sorted intervals that touch."""
    out: list[Interval] = []
    for start, stop in intervals:
        if out and out[-1][1] == start:
            out[-1] = (out[-1][0], stop)
        else:
            out.append((start, stop))
    return out


@dataclass(frozen=True)
class Distribution:
    """An immutable partition of ``range(n)`` over ``p`` ranks."""

    n: int
    p: int
    kind: str
    #: per-rank tuple of half-open (start, stop) global index intervals,
    #: each rank's list sorted and non-overlapping.
    parts: tuple[tuple[Interval, ...], ...]

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def block(n: int, p: int) -> "Distribution":
        """Uniform blockwise: first ``n % p`` ranks get one extra element."""
        _check(n, p)
        base, extra = divmod(n, p)
        parts = []
        start = 0
        for r in range(p):
            size = base + (1 if r < extra else 0)
            parts.append(((start, start + size),) if size else ())
            start += size
        return Distribution(n, p, "BLOCK", tuple(parts))

    @staticmethod
    def cyclic(n: int, p: int) -> "Distribution":
        """Round-robin: rank ``r`` owns elements ``r, r+p, r+2p, ...``."""
        _check(n, p)
        parts = []
        for r in range(p):
            ivs = tuple(
                (i, i + 1) for i in range(r, n, p)
            )
            parts.append(_squeeze_cyclic(ivs, p))
        return Distribution(n, p, "CYCLIC", tuple(parts))

    @staticmethod
    def concentrated(n: int, p: int, owner: int = 0) -> "Distribution":
        """All elements on one thread (paper: "concentrated on one
        processor")."""
        _check(n, p)
        if not (0 <= owner < p):
            raise ValueError(f"owner {owner} out of range for {p} ranks")
        parts = [()] * p
        parts[owner] = ((0, n),) if n else ()
        return Distribution(n, p, "CONCENTRATED", tuple(parts))

    @staticmethod
    def template(n: int, proportions: Sequence[float]) -> "Distribution":
        """Contiguous blocks sized in the given proportions.

        ``template(100, [3, 1])`` gives rank 0 the first 75 elements and
        rank 1 the remaining 25 (rounded; the last rank absorbs slack).
        """
        p = len(proportions)
        _check(n, p)
        total = float(sum(proportions))
        if total <= 0 or any(w < 0 for w in proportions):
            raise ValueError("proportions must be non-negative with a positive sum")
        parts = []
        start = 0
        for r, w in enumerate(proportions):
            if r == p - 1:
                stop = n
            else:
                stop = start + int(round(n * w / total))
                stop = min(stop, n)
            parts.append(((start, stop),) if stop > start else ())
            start = stop
        return Distribution(n, p, "TEMPLATE", tuple(parts))

    @staticmethod
    def explicit(intervals_per_rank: Iterable[Iterable[Interval]],
                 n: int) -> "Distribution":
        """Arbitrary partition given directly as intervals per rank."""
        parts = tuple(
            tuple(sorted((int(a), int(b)) for a, b in ivs))
            for ivs in intervals_per_rank
        )
        d = Distribution(n, len(parts), "EXPLICIT", parts)
        d.validate()
        return d

    @staticmethod
    def of_kind(kind: str, n: int, p: int) -> "Distribution":
        """Build a named distribution (the IDL dsequence attributes)."""
        if kind == "BLOCK":
            return Distribution.block(n, p)
        if kind == "CYCLIC":
            return Distribution.cyclic(n, p)
        if kind == "CONCENTRATED":
            return Distribution.concentrated(n, p)
        raise ValueError(f"unknown distribution kind {kind!r}")

    # -- queries ------------------------------------------------------------------

    def intervals(self, rank: int) -> tuple[Interval, ...]:
        return self.parts[rank]

    def local_size(self, rank: int) -> int:
        return sum(b - a for a, b in self.parts[rank])

    @property
    def counts(self) -> list[int]:
        return [self.local_size(r) for r in range(self.p)]

    def owner_of(self, index: int) -> int:
        """Rank owning global ``index``."""
        if not (0 <= index < self.n):
            raise IndexError(f"index {index} out of range for length {self.n}")
        for r, ivs in enumerate(self.parts):
            for a, b in ivs:
                if a <= index < b:
                    return r
        raise AssertionError("index not covered — invalid distribution")

    def global_to_local(self, index: int) -> tuple[int, int]:
        """Map a global index to ``(rank, local offset)``.

        Local storage order is ascending global index within the rank.
        """
        if not (0 <= index < self.n):
            raise IndexError(f"index {index} out of range for length {self.n}")
        for r, ivs in enumerate(self.parts):
            off = 0
            for a, b in ivs:
                if a <= index < b:
                    return r, off + (index - a)
                off += b - a
        raise AssertionError("index not covered — invalid distribution")

    def local_to_global(self, rank: int, offset: int) -> int:
        off = offset
        for a, b in self.parts[rank]:
            if off < b - a:
                return a + off
            off -= b - a
        raise IndexError(
            f"local offset {offset} out of range for rank {rank} "
            f"(size {self.local_size(rank)})"
        )

    def global_indices(self, rank: int):
        """Iterate the global indices owned by ``rank`` in storage order."""
        for a, b in self.parts[rank]:
            yield from range(a, b)

    def validate(self) -> None:
        """Check the partition covers range(n) exactly once."""
        covered = 0
        last_stop = {}
        all_ivs = sorted(
            (a, b, r) for r, ivs in enumerate(self.parts) for a, b in ivs
        )
        prev_stop = 0
        for a, b, r in all_ivs:
            if a < prev_stop:
                raise ValueError(f"overlapping intervals at {a} (rank {r})")
            if a > prev_stop:
                raise ValueError(f"gap in coverage at [{prev_stop}, {a})")
            if b <= a:
                raise ValueError(f"empty or inverted interval ({a}, {b})")
            covered += b - a
            prev_stop = b
        if covered != self.n:
            raise ValueError(
                f"partition covers {covered} elements, expected {self.n}"
            )

    def __str__(self) -> str:
        return f"{self.kind}(n={self.n}, p={self.p}, counts={self.counts})"


class RowBlock:
    """Distribution spec: block the sequence on multiples of ``nx``.

    Used for row-major flattened 2-D data (e.g. POOMA fields): each rank
    gets a contiguous run of whole rows.  Usable wherever a distribution
    kind string is accepted (servers register it as an "in"-argument
    override so stencil codes receive row-aligned fragments).
    """

    def __init__(self, nx: int) -> None:
        if nx < 1:
            raise ValueError("row length must be >= 1")
        self.nx = nx

    def instantiate(self, n: int, p: int) -> Distribution:
        ny, rem = divmod(n, self.nx)
        if rem:
            raise ValueError(
                f"length {n} is not a whole number of rows of {self.nx}"
            )
        rows = Distribution.block(ny, p)
        parts = [
            [(a * self.nx, b * self.nx) for a, b in rows.intervals(r)]
            for r in range(p)
        ]
        return Distribution.explicit(parts, n)

    def __repr__(self) -> str:
        return f"RowBlock(nx={self.nx})"


def resolve_dist_spec(spec, n: int, p: int) -> Distribution:
    """A distribution 'spec' is a kind name ("BLOCK"/"CYCLIC"/
    "CONCENTRATED") or any object with ``instantiate(n, p)``."""
    if isinstance(spec, str):
        return Distribution.of_kind(spec, n, p)
    return spec.instantiate(n, p)


def _check(n: int, p: int) -> None:
    if n < 0:
        raise ValueError(f"sequence length must be >= 0, got {n}")
    if p < 1:
        raise ValueError(f"need at least one rank, got {p}")


def _squeeze_cyclic(ivs: tuple[Interval, ...], p: int) -> tuple[Interval, ...]:
    """With p == 1, a 'cyclic' layout is one contiguous block."""
    if p == 1 and ivs:
        return ((ivs[0][0], ivs[-1][1]),)
    return ivs
