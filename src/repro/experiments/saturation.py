"""Offered-load sweep: graceful degradation under admission control.

Not a paper figure — evidence for the services layer
(:mod:`repro.services`): a single-threaded server with a fixed per-request
service time is driven by a growing number of closed-loop clients (each
issues its next blocking request as soon as the previous one completes).

* **Without admission control** every arrival queues, so once the offered
  load passes the knee the wait of *every* accepted request grows with
  the number of clients — p99 latency climbs without bound.
* **With admission control** (bounded queue, capacity K) an accepted
  request waits at most ~K service times, so accepted-request p99 stays
  flat while the overflow is *shed* promptly (clients see
  :class:`~repro.core.errors.TransientException`) — shed-not-collapse.
* **With the client-side throttle** on top, shed replies and
  backpressure hints pace the clients, so far fewer requests are shed
  at all.  Note the throttle charges its backoff *inside* the next
  request's wall-clock window (a paced client simply offers load
  later), so per-request latency in this series includes deliberate
  client-side waiting — read the bounded-latency claim off the
  un-throttled series and the shed-reduction claim off this one.

All three curves are emitted as dataclass rows (JSON-ready via
:func:`rows_to_json`) and render with the standard plotting helpers.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core import OrbConfig, Simulation, TransientException
from ..core.simulation import default_network
from ..idl import compile_idl
from ..netsim import ATM_155, Host, Network
from ..services import AdmissionController, ThrottleInterceptor

__all__ = [
    "DEFAULT_CLIENTS",
    "SaturationRow",
    "rows_to_json",
    "run_point",
    "run_saturation",
]

DEFAULT_CLIENTS = (1, 2, 4, 8, 16)
DEFAULT_REQUESTS = 30
#: virtual seconds of servant compute per request
DEFAULT_SERVICE_TIME = 2e-3

_WORK_IDL = """
    interface work {
        long crunch(in long x);
    };
"""

_mod_cache = {}


def _work_module():
    mod = _mod_cache.get("mod")
    if mod is None:
        mod = _mod_cache["mod"] = compile_idl(
            _WORK_IDL, module_name="saturation_stubs")
    return mod


def _network(max_clients: int) -> Network:
    """Like the default §4.1 testbed, but with enough client nodes for
    the sweep (one per closed-loop client thread)."""
    if max_clients <= 4:
        return default_network()
    net = Network()
    net.add_host(Host("HOST_1", nodes=max_clients, node_flops=5.2e6))
    net.add_host(Host("HOST_2", nodes=10, node_flops=6.6e6))
    net.connect("HOST_1", "HOST_2", ATM_155)
    return net


@dataclass
class SaturationRow:
    clients: int
    admission: bool
    accepted: int
    shed: int
    p50_ms: float        # accepted-request latency percentiles
    p99_ms: float
    throughput: float    # served requests per virtual second
    throttled: int       # requests delayed by the client-side throttle


def run_point(n_clients: int,
              requests: int = DEFAULT_REQUESTS,
              service_time: float = DEFAULT_SERVICE_TIME,
              capacity: Optional[int] = None,
              policy: str = "fifo",
              throttle: bool = True) -> SaturationRow:
    """One sweep point: ``n_clients`` closed-loop client threads against
    one server.  ``capacity=None`` disables admission control."""
    mod = _work_module()
    sim = Simulation(network=_network(n_clients),
                     config=OrbConfig(max_outstanding=1))
    throttler = None
    if capacity is not None and throttle:
        throttler = sim.register_interceptor(ThrottleInterceptor(seed=7))

    def server_main(ctx):
        class WorkImpl(mod.work_skel):
            def crunch(self, x):
                ctx.compute(service_time)
                return x

        ctx.poa.activate(WorkImpl(), "worker", kind="spmd")
        if capacity is not None:
            ctx.poa.set_admission(
                AdmissionController(capacity=capacity, policy=policy))
        ctx.poa.impl_is_ready()

    latencies: list[float] = []
    shed = [0]
    span = [0.0]

    def client_main(ctx):
        proxy = mod.work._bind("worker")
        for i in range(requests):
            t0 = ctx.now()
            try:
                proxy.crunch(i)
            except TransientException:
                shed[0] += 1
            else:
                latencies.append(ctx.now() - t0)
            span[0] = max(span[0], ctx.now())

    sim.server(server_main, host="HOST_2", name="worker-server")
    sim.client(client_main, host="HOST_1", nprocs=n_clients, name="load")
    sim.run()

    lat = np.asarray(latencies)
    return SaturationRow(
        clients=n_clients,
        admission=capacity is not None,
        accepted=len(latencies),
        shed=shed[0],
        p50_ms=float(np.percentile(lat, 50)) * 1e3 if len(lat) else 0.0,
        p99_ms=float(np.percentile(lat, 99)) * 1e3 if len(lat) else 0.0,
        throughput=(len(latencies) / span[0]) if span[0] > 0 else 0.0,
        throttled=throttler.throttled if throttler is not None else 0,
    )


def run_saturation(clients: Sequence[int] = DEFAULT_CLIENTS,
                   requests: int = DEFAULT_REQUESTS,
                   service_time: float = DEFAULT_SERVICE_TIME,
                   capacity: int = 4,
                   policy: str = "fifo") -> dict[str, list[SaturationRow]]:
    """The full sweep at each client count: admission off, admission on
    (the bounded-latency evidence), and admission on with the client
    throttle (the shed-reduction evidence; see the module docstring for
    why its latency column includes deliberate client pacing)."""
    off = [run_point(n, requests, service_time, capacity=None)
           for n in clients]
    on = [run_point(n, requests, service_time, capacity=capacity,
                    policy=policy, throttle=False)
          for n in clients]
    on_throttled = [run_point(n, requests, service_time, capacity=capacity,
                              policy=policy, throttle=True)
                    for n in clients]
    return {"admission_off": off, "admission_on": on,
            "admission_on_throttled": on_throttled}


def rows_to_json(results: dict[str, list[SaturationRow]],
                 indent: Optional[int] = 2) -> str:
    """JSON document with both curves (the CI artifact)."""
    return json.dumps(
        {series: [dataclasses.asdict(r) for r in rows]
         for series, rows in results.items()},
        indent=indent,
    )
