"""Mini HPC++ PSTL: the Parallel Standard Template Library (after
[GBJ+ar]), reduced to the distributed vector and the parallel algorithms
the paper's gradient component needs.
"""

from .algorithms import par_for_each, par_reduce, par_transform
from .dvector import DVector

__all__ = ["DVector", "par_for_each", "par_reduce", "par_transform"]
