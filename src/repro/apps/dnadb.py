"""DNA database with derivative search (§4.2).

"A server containing a DNA database, which is searched in parallel for
sequences which either contain a certain substring themselves, or whose
edit distance derivatives contain the substring.  Periodically during the
search, partial results are collected in five lists: one containing
sequences matching the substring exactly, and one for each of their four
edit distance derivatives (transposition, deletion, substitution,
addition).  At this time the server can make the lists accessible to the
clients by calling POA::process_requests()."

Substitution for the paper's (unspecified) corpus: a reproducible
synthetic database of ACGT strings with planted matches of every category
(seeded RNG), so results are deterministic and the five lists stay
non-trivially imbalanced — what the centralized/distributed comparison
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .interfaces import dna_stubs

CATEGORIES = ("exact", "transposition", "deletion", "substitution", "addition")

ALPHABET = "ACGT"

#: calibration: virtual seconds to classify one database sequence against
#: the query and its derivative forms, per character scanned.  With the
#: default 400-sequence/60-char corpus this puts the total search work at
#: ~75 virtual seconds, matching the Fig-4 scale.
SCAN_COST_PER_CHAR = 3.1e-3

#: calibration: virtual seconds per match() query against each list
#: server, deliberately uneven (the parallel server "was attempting to
#: balance single objects by numbers, not by weight" — these weights
#: produce the paper's diminished difference when going from 2 to 3
#: processors under round-robin placement).
MATCH_QUERY_COST = {
    "exact": 0.50,
    "transposition": 0.10,
    "deletion": 0.10,
    "substitution": 0.65,
    "addition": 0.15,
}


# ---------------------------------------------------------------------------
# Matching (real string algorithms)
# ---------------------------------------------------------------------------


def matches_exact(seq: str, s: str) -> bool:
    return s in seq


def matches_transposition(seq: str, s: str) -> bool:
    """Some window of ``seq`` equals ``s`` with two adjacent characters
    swapped."""
    k = len(s)
    if k < 2:
        return False
    for i in range(len(seq) - k + 1):
        w = seq[i:i + k]
        if w == s:
            continue
        for j in range(k - 1):
            if (w[:j] + w[j + 1] + w[j] + w[j + 2:]) == s:
                return True
    return False


def matches_deletion(seq: str, s: str) -> bool:
    """Some window of ``seq`` equals ``s`` with one character deleted."""
    k = len(s) - 1
    if k < 1:
        return False
    targets = {s[:j] + s[j + 1:] for j in range(len(s))}
    return any(seq[i:i + k] in targets for i in range(len(seq) - k + 1))


def matches_substitution(seq: str, s: str) -> bool:
    """Some window of ``seq`` differs from ``s`` in exactly one position."""
    k = len(s)
    for i in range(len(seq) - k + 1):
        w = seq[i:i + k]
        diff = sum(1 for a, b in zip(w, s) if a != b)
        if diff == 1:
            return True
    return False


def matches_addition(seq: str, s: str) -> bool:
    """Some window of ``seq`` equals ``s`` with one character inserted."""
    k = len(s) + 1
    for i in range(len(seq) - k + 1):
        w = seq[i:i + k]
        for j in range(k):
            if (w[:j] + w[j + 1:]) == s:
                return True
    return False


MATCHERS = {
    "exact": matches_exact,
    "transposition": matches_transposition,
    "deletion": matches_deletion,
    "substitution": matches_substitution,
    "addition": matches_addition,
}


def classify(seq: str, s: str) -> str | None:
    """First matching category in the paper's priority order, else None."""
    for cat in CATEGORIES:
        if MATCHERS[cat](seq, s):
            return cat
    return None


# ---------------------------------------------------------------------------
# Corpus
# ---------------------------------------------------------------------------


def generate_database(n_seqs: int, query: str, seed: int = 7,
                      seq_len: int = 60, plant_fraction: float = 0.3
                      ) -> list[str]:
    """A reproducible corpus with matches planted for every category."""
    rng = np.random.default_rng(seed)
    out = []
    planted_kinds = []
    for i in range(n_seqs):
        chars = rng.integers(0, 4, size=seq_len)
        seq = "".join(ALPHABET[c] for c in chars)
        if rng.random() < plant_fraction:
            kind = CATEGORIES[rng.integers(0, len(CATEGORIES))]
            insert = _derive(query, kind, rng)
            pos = int(rng.integers(0, seq_len - len(insert)))
            seq = seq[:pos] + insert + seq[pos + len(insert):]
            planted_kinds.append(kind)
        out.append(seq)
    return out


def _derive(s: str, kind: str, rng) -> str:
    if kind == "exact":
        return s
    if kind == "transposition":
        j = int(rng.integers(0, len(s) - 1))
        return s[:j] + s[j + 1] + s[j] + s[j + 2:]
    if kind == "deletion":
        j = int(rng.integers(0, len(s)))
        return s[:j] + s[j + 1:]
    if kind == "substitution":
        j = int(rng.integers(0, len(s)))
        c = ALPHABET[(ALPHABET.index(s[j]) + 1 + int(rng.integers(0, 3))) % 4]
        return s[:j] + c + s[j + 1:]
    if kind == "addition":
        j = int(rng.integers(0, len(s) + 1))
        return s[:j] + ALPHABET[int(rng.integers(0, 4))] + s[j:]
    raise ValueError(kind)


# ---------------------------------------------------------------------------
# Servants
# ---------------------------------------------------------------------------


@dataclass
class SharedLists:
    """The five category lists, shared by all threads of the server
    program (single objects sharing the resources of the parallel
    server)."""

    lists: dict = field(default_factory=lambda: {c: [] for c in CATEGORIES})


def make_list_servant(ctx, shared: SharedLists, category: str):
    """A single object serving one category list."""
    mod = dna_stubs()

    class ListImpl(mod.list_server_skel):
        def __init__(self):
            self.queries = 0

        def match(self, s):
            # Filter the collected list for entries containing the query.
            ctx.compute(MATCH_QUERY_COST[category])
            self.queries += 1
            data = shared.lists[category]
            return [seq for seq in data if s in seq] or list(data)

    return ListImpl()


def make_db_servant(ctx, database_part: list[str], shared: SharedLists,
                    batch: int = 16):
    """The SPMD DNA-database object.

    ``search`` scans this thread's partition, classifying each sequence;
    every ``batch`` sequences it publishes partial results and calls
    ``POA::process_requests()`` so clients can query the list servers
    mid-search (§4.2/§3.3).
    """
    mod = dna_stubs()

    class DbImpl(mod.dna_db_skel):
        def __init__(self):
            self.searches = 0

        def search(self, s):
            pending = {c: [] for c in CATEGORIES}
            since_flush = 0
            for seq in database_part:
                cat = classify(seq, s)
                ctx.compute(len(seq) * SCAN_COST_PER_CHAR)
                if cat is not None:
                    pending[cat].append(seq)
                since_flush += 1
                if since_flush >= batch:
                    self._flush(pending)
                    since_flush = 0
                    ctx.poa.process_requests()
            self._flush(pending)
            ctx.poa.process_requests()
            self.searches += 1
            return int(mod.status.SEARCH_DONE)

        def _flush(self, pending):
            for cat, items in pending.items():
                if items:
                    shared.lists[cat].extend(items)
                    items.clear()

    return DbImpl()


def list_server_name(category: str) -> str:
    return f"{category}_list_server"


def dna_server_main(ctx, n_seqs: int = 400, query: str = "ACGTAC",
                    placement: str = "distributed", seed: int = 7):
    """Server main for the §4.2 experiment.

    ``placement`` controls where the five single list-server objects live:
    ``"centralized"`` puts all five on thread 0 (modelling "what would
    happen if only one computing thread of the SPMD object were visible to
    the ORB"); ``"distributed"`` deals them round-robin over the threads.
    """
    db = generate_database(n_seqs, query, seed=seed)
    part = [db[i] for i in range(len(db)) if i % ctx.nprocs == ctx.rank]
    shared_key = ("_dna", "shared")
    store = ctx.program.onesided_store
    shared = store.setdefault(shared_key, SharedLists())

    for k, cat in enumerate(CATEGORIES):
        owner = 0 if placement == "centralized" else k % ctx.nprocs
        if ctx.rank == owner:
            ctx.poa.activate(make_list_servant(ctx, shared, cat),
                             list_server_name(cat), kind="single")
    ctx.barrier()
    ctx.poa.activate(make_db_servant(ctx, part, shared), "dna_database",
                     kind="spmd")
    ctx.poa.impl_is_ready()
