"""Shared test configuration.

Registers Hypothesis settings profiles so the generative suites are
deterministic and time-bounded in CI (fixed seed via ``derandomize``,
bounded example counts) while staying exploratory for local runs.
Select with ``HYPOTHESIS_PROFILE=ci|dev`` (default ``ci``).
"""

import os

try:
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "ci",
        max_examples=40,
        derandomize=True,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", max_examples=100, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # pragma: no cover - hypothesis is an optional dep
    pass
