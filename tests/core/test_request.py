"""Unit + property tests for protocol messages and distribution
descriptors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distribution import Distribution
from repro.core.request import (
    Fragment,
    ReplyHeader,
    RequestHeader,
    build,
    describe,
)


class TestDescriptors:
    @pytest.mark.parametrize("dist", [
        Distribution.block(10, 3),
        Distribution.cyclic(11, 4),
        Distribution.concentrated(8, 3, owner=2),
        Distribution.template(20, [3, 1]),
        Distribution.explicit([[(0, 4)], [(4, 9)]], 9),
    ])
    def test_roundtrip(self, dist):
        rebuilt = build(describe(dist))
        assert rebuilt.n == dist.n
        assert rebuilt.p == dist.p
        assert rebuilt.parts == dist.parts

    def test_bad_descriptor(self):
        with pytest.raises(ValueError):
            build(("MAGIC", 4, 2))

    def test_descriptors_are_compact(self):
        d = describe(Distribution.block(10**6, 8))
        assert d == ("BLOCK", 10**6, 8)


@settings(max_examples=60)
@given(
    n=st.integers(0, 500),
    p=st.integers(1, 8),
    kind=st.sampled_from(["BLOCK", "CYCLIC"]),
)
def test_property_describe_build_identity(n, p, kind):
    dist = Distribution.of_kind(kind, n, p)
    assert build(describe(dist)).parts == dist.parts


class TestMessageSizes:
    def test_request_header_nbytes_grows_with_payload(self):
        small = RequestHeader((1,), "o", "f", "spmd", 0, 1, (), b"")
        big = RequestHeader((1,), "o", "f", "spmd", 0, 1, (), b"x" * 100)
        assert big.nbytes() == small.nbytes() + 100

    def test_fragment_nbytes_includes_intervals(self):
        f1 = Fragment((1,), "v", 0, ((0, 5),), b"12345")
        f2 = Fragment((1,), "v", 0, ((0, 2), (3, 6)), b"12345")
        assert f2.nbytes() > f1.nbytes()

    def test_reply_nbytes_accounts_for_exception(self):
        ok = ReplyHeader((1,), "ok", b"")
        exc = ReplyHeader((1,), "user_exception", b"",
                          exception=("IDL:x:1.0", b"payload"))
        assert exc.nbytes() > ok.nbytes()
        sys_exc = ReplyHeader((1,), "system_exception", b"",
                              exception="it broke")
        assert sys_exc.nbytes() > ok.nbytes()
