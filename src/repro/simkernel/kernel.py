"""Deterministic cooperative virtual-time kernel.

Every "computing thread" of a PARDIS client or server runs on a
:class:`SimThread`: a real OS thread that the kernel resumes **one at a
time** in virtual-time order.  Real Python/numpy code executes normally
(and instantaneously in virtual time); simulated durations are charged
explicitly with :meth:`SimKernel.advance`.

Scheduling is a textbook discrete-event loop: the runnable thread with the
earliest ``(wake time, insertion seq)`` runs until it yields by advancing
time, blocking, or finishing.  Because exactly one thread runs at a time
and ties break deterministically, a simulation is reproducible bit-for-bit
— the property every test and benchmark in this repository leans on.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable, Optional

from .errors import DeadlockError, NotInSimThread, SimError, SimKilled, SimThreadFailed
from .events import EventQueue

_current = threading.local()


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"        # has a wake event in the queue
    RUNNING = "running"
    BLOCKED = "blocked"    # waiting to be woken by another thread
    DONE = "done"
    FAILED = "failed"


class SimThread:
    """A simulated computing thread with its own virtual clock.

    ``now`` is the thread's local virtual time; it only moves forward, via
    :meth:`SimKernel.advance` or by being woken at a later time (e.g. when
    a message addressed to it arrives).
    """

    __slots__ = (
        "kernel", "name", "fn", "args", "kwargs", "daemon", "now", "state",
        "wait_reason", "result", "exc", "_go", "_os_thread", "_kill",
        "locals", "_wake_event",
    )

    def __init__(self, kernel: "SimKernel", fn: Callable, args, kwargs,
                 name: str, start_time: float, daemon: bool) -> None:
        self.kernel = kernel
        self.name = name
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.daemon = daemon
        self.now = float(start_time)
        self.state = ThreadState.NEW
        self.wait_reason: Optional[str] = None
        self.result: Any = None
        self.exc: Optional[BaseException] = None
        self._go = threading.Semaphore(0)
        self._kill = False
        self._wake_event = None
        self.locals: dict[str, Any] = {}   # scratch space for upper layers
        self._os_thread = threading.Thread(
            target=self._main, name=f"sim:{name}", daemon=True
        )

    # -- lifecycle ---------------------------------------------------------

    def _main(self) -> None:
        _current.thread = self
        try:
            self._wait_for_go()
            self.result = self.fn(*self.args, **self.kwargs)
            self.state = ThreadState.DONE
        except SimKilled:
            self.state = ThreadState.DONE
        except BaseException as exc:  # noqa: BLE001 - reported to kernel.run
            self.exc = exc
            self.state = ThreadState.FAILED
        finally:
            self.kernel._yield_sem.release()

    def _wait_for_go(self) -> None:
        self._go.acquire()
        if self._kill:
            raise SimKilled()
        self.state = ThreadState.RUNNING

    def _yield_to_kernel(self) -> None:
        """Hand control back to the scheduler and wait to be resumed."""
        self.kernel._yield_sem.release()
        self._wait_for_go()

    def __repr__(self) -> str:
        return f"<SimThread {self.name} t={self.now:.6f} {self.state.value}>"


class SimKernel:
    """Discrete-event scheduler for :class:`SimThread` objects."""

    def __init__(self, trace: Callable[[str], None] | None = None) -> None:
        self._events = EventQueue()
        self._threads: list[SimThread] = []
        self._yield_sem = threading.Semaphore(0)
        self._running = False
        self._finished = False
        self.trace = trace
        self.context_switches = 0
        self.events_processed = 0

    # -- introspection ------------------------------------------------------

    @staticmethod
    def current() -> SimThread:
        """The :class:`SimThread` the caller is running on."""
        t = getattr(_current, "thread", None)
        if t is None:
            raise NotInSimThread("this operation must run inside a simulated thread")
        return t

    @staticmethod
    def current_or_none() -> Optional[SimThread]:
        return getattr(_current, "thread", None)

    def now(self) -> float:
        """Virtual time of the calling thread (0.0 from outside the sim)."""
        t = self.current_or_none()
        return t.now if t is not None else 0.0

    @property
    def threads(self) -> tuple[SimThread, ...]:
        return tuple(self._threads)

    # -- spawning ------------------------------------------------------------

    def spawn(self, fn: Callable, *args, name: str | None = None,
              start_time: float | None = None, daemon: bool = False,
              **kwargs) -> SimThread:
        """Create a simulated thread and schedule its first wake-up.

        May be called before :meth:`run` or from inside a running simulated
        thread (the child starts no earlier than the parent's ``now``).
        """
        if self._finished:
            raise SimError("kernel already finished; create a new SimKernel")
        parent = self.current_or_none()
        base = parent.now if parent is not None else 0.0
        t0 = base if start_time is None else max(base, float(start_time))
        name = name or f"thread-{len(self._threads)}"
        th = SimThread(self, fn, args, kwargs, name, t0, daemon)
        self._threads.append(th)
        th._os_thread.start()
        self.schedule(th, t0)
        return th

    # -- scheduling primitives (thread- and kernel-side) ----------------------

    def schedule(self, thread: SimThread, time: float) -> None:
        """Enqueue a wake-up for ``thread`` at virtual ``time``.

        If the thread already has a pending wake-up, the earlier one wins
        (the later is cancelled).
        """
        if thread.state in (ThreadState.DONE, ThreadState.FAILED):
            return
        ev = thread._wake_event
        if ev is not None and not ev.cancelled:
            if ev.time <= time:
                return
            ev.cancel()
        thread._wake_event = self._events.push(time, thread)
        if thread.state == ThreadState.BLOCKED:
            thread.state = ThreadState.READY

    def advance(self, dt: float) -> None:
        """Consume ``dt`` seconds of virtual time on the calling thread."""
        if dt < 0:
            raise ValueError(f"cannot advance by negative time {dt!r}")
        th = self.current()
        if dt == 0.0:
            return
        self.schedule(th, th.now + dt)
        th.state = ThreadState.READY
        th._yield_to_kernel()

    def sleep_until(self, time: float) -> None:
        """Block the calling thread until virtual ``time`` (no-op if past)."""
        th = self.current()
        if time > th.now:
            self.advance(time - th.now)

    def block(self, reason: str = "") -> None:
        """Suspend the calling thread until :meth:`wake` is called on it.

        Used by channels, futures and synchronization primitives; user code
        should prefer those higher-level operations.
        """
        th = self.current()
        th.state = ThreadState.BLOCKED
        th.wait_reason = reason
        th._yield_to_kernel()
        th.wait_reason = None

    def wake(self, thread: SimThread, time: float | None = None) -> None:
        """Schedule ``thread`` to resume, no earlier than ``time``.

        The thread's clock jumps to ``max(thread.now, time)`` when it runs —
        e.g. a receiver woken by a message in flight resumes at the message's
        arrival time.
        """
        waker = self.current_or_none()
        t = time if time is not None else (waker.now if waker else thread.now)
        self.schedule(thread, max(t, 0.0))

    # -- main loop -------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Drive the simulation; returns the final virtual time reached.

        Raises :class:`SimThreadFailed` if any simulated thread raised, and
        :class:`DeadlockError` if non-daemon threads remain blocked with no
        pending events.  Daemon threads (e.g. server request loops) are
        killed cleanly once all non-daemon threads have finished.
        """
        if self._running:
            raise SimError("kernel.run() is not reentrant")
        self._running = True
        last_time = 0.0
        try:
            while True:
                self._check_failures()
                if all(
                    t.state in (ThreadState.DONE, ThreadState.FAILED)
                    for t in self._threads if not t.daemon
                ):
                    break
                if not self._events:
                    blocked = [
                        t for t in self._threads
                        if not t.daemon and t.state not in (ThreadState.DONE, ThreadState.FAILED)
                    ]
                    if blocked:
                        raise DeadlockError(blocked)
                    break
                nxt = self._events.peek_time()
                if until is not None and nxt is not None and nxt > until:
                    last_time = until
                    break
                ev = self._events.pop()
                th = ev.thread
                if th.state in (ThreadState.DONE, ThreadState.FAILED):
                    continue
                th._wake_event = None
                last_time = max(last_time, ev.time)
                th.now = max(th.now, ev.time)
                self.events_processed += 1
                self.context_switches += 1
                if self.trace is not None:
                    self.trace(f"[{th.now:.6f}] resume {th.name}")
                th._go.release()
                self._yield_sem.acquire()
            self._check_failures()
            return last_time
        finally:
            self._running = False
            if until is None:
                self._teardown()

    def _check_failures(self) -> None:
        for t in self._threads:
            if t.state == ThreadState.FAILED:
                exc = t.exc
                t.state = ThreadState.DONE
                self._teardown()
                raise SimThreadFailed(t.name, exc) from exc

    def _teardown(self) -> None:
        """Kill every still-live simulated thread and join its OS thread."""
        self._finished = True
        for t in self._threads:
            if t.state not in (ThreadState.DONE, ThreadState.FAILED):
                t._kill = True
                t._go.release()
        for t in self._threads:
            t._os_thread.join(timeout=5.0)
