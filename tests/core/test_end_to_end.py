"""End-to-end ORB tests: IDL -> stubs -> server + client over the wire."""

import numpy as np
import pytest

from repro.core import (
    Future,
    ObjectNotFound,
    OrbConfig,
    Simulation,
    SystemException,
)
from repro.idl import compile_idl

CALC_IDL = """
    exception math_error { string reason; long code; };
    interface calc {
        double add(in double a, in double b);
        double div(in double a, in double b) raises (math_error);
        void noop();
        long counter_bump(in long amount, out long before);
        oneway void fire(in long x);
    };
"""


@pytest.fixture(scope="module")
def calc_mod():
    return compile_idl(CALC_IDL, module_name="calc_stubs_e2e")


def make_calc_servant(mod):
    class CalcImpl(mod.calc_skel):
        def __init__(self):
            self.count = 0
            self.fired = []

        def add(self, a, b):
            return a + b

        def div(self, a, b):
            if b == 0:
                raise mod.math_error(reason="division by zero", code=42)
            return a / b

        def noop(self):
            return None

        def counter_bump(self, amount, ):
            before = self.count
            self.count += amount
            return self.count, before

        def fire(self, x):
            self.fired.append(x)

    return CalcImpl()


def run_pair(mod, client_main, *, servant=None, config=None):
    sim = Simulation(config=config)
    servant = servant or make_calc_servant(mod)

    def server_main(ctx):
        ctx.poa.activate(servant, "calculator", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=1, name="calc-server")
    out = {}

    def wrapped(ctx):
        out["result"] = client_main(ctx)

    sim.client(wrapped, host="HOST_1", nprocs=1, name="calc-client")
    sim.run()
    return out["result"], servant, sim


class TestBlockingInvocation:
    def test_scalar_roundtrip(self, calc_mod):
        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            return c.add(2.0, 3.5)

        result, _, _ = run_pair(calc_mod, main)
        assert result == 5.5

    def test_void_operation(self, calc_mod):
        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            return c.noop()

        result, _, _ = run_pair(calc_mod, main)
        assert result is None

    def test_ret_plus_out_param(self, calc_mod):
        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            total1, before1 = c.counter_bump(10)
            total2, before2 = c.counter_bump(5)
            return (total1, before1, total2, before2)

        result, _, _ = run_pair(calc_mod, main)
        assert result == (10, 0, 15, 10)

    def test_invocation_charges_time(self, calc_mod):
        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            t0 = ctx.now()
            c.add(1.0, 1.0)
            return ctx.now() - t0

        result, _, _ = run_pair(calc_mod, main)
        assert result > 0.0


class TestUserExceptions:
    def test_exception_propagates_with_fields(self, calc_mod):
        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            try:
                c.div(1.0, 0.0)
            except calc_mod.math_error as exc:
                return (exc.reason, exc.code)
            return None

        result, _, _ = run_pair(calc_mod, main)
        assert result == ("division by zero", 42)

    def test_server_keeps_serving_after_exception(self, calc_mod):
        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            with pytest.raises(calc_mod.math_error):
                c.div(1.0, 0.0)
            return c.div(8.0, 2.0)

        result, _, _ = run_pair(calc_mod, main)
        assert result == 4.0

    def test_servant_bug_becomes_system_exception(self, calc_mod):
        class Buggy(calc_mod.calc_skel):
            def add(self, a, b):
                raise KeyError("oops")

        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            with pytest.raises(SystemException, match="oops"):
                c.add(1.0, 2.0)
            return True

        result, _, _ = run_pair(calc_mod, main, servant=Buggy())
        assert result is True


class TestNonBlocking:
    def test_future_resolves(self, calc_mod):
        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            fut = c.add_nb(4.0, 5.0)
            return fut.value()

        result, _, _ = run_pair(calc_mod, main)
        assert result == 9.0

    def test_resolved_polling(self, calc_mod):
        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            fut = c.add_nb(1.0, 2.0)
            polls = 0
            while not fut.resolved():
                polls += 1
                ctx.compute(1e-4)
            return (fut.value(), polls)

        result, _, _ = run_pair(calc_mod, main)
        assert result[0] == 3.0

    def test_future_placeholder_for_out_param(self, calc_mod):
        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            before = Future()
            fut = c.counter_bump_nb(7, before)
            total, before_val = fut.value()
            assert before.resolved()
            return (total, before.value(), before_val)

        result, _, _ = run_pair(calc_mod, main)
        assert result == (7, 0, 0)

    def test_nonblocking_overlaps_computation(self, calc_mod):
        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            t0 = ctx.now()
            fut = c.add_nb(1.0, 1.0)
            ctx.compute(0.5)  # overlapped work
            val = fut.value()
            return (val, ctx.now() - t0)

        result, _, _ = run_pair(calc_mod, main)
        assert result[0] == 2.0
        assert result[1] == pytest.approx(0.5, rel=0.1)

    def test_exception_through_future(self, calc_mod):
        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            fut = c.div_nb(1.0, 0.0)
            with pytest.raises(calc_mod.math_error):
                fut.value()
            return True

        result, _, _ = run_pair(calc_mod, main)
        assert result


class TestOneway:
    def test_oneway_returns_immediately_and_delivers(self, calc_mod):
        servant = make_calc_servant(calc_mod)

        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            c.fire(11)
            c.fire(22)
            # a blocking call afterwards guarantees the oneways were
            # processed first (FIFO per connection)
            c.add(0.0, 0.0)
            return True

        result, servant, _ = run_pair(calc_mod, main, servant=servant)
        assert servant.fired == [11, 22]


class TestErrors:
    def test_unknown_object(self, calc_mod):
        def main(ctx):
            with pytest.raises(ObjectNotFound):
                calc_mod.calc._bind("nonexistent")
            return True

        result, _, _ = run_pair(calc_mod, main)
        assert result

    def test_request_ordering_preserved(self, calc_mod):
        """Paper §2.1: sequence of invocation is preserved per client."""

        def main(ctx):
            c = calc_mod.calc._bind("calculator")
            futs = []
            cfg_outstanding = []
            for i in range(5):
                futs.append(c.counter_bump_nb(1))
            return [f.value()[1] for f in futs]  # 'before' values

        result, _, _ = run_pair(
            calc_mod, main, config=OrbConfig(max_outstanding=8))
        assert result == [0, 1, 2, 3, 4]
