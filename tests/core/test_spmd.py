"""SPMD objects, SPMD clients, and distributed-argument transfer — the
paper's §2.1/§3.1/§3.2 machinery end-to-end."""

import numpy as np
import pytest

from repro.core import (
    CollectiveMismatch,
    Distribution,
    DistributedSequence,
    Future,
    Simulation,
)
from repro.idl import compile_idl

VEC_IDL = """
    typedef dsequence<double, 100000> vec;
    typedef dsequence<double, 100000, BLOCK, CONCENTRATED> cvec;
    interface vecops {
        double total(in vec v);
        void scale(in double k, in vec v, out vec w);
        void iota(in long n, out vec w);
        double total_concentrated(in cvec v);
    };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(VEC_IDL, module_name="vec_stubs_spmd")


def make_servant(mod):
    class VecImpl(mod.vecops_skel):
        def __init__(self, ctx):
            self.ctx = ctx

        def total(self, v):
            # v is this thread's piece of the distributed argument;
            # combine with an RTS collective like a real SPMD kernel.
            from repro.runtime import collectives as coll

            local = float(np.sum(v.owned_data))
            return coll.allreduce(self.ctx.rts, local, lambda a, b: a + b)

        def total_concentrated(self, v):
            from repro.runtime import collectives as coll

            local = float(np.sum(v.owned_data))
            return coll.allreduce(self.ctx.rts, local, lambda a, b: a + b)

        def scale(self, k, v):
            out = DistributedSequence(v.element, v.dist, v.rank,
                                      np.asarray(v.owned_data) * k)
            return out

        def iota(self, n):
            d = Distribution.block(n, self.ctx.nprocs)
            local = np.array(list(d.global_indices(self.ctx.rank)), dtype=float)
            return DistributedSequence.adopt(local, d, self.ctx.rank)

    return VecImpl


def run_spmd_pair(mod, client_main, *, server_np=3, client_np=2,
                  config=None, servant_factory=None):
    sim = Simulation(config=config)
    factory = servant_factory or make_servant(mod)

    def server_main(ctx):
        ctx.poa.activate(factory(ctx), "vecsrv", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=server_np)
    results = {}

    def wrapped(ctx):
        results[ctx.rank] = client_main(ctx)

    sim.client(wrapped, host="HOST_1", nprocs=client_np)
    sim.run()
    return [results[r] for r in sorted(results)], sim


class TestDistributedIn:
    def test_block_to_block_transfer(self, mod):
        n = 20

        def main(ctx):
            v = mod.vec(np.arange(n, dtype=float))  # BLOCK over client
            srv = mod.vecops._spmd_bind("vecsrv")
            return srv.total(v)

        res, _ = run_spmd_pair(mod, main)
        assert res == [sum(range(20))] * 2

    def test_block_to_concentrated(self, mod):
        """The §3.2 example: BLOCK on the client, CONCENTRATED on the
        server."""
        n = 10

        def main(ctx):
            v = mod.cvec(np.full(n, 2.0))
            srv = mod.vecops._spmd_bind("vecsrv")
            return srv.total_concentrated(v)

        res, _ = run_spmd_pair(mod, main)
        assert res == [20.0] * 2

    def test_uneven_client_server_thread_counts(self, mod):
        n = 37

        def main(ctx):
            v = mod.vec(np.arange(n, dtype=float))
            srv = mod.vecops._spmd_bind("vecsrv")
            return srv.total(v)

        for snp, cnp in [(1, 4), (4, 1), (5, 3)]:
            res, _ = run_spmd_pair(mod, main, server_np=snp, client_np=cnp)
            assert res == [float(sum(range(n)))] * cnp

    def test_server_side_in_dist_override(self, mod):
        """Server sets the distribution of an 'in' argument prior to
        registration (§3.2)."""
        seen = {}

        def factory(ctx):
            base = make_servant(mod)

            class Impl(base):
                def total(self, v):
                    seen[ctx.rank] = v.local_size
                    return base.total(self, v)

            return Impl(ctx)

        sim = Simulation()

        def server_main(ctx):
            servant = factory(ctx)
            ctx.poa.activate(servant, "vecsrv", kind="spmd",
                             in_dists={("total", "v"): "CONCENTRATED"})
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_2", nprocs=3)

        def client_main(ctx):
            v = mod.vec(np.ones(12))
            srv = mod.vecops._spmd_bind("vecsrv")
            assert srv.total(v) == 12.0

        sim.client(client_main, host="HOST_1", nprocs=2)
        sim.run()
        assert seen == {0: 12, 1: 0, 2: 0}


class TestDistributedOut:
    def test_out_param_arrives_distributed(self, mod):
        n = 16

        def main(ctx):
            v = mod.vec(np.arange(n, dtype=float))
            srv = mod.vecops._spmd_bind("vecsrv")
            w = srv.scale(3.0, v)
            expected = [3.0 * i for i in w.dist.global_indices(ctx.rank)]
            np.testing.assert_array_equal(w.owned_data, expected)
            return w.dist.kind

        res, _ = run_spmd_pair(mod, main)
        assert res == ["BLOCK", "BLOCK"]

    def test_client_requests_out_distribution(self, mod):
        n = 12

        def main(ctx):
            srv = mod.vecops._spmd_bind("vecsrv")
            w = srv.iota(n, _distributions={"w": "CYCLIC"})
            expected = [float(i) for i in range(ctx.rank, n, ctx.nprocs)]
            np.testing.assert_array_equal(w.owned_data, expected)
            return w.dist.kind

        res, _ = run_spmd_pair(mod, main)
        assert res == ["CYCLIC", "CYCLIC"]

    def test_out_distribution_via_future_placeholder(self, mod):
        n = 8

        def main(ctx):
            srv = mod.vecops._spmd_bind("vecsrv")
            w_fut = Future(distribution="CONCENTRATED")
            srv.iota_nb(n, w_fut)
            w = w_fut.value()
            if ctx.rank == 0:
                np.testing.assert_array_equal(
                    w.owned_data, np.arange(n, dtype=float))
            else:
                assert w.local_size == 0
            return True

        res, _ = run_spmd_pair(mod, main)
        assert res == [True, True]

    def test_out_template_distribution(self, mod):
        n = 40

        def main(ctx):
            srv = mod.vecops._spmd_bind("vecsrv")
            w = srv.iota(n, _distributions={"w": [3, 1]})
            return w.local_size

        res, _ = run_spmd_pair(mod, main)
        assert res == [30, 10]


class TestSingleClientOfSpmdObject:
    def test_bind_sends_whole_arguments(self, mod):
        """The single-invocation stub variant: nondistributed arguments
        from one thread (paper §3.1)."""
        n = 9

        def main(ctx):
            srv = mod.vecops._spmd_bind("vecsrv") if False else \
                mod.vecops._bind("vecsrv")
            total = srv.total(np.arange(n, dtype=float))
            return total

        res, _ = run_spmd_pair(mod, main, client_np=1)
        assert res == [float(sum(range(n)))]

    def test_single_bind_gets_whole_out(self, mod):
        def main(ctx):
            srv = mod.vecops._bind("vecsrv")
            w = srv.iota(6)
            assert w.dist.p == 1
            np.testing.assert_array_equal(w.owned_data,
                                          np.arange(6, dtype=float))
            return True

        res, _ = run_spmd_pair(mod, main, client_np=1)
        assert res == [True]

    def test_each_thread_can_bind_individually(self, mod):
        def main(ctx):
            srv = mod.vecops._bind("vecsrv")
            return srv.total(np.full(4, float(ctx.rank + 1)))

        res, _ = run_spmd_pair(mod, main, client_np=2)
        assert res == [4.0, 8.0]


class TestCollectiveDiscipline:
    def test_collective_mismatch_detected(self, mod):
        def main(ctx):
            srv = mod.vecops._spmd_bind("vecsrv")
            v = mod.vec(np.ones(4))
            with pytest.raises(CollectiveMismatch):
                if ctx.rank == 0:
                    srv.total(v)
                else:
                    srv.iota(4)
            return True

        res, _ = run_spmd_pair(mod, main)
        assert res == [True, True]

    def test_spmd_invocations_stay_matched(self, mod):
        def main(ctx):
            srv = mod.vecops._spmd_bind("vecsrv")
            v = mod.vec(np.ones(6))
            out = []
            for _ in range(3):
                out.append(srv.total(v))
            return out

        res, _ = run_spmd_pair(mod, main)
        assert res == [[6.0] * 3] * 2


class TestSpmdNonBlocking:
    def test_concurrent_spmd_requests_to_two_servers(self, mod):
        """The Fig-2 shape: a non-blocking request to one server overlaps
        a blocking request to another."""
        sim = Simulation()
        factory = make_servant(mod)

        def server_main(ctx):
            ctx.poa.activate(factory(ctx), ctx.program.name, kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_1", nprocs=2, name="srvA",
                   node_offset=2)
        sim.server(server_main, host="HOST_2", nprocs=2, name="srvB")
        done = {}

        def client_main(ctx):
            a = mod.vecops._spmd_bind("srvA")
            b = mod.vecops._spmd_bind("srvB")
            v = mod.vec(np.ones(10))
            fut = b.total_nb(v)
            direct = a.total(v)
            done[ctx.rank] = (direct, fut.value())

        sim.client(client_main, host="HOST_1", nprocs=2)
        sim.run()
        assert done == {0: (10.0, 10.0), 1: (10.0, 10.0)}
