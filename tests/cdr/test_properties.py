"""Property-based round-trip tests for the CDR layer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cdr import (
    EnumTC,
    SequenceTC,
    StringTC,
    StructTC,
    TC_BOOLEAN,
    TC_DOUBLE,
    TC_LONG,
    TC_OCTET,
    TC_SHORT,
    TC_ULONG,
    decode,
    encode,
)

INT_TCS = {
    "octet": (TC_OCTET, st.integers(0, 255)),
    "short": (TC_SHORT, st.integers(-2**15, 2**15 - 1)),
    "long": (TC_LONG, st.integers(-2**31, 2**31 - 1)),
    "ulong": (TC_ULONG, st.integers(0, 2**32 - 1)),
}

finite_doubles = st.floats(allow_nan=False, allow_infinity=False, width=64)


@given(st.sampled_from(sorted(INT_TCS)), st.data())
def test_integer_roundtrip(kind, data):
    tc, strat = INT_TCS[kind]
    value = data.draw(strat)
    assert decode(tc, encode(tc, value)) == value


@given(finite_doubles)
def test_double_roundtrip(value):
    assert decode(TC_DOUBLE, encode(TC_DOUBLE, value)) == value


@given(st.text(max_size=200))
def test_string_roundtrip(s):
    assert decode(StringTC(), encode(StringTC(), s)) == s


@given(st.lists(finite_doubles, max_size=50))
def test_double_sequence_roundtrip(values):
    tc = SequenceTC(TC_DOUBLE)
    out = decode(tc, encode(tc, values))
    np.testing.assert_array_equal(out, np.asarray(values, dtype=float))


@given(st.lists(st.lists(finite_doubles, max_size=10), max_size=10))
def test_nested_sequence_roundtrip(rows):
    tc = SequenceTC(SequenceTC(TC_DOUBLE))
    out = decode(tc, encode(tc, rows))
    assert len(out) == len(rows)
    for got, want in zip(out, rows):
        np.testing.assert_array_equal(got, np.asarray(want, dtype=float))


@given(st.lists(st.text(max_size=30), max_size=20))
def test_string_sequence_roundtrip(values):
    tc = SequenceTC(StringTC())
    assert decode(tc, encode(tc, values)) == values


@settings(max_examples=50)
@given(
    st.lists(st.booleans(), max_size=20),
    st.integers(-2**31, 2**31 - 1),
    st.text(max_size=20),
)
def test_struct_roundtrip(flags, n, label):
    tc = StructTC("mix", (
        ("flags", SequenceTC(TC_BOOLEAN)),
        ("n", TC_LONG),
        ("label", StringTC()),
    ))
    value = {"flags": flags, "n": n, "label": label}
    out = decode(tc, encode(tc, value))
    assert list(out["flags"]) == [int(f) for f in flags]
    assert out["n"] == n
    assert out["label"] == label


@given(st.integers(0, 4))
def test_enum_roundtrip(idx):
    # Decoding canonicalizes to the member name whether the value was
    # encoded by index or by name.
    tc = EnumTC("e", ("A", "B", "C", "D", "E"))
    assert decode(tc, encode(tc, idx)) == tc.members[idx]
    assert decode(tc, encode(tc, tc.members[idx])) == tc.members[idx]


@given(st.integers(0, 2), st.integers(-1000, 1000))
def test_enum_in_struct_roundtrip(idx, n):
    mood = EnumTC("mood", ("HAPPY", "GRUMPY", "SLEEPY"))
    tc = StructTC("tagged", (("state", mood), ("n", TC_LONG)))
    out = decode(tc, encode(tc, {"state": idx, "n": n}))
    assert out == {"state": mood.members[idx], "n": n}


@given(st.lists(finite_doubles, min_size=1, max_size=100))
def test_encoding_is_deterministic(values):
    tc = SequenceTC(TC_DOUBLE)
    assert encode(tc, values) == encode(tc, values)


@given(st.lists(st.integers(-2**31, 2**31 - 1), max_size=30))
def test_numpy_and_list_inputs_encode_identically(values):
    tc = SequenceTC(TC_LONG)
    as_list = encode(tc, values)
    as_arr = encode(tc, np.asarray(values, dtype=np.int32))
    assert as_list == as_arr
