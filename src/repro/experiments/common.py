"""Shared experiment utilities."""

from __future__ import annotations

import dataclasses
from typing import Sequence


def format_table(rows: Sequence, title: str = "",
                 float_fmt: str = "{:10.2f}") -> str:
    """Render a list of dataclass rows as an aligned text table (the
    textual equivalent of the paper's figures)."""
    if not rows:
        return f"{title}\n(no rows)"
    fields = [f.name for f in dataclasses.fields(rows[0])]
    header = " ".join(f"{name:>12}" for name in fields)
    lines = [title, header, "-" * len(header)] if title else [header,
                                                              "-" * len(header)]
    for row in rows:
        cells = []
        for name in fields:
            v = getattr(row, name)
            if isinstance(v, float):
                cells.append(f"{float_fmt.format(v):>12}")
            else:
                cells.append(f"{v!s:>12}")
        lines.append(" ".join(cells))
    return "\n".join(lines)
