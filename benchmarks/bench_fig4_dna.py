"""Figure 4 regeneration: centralized vs distributed single objects on a
parallel server (paper §4.2), both panels.
"""

import pytest

from repro.experiments import format_table
from repro.experiments.fig4_dna import PAPER_PROCS, run_fig4, total_match_work


@pytest.mark.benchmark(group="fig4")
def test_fig4_full_sweep(benchmark):
    rows = benchmark.pedantic(run_fig4, kwargs={"procs": PAPER_PROCS},
                              rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        "Figure 4: client execution time (virtual s) vs server processors\n"
        f"(total single-object query work: {total_match_work():.0f} s)"))
    benchmark.extra_info["rows"] = [
        (r.procs, round(r.t_centralized, 2), round(r.t_distributed, 2),
         round(r.difference, 2))
        for r in rows
    ]
    by_p = {r.procs: r for r in rows}
    # Left panel: centralized is never faster; both fall with processors.
    for p in range(2, 9):
        assert by_p[p].t_distributed < by_p[p].t_centralized
        assert by_p[p].t_centralized < by_p[p - 1].t_centralized
    # Right panel: the 2 -> 3 dip from count-not-weight balancing.
    assert by_p[3].difference < by_p[2].difference
    assert by_p[4].difference > by_p[3].difference


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("placement", ["centralized", "distributed"])
def test_fig4_one_placement(benchmark, placement):
    from repro.experiments.fig4_dna import run_one

    total = benchmark.pedantic(run_one, args=(4, placement),
                               rounds=1, iterations=1)
    benchmark.extra_info.update(procs=4, placement=placement,
                                virtual_s=round(total, 2))
