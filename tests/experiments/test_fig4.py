"""Shape assertions for the Figure 4 reproduction (reduced scale)."""

import pytest

from repro.experiments.fig4_dna import (
    Fig4Row,
    run_fig4,
    run_one,
    total_match_work,
)


@pytest.fixture(scope="module")
def rows():
    return run_fig4(procs=(1, 2, 3, 4), n_seqs=80, rounds=8)


def test_centralized_equals_distributed_on_one_processor(rows):
    r1 = rows[0]
    assert r1.procs == 1
    assert r1.t_centralized == pytest.approx(r1.t_distributed, rel=1e-6)


def test_distributed_wins_beyond_one_processor(rows):
    for r in rows[1:]:
        assert r.t_distributed < r.t_centralized


def test_both_schemes_speed_up_with_processors(rows):
    for a, b in zip(rows, rows[1:]):
        assert b.t_centralized < a.t_centralized


def test_difference_dips_at_three_processors(rows):
    """"Redistribution going from 2 to 3 processors resulted in
    diminished difference" — the by-count (not by-weight) balancing
    artifact."""
    by_p = {r.procs: r.difference for r in rows}
    assert by_p[3] < by_p[2]
    assert by_p[4] > by_p[3]


def test_total_match_work_constant():
    """Paper: total time spent in single-object queries is the same for
    both schemes (30 s at paper scale)."""
    assert total_match_work(20) == pytest.approx(30.0)


def test_run_one_rejects_nothing_and_is_deterministic():
    a = run_one(2, "distributed", n_seqs=40, rounds=3)
    b = run_one(2, "distributed", n_seqs=40, rounds=3)
    assert a == b


def test_rows_structured(rows):
    assert all(isinstance(r, Fig4Row) for r in rows)
    assert [r.procs for r in rows] == [1, 2, 3, 4]
