"""The diffusion component of the §4.3 pipeline (POOMA program).

"An application computing a simplified simulation of 2-D diffusion based
on a 9-point stencil operation ... at every n-th time-step, the diffusion
component pipelines the field values to the gradient component and
continues with its computation.  Further, both the diffusion and the
gradient unit pipeline the results of every completed time-step to a
visualizing server."

The diffusion unit is a parallel client (it repeatedly requests ``show``
and ``gradient`` but is not a server itself, so it has no IDL interface).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..packages.pooma import Field, GridLayout, diffusion_step
from .interfaces import PIPELINE_N, pipeline_stubs


@dataclass
class PipelineReport:
    """Per-thread record of a diffusion run."""

    steps: int = 0
    gradients_requested: int = 0
    frames_shown: int = 0
    elapsed: float = 0.0
    final_norm: float = 0.0


def initial_condition(y: np.ndarray, x: np.ndarray) -> np.ndarray:
    """A hot square in the middle of a cold plate."""
    n = PIPELINE_N
    hot = ((y > n * 0.4) & (y < n * 0.6) & (x > n * 0.4) & (x < n * 0.6))
    return np.where(hot, 100.0, 0.0)


def diffusion_client_main(ctx, steps: int = 100, gradient_every: int = 5,
                          n: int = PIPELINE_N, alpha: float = 0.1,
                          gradient_name: str | None = "field_operations",
                          visualizer_name: str | None = "diff_visualizer",
                          report: dict | None = None,
                          drain_grace: float = 0.0) -> PipelineReport:
    """The §4.3 metaapplication driver (runs on every client thread).

    Set ``gradient_name``/``visualizer_name`` to ``None`` to measure the
    diffusion component in isolation.  ``drain_grace`` keeps the client
    alive for that many extra virtual seconds after the measured run so
    in-flight pipeline stages (last gradient, last visualizer frames)
    complete — the measured ``elapsed`` excludes it.
    """
    mod = pipeline_stubs("POOMA")
    grad = (mod.field_operations._spmd_bind(gradient_name)
            if gradient_name else None)
    viz = (mod.visualizer._spmd_bind(visualizer_name)
           if visualizer_name else None)

    layout = GridLayout(n, n, ctx.nprocs)
    f = Field(layout, ctx.rank, ctx.rts)
    f.fill(initial_condition)

    rep = PipelineReport()
    t0 = ctx.now()
    for step in range(1, steps + 1):
        diffusion_step(f, alpha=alpha)
        rep.steps += 1
        if viz is not None:
            viz.show_nb(f)
            rep.frames_shown += 1
        if grad is not None and step % gradient_every == 0:
            grad.gradient_nb(f)
            rep.gradients_requested += 1
    rep.elapsed = ctx.now() - t0
    rep.final_norm = f.local_norm2()
    if drain_grace > 0.0:
        ctx.compute(drain_grace)
    if report is not None:
        report[ctx.rank] = rep
    return rep
