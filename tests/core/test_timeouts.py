"""Request timeouts (OrbConfig.request_timeout)."""

import pytest

from repro.core import OrbConfig, Simulation, SystemException
from repro.idl import compile_idl

IDL = "interface slowpoke { long poke(in double delay); };"


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="timeout_stubs")


def build(mod, timeout):
    sim = Simulation(config=OrbConfig(request_timeout=timeout))

    def server_main(ctx):
        class Impl(mod.slowpoke_skel):
            def poke(self, delay):
                ctx.compute(delay)
                return 1

        ctx.poa.activate(Impl(), "slowpoke", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=1)
    return sim


def test_slow_reply_times_out(mod):
    sim = build(mod, timeout=0.5)
    out = {}

    def client(ctx):
        s = mod.slowpoke._bind("slowpoke")
        t0 = ctx.now()
        with pytest.raises(SystemException, match="timed out"):
            s.poke(10.0)
        out["elapsed"] = ctx.now() - t0

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["elapsed"] == pytest.approx(0.5, rel=0.05)


def test_fast_reply_does_not_time_out(mod):
    sim = build(mod, timeout=5.0)
    out = {}

    def client(ctx):
        s = mod.slowpoke._bind("slowpoke")
        out["v"] = s.poke(0.01)

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["v"] == 1


def test_timeout_through_future(mod):
    sim = build(mod, timeout=0.25)
    out = {}

    def client(ctx):
        s = mod.slowpoke._bind("slowpoke")
        fut = s.poke_nb(10.0)
        with pytest.raises(SystemException, match="timed out"):
            fut.value()
        out["resolved"] = fut.resolved()

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["resolved"] is True  # failed counts as resolved


def test_no_timeout_by_default(mod):
    sim = build(mod, timeout=None)
    out = {}

    def client(ctx):
        s = mod.slowpoke._bind("slowpoke")
        out["v"] = s.poke(2.0)  # slow but eventually served

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["v"] == 1
