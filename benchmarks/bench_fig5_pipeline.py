"""Figure 5 regeneration: overall performance of the pipelined POOMA ->
HPC++ metaapplication vs the performance of its components (paper §4.3).
"""

import pytest

from repro.experiments import format_table
from repro.experiments.fig5_pipeline import PAPER_PROCS, run_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_full_sweep(benchmark):
    rows = benchmark.pedantic(run_fig5, kwargs={"procs": PAPER_PROCS},
                              rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        "Figure 5: metaapplication vs component time (virtual s);\n"
        "128x128 grid, 100 steps, gradient every 5th step, Ethernet"))
    benchmark.extra_info["rows"] = [
        (r.procs, round(r.t_overall, 2), round(r.t_diffusion, 2),
         round(r.t_gradient, 2))
        for r in rows
    ]
    # All series fall with processors; the overall time stays above the
    # diffusion component; overall scaling flattens (the paper's
    # "advantages did not scale very well").
    for a, b in zip(rows, rows[1:]):
        assert b.t_overall < a.t_overall
        assert b.t_diffusion < a.t_diffusion
    for r in rows:
        assert r.t_overall > r.t_diffusion
    first, last = rows[0], rows[-1]
    overall_speedup = first.t_overall / last.t_overall
    diffusion_speedup = first.t_diffusion / last.t_diffusion
    assert overall_speedup < diffusion_speedup
    assert overall_speedup < (last.procs / first.procs) * 0.85
