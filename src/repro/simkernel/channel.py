"""Timestamped message channels.

A :class:`Channel` is a mailbox of messages, each carrying a virtual
*arrival time*.  A receiver can only take a message once its own clock has
reached the arrival time; receiving an in-flight message blocks the
receiver and resumes it exactly at arrival.  This is the delivery
primitive underneath both the network transport and the intra-program
run-time systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .kernel import SimKernel, SimThread

MatchFn = Callable[["Envelope"], bool]


@dataclass
class Envelope:
    """A message queued in a channel."""

    arrival: float
    seq: int
    payload: Any
    meta: dict = field(default_factory=dict)


class Channel:
    """Mailbox with virtual-time delivery and predicate-matched receive."""

    def __init__(self, kernel: SimKernel, name: str = "chan") -> None:
        self.kernel = kernel
        self.name = name
        self._queue: list[Envelope] = []
        self._waiters: list[tuple[SimThread, Optional[MatchFn]]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._queue)

    # -- sending ------------------------------------------------------------

    def push(self, payload: Any, arrival: float, **meta) -> Envelope:
        """Deposit a message that becomes visible at virtual ``arrival``."""
        env = Envelope(arrival, self._seq, payload, meta)
        self._seq += 1
        # Keep the queue sorted by (arrival, seq) so receive order is the
        # message delivery order, not the send-call order.
        idx = len(self._queue)
        while idx > 0 and (self._queue[idx - 1].arrival, self._queue[idx - 1].seq) > (arrival, env.seq):
            idx -= 1
        self._queue.insert(idx, env)
        self._notify()
        return env

    def _notify(self) -> None:
        """Wake any waiter whose predicate now has a matching message."""
        if not self._waiters:
            return
        claimed: list[int] = []
        for wi, (thread, match) in enumerate(self._waiters):
            env = self._find(match, exclude=claimed)
            if env is not None:
                claimed.append(self._queue.index(env))
                self.kernel.wake(thread, env.arrival)
        # Waiters stay registered until they actually dequeue; spurious
        # wake-ups re-block below in receive().

    def _find(self, match: Optional[MatchFn], exclude=()) -> Optional[Envelope]:
        for i, env in enumerate(self._queue):
            if i in exclude:
                continue
            if match is None or match(env):
                return env
        return None

    # -- receiving ----------------------------------------------------------

    def poll(self, match: MatchFn | None = None) -> Optional[Envelope]:
        """Non-blocking receive: a matching message whose arrival time has
        passed on the calling thread's clock, else ``None``."""
        th = self.kernel.current()
        env = self._find(match)
        if env is not None and env.arrival <= th.now:
            self._queue.remove(env)
            return env
        return None

    def peek(self, match: MatchFn | None = None) -> Optional[Envelope]:
        """Like :meth:`poll` but leaves the message in the channel."""
        th = self.kernel.current()
        env = self._find(match)
        if env is not None and env.arrival <= th.now:
            return env
        return None

    def receive(self, match: MatchFn | None = None,
                reason: str = "channel.receive",
                deadline: float | None = None) -> Optional[Envelope]:
        """Blocking receive; the caller's clock advances to the arrival
        time of the message it takes (if later than its current time).

        With a ``deadline`` (absolute virtual time), gives up and returns
        ``None`` once the clock reaches it with no matching message.
        """
        th = self.kernel.current()
        while True:
            env = self._find(match)
            if env is not None and env.arrival <= th.now:
                self._queue.remove(env)
                return env
            if deadline is not None and th.now >= deadline:
                return None
            self._waiters.append((th, match))
            if env is not None:
                # In flight: wake at arrival, then re-check (an earlier
                # message may have slipped in while we slept).
                self.kernel.wake(th, min(env.arrival, deadline)
                                 if deadline is not None else env.arrival)
            elif deadline is not None:
                self.kernel.wake(th, deadline)
            self.kernel.block(f"{reason} on {self.name}")
            self._waiters.remove((th, match))
