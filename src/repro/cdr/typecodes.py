"""TypeCodes: runtime descriptions of IDL types.

A :class:`TypeCode` drives marshaling (see :mod:`repro.cdr.encoder`),
wire-size estimation, and default-value construction.  The IDL compiler
emits one TypeCode expression per declared type; handwritten code can
build them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np


class TypeCode:
    """Base class; concrete kinds below."""

    kind: str = "abstract"

    def default(self) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"tc<{self.kind}>"


@dataclass(frozen=True, repr=False)
class PrimitiveTC(TypeCode):
    """A fixed-size primitive (octet/boolean/char/integers/floats)."""

    name: str
    size: int          # bytes on the wire (also the CDR alignment)
    fmt: str           # struct/numpy dtype char, e.g. "<i4"
    py_default: Any = 0

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.name

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.fmt)

    def default(self) -> Any:
        return self.py_default

    def __repr__(self) -> str:
        return f"tc<{self.name}>"


TC_OCTET = PrimitiveTC("octet", 1, "<u1")
TC_BOOLEAN = PrimitiveTC("boolean", 1, "<u1", False)
TC_CHAR = PrimitiveTC("char", 1, "<u1", "\0")
TC_SHORT = PrimitiveTC("short", 2, "<i2")
TC_USHORT = PrimitiveTC("ushort", 2, "<u2")
TC_LONG = PrimitiveTC("long", 4, "<i4")
TC_ULONG = PrimitiveTC("ulong", 4, "<u4")
TC_LONGLONG = PrimitiveTC("longlong", 8, "<i8")
TC_ULONGLONG = PrimitiveTC("ulonglong", 8, "<u8")
TC_FLOAT = PrimitiveTC("float", 4, "<f4", 0.0)
TC_DOUBLE = PrimitiveTC("double", 8, "<f8", 0.0)

PRIMITIVES = {
    tc.name: tc
    for tc in (TC_OCTET, TC_BOOLEAN, TC_CHAR, TC_SHORT, TC_USHORT, TC_LONG,
               TC_ULONG, TC_LONGLONG, TC_ULONGLONG, TC_FLOAT, TC_DOUBLE)
}

#: IDL integer ranges, used for encode-time validation.
INT_RANGES = {
    "octet": (0, 2**8 - 1),
    "short": (-2**15, 2**15 - 1),
    "ushort": (0, 2**16 - 1),
    "long": (-2**31, 2**31 - 1),
    "ulong": (0, 2**32 - 1),
    "longlong": (-2**63, 2**63 - 1),
    "ulonglong": (0, 2**64 - 1),
}


@dataclass(frozen=True, repr=False)
class StringTC(TypeCode):
    """IDL ``string`` / ``string<bound>`` (bound excludes the terminator)."""

    bound: Optional[int] = None
    kind = "string"

    def default(self) -> str:
        return ""

    def __repr__(self) -> str:
        return f"tc<string<{self.bound}>>" if self.bound else "tc<string>"


@dataclass(frozen=True, repr=False)
class SequenceTC(TypeCode):
    """IDL ``sequence<T>`` / ``sequence<T, bound>``."""

    element: TypeCode
    bound: Optional[int] = None
    kind = "sequence"

    def default(self) -> list:
        return []

    def __repr__(self) -> str:
        b = f", {self.bound}" if self.bound else ""
        return f"tc<sequence<{self.element!r}{b}>>"


@dataclass(frozen=True, repr=False)
class EnumTC(TypeCode):
    """IDL ``enum``; values travel as ulong member indices."""

    name: str
    members: tuple[str, ...]
    kind = "enum"

    def default(self) -> int:
        return 0

    def index_of(self, value: Any) -> int:
        if isinstance(value, str):
            return self.members.index(value)
        return int(value)

    def __repr__(self) -> str:
        return f"tc<enum {self.name}>"


@dataclass(frozen=True, repr=False)
class StructTC(TypeCode):
    """IDL ``struct``; values are dicts or objects with matching attrs."""

    name: str
    fields: tuple[tuple[str, TypeCode], ...]
    kind = "struct"

    def default(self) -> dict:
        return {fname: ftc.default() for fname, ftc in self.fields}

    def __repr__(self) -> str:
        return f"tc<struct {self.name}>"


@dataclass(frozen=True, repr=False)
class ObjectRefTC(TypeCode):
    """A CORBA object reference (the PARDIS IOR) as a data value.

    ``repo_id`` narrows the expected interface (IDL interface-typed
    parameters); ``None`` is the wildcard ``Object`` type.  Values are
    :class:`repro.core.repository.ObjectRef` instances, proxies (their
    reference is extracted), or ``None`` (the nil reference).
    """

    repo_id: Optional[str] = None
    kind = "objref"

    def default(self):
        return None

    def __repr__(self) -> str:
        return f"tc<Object{f' ({self.repo_id})' if self.repo_id else ''}>"


@dataclass(frozen=True, repr=False)
class ArrayTC(TypeCode):
    """IDL fixed-size array ``T name[d0][d1]...``: no length prefix on the
    wire, exactly ``prod(dims)`` elements in row-major order."""

    element: TypeCode
    dims: tuple[int, ...]
    kind = "array"

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise ValueError(f"array dims must be positive, got {self.dims}")

    @property
    def total(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    def default(self):
        if is_numeric_primitive(self.element):
            return np.zeros(self.dims, dtype=self.element.dtype)

        def build(dims):
            if not dims:
                return self.element.default()
            return [build(dims[1:]) for _ in range(dims[0])]

        return build(self.dims)

    def __repr__(self) -> str:
        dims = "".join(f"[{d}]" for d in self.dims)
        return f"tc<array {self.element!r}{dims}>"


@dataclass(frozen=True, repr=False)
class UnionTC(TypeCode):
    """IDL discriminated union: the discriminator travels first, then the
    selected arm.  Values are ``(discriminant, arm_value)`` pairs."""

    name: str
    discriminator: TypeCode
    #: ((label_value, arm_name, arm_tc), ...)
    cases: tuple[tuple[Any, str, TypeCode], ...]
    #: (arm_name, arm_tc) for the default arm, or None
    default_case: Optional[tuple[str, TypeCode]] = None
    kind = "union"

    def arm_for(self, disc: Any):
        # Enum-discriminated unions store integer labels (member indices);
        # accept member names too, since enums decode to their names.
        if isinstance(self.discriminator, EnumTC) and isinstance(disc, str):
            if disc not in self.discriminator.members:
                return None
            disc = self.discriminator.members.index(disc)
        for label, aname, atc in self.cases:
            if label == disc:
                return aname, atc
        if self.default_case is not None:
            return self.default_case
        return None

    def default(self):
        label, aname, atc = self.cases[0]
        return (label, atc.default())

    def __repr__(self) -> str:
        return f"tc<union {self.name}>"


@dataclass(frozen=True, repr=False)
class DSequenceTC(TypeCode):
    """PARDIS ``dsequence<T, bound, client_dist, server_dist>``.

    On the wire a dsequence travels as per-thread *fragments*, each encoded
    as a plain sequence; the distribution attributes live here so stubs
    know the default layouts on either side.
    """

    element: TypeCode
    bound: Optional[int] = None
    client_dist: str = "BLOCK"
    server_dist: str = "BLOCK"
    kind = "dsequence"

    def fragment_tc(self) -> SequenceTC:
        return SequenceTC(self.element)

    def default(self):
        return []

    def __repr__(self) -> str:
        return (f"tc<dsequence<{self.element!r}, {self.bound}, "
                f"{self.client_dist}, {self.server_dist}>>")


def is_numeric_primitive(tc: TypeCode) -> bool:
    return isinstance(tc, PrimitiveTC) and tc.name not in ("char",)


def wire_size(tc: TypeCode, value: Any, _offset: int = 0) -> int:
    """Exact encoded size of ``value`` under ``tc`` starting at an aligned
    offset — used to charge network time without double-encoding."""
    from .encoder import CdrEncoder  # local import to avoid a cycle

    enc = CdrEncoder()
    enc.encode(tc, value)
    return len(enc.getvalue())
