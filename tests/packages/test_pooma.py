"""Tests for the mini-POOMA package."""

import numpy as np
import pytest

from repro.packages.pooma import (
    Field,
    GridLayout,
    diffusion_step,
    magnitude_gradient,
    nine_point_stencil,
)
from repro.runtime import PoomaRuntime

from ..runtime.conftest import make_world


def run_contexts(nprocs, main):
    world = make_world(nodes=max(nprocs, 2))
    prog = world.launch(main, host="hostA", nprocs=nprocs,
                        rts_factory=PoomaRuntime)
    world.run()
    return prog.results


def reference_diffusion(grid, steps, alpha=0.1):
    """Whole-grid single-process reference implementation."""
    cur = np.asarray(grid, dtype=float).copy()
    for _ in range(steps):
        padded = np.pad(cur, 1, mode="edge")
        cur = nine_point_stencil(padded, alpha)
    return cur


class TestGridLayout:
    def test_row_partition(self):
        lay = GridLayout(10, 4, p=3)
        assert [lay.local_rows(r) for r in range(3)] == [4, 3, 3]
        assert lay.row_start(1) == 4
        assert lay.row_stop(2) == 10

    def test_neighbors(self):
        lay = GridLayout(9, 3, p=3)
        assert lay.neighbors(0) == (None, 1)
        assert lay.neighbors(1) == (0, 2)
        assert lay.neighbors(2) == (1, None)

    def test_flat_distribution_matches_rows(self):
        lay = GridLayout(5, 4, p=2)
        d = lay.flat_distribution()
        assert d.intervals(0) == ((0, 12),)   # 3 rows * 4 cols
        assert d.intervals(1) == ((12, 20),)

    def test_invalid_layouts(self):
        with pytest.raises(ValueError):
            GridLayout(2, 2, p=3)  # more contexts than rows
        with pytest.raises(ValueError):
            GridLayout(0, 2, p=1)


class TestField:
    def test_initial_from_global(self):
        lay = GridLayout(4, 3, p=2)
        init = np.arange(12.0).reshape(4, 3)
        f = Field(lay, rank=1, initial=init)
        np.testing.assert_array_equal(f.interior, init[2:4])

    def test_fill_uses_global_coordinates(self):
        lay = GridLayout(4, 4, p=2)
        f = Field(lay, rank=1)
        f.fill(lambda y, x: y * 10.0 + x)
        assert f.interior[0, 0] == 20.0  # global row 2

    def test_bad_initial_shape(self):
        lay = GridLayout(4, 4, p=2)
        with pytest.raises(ValueError, match="shape"):
            Field(lay, rank=0, initial=np.zeros((3, 3)))

    def test_ghost_exchange(self):
        def main(rts):
            lay = GridLayout(6, 4, p=rts.nprocs)
            f = Field(lay, rts.rank, rts)
            f.fill(lambda y, x: y.astype(float))
            f.exchange_ghosts()
            up, down = lay.neighbors(rts.rank)
            checks = []
            if up is not None:
                checks.append(f.data[0, 0] == lay.row_start(rts.rank) - 1)
            if down is not None:
                checks.append(f.data[-1, 0] == lay.row_stop(rts.rank))
            return all(checks)

        assert run_contexts(3, main) == [True, True, True]

    def test_assemble(self):
        def main(rts):
            lay = GridLayout(5, 3, p=rts.nprocs)
            f = Field(lay, rts.rank, rts)
            f.fill(lambda y, x: y * 100.0 + x)
            return f.assemble(root=0)

        res = run_contexts(2, main)
        expected = np.add.outer(np.arange(5) * 100.0, np.arange(3.0))
        np.testing.assert_array_equal(res[0], expected)
        assert res[1] is None


class TestDiffusion:
    def test_parallel_matches_reference(self):
        ny = nx = 12
        steps = 5
        init = np.zeros((ny, nx))
        init[5:7, 5:7] = 100.0
        expected = reference_diffusion(init, steps)

        def main(rts):
            lay = GridLayout(ny, nx, p=rts.nprocs)
            f = Field(lay, rts.rank, rts, initial=init)
            for _ in range(steps):
                diffusion_step(f, alpha=0.1)
            return f.assemble(root=0)

        for p in (1, 2, 3):
            res = run_contexts(p, main)
            np.testing.assert_allclose(res[0], expected, atol=1e-12)

    def test_diffusion_conserves_shape_and_smooths(self):
        init = np.zeros((8, 8))
        init[4, 4] = 1.0
        out = reference_diffusion(init, 10)
        assert out.shape == (8, 8)
        assert out.max() < 1.0
        assert out.min() >= 0.0

    def test_charges_compute_time(self):
        def main(rts):
            lay = GridLayout(16, 16, p=1)
            f = Field(lay, 0, rts)
            t0 = rts.now()
            diffusion_step(f)
            return rts.now() - t0

        res = run_contexts(1, main)
        assert res[0] > 0


class TestGradient:
    def test_magnitude_gradient_of_plane_is_constant(self):
        plane = np.add.outer(np.arange(10.0) * 3.0, np.arange(10.0) * 4.0)
        g = magnitude_gradient(plane)
        np.testing.assert_allclose(g[1:-1, 1:-1], 5.0)

    def test_gradient_flat_field_is_zero(self):
        np.testing.assert_array_equal(magnitude_gradient(np.ones((5, 5))), 0)
