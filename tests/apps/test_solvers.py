"""Correctness tests for the §4.1 solver applications."""

import numpy as np
import pytest

from repro.core import Simulation, default_network
from repro.apps.interfaces import solver_stubs
from repro.apps.solvers import (
    compute_difference,
    direct_flops,
    direct_server_main,
    generate_system,
    iterative_server_main,
    jacobi_sweep_flops,
    matrix_as_rows,
    rows_to_matrix,
)


class TestSystemGeneration:
    def test_reproducible(self):
        a1, b1 = generate_system(50)
        a2, b2 = generate_system(50)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(b1, b2)

    def test_diagonally_dominant(self):
        a, _ = generate_system(60)
        diag = np.abs(np.diag(a))
        off = np.abs(a).sum(axis=1) - diag
        assert np.all(diag > off)

    def test_jacobi_converges_on_generated_system(self):
        a, b = generate_system(80)
        x_ref = np.linalg.solve(a, b)
        d = np.diag(a)
        x = np.zeros(80)
        for _ in range(400):
            x = (b - (a @ x - d * x)) / d
        np.testing.assert_allclose(x, x_ref, atol=1e-5)

    def test_matrix_row_helpers_roundtrip(self):
        a, _ = generate_system(10)
        rows = matrix_as_rows(a)
        assert len(rows) == 10
        np.testing.assert_array_equal(rows_to_matrix(rows), a)

    def test_rows_to_matrix_empty(self):
        assert rows_to_matrix([]).size == 0


class TestCostModels:
    def test_direct_is_cubic(self):
        assert direct_flops(200) / direct_flops(100) == pytest.approx(8.0)

    def test_sweep_is_quadratic(self):
        assert jacobi_sweep_flops(200) / jacobi_sweep_flops(100) == \
            pytest.approx(4.0)


class TestComputeDifference:
    def test_zero_for_identical(self):
        assert compute_difference([1.0, 2.0], np.array([1.0, 2.0])) == 0.0

    def test_max_abs(self):
        assert compute_difference([1.0, 5.0], [1.5, 2.0]) == 3.0


def run_solver(server_main, object_name, invoke, nprocs=2):
    sim = Simulation(network=default_network())
    sim.server(server_main, host="HOST_2", nprocs=nprocs)
    out = {}

    def client(ctx):
        mod = solver_stubs()
        out.setdefault("x", {})[ctx.rank] = invoke(ctx, mod)

    sim.client(client, host="HOST_1", nprocs=2)
    sim.run()
    return out["x"]


class TestSolverServants:
    @pytest.mark.parametrize("n", [16, 37])
    def test_direct_solver_solution_is_correct(self, n):
        a, b = generate_system(n)
        x_ref = np.linalg.solve(a, b)

        def invoke(ctx, mod):
            solver = mod.direct._spmd_bind("direct_solver")
            A = mod.matrix(matrix_as_rows(a))
            B = mod.vector(b)
            x = solver.solve(A, B)
            return x.gather(ctx.rts, root=0)

        res = run_solver(direct_server_main, "direct_solver", invoke)
        np.testing.assert_allclose(res[0], x_ref, atol=1e-8)

    @pytest.mark.parametrize("n", [16, 37])
    def test_iterative_solver_converges(self, n):
        a, b = generate_system(n)
        x_ref = np.linalg.solve(a, b)

        def invoke(ctx, mod):
            solver = mod.iterative._spmd_bind("itrt_solver")
            A = mod.matrix(matrix_as_rows(a))
            B = mod.vector(b)
            x = solver.solve(1e-8, A, B)
            return x.gather(ctx.rts, root=0)

        res = run_solver(iterative_server_main, "itrt_solver", invoke)
        np.testing.assert_allclose(res[0], x_ref, atol=1e-5)

    def test_methods_agree(self):
        n = 24
        a, b = generate_system(n)

        sim = Simulation(network=default_network())
        sim.server(direct_server_main, host="HOST_1", nprocs=2, node_offset=2)
        sim.server(iterative_server_main, host="HOST_2", nprocs=2)
        out = {}

        def client(ctx):
            mod = solver_stubs()
            d = mod.direct._spmd_bind("direct_solver")
            i = mod.iterative._spmd_bind("itrt_solver")
            A = mod.matrix(matrix_as_rows(a))
            B = mod.vector(b)
            fut = mod.Future()
            i.solve_nb(1e-8, A, B, fut)
            x2 = d.solve(A, B)
            x1 = fut.value()
            g1 = x1.gather(ctx.rts, root=0)
            g2 = x2.gather(ctx.rts, root=0)
            if ctx.rank == 0:
                out["diff"] = compute_difference(g1, g2)

        sim.client(client, host="HOST_1", nprocs=2)
        sim.run()
        assert out["diff"] < 1e-5

    def test_solver_parallelism_reduces_virtual_time(self):
        """More server threads -> less virtual time (the cost models are
        divided over threads; the transfers barely grow)."""
        n = 64
        a, b = generate_system(n)

        def invoke(ctx, mod):
            solver = mod.direct._spmd_bind("direct_solver")
            t0 = ctx.now()
            solver.solve(mod.matrix(matrix_as_rows(a)), mod.vector(b))
            return ctx.now() - t0

        t2 = run_solver(direct_server_main, "direct_solver", invoke, nprocs=2)
        t4 = run_solver(direct_server_main, "direct_solver", invoke, nprocs=4)
        assert t4[0] < t2[0]


class TestConjugateGradients:
    @pytest.mark.parametrize("nprocs", [1, 2, 3])
    def test_cg_matches_numpy(self, nprocs):
        from repro.apps.solvers import generate_spd_system

        n = 30
        a, b = generate_spd_system(n)
        x_ref = np.linalg.solve(a, b)

        def server_main(ctx):
            from repro.apps.solvers import iterative_server_main

            iterative_server_main(ctx, "cg_solver", method="cg")

        sim = Simulation(network=default_network())
        sim.server(server_main, host="HOST_2", nprocs=nprocs)
        out = {}

        def client(ctx):
            mod = solver_stubs()
            s = mod.iterative._spmd_bind("cg_solver")
            x = s.solve(1e-10, mod.matrix(matrix_as_rows(a)), mod.vector(b))
            out["x"] = x.gather(ctx.rts, root=0)

        sim.client(client, host="HOST_1", nprocs=2)
        sim.run()
        np.testing.assert_allclose(out["x"], x_ref, atol=1e-6)

    def test_spd_system_is_spd(self):
        from repro.apps.solvers import generate_spd_system

        a, _ = generate_spd_system(40)
        np.testing.assert_allclose(a, a.T)
        assert np.all(np.linalg.eigvalsh(a) > 0)

    def test_cg_converges_faster_than_jacobi_on_spd(self):
        """On a well-conditioned SPD system CG needs far fewer iterations
        (the algorithm-development angle of §4.1)."""
        from repro.apps.solvers import generate_spd_system

        n = 24
        a, b = generate_spd_system(n)
        counts = {}
        for method in ("cg", "jacobi"):
            sim = Simulation(network=default_network())
            servant_box = {}

            def server_main(ctx, m=method):
                from repro.apps.solvers import (
                    make_cg_servant,
                    make_iterative_servant,
                )

                servant = (make_cg_servant(ctx) if m == "cg"
                           else make_iterative_servant(ctx))
                servant_box[0] = servant
                ctx.poa.activate(servant, "it", kind="spmd")
                ctx.poa.impl_is_ready()

            sim.server(server_main, host="HOST_2", nprocs=1)

            def client(ctx):
                mod = solver_stubs()
                s = mod.iterative._spmd_bind("it")
                s.solve(1e-8, mod.matrix(matrix_as_rows(a)), mod.vector(b))

            sim.client(client, host="HOST_1", nprocs=1)
            sim.run()
            counts[method] = servant_box[0].iterations_run
        assert counts["cg"] < counts["jacobi"]
