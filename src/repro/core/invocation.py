"""Client-side invocation engine: bindings, requests, progress.

This module implements what the compiler-generated stubs delegate to:

* :class:`Binding` — the client's connection to an object, created by
  ``_bind`` (one per thread) or ``_spmd_bind`` (collective, representing
  the parallel client to the ORB as one entity, paper §3.1);
* :func:`invoke` — blocking and non-blocking request emission, including
  direct parallel transfer of distributed arguments, flow control
  (bounded outstanding requests per binding) and the local-bypass
  optimization (§4.1);
* :class:`PendingRequest` — reply/fragment collection and future
  resolution (the ORB's client-side progress engine).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional

from ..runtime import collectives as coll
from ..runtime.tags import (
    TAG_ARG_FRAGMENT,
    TAG_REPLY_HEADER,
    TAG_REQUEST_HEADER,
    TAG_RESULT_FRAGMENT,
)
from .distribution import Distribution
from .dsequence import DistributedSequence
from .errors import BindingError, CollectiveMismatch, SystemException
from .futures import Future
from .interfacedef import OpDef
from .marshal import (
    as_distributed,
    decode_scalars,
    encode_out_request,
    encode_scalars,
    fragment_payload,
    fragment_values,
    materialize_objrefs,
    resolve_out_dist,
    scalar_in_specs,
    scalar_result_specs,
    wrap_out,
)
from .repository import ObjectRef
from .request import (
    Fragment,
    ReplyHeader,
    RequestHeader,
    STATUS_OK,
    STATUS_SYS_EXC,
    STATUS_USER_EXC,
    build as build_dist,
    describe as describe_dist,
)
from . import transfer as _transfer

__all__ = ["Binding", "PendingRequest", "invoke"]


class Binding:
    """A client thread's (or SPMD client's) connection to an object."""

    def __init__(self, ctx, ref: ObjectRef, collective: bool) -> None:
        self.ctx = ctx
        self.ref = ref
        self.collective = collective
        scope = "c" if collective else f"r{ctx.rank}"
        self.uid = (ctx.program.program_id, scope, ctx._binding_counter)
        ctx._binding_counter += 1
        self._req_seq = 0
        self.outstanding: list[PendingRequest] = []
        self.local = ref.program_id == ctx.program.program_id
        ctx.compute(ctx.orb.config.bind_cost)

    @property
    def client_nthreads(self) -> int:
        return self.ctx.nprocs if self.collective else 1

    @property
    def client_index(self) -> int:
        """This thread's index within the invocation (0 for single)."""
        return self.ctx.rank if self.collective else 0

    def next_req_id(self):
        self._req_seq += 1
        return (self.uid, self._req_seq)

    def reply_endpoints(self) -> tuple:
        prog = self.ctx.program
        if self.collective:
            from ..runtime.program import PORT_ORB

            return tuple(prog.address(r, PORT_ORB) for r in range(prog.nprocs))
        return (self.ctx.endpoint.address,)

    def __repr__(self) -> str:
        mode = "spmd" if self.collective else "single"
        return f"<Binding {self.ref.name!r} {mode} local={self.local}>"


# ---------------------------------------------------------------------------
# Pending requests (progress engine)
# ---------------------------------------------------------------------------


class PendingRequest:
    """Client-side state of one in-flight request on one thread."""

    def __init__(self, binding: Binding, op: OpDef, req_id,
                 out_requests: dict, placeholders: tuple) -> None:
        self.binding = binding
        self.ctx = binding.ctx
        self.op = op
        self.req_id = req_id
        self._obs = binding.ctx.orb.observer
        self.out_requests = out_requests
        self.reply: Optional[ReplyHeader] = None
        self.done = False
        self.error: Optional[BaseException] = None
        self.result: Any = None
        #: param -> (dist, storage, remaining fragment count)
        self._out_state: dict[str, list] = {}
        timeout = self.ctx.orb.config.request_timeout
        self.deadline = (self.ctx.now() + timeout
                         if timeout is not None else None)
        self.result_future = Future(label=f"{op.name}#{req_id[-1]}")
        self.result_future._bind(self._progress_hook)
        self.placeholders = tuple(placeholders)
        if len(self.placeholders) > len(op.out_params):
            raise BindingError(
                f"{op.name}: {len(self.placeholders)} future placeholders "
                f"for {len(op.out_params)} out parameters"
            )
        for fut in self.placeholders:
            fut._bind(self._progress_hook)

    # -- progress -----------------------------------------------------------------

    def _progress_hook(self, block: bool) -> None:
        if not block:
            self.ctx.compute(self.ctx.orb.config.poll_cost)
        self.progress(block)
        if block and self.error is not None:
            # value() re-raises via the future's stored exception
            pass

    def progress(self, block: bool) -> bool:
        """Advance this request; returns True when complete."""
        ep = self.ctx.endpoint
        while not self.done:
            if self.reply is None:
                pkt = self._take(ep, TAG_REPLY_HEADER, block)
                if pkt is None:
                    return False
                self._on_reply(pkt.body)
                continue
            needed = self._next_needed_param()
            if needed is None:
                self._finish()
                continue
            pkt = self._take(
                ep, TAG_RESULT_FRAGMENT, block,
                extra=lambda frag: frag.param == needed
                or frag.param in self._pending_params(),
            )
            if pkt is None:
                return False
            self._on_fragment(pkt.body)
        return True

    def _take(self, ep, tag, block, extra=None):
        def match(env):
            pkt = env.payload
            if pkt.tag != tag:
                return False
            body = pkt.body
            if body.req_id != self.req_id:
                return False
            return extra is None or extra(body)

        if block:
            obs = self._obs
            t0 = self.ctx.now() if obs is not None else 0.0
            env = ep.channel.receive(match, reason=f"reply {self.op.name}",
                                     deadline=self.deadline)
            if obs is not None:
                obs.span("wait", self.op.name, self.req_id,
                         self.ctx.program.name, self.binding.client_index,
                         t0, self.ctx.now())
            if env is None:
                self._fail(SystemException(
                    f"{self.op.name} timed out after "
                    f"{self.ctx.orb.config.request_timeout} virtual s"
                ))
                return None
        else:
            env = ep.channel.poll(match)
        return env.payload if env else None

    def _pending_params(self):
        return [p for p, st in self._out_state.items() if st[2] > 0]

    def _next_needed_param(self):
        pend = self._pending_params()
        return pend[0] if pend else None

    # -- reply handling ------------------------------------------------------------

    def _on_reply(self, reply: ReplyHeader) -> None:
        self.reply = reply
        if reply.status != STATUS_OK:
            self._fail(self._build_exception(reply))
            return
        my_idx = self.binding.client_index
        p_client = self.binding.client_nthreads
        for param in self.op.dseq_out_params:
            descr = reply.dseq_outs.get(param.name)
            if descr is None:
                self._fail(SystemException(
                    f"server reply missing layout for out arg {param.name!r}"
                ))
                return
            server_dist = build_dist(descr)
            n = server_dist.n
            client_dist = resolve_out_dist(
                self.out_requests.get(param.name), param.tc.client_dist,
                n, p_client,
            )
            sched = _transfer.schedule(server_dist, client_dist)
            expected = sum(1 for t in sched if t.dst_rank == my_idx)
            storage = DistributedSequence(param.tc.element, client_dist, my_idx)
            self._out_state[param.name] = [client_dist, storage, expected]

    def _on_fragment(self, frag: Fragment) -> None:
        state = self._out_state.get(frag.param)
        if state is None or state[2] <= 0:
            raise SystemException(
                f"unexpected fragment for {frag.param!r} of {self.op.name}"
            )
        obs = self._obs
        t0 = self.ctx.now() if obs is not None else 0.0
        dist, storage, _ = state
        param = next(p for p in self.op.dseq_out_params if p.name == frag.param)
        values = fragment_values(param.tc.element, frag.payload)
        _transfer.insert(dist, self.binding.client_index, storage.owned_data,
                         tuple(frag.intervals), values)
        state[2] -= 1
        if obs is not None:
            obs.span("unmarshal", self.op.name, self.req_id,
                     self.ctx.program.name, self.binding.client_index,
                     t0, self.ctx.now(), nbytes=len(frag.payload))

    def _build_exception(self, reply: ReplyHeader) -> BaseException:
        if reply.status == STATUS_USER_EXC:
            from .stubapi import lookup_exception

            repo_id, data = reply.exception
            cls, tc = lookup_exception(repo_id)
            if cls is None:
                return SystemException(
                    f"unknown user exception {repo_id!r} from {self.op.name}"
                )
            from ..cdr import decode as cdr_decode

            return cls(**cdr_decode(tc, data))
        return SystemException(
            f"{self.op.name} failed on the server: {reply.exception}"
        )

    # -- completion -------------------------------------------------------------------

    def _finish(self) -> None:
        obs = self._obs
        t0 = self.ctx.now() if obs is not None else 0.0
        specs = scalar_result_specs(self.op)
        scalars = decode_scalars(specs, self.reply.scalar_results)
        materialize_objrefs(specs, scalars, self.ctx)
        values = []
        if self.op.ret_tc is not None:
            values.append(scalars["__return"])
        out_values = []
        for param in self.op.out_params:
            if param.is_distributed:
                out_values.append(
                    wrap_out(param, self._out_state[param.name][1])
                )
            else:
                out_values.append(scalars[param.name])
        values.extend(out_values)
        self.result = (None if not values
                       else values[0] if len(values) == 1
                       else tuple(values))
        self.done = True
        self._detach()
        if obs is not None:
            now = self.ctx.now()
            obs.span("unmarshal", self.op.name, self.req_id,
                     self.ctx.program.name, self.binding.client_index,
                     t0, now, nbytes=len(self.reply.scalar_results))
            obs.request_finished(self.req_id, self.ctx.program.name,
                                 self.binding.client_index, now, "ok")
        self.result_future._resolve(self.result)
        for fut, val in zip(self.placeholders, out_values):
            fut._resolve(val)

    def _fail(self, exc: BaseException) -> None:
        self.error = exc
        self.done = True
        self._detach()
        if self._obs is not None:
            self._obs.request_finished(self.req_id, self.ctx.program.name,
                                       self.binding.client_index,
                                       self.ctx.now(), "failed")
        self.result_future._fail(exc)
        for fut in self.placeholders:
            fut._fail(exc)

    def _detach(self) -> None:
        self.ctx.pending.pop(self.req_id, None)
        try:
            self.binding.outstanding.remove(self)
        except ValueError:
            pass


# ---------------------------------------------------------------------------
# Invocation
# ---------------------------------------------------------------------------


def invoke(binding: Binding, op: OpDef, in_values: tuple,
           distributions: Optional[dict], placeholders: tuple = (),
           blocking: bool = True):
    """Issue one request on ``binding``.

    Returns the result (blocking), the result future (non-blocking), or
    ``None`` for oneway operations.
    """
    ctx = binding.ctx
    cfg = ctx.orb.config
    if len(in_values) != len(op.in_params):
        raise BindingError(
            f"{op.name} takes {len(op.in_params)} in-arguments, "
            f"got {len(in_values)}"
        )
    if binding.collective and ctx.nprocs > 1 and cfg.collective_checks:
        sig = (binding.uid, op.name, binding._req_seq)
        sigs = coll.allgather(ctx.rts, sig)
        if any(s != sig for s in sigs):
            raise CollectiveMismatch(
                f"SPMD threads disagree on invocation: {sorted(set(map(str, sigs)))}"
            )

    if binding.local:
        return _invoke_local(binding, op, in_values, placeholders, blocking)

    # Flow control: cap unreplied requests per binding.
    while len(binding.outstanding) >= cfg.max_outstanding:
        binding.outstanding[0].progress(block=True)

    req_id = binding.next_req_id()
    ref = binding.ref
    my_idx = binding.client_index
    p_client = binding.client_nthreads

    obs = ctx.orb.observer
    t_marshal0 = ctx.now() if obs is not None else 0.0
    if obs is not None:
        obs.request_started(req_id, op.name, ctx.program.name, my_idx,
                            t_marshal0)

    # Partition arguments.
    named_in = dict(zip((p.name for p in op.in_params), in_values))
    scalar_args = encode_scalars(
        scalar_in_specs(op),
        {p.name: named_in[p.name] for p in op.scalar_in_params},
    )
    dseq_args: dict[str, DistributedSequence] = {}
    dseq_meta: dict[str, tuple] = {}
    for param in op.dseq_in_params:
        ds = as_distributed(param, named_in[param.name], p_client, my_idx)
        dseq_args[param.name] = ds
        dseq_meta[param.name] = describe_dist(ds.dist)

    out_requests: dict[str, tuple] = {}
    distributions = distributions or {}
    for param in op.dseq_out_params:
        req = distributions.get(param.name)
        if req is None:
            idx = op.out_params.index(param)
            if idx < len(placeholders) and placeholders[idx].distribution is not None:
                req = placeholders[idx].distribution
        enc = encode_out_request(req)
        if enc is not None:
            out_requests[param.name] = enc

    header = RequestHeader(
        req_id=req_id,
        object_name=ref.name,
        op=op.name,
        kind=ref.kind,
        client_program_id=ctx.program.program_id,
        client_nthreads=p_client,
        reply_to=binding.reply_endpoints(),
        scalar_args=scalar_args,
        dseq_args=dseq_meta,
        out_dists=out_requests,
        oneway=op.oneway,
    )

    if obs is not None:
        t_send0 = ctx.now()
        obs.span("marshal", op.name, req_id, ctx.program.name, my_idx,
                 t_marshal0, t_send0, nbytes=len(scalar_args))
    sent_nbytes = 0

    transport = ctx.orb.world.transport
    offload = cfg.communication_threads
    if my_idx == 0:
        hdr_nb = header.nbytes()
        transport.send(ctx.endpoint.address, ref.root_endpoint, header,
                       tag=TAG_REQUEST_HEADER, nbytes=hdr_nb,
                       oneway=op.oneway or offload)
        sent_nbytes += hdr_nb

    # Direct parallel transfer of distributed in-arguments.
    for param in op.dseq_in_params:
        ds = dseq_args[param.name]
        server_dist = _server_in_dist(ref, op, param, ds.dist.n)
        sched = _transfer.schedule(ds.dist, server_dist)
        for item in sched:
            if item.src_rank != my_idx:
                continue
            values = _transfer.extract(ds.dist, my_idx, ds.owned_data,
                                       item.intervals)
            payload = fragment_payload(param.tc.element, values)
            frag = Fragment(req_id, param.name, my_idx, item.intervals, payload)
            frag_nb = frag.nbytes()
            transport.send(
                ctx.endpoint.address, ref.endpoints[item.dst_rank], frag,
                tag=TAG_ARG_FRAGMENT, nbytes=frag_nb,
                oneway=op.oneway or offload,
            )
            sent_nbytes += frag_nb
    ctx.orb.requests_sent += 1

    if obs is not None:
        now = ctx.now()
        obs.span("send", op.name, req_id, ctx.program.name, my_idx,
                 t_send0, now, nbytes=sent_nbytes)
        if op.oneway:
            obs.request_finished(req_id, ctx.program.name, my_idx, now,
                                 "oneway")

    if op.oneway:
        return None

    pending = PendingRequest(binding, op, req_id, out_requests, placeholders)
    ctx.pending[req_id] = pending
    binding.outstanding.append(pending)
    if blocking:
        pending.progress(block=True)
        if pending.error is not None:
            raise pending.error
        return pending.result
    return pending.result_future


def _server_in_dist(ref: ObjectRef, op: OpDef, param, n: int) -> Distribution:
    """Server-side layout of a distributed in argument: the registration
    override if the server set one, else the IDL default."""
    from .distribution import resolve_dist_spec

    spec = ref.in_dists.get((op.name, param.name), param.tc.server_dist)
    return resolve_dist_spec(spec, n, ref.nthreads)


def _invoke_local(binding: Binding, op: OpDef, in_values: tuple,
                  placeholders: tuple, blocking: bool):
    """Local bypass (§4.1): a direct call on the co-located servant."""
    ctx = binding.ctx
    ctx.compute(ctx.orb.config.local_call_overhead)
    record = ctx.poa._lookup_record(binding.ref.name)
    rank = ctx.rank if binding.ref.kind == "spmd" else binding.ref.owner_rank
    servant = record.servants[rank]
    ctx.orb.local_bypasses += 1
    obs = ctx.orb.observer
    t0 = ctx.now() if obs is not None else 0.0
    result = getattr(servant, op.name)(*in_values)
    if obs is not None:
        obs.span("local", op.name, "local", ctx.program.name,
                 binding.client_index, t0, ctx.now())
    if blocking:
        return result
    fut = Future(label=f"{op.name}(local)")
    fut._resolve(result)
    out_values = (result if isinstance(result, tuple)
                  else (result,) if result is not None else ())
    skip = 1 if op.ret_tc is not None else 0
    for ph, val in zip(placeholders, out_values[skip:]):
        ph._resolve(val)
    return fut
