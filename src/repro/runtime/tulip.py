"""Tulip-style implementation of the RTS interface.

Tulip [BG96] is an object-parallel run-time system built around one-sided
*get/put* operations.  This backend satisfies the same minimal PARDIS
contract as :class:`~repro.runtime.mpi.MPIRuntime` and additionally offers
one-sided remote memory access, which the distributed-sequence layer uses
for location-transparent ``operator[]`` on non-local elements.

Simulation note: a one-sided get/put does not involve the target's
computing thread (that is the point of one-sided RTSes), so we model it as
a direct access to the target rank's registered store, charging the
initiating thread the round-trip (get) or injection (put) time of the
underlying fabric.
"""

from __future__ import annotations

from typing import Any, Optional

from ..netsim import estimate_nbytes
from .mpi import MPIRuntime


class OneSidedError(KeyError):
    """A get/put referenced a key that was never registered."""


class TulipRuntime(MPIRuntime):
    """Two-sided contract plus one-sided get/put on registered objects."""

    supports_onesided = True

    # -- registration ------------------------------------------------------------

    def register(self, key: Any, obj: Any) -> None:
        """Expose ``obj`` for one-sided access under ``key`` on this rank."""
        self._program.onesided_store[(self._rank, key)] = obj

    def unregister(self, key: Any) -> None:
        self._program.onesided_store.pop((self._rank, key), None)

    def registered(self, key: Any) -> Any:
        return self._program.onesided_store[(self._rank, key)]

    # -- one-sided operations --------------------------------------------------------

    def _fabric(self):
        return self._program.host_obj.intra

    def get(self, src_rank: int, key: Any,
            selector=None, nbytes: Optional[int] = None) -> Any:
        """Fetch (part of) a registered object from ``src_rank``.

        ``selector(obj)`` narrows the fetched data (e.g. one element of an
        array); the initiating thread pays one round trip plus the data's
        serialization time.
        """
        try:
            obj = self._program.onesided_store[(src_rank, key)]
        except KeyError:
            raise OneSidedError(
                f"rank {src_rank} has no registered object {key!r}"
            ) from None
        data = selector(obj) if selector is not None else obj
        n = estimate_nbytes(data) if nbytes is None else nbytes
        profile = self._fabric()
        self._kernel.advance(
            2 * profile.latency + profile.serialization_time(n) + profile.cpu_overhead
        )
        return data

    def put(self, dest_rank: int, key: Any, value: Any,
            updater=None, nbytes: Optional[int] = None) -> None:
        """Store into a registered object on ``dest_rank``.

        With ``updater``, applies ``updater(obj, value)`` to the remote
        object (e.g. writing one slice); otherwise rebinds the key.
        """
        n = estimate_nbytes(value) if nbytes is None else nbytes
        profile = self._fabric()
        self._kernel.advance(
            profile.latency + profile.serialization_time(n) + profile.cpu_overhead
        )
        store = self._program.onesided_store
        if updater is not None:
            try:
                obj = store[(dest_rank, key)]
            except KeyError:
                raise OneSidedError(
                    f"rank {dest_rank} has no registered object {key!r}"
                ) from None
            updater(obj, value)
        else:
            store[(dest_rank, key)] = value
