"""Runtime interface metadata emitted by the IDL compiler.

Generated stub modules build these structures once per interface; both the
client engine (:mod:`repro.core.invocation`) and the server dispatcher
(:mod:`repro.core.poa`) drive marshaling and scheduling from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..cdr import DSequenceTC, TypeCode


@dataclass(frozen=True)
class ParamDef:
    direction: str                  # "in" | "out" | "inout"
    name: str
    tc: TypeCode
    #: container adapter for package-native dsequence mappings (§3.4)
    adapter: Any = None

    @property
    def is_distributed(self) -> bool:
        return isinstance(self.tc, DSequenceTC)


@dataclass(frozen=True)
class AttrDef:
    name: str
    tc: TypeCode
    readonly: bool = False


@dataclass(frozen=True)
class OpDef:
    name: str
    ret_tc: Optional[TypeCode]
    params: list
    oneway: bool = False
    raises: list = field(default_factory=list)   # exception repo ids

    @property
    def in_params(self) -> list:
        return [p for p in self.params if p.direction in ("in", "inout")]

    @property
    def out_params(self) -> list:
        return [p for p in self.params if p.direction in ("out", "inout")]

    @property
    def scalar_in_params(self) -> list:
        return [p for p in self.in_params if not p.is_distributed]

    @property
    def dseq_in_params(self) -> list:
        return [p for p in self.in_params if p.is_distributed]

    @property
    def scalar_out_params(self) -> list:
        return [p for p in self.out_params if not p.is_distributed]

    @property
    def dseq_out_params(self) -> list:
        return [p for p in self.out_params if p.is_distributed]

    @property
    def has_distributed_args(self) -> bool:
        return bool(self.dseq_in_params or self.dseq_out_params) or isinstance(
            self.ret_tc, DSequenceTC
        )


@dataclass(frozen=True)
class InterfaceDef:
    name: str
    repo_id: str
    ops: dict
    attrs: list = field(default_factory=list)

    def op(self, name: str) -> OpDef:
        return self.ops[name]

    def attr(self, name: str) -> Optional[AttrDef]:
        for a in self.attrs:
            if a.name == name:
                return a
        return None

    @property
    def has_distributed_ops(self) -> bool:
        return any(op.has_distributed_args for op in self.ops.values())
