"""Hosts, links and the network topology.

A :class:`Host` models one parallel machine: a number of nodes
(processors), a per-node compute rate, and an intra-host fabric profile.
A :class:`Network` wires hosts together with :class:`LinkProfile` links
and answers routing/cost queries for the transport layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .profiles import LOOPBACK, SGI_SHMEM, LinkProfile


@dataclass
class Host:
    """A (simulated) parallel machine.

    Parameters
    ----------
    name:
        Unique host name, used in addresses.
    nodes:
        Number of processors ("computing thread" slots).
    node_flops:
        Effective per-node compute rate in floating-point operations per
        second.  Deliberately 1997-scale; only ratios between hosts matter
        for the reproduced figures.
    intra:
        Link profile for node-to-node messages inside the host.
    """

    name: str
    nodes: int
    node_flops: float = 10e6
    intra: LinkProfile = SGI_SHMEM
    #: when True, programs sharing a node serialize their compute time on
    #: it (opt-in CPU contention model); when False, co-located programs
    #: compute concurrently (each is assumed to own its processors, as in
    #: the paper's testbed).
    timeshared: bool = False

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"host {self.name!r} needs at least one node")
        if self.node_flops <= 0:
            raise ValueError(f"host {self.name!r} needs a positive node_flops")

    def compute_time(self, flops: float) -> float:
        """Virtual seconds for one node to retire ``flops`` operations."""
        return flops / self.node_flops


class _LinkState:
    """Mutable occupancy state of one inter-host link."""

    __slots__ = ("profile", "busy_until")

    def __init__(self, profile: LinkProfile) -> None:
        self.profile = profile
        self.busy_until = 0.0


class NoRouteError(LookupError):
    """No link exists between the two hosts."""


@dataclass
class Network:
    """A topology of hosts and links with transfer-cost accounting.

    ``jitter`` perturbs every transfer's serialization and latency by a
    uniform factor in ``[1 - jitter, 1 + jitter]`` drawn from a seeded RNG
    — a deterministic stand-in for the load variations behind the paper's
    "average over a series of measurements taken at different times".
    """

    name: str = "network"
    jitter: float = 0.0
    seed: int = 0
    _hosts: dict[str, Host] = field(default_factory=dict)
    _links: dict[frozenset, _LinkState] = field(default_factory=dict)
    _rng: object = field(default=None, repr=False)
    _node_busy: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.jitter:
            import random

            self._rng = random.Random(self.seed)

    def _perturb(self, value: float) -> float:
        if self._rng is None:
            return value
        return value * (1.0 + self.jitter * (2.0 * self._rng.random() - 1.0))

    # -- construction --------------------------------------------------------

    def add_host(self, host: Host) -> Host:
        if host.name in self._hosts:
            raise ValueError(f"duplicate host {host.name!r}")
        self._hosts[host.name] = host
        return host

    def connect(self, a: str, b: str, profile: LinkProfile) -> None:
        """Create a bidirectional link between hosts ``a`` and ``b``."""
        if a == b:
            raise ValueError("use the host's intra profile for self-links")
        for h in (a, b):
            if h not in self._hosts:
                raise KeyError(f"unknown host {h!r}")
        self._links[frozenset((a, b))] = _LinkState(profile)

    # -- queries --------------------------------------------------------------

    def host(self, name: str) -> Host:
        return self._hosts[name]

    @property
    def hosts(self) -> tuple[Host, ...]:
        return tuple(self._hosts.values())

    def profile_between(self, a: str, b: str) -> LinkProfile:
        """The link profile used for a message from host ``a`` to ``b``."""
        if a == b:
            return self._hosts[a].intra
        state = self._links.get(frozenset((a, b)))
        if state is None:
            raise NoRouteError(f"no link between {a!r} and {b!r}")
        return state.profile

    def uncontended_transfer_time(self, a: str, b: str, nbytes: int) -> float:
        return self.profile_between(a, b).transfer_time(nbytes)

    # -- occupancy ------------------------------------------------------------

    def reserve(self, a: str, b: str, nbytes: int, now: float) -> tuple[float, float]:
        """Account one ``nbytes`` transfer starting no earlier than ``now``.

        Returns ``(injection_done, arrival)``: the virtual time at which the
        sender has finished pushing the message into the link (what a
        synchronous, non-oneway send costs the sender), and the time the
        message lands at the receiver.  Shared links serialize transfers,
        which is how the reproduction exhibits the Fig-5 congestion.
        """
        profile = self.profile_between(a, b)
        ser = self._perturb(profile.serialization_time(nbytes))
        if a != b and profile.shared:
            state = self._links[frozenset((a, b))]
            start = max(now, state.busy_until)
            state.busy_until = start + ser
        else:
            start = now
        injection_done = start + ser
        return injection_done, injection_done + self._perturb(profile.latency)

    def reserve_node(self, host: str, node: int, seconds: float,
                     now: float) -> float:
        """Serialize ``seconds`` of compute on a time-shared node; returns
        the completion time."""
        key = (host, node)
        busy = self._node_busy.get(key, 0.0)
        start = max(now, busy)
        end = start + seconds
        self._node_busy[key] = end
        return end

    def reset_occupancy(self) -> None:
        for state in self._links.values():
            state.busy_until = 0.0
        self._node_busy.clear()


def loopback_profile() -> LinkProfile:
    return LOOPBACK
