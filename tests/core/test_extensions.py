"""Extension features: time-shared hosts (CPU contention) and custom
(user-registered) package mappings — both from the paper's §6 agenda."""

import numpy as np
import pytest

from repro.core import Simulation
from repro.core.stubapi import register_adapter
from repro.idl import compile_idl
from repro.netsim import Host, Network
from repro.runtime import World


class TestTimeSharedHosts:
    def make_world(self, timeshared):
        net = Network()
        net.add_host(Host("h", nodes=2, node_flops=1e6,
                          timeshared=timeshared))
        return World(net)

    def run_two_programs_on_one_node(self, timeshared):
        """Two single-thread programs pinned to node 0, each computing
        1 second."""
        world = self.make_world(timeshared)
        ends = {}

        def main(rts, label):
            rts.compute(1.0)
            ends[label] = rts.now()

        world.launch(main, host="h", nprocs=1, node_offset=0, args=("a",))
        world.launch(main, host="h", nprocs=1, node_offset=0, args=("b",))
        world.run()
        return ends

    def test_without_timesharing_programs_overlap(self):
        ends = self.run_two_programs_on_one_node(False)
        assert ends["a"] == pytest.approx(1.0)
        assert ends["b"] == pytest.approx(1.0)

    def test_with_timesharing_programs_serialize(self):
        ends = self.run_two_programs_on_one_node(True)
        assert sorted(ends.values()) == [pytest.approx(1.0),
                                         pytest.approx(2.0)]

    def test_distinct_nodes_never_contend(self):
        world = self.make_world(True)
        ends = {}

        def main(rts, label):
            rts.compute(1.0)
            ends[label] = rts.now()

        world.launch(main, host="h", nprocs=1, node_offset=0, args=("a",))
        world.launch(main, host="h", nprocs=1, node_offset=1, args=("b",))
        world.run()
        assert ends == {"a": pytest.approx(1.0), "b": pytest.approx(1.0)}

    def test_own_sequential_computes_unaffected(self):
        world = self.make_world(True)

        def main(rts):
            rts.compute(0.5)
            rts.compute(0.5)
            return rts.now()

        prog = world.launch(main, host="h", nprocs=1)
        world.run()
        assert prog.results == [pytest.approx(1.0)]


class CustomBuffer:
    """A pretend third-party container: data plus a checksum cache."""

    def __init__(self, dseq):
        self._dseq = dseq
        self.checksum = float(np.sum(dseq.owned_data))

    @property
    def data(self):
        return self._dseq.owned_data


class CustomBufferAdapter:
    def handles(self, value):
        return isinstance(value, CustomBuffer)

    def unwrap(self, value, element_tc):
        return value._dseq

    def wrap(self, dseq):
        return CustomBuffer(dseq)


register_adapter("MYLIB", "buffer", CustomBufferAdapter())

MYLIB_IDL = """
    #pragma MYLIB:buffer
    typedef dsequence<double, 4096> buf;
    interface crunch {
        double total(in buf b);
    };
"""


class TestCustomPackageMapping:
    def test_custom_mapping_end_to_end(self):
        """A user-registered package mapping works exactly like the
        built-in POOMA/HPC++ ones (paper §6: streamlining mappings for
        many diverse systems)."""
        mod = compile_idl(MYLIB_IDL, package="MYLIB",
                          module_name="mylib_stubs")
        sim = Simulation()
        seen = {}

        def server_main(ctx):
            from repro.runtime import collectives as coll

            class Impl(mod.crunch_skel):
                def total(self, b):
                    seen["type"] = type(b).__name__
                    return coll.allreduce(ctx.rts, b.checksum,
                                          lambda x, y: x + y)

            ctx.poa.activate(Impl(), "crunch", kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_2", nprocs=2)
        out = {}

        def client(ctx):
            dseq = ctx.dseq(np.arange(10.0))
            b = CustomBuffer(dseq)
            c = mod.crunch._spmd_bind("crunch")
            out[ctx.rank] = c.total(b)

        sim.client(client, host="HOST_1", nprocs=2)
        sim.run()
        assert out == {0: 45.0, 1: 45.0}
        assert seen["type"] == "CustomBuffer"

    def test_unregistered_custom_package_fails_at_import(self):
        from repro.core.errors import BindingError

        with pytest.raises(BindingError, match="no container adapter"):
            compile_idl("""
                #pragma NOSUCH:thing
                typedef dsequence<double> t;
            """, package="NOSUCH", module_name="nosuch_stubs")
