"""The unified request pipeline of the PARDIS ORB.

Both halves of the ORB — the client engine (`repro.core.invocation`) and
the server POA (`repro.core.poa`) — drive their requests through this
package instead of through private inline loops:

* :mod:`~repro.core.pipeline.courier` — the :class:`FragmentCourier`
  owns the *one* fragment send loop and the *one* receive/insert loop
  for distributed-argument transfer (client in-args, server in-args,
  server out-args, client out-args all go through it);
* :mod:`~repro.core.pipeline.state` — explicit
  :class:`ClientRequestState` / :class:`ServerRequestState` machines
  that replace the interleaved bodies of ``invoke()``,
  ``PendingRequest.progress`` and ``POA._handle``;
* :mod:`~repro.core.pipeline.interceptors` — a CORBA-style
  portable-interceptor chain (``send_request`` / ``receive_reply`` /
  ``receive_exception`` on the client, ``receive_request`` /
  ``send_reply`` on the server) with ``service_contexts`` carried on
  the wire headers; the observability layer, deadline propagation and
  fault injection all hang off this seam instead of inline guards.
"""

from .courier import FragmentCourier, redistribute_exchange
from .deadline import DEADLINE_CONTEXT, DeadlineExpired, DeadlineInterceptor
from .faults import FaultInjectionInterceptor, FaultRule
from .interceptors import (
    ClientRequestInfo,
    InterceptorChain,
    RequestInterceptor,
    ServerRequestInfo,
)
from .state import ClientRequestState, ServerRequestState

__all__ = [
    "ClientRequestInfo",
    "ClientRequestState",
    "DEADLINE_CONTEXT",
    "DeadlineExpired",
    "DeadlineInterceptor",
    "FaultInjectionInterceptor",
    "FaultRule",
    "FragmentCourier",
    "InterceptorChain",
    "RequestInterceptor",
    "ServerRequestInfo",
    "ServerRequestState",
    "redistribute_exchange",
]
