"""Deadline propagation over the interceptor chain.

The client's :class:`DeadlineInterceptor` stamps each outgoing request
with an absolute virtual-time deadline in the ``service_contexts``
(GIOP-style); the server side of the same interceptor *sheds* requests
whose deadline has already passed when they reach the POA — the servant
is never called, the orphaned argument fragments are dead-lettered, and
the client receives a prompt ``system_exception`` reply instead of a
result that would arrive too late (or, worse, a silent hang until its
own ``request_timeout``).

One caveat is inherent to SPMD dispatch: every server thread evaluates
the shed decision independently, so threads whose clocks have drifted
apart may disagree near the boundary.  The engine's supplementary
``peer_exception`` replies (see ``repro.core.request``) keep the client
from hanging in that case: whichever thread sheds notifies the client.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SystemException
from .interceptors import (
    ClientRequestInfo,
    RequestInterceptor,
    ServerRequestInfo,
)

__all__ = ["DEADLINE_CONTEXT", "DeadlineExpired", "DeadlineInterceptor"]

#: service-context key carrying the absolute virtual-time deadline
DEADLINE_CONTEXT = "pardis.deadline"


class DeadlineExpired(SystemException):
    """The request's propagated deadline passed before the servant ran."""


class DeadlineInterceptor(RequestInterceptor):
    """Propagates per-request deadlines and sheds expired requests.

    Register it on the client ORB, the server ORB, or both (in the
    simulated world a single registration usually covers both sides,
    since every program shares the world's ORB):

    * ``send_request`` writes the earliest of the invocation's own
      timeout deadline and ``now + budget`` (when a ``budget`` was
      given) into the request's service contexts;
    * ``receive_request`` raises :class:`DeadlineExpired` when that
      deadline has already passed, which the engine turns into an error
      reply and a dead-letter of the request's argument fragments.
    """

    name = "deadline-propagation"

    def __init__(self, budget: Optional[float] = None) -> None:
        #: relative per-request budget in virtual seconds (``None`` means
        #: propagate only the ORB's request_timeout deadline)
        self.budget = budget
        #: requests shed by this interceptor (server side)
        self.shed_count = 0

    def send_request(self, info: ClientRequestInfo) -> None:
        deadline = info.deadline
        if self.budget is not None:
            budgeted = info.ctx.now() + self.budget
            deadline = budgeted if deadline is None else min(deadline,
                                                             budgeted)
        if deadline is not None:
            info.service_contexts[DEADLINE_CONTEXT] = deadline

    def receive_request(self, info: ServerRequestInfo) -> None:
        deadline = info.service_contexts.get(DEADLINE_CONTEXT)
        if deadline is not None and info.ctx.now() > deadline:
            self.shed_count += 1
            raise DeadlineExpired(
                f"{info.op_name} on {info.object_name!r}: deadline "
                f"{deadline:.6f} already passed at "
                f"{info.ctx.now():.6f} (virtual s); request shed"
            )
