"""Marshaling microbenchmarks (real wall-clock, not virtual time).

The IDL compiler generates marshaling automatically, including for
dynamically-sized nested types (§4.1); these benchmarks measure the CDR
layer's actual throughput so regressions in the hot encode/decode paths
are visible.
"""

import numpy as np
import pytest

from repro.cdr import (
    SequenceTC,
    StringTC,
    StructTC,
    TC_DOUBLE,
    TC_LONG,
    decode,
    encode,
)

FLAT = SequenceTC(TC_DOUBLE)
NESTED = SequenceTC(SequenceTC(TC_DOUBLE))
RECORDS = SequenceTC(StructTC("rec", (
    ("id", TC_LONG), ("name", StringTC()), ("values", SequenceTC(TC_DOUBLE)),
)))


@pytest.mark.benchmark(group="marshal-flat")
@pytest.mark.parametrize("n", [1_000, 100_000])
def test_encode_flat_doubles(benchmark, n):
    data = np.arange(n, dtype=float)
    out = benchmark(encode, FLAT, data)
    benchmark.extra_info["wire_bytes"] = len(out)


@pytest.mark.benchmark(group="marshal-flat")
@pytest.mark.parametrize("n", [1_000, 100_000])
def test_decode_flat_doubles(benchmark, n):
    wire = encode(FLAT, np.arange(n, dtype=float))
    out = benchmark(decode, FLAT, wire)
    assert len(out) == n


@pytest.mark.benchmark(group="marshal-nested")
@pytest.mark.parametrize("rows", [10, 200])
def test_encode_matrix_of_rows(benchmark, rows):
    """The §4.1 matrix shape: dynamically-sized rows."""
    data = [np.arange(rows, dtype=float) for _ in range(rows)]
    out = benchmark(encode, NESTED, data)
    benchmark.extra_info["wire_bytes"] = len(out)


@pytest.mark.benchmark(group="marshal-nested")
@pytest.mark.parametrize("rows", [10, 200])
def test_decode_matrix_of_rows(benchmark, rows):
    wire = encode(NESTED, [np.arange(rows, dtype=float) for _ in range(rows)])
    out = benchmark(decode, NESTED, wire)
    assert len(out) == rows


@pytest.mark.benchmark(group="marshal-records")
def test_roundtrip_heterogeneous_records(benchmark):
    data = [
        {"id": i, "name": f"record-{i}", "values": np.arange(i % 7, dtype=float)}
        for i in range(200)
    ]

    def roundtrip():
        return decode(RECORDS, encode(RECORDS, data))

    out = benchmark(roundtrip)
    assert len(out) == 200


@pytest.mark.benchmark(group="marshal-fastpath")
def test_bulk_fast_path_speedup(benchmark):
    """The numpy fast path must beat element-wise encoding by a wide
    margin — that is why it exists."""
    import time

    from repro.cdr import CdrEncoder

    data = np.arange(50_000, dtype=float)

    def fast():
        return encode(FLAT, data)

    def slow():
        enc = CdrEncoder()
        enc.put_ulong(len(data))
        for v in data:
            enc.put_primitive(TC_DOUBLE, float(v))
        return enc.getvalue()

    wire_fast = benchmark(fast)
    t0 = time.perf_counter()
    wire_slow = slow()
    slow_s = time.perf_counter() - t0
    assert wire_fast == wire_slow
    benchmark.extra_info["elementwise_s"] = round(slow_s, 4)
