"""Compute-utilization accounting.

Attach a :class:`ComputeMeter` to a world before launching programs and
it accumulates the virtual compute time charged on every (host, node) —
the basis for utilization reports like "the gradient nodes were 34% busy",
which is how one diagnoses the Fig-5 flattening.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class ComputeMeter:
    """Accumulates charged compute seconds per (host, node)."""

    busy: dict = field(default_factory=lambda: defaultdict(float))

    def charge(self, host: str, node: int, seconds: float) -> None:
        self.busy[(host, node)] += seconds

    def busy_seconds(self, host: str, node: int | None = None) -> float:
        if node is not None:
            return self.busy.get((host, node), 0.0)
        return sum(v for (h, _), v in self.busy.items() if h == host)

    def utilization(self, host: str, nodes: int, elapsed: float) -> float:
        """Fraction of available node-seconds spent computing."""
        if elapsed <= 0 or nodes <= 0:
            return 0.0
        return self.busy_seconds(host) / (nodes * elapsed)

    def report(self, elapsed: float) -> str:
        lines = [f"compute utilization over {elapsed:.2f} virtual s:"]
        hosts = sorted({h for h, _ in self.busy})
        for h in hosts:
            nodes = sorted(n for hh, n in self.busy if hh == h)
            total = self.busy_seconds(h)
            per_node = "  ".join(
                f"n{n}={self.busy[(h, n)] / elapsed * 100:4.1f}%"
                for n in nodes
            )
            lines.append(f"  {h:>10}: {total:8.2f} busy-s   {per_node}")
        return "\n".join(lines)


def attach_meter(world) -> ComputeMeter:
    """Install a :class:`ComputeMeter` on a world; every subsequently
    charged compute interval is recorded."""
    meter = ComputeMeter()
    world.services["compute_meter"] = meter
    return meter


def zero_copy_summary(stats) -> str:
    """One-line summary of a :class:`repro.cdr.buffers.ZeroCopyStats`
    (the zero-copy marshaling lane + its buffer pool)."""
    borrows = stats.borrows
    hit_pct = 100.0 * stats.pool_hits / borrows if borrows else 0.0
    return (
        f"zero-copy lane: {stats.fast_encodes} fast encodes "
        f"({stats.bytes_fast} bytes), {stats.fast_decodes} fast decodes, "
        f"{stats.fallback_encodes}/{stats.fallback_decodes} fallback "
        f"enc/dec; pool: {borrows} leases, {hit_pct:.0f}% reuse, "
        f"{stats.outstanding} outstanding"
    )
