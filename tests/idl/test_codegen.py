"""Tests for the Python code generator and compiler driver."""

import subprocess
import sys

import pytest

from repro.cdr import DSequenceTC, SequenceTC, TC_DOUBLE, TC_LONG
from repro.idl import IdlSemanticError, compile_idl, generate


class TestGeneratedSource:
    def test_source_is_valid_python(self):
        src = generate("interface i { void f(in long x); };")
        compile(src, "<test>", "exec")

    def test_header_mentions_option(self):
        src = generate("#pragma POOMA:field\ntypedef dsequence<double> f;",
                       package="POOMA")
        assert "-pooma" in src
        src2 = generate("typedef long t;")
        assert "standard PARDIS stubs" in src2

    def test_blocking_and_nonblocking_stubs_emitted(self):
        src = generate("interface i { long f(in long x); };")
        assert "def f(self, x, _distributions=None):" in src
        assert "def f_nb(self, x, *futures, _distributions=None):" in src

    def test_oneway_has_no_nb_stub(self):
        src = generate("interface i { oneway void fire(in long x); };")
        assert "def fire(self" in src
        assert "fire_nb" not in src

    def test_skeleton_emitted_with_abstract_ops(self):
        src = generate("interface i { void f(in long x); };")
        assert "class i_skel(_pardis.SkeletonBase):" in src
        assert "NotImplementedError" in src

    def test_custom_package_allowed(self):
        """Any package name is accepted; its adapters must be registered
        before the generated module is imported (the paper's §6 goal of
        easy mappings for diverse systems)."""
        src = generate("#pragma MYLIB:buffer\ntypedef dsequence<double> b;",
                       package="MYLIB")
        assert "resolve_adapter('MYLIB', 'buffer')" in src


class TestCompiledModule:
    def test_constants(self):
        mod = compile_idl("const long N = 4 * 32; const string S = \"hi\";")
        assert mod.N == 128
        assert mod.S == "hi"

    def test_enum_is_intenum(self):
        mod = compile_idl("enum color { RED, GREEN, BLUE };")
        assert mod.color.GREEN == 1
        assert mod.color.BLUE.name == "BLUE"
        assert mod._tc_color.members == ("RED", "GREEN", "BLUE")

    def test_struct_dataclass_with_defaults(self):
        mod = compile_idl("""
            struct point { double x; double y; string label; };
        """)
        p = mod.point()
        assert (p.x, p.y, p.label) == (0.0, 0.0, "")
        q = mod.point(x=1.5, y=2.5, label="q")
        assert q.label == "q"

    def test_struct_typecode_roundtrip(self):
        from repro.cdr import decode, encode

        mod = compile_idl("struct p { long a; string b; };")
        v = mod.p(a=7, b="x")
        out = decode(mod.p._typecode, encode(mod.p._typecode, v))
        assert out == {"a": 7, "b": "x"}

    def test_typedef_plain_is_typecode(self):
        mod = compile_idl("typedef sequence<double, 8> v;")
        assert mod.v == SequenceTC(TC_DOUBLE, 8)

    def test_typedef_dsequence_is_factory(self):
        mod = compile_idl("typedef dsequence<double, 64, CYCLIC> v;")
        assert mod.v.tc == DSequenceTC(TC_DOUBLE, 64, "CYCLIC", "BLOCK")
        assert "dsequence" in repr(mod.v)

    def test_exception_class(self):
        mod = compile_idl("exception oops { string why; long code; };")
        exc = mod.oops(why="bad", code=3)
        assert exc.why == "bad"
        assert exc.code == 3
        assert "IDL:oops:1.0" == mod.oops._repo_id
        with pytest.raises(TypeError):
            mod.oops(nonsense=1)

    def test_interface_metadata(self):
        mod = compile_idl("""
            typedef dsequence<double> v;
            interface i {
                double f(in v data, out v result);
                oneway void g(in long x);
            };
        """)
        iface = mod.i._interface
        assert iface.repo_id == "IDL:i:1.0"
        f = iface.op("f")
        assert f.ret_tc == TC_DOUBLE
        assert [p.name for p in f.params] == ["data", "result"]
        assert f.params[0].is_distributed
        assert iface.op("g").oneway

    def test_inherited_ops_present_on_derived_proxy(self):
        mod = compile_idl("""
            interface base { void ping(); };
            interface derived : base { void pong(); };
        """)
        assert "ping" in mod.derived._interface.ops
        assert hasattr(mod.derived, "ping")
        assert hasattr(mod.derived_skel, "ping")

    def test_module_namespaces(self):
        mod = compile_idl("""
            module app {
                const long VERSION = 3;
                module inner { typedef long t; };
                interface svc { void f(); };
            };
        """)
        assert mod.app.VERSION == 3
        assert mod.app.inner.t == TC_LONG
        assert mod.app.svc is mod.app_svc

    def test_attributes_generated(self):
        mod = compile_idl("""
            interface cfg {
                readonly attribute long version;
                attribute double threshold;
            };
        """)
        assert hasattr(mod.cfg, "_get_version")
        assert not hasattr(mod.cfg, "_set_version")
        assert hasattr(mod.cfg, "_set_threshold")

    def test_raises_metadata(self):
        mod = compile_idl("""
            exception bad { string why; };
            interface i { void f() raises (bad); };
        """)
        assert mod.i._interface.op("f").raises == ["IDL:bad:1.0"]

    def test_semantic_errors_propagate(self):
        with pytest.raises(IdlSemanticError):
            compile_idl("typedef unknown_thing t;")


class TestCli:
    def run_cli(self, *args, idl="interface i { void f(); };", tmp_path=None):
        src_file = tmp_path / "x.idl"
        src_file.write_text(idl)
        return subprocess.run(
            [sys.executable, "-m", "repro.idl.compiler",
             str(src_file), *args],
            capture_output=True, text=True,
        )

    def test_stdout_output(self, tmp_path):
        r = self.run_cli(tmp_path=tmp_path)
        assert r.returncode == 0
        assert "class i(_pardis.ProxyBase)" in r.stdout

    def test_output_file(self, tmp_path):
        out = tmp_path / "stubs.py"
        r = self.run_cli("-o", str(out), tmp_path=tmp_path)
        assert r.returncode == 0
        assert "class i_skel" in out.read_text()

    def test_pooma_option(self, tmp_path):
        r = self.run_cli(
            "-pooma", tmp_path=tmp_path,
            idl="#pragma POOMA:field\ntypedef dsequence<double> f;")
        assert r.returncode == 0
        assert "resolve_adapter('POOMA', 'field')" in r.stdout

    def test_error_exit_code(self, tmp_path):
        r = self.run_cli(tmp_path=tmp_path, idl="typedef broken!!;")
        assert r.returncode == 1
        assert "error" in r.stderr
