"""Tests for the mini HPC++ PSTL package."""

import numpy as np
import pytest

from repro.packages.pstl import DVector, par_for_each, par_reduce, par_transform
from repro.runtime import MPIRuntime

from ..runtime.conftest import make_world


def run_spmd(nprocs, main):
    world = make_world(nodes=max(nprocs, 2))
    prog = world.launch(main, host="hostA", nprocs=nprocs,
                        rts_factory=MPIRuntime)
    world.run()
    return prog.results


class TestDVector:
    def test_from_global_blocks(self):
        v = DVector.from_global(np.arange(10.0), rank=1, nprocs=3)
        np.testing.assert_array_equal(v.local, [4.0, 5.0, 6.0])

    def test_local_range(self):
        v = DVector(10, rank=2, nprocs=3)
        assert v.local_range() == (7, 10)

    def test_wrong_local_shape(self):
        with pytest.raises(ValueError):
            DVector(10, rank=0, nprocs=2, local=np.zeros(3))

    def test_assemble(self):
        def main(rts):
            v = DVector.from_global(np.arange(7.0), rts.rank, rts.nprocs, rts)
            return v.assemble(root=0)

        res = run_spmd(3, main)
        np.testing.assert_array_equal(res[0], np.arange(7.0))

    def test_copy_is_deep(self):
        v = DVector.from_global(np.arange(4.0), 0, 1)
        w = v.copy()
        w.local[0] = 99
        assert v.local[0] == 0


class TestAlgorithms:
    def test_par_transform(self):
        def main(rts):
            v = DVector.from_global(np.arange(9.0), rts.rank, rts.nprocs, rts)
            w = par_transform(v, lambda x: x * x)
            return w.assemble(root=0)

        res = run_spmd(3, main)
        np.testing.assert_array_equal(res[0], np.arange(9.0) ** 2)

    def test_par_for_each_in_place(self):
        def main(rts):
            v = DVector.from_global(np.ones(6), rts.rank, rts.nprocs, rts)
            par_for_each(v, lambda x: x + rts.rank)
            return v.local.tolist()

        res = run_spmd(2, main)
        assert res[0] == [1.0, 1.0, 1.0]
        assert res[1] == [2.0, 2.0, 2.0]

    def test_par_reduce_sum(self):
        def main(rts):
            v = DVector.from_global(np.arange(10.0), rts.rank, rts.nprocs, rts)
            return par_reduce(v)

        assert run_spmd(4, main) == [45.0] * 4

    def test_par_reduce_max(self):
        def main(rts):
            v = DVector.from_global(np.array([3.0, 9.0, 1.0, 7.0]),
                                    rts.rank, rts.nprocs, rts)
            return par_reduce(v, op=max, local_op=np.max)

        assert run_spmd(2, main) == [9.0, 9.0]

    def test_transform_misaligned_rejected(self):
        v = DVector(8, rank=0, nprocs=2)
        w = DVector(8, rank=0, nprocs=1)
        with pytest.raises(ValueError):
            par_transform(v, lambda x: x, out=w)

    def test_algorithms_charge_time(self):
        def main(rts):
            v = DVector.from_global(np.ones(1000), rts.rank, rts.nprocs, rts)
            t0 = rts.now()
            par_transform(v, np.sqrt)
            return rts.now() - t0

        res = run_spmd(1, main)
        assert res[0] > 0
