"""Reserved tag-space tests (paper §2.2)."""

import pytest

from repro.runtime.tags import (
    PARDIS_TAG_BASE,
    ReservedTagError,
    TAG_COLLECTIVE_WINDOW,
    check_user_tag,
    collective_tag,
    is_reserved,
)


def test_user_tags_below_base():
    assert check_user_tag(0) == 0
    assert check_user_tag(PARDIS_TAG_BASE - 1) == PARDIS_TAG_BASE - 1


def test_reserved_tags_rejected_for_users():
    with pytest.raises(ReservedTagError):
        check_user_tag(PARDIS_TAG_BASE)
    with pytest.raises(ReservedTagError):
        check_user_tag(-1)


def test_is_reserved():
    assert is_reserved(PARDIS_TAG_BASE)
    assert is_reserved(collective_tag(0))
    assert not is_reserved(100)


def test_collective_tags_rotate_without_aliasing_nearby():
    tags = [collective_tag(i) for i in range(1000)]
    assert len(set(tags)) == 1000
    assert collective_tag(0) == collective_tag(TAG_COLLECTIVE_WINDOW)


def test_all_protocol_tags_reserved():
    from repro.runtime import tags

    for name in dir(tags):
        if (name.startswith("TAG_") and not name.endswith("_WINDOW")
                and isinstance(getattr(tags, name), int)):
            assert is_reserved(getattr(tags, name)), name
