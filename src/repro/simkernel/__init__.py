"""Deterministic cooperative virtual-time kernel.

This package is the execution substrate for the whole PARDIS
reproduction: simulated "computing threads" (real OS threads scheduled one
at a time), timestamped message channels, and virtual-time synchronization
primitives.  See DESIGN.md §6 for the rationale.
"""

from .channel import Channel, Envelope
from .errors import (
    DeadlockError,
    NotInSimThread,
    SimError,
    SimKilled,
    SimThreadFailed,
)
from .events import Event, EventQueue
from .kernel import SimKernel, SimThread, ThreadState
from .sync import SimBarrier, SimCondition, SimLock, SimSemaphore

__all__ = [
    "Channel",
    "DeadlockError",
    "Envelope",
    "Event",
    "EventQueue",
    "NotInSimThread",
    "SimBarrier",
    "SimCondition",
    "SimError",
    "SimKernel",
    "SimKilled",
    "SimLock",
    "SimSemaphore",
    "SimThread",
    "SimThreadFailed",
    "ThreadState",
]
