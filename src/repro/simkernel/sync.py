"""Virtual-time synchronization primitives.

These mirror ``threading``'s lock/condition/barrier/semaphore but operate
on simulated threads and virtual time.  All waits are deterministic: FIFO
wake order, ties resolved by the kernel's event sequence numbers.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .errors import SimError
from .kernel import SimKernel, SimThread


class SimLock:
    """Non-reentrant mutual-exclusion lock in virtual time."""

    def __init__(self, kernel: SimKernel, name: str = "lock") -> None:
        self.kernel = kernel
        self.name = name
        self._owner: Optional[SimThread] = None
        self._waiters: deque[SimThread] = deque()

    def locked(self) -> bool:
        return self._owner is not None

    def acquire(self) -> None:
        th = self.kernel.current()
        if self._owner is th:
            raise SimError(f"{self.name}: non-reentrant lock re-acquired by {th.name}")
        while self._owner is not None:
            self._waiters.append(th)
            self.kernel.block(f"acquire {self.name}")
        self._owner = th

    def release(self) -> None:
        th = self.kernel.current()
        if self._owner is not th:
            raise SimError(f"{self.name}: released by non-owner {th.name}")
        self._owner = None
        if self._waiters:
            nxt = self._waiters.popleft()
            self.kernel.wake(nxt, th.now)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False


class SimCondition:
    """Condition variable bound to a :class:`SimLock`."""

    def __init__(self, lock: SimLock) -> None:
        self.lock = lock
        self.kernel = lock.kernel
        self._waiters: deque[SimThread] = deque()

    def wait(self) -> None:
        th = self.kernel.current()
        if self.lock._owner is not th:
            raise SimError("condition.wait() without holding the lock")
        self._waiters.append(th)
        self.lock.release()
        self.kernel.block(f"cond wait on {self.lock.name}")
        self.lock.acquire()

    def notify(self, n: int = 1) -> None:
        th = self.kernel.current()
        for _ in range(min(n, len(self._waiters))):
            self.kernel.wake(self._waiters.popleft(), th.now)

    def notify_all(self) -> None:
        self.notify(len(self._waiters))


class SimBarrier:
    """Reusable N-party barrier.

    All parties leave the barrier at the virtual time of the *last* arrival
    — exactly the semantics of a synchronizing collective on a parallel
    machine.
    """

    def __init__(self, kernel: SimKernel, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.kernel = kernel
        self.parties = parties
        self.name = name
        self._waiting: list[SimThread] = []
        self._generation = 0

    def wait(self) -> int:
        """Block until all parties arrive; returns the barrier generation."""
        th = self.kernel.current()
        gen = self._generation
        self._waiting.append(th)
        if len(self._waiting) == self.parties:
            self._generation += 1
            release_time = max(w.now for w in self._waiting)
            waiters, self._waiting = self._waiting, []
            for w in waiters:
                if w is not th:
                    self.kernel.wake(w, release_time)
            # Last arrival proceeds immediately at the release time.
            self.kernel.sleep_until(release_time)
            return gen
        self.kernel.block(f"barrier {self.name} gen {gen}")
        return gen


class SimSemaphore:
    """Counting semaphore in virtual time."""

    def __init__(self, kernel: SimKernel, value: int = 1, name: str = "sem") -> None:
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self.kernel = kernel
        self.name = name
        self._value = value
        self._waiters: deque[SimThread] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> None:
        th = self.kernel.current()
        while self._value == 0:
            self._waiters.append(th)
            self.kernel.block(f"sem acquire {self.name}")
        self._value -= 1

    def release(self) -> None:
        self._value += 1
        if self._waiters:
            waker = self.kernel.current_or_none()
            t = waker.now if waker else None
            self.kernel.wake(self._waiters.popleft(), t)
