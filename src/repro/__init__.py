"""PARDIS: CORBA-based Architecture for Application-Level Parallel
Distributed Computation — a comprehensive Python reproduction of
Keahey & Gannon, SC'97.

Public API tour:

* :mod:`repro.core` — the ORB: :class:`~repro.core.Simulation`,
  SPMD/single objects, distributed sequences, futures, repositories.
* :mod:`repro.idl` — the IDL compiler: :func:`~repro.idl.compile_idl`.
* :mod:`repro.runtime` — run-time-system backends and collectives.
* :mod:`repro.netsim` — simulated hosts, links and transport.
* :mod:`repro.packages` — mini-POOMA and mini-HPC++ PSTL.
* :mod:`repro.apps` / :mod:`repro.experiments` — the paper's evaluation
  workloads and the figure-regeneration harnesses.
* :mod:`repro.tools` — packet tracing and summaries.

See README.md for the full tour and DESIGN.md for the architecture.
"""

from .core import (
    Distribution,
    DistributedSequence,
    Future,
    OrbConfig,
    Simulation,
    default_network,
    dynamic_bind,
)
from .idl import compile_idl

__version__ = "1.0.0"

__all__ = [
    "Distribution",
    "DistributedSequence",
    "Future",
    "OrbConfig",
    "Simulation",
    "__version__",
    "compile_idl",
    "default_network",
    "dynamic_bind",
]
