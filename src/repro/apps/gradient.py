"""The gradient component of the §4.3 pipeline (HPC++ PSTL program).

"An application which computes magnitude gradient of the diffusion field
in order to identify areas of the most intensive changes."

Implemented over the mini-PSTL distributed vector: each thread holds a
block of grid rows (flattened row-major), exchanges one boundary row with
each neighbour, and computes |grad| with central differences.  The server
forwards every completed result to its own visualizer ("both the
diffusion and the gradient unit pipeline the results of every completed
time-step to a visualizing server").
"""

from __future__ import annotations

import numpy as np

from ..packages.pooma.stencil import GRADIENT_FLOPS_PER_POINT
from ..packages.pstl import DVector
from ..runtime.collectives import _next_tag
from .interfaces import pipeline_stubs


def parallel_magnitude_gradient(vec: DVector, nx: int, rts) -> DVector:
    """|grad f| of a row-major flattened 2-D field held as a DVector.

    The vector's block distribution must sit on row boundaries (it does,
    coming from the POOMA field mapping of a block-row layout).
    """
    lo, hi = vec.local_range()
    if lo % nx or hi % nx:
        raise ValueError("gradient needs a row-aligned distribution")
    rows = (hi - lo) // nx
    ny = len(vec) // nx
    local = vec.local.reshape(rows, nx)

    # Exchange boundary rows with neighbours.
    up = vec.rank - 1
    while up >= 0 and vec.dist.local_size(up) == 0:
        up -= 1
    down = vec.rank + 1
    while down < vec.dist.p and vec.dist.local_size(down) == 0:
        down += 1
    have_up = up >= 0 and lo > 0
    have_down = down < vec.dist.p and hi < len(vec)
    tag = _next_tag(rts)
    if rows and have_up:
        rts.send_reserved(up, ("up", local[0].copy()), tag, nbytes=nx * 8)
    if rows and have_down:
        rts.send_reserved(down, ("down", local[-1].copy()), tag, nbytes=nx * 8)
    padded = np.vstack([
        local[0:1] if rows else np.zeros((1, nx)),
        local,
        local[-1:] if rows else np.zeros((1, nx)),
    ])
    expected = int(rows and have_up) + int(rows and have_down)
    for _ in range(expected):
        msg = rts.recv(tag=tag)
        direction, row = msg.payload
        if direction == "down":   # my upper neighbour's last row
            padded[0] = row
        else:                     # my lower neighbour's first row
            padded[-1] = row

    gy = 0.5 * (padded[2:, :] - padded[:-2, :])
    if lo == 0 and rows:
        gy[0] = padded[2] - padded[1]
    if hi == len(vec) and rows:
        gy[-1] = padded[-2] - padded[-3]
    gx = np.zeros_like(local)
    if nx > 1:
        gx[:, 1:-1] = 0.5 * (local[:, 2:] - local[:, :-2])
        gx[:, 0] = local[:, 1] - local[:, 0]
        gx[:, -1] = local[:, -1] - local[:, -2]
    out = np.hypot(gy, gx)
    rts.charge_flops(rows * nx * GRADIENT_FLOPS_PER_POINT)
    del ny
    return DVector(len(vec), vec.rank, vec.dist.p, rts,
                   local=out.reshape(-1), dist=vec.dist)


def gradient_server_main(ctx, nx: int = 128,
                         visualizer_name: str | None = None,
                         stats: dict | None = None):
    """Server main for the gradient component (HPC++ stubs).

    When ``visualizer_name`` is given, each completed gradient is pipelined
    to that visualizer with a non-blocking show.
    """
    mod = pipeline_stubs("HPC++")
    viz = mod.visualizer._spmd_bind(visualizer_name) if visualizer_name else None

    class GradientImpl(mod.field_operations_skel):
        def __init__(self):
            self.computed = 0

        def gradient(self, myfield):
            result = parallel_magnitude_gradient(myfield, nx, ctx.rts)
            self.computed += 1
            if stats is not None:
                stats[ctx.rank] = self.computed
            if viz is not None:
                viz.show_nb(result)
            return None

    from ..core.distribution import RowBlock

    # Register with a row-aligned "in" distribution so every thread's
    # fragment is a whole run of grid rows (the §3.2 server-side
    # distribution override in action).
    ctx.poa.activate(GradientImpl(), "field_operations", kind="spmd",
                     in_dists={("gradient", "myfield"): RowBlock(nx)})
    ctx.poa.impl_is_ready()
