"""The unified metrics registry: families and labels, log-bucketed
histograms, exporter round-trips, and world attachment."""

import json
import math

import pytest

from repro.tools.registry import (
    MetricsRegistry,
    flatten_snapshot,
    parse_prometheus_text,
)


# ---------------------------------------------------------------------------
# Families and instruments
# ---------------------------------------------------------------------------


def test_counter_and_gauge_basics():
    reg = MetricsRegistry()
    c = reg.counter("pardis_things_total", "things seen", ["kind"])
    c.labels(kind="a").inc()
    c.labels(kind="a").inc(2)
    c.labels(kind="b").inc()
    g = reg.gauge("pardis_depth", "queue depth", ["q"])
    g.labels(q="main").set(7)
    snap = reg.snapshot()
    samples = {tuple(sorted(s["labels"].items())): s["value"]
               for s in snap["pardis_things_total"]["samples"]}
    assert samples[(("kind", "a"),)] == 3
    assert samples[(("kind", "b"),)] == 1
    assert snap["pardis_depth"]["samples"][0]["value"] == 7


def test_label_validation_and_reregistration():
    reg = MetricsRegistry()
    c = reg.counter("pardis_x_total", "x", ["kind"])
    with pytest.raises(ValueError):
        c.labels(wrong="a")  # unknown label name
    with pytest.raises(ValueError):
        c.labels()  # missing label
    # Same (kind, labelnames) re-registration returns the same family...
    assert reg.counter("pardis_x_total", "x", ["kind"]) is c
    # ... but a conflicting shape or kind is an error.
    with pytest.raises(ValueError):
        reg.counter("pardis_x_total", "x", ["other"])
    with pytest.raises(ValueError):
        reg.gauge("pardis_x_total", "x", ["kind"])


def test_labels_cache_children():
    reg = MetricsRegistry()
    c = reg.counter("pardis_y_total", "y", ["kind"])
    assert c.labels(kind="a") is c.labels(kind="a")


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------


def test_histogram_log_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("pardis_lat_seconds", "latency", ["op"],
                      start=1e-6, factor=4.0, nbuckets=4)
    child = h.labels(op="echo")
    # bounds: 1e-6, 4e-6, 16e-6, 64e-6
    for v in (5e-7, 2e-6, 2e-6, 1e-5, 1.0):
        child.observe(v)
    buckets = child.buckets()
    bounds = [b for b, _ in buckets[:-1]]
    assert bounds == pytest.approx([1e-6 * 4 ** i for i in range(4)])
    cum = [c for _, c in buckets]
    assert cum == [1, 3, 4, 4, 5]  # cumulative, then +Inf catches 1.0
    assert buckets[-1][0] == "+Inf"
    assert child.count == 5
    assert child.sum == pytest.approx(5e-7 + 2e-6 + 2e-6 + 1e-5 + 1.0)


def test_histogram_exposition_series():
    reg = MetricsRegistry()
    h = reg.histogram("pardis_lat_seconds", "latency", ["op"], nbuckets=3)
    h.labels(op="echo").observe(1e-5)
    text = reg.prometheus_text()
    assert "# TYPE pardis_lat_seconds histogram" in text
    assert 'pardis_lat_seconds_bucket{op="echo",le="+Inf"} 1' in text
    assert 'pardis_lat_seconds_count{op="echo"} 1' in text
    assert 'pardis_lat_seconds_sum{op="echo"}' in text
    # Buckets are cumulative and monotone in the exposition too.
    counts = [int(line.rsplit(" ", 1)[1])
              for line in text.splitlines()
              if line.startswith("pardis_lat_seconds_bucket")]
    assert counts == sorted(counts)


# ---------------------------------------------------------------------------
# Exporter round-trips
# ---------------------------------------------------------------------------


def _populated_registry():
    reg = MetricsRegistry()
    c = reg.counter("pardis_req_total", "requests", ["op", "status"])
    c.labels(op="solve", status="ok").inc(12)
    c.labels(op="solve", status="failed").inc()
    g = reg.gauge("pardis_pool_free", "free buffers", ["bucket"])
    g.labels(bucket="4096").set(3)
    h = reg.histogram("pardis_t_seconds", "timings", ["op"], nbuckets=5)
    for v in (1e-6, 3e-5, 0.25):
        h.labels(op="solve").observe(v)
    live = reg.gauge("pardis_live", "collected live", ["src"])
    reg.register_collector(lambda: live.labels(src="test").set(1))
    return reg


def test_prometheus_round_trip():
    reg = _populated_registry()
    assert parse_prometheus_text(reg.prometheus_text()) == \
        flatten_snapshot(reg.snapshot())


def test_prometheus_round_trip_with_extra_labels():
    reg = _populated_registry()
    text = reg.prometheus_text(extra_labels={"run": "fig5 p=2"})
    assert parse_prometheus_text(text) == \
        flatten_snapshot(reg.snapshot(), extra_labels={"run": "fig5 p=2"})


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    c = reg.counter("pardis_esc_total", "escapes", ["what"])
    c.labels(what='tricky "quoted" \\ back\nnewline').inc()
    parsed = parse_prometheus_text(reg.prometheus_text())
    assert parsed == flatten_snapshot(reg.snapshot())


def test_json_round_trip():
    reg = _populated_registry()
    assert json.loads(reg.to_json()) == reg.snapshot()
    assert json.loads(reg.to_json(indent=2)) == reg.snapshot()


def test_float_values_round_trip_exactly():
    reg = MetricsRegistry()
    g = reg.gauge("pardis_f", "floats", ["k"])
    for i, v in enumerate((0.1, 1 / 3, 1e-9, math.pi, 12345678.9)):
        g.labels(k=str(i)).set(v)
    assert parse_prometheus_text(reg.prometheus_text()) == \
        flatten_snapshot(reg.snapshot())


# ---------------------------------------------------------------------------
# World attachment
# ---------------------------------------------------------------------------


def test_attach_metrics_collects_all_layers():
    from repro.core import Simulation
    from repro.idl import compile_idl
    from repro.tools import attach_metrics, attach_observer, attach_tracing

    mod = compile_idl("interface m { long echo(in long x); };",
                      module_name="registry_attach_stubs")
    sim = Simulation()
    attach_observer(sim.world)
    attach_tracing(sim.world)
    reg = attach_metrics(sim.world)
    assert sim.world.services["metrics"] is reg

    def server_main(ctx):
        class Impl(mod.m_skel):
            def echo(self, x):
                return x

        ctx.poa.activate(Impl(), "m", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=1)

    def client(ctx):
        srv = mod.m._bind("m")
        for i in range(3):
            assert srv.echo(i) == i

    sim.client(client, host="HOST_1")
    sim.run()

    flat = parse_prometheus_text(reg.prometheus_text())
    assert flat['pardis_requests_total{kind="remote"}'] == 3
    assert 'pardis_dead_fragments_total{kind="arg"}' in flat
    assert 'pardis_dead_fragments_total{kind="result"}' in flat
    assert "pardis_transport_packets_total" in flat
    assert flat['pardis_trace_events_total{event="traces_started"}'] == 3
    # The observer's push-model histograms populated per-phase series.
    assert any(k.startswith("pardis_request_seconds_count") for k in flat)
    assert any(k.startswith("pardis_phase_seconds_count") for k in flat)
