"""Portable Object Adapter: servant registration and request dispatch.

Server programs create servants and activate them through the POA:

* SPMD objects are activated **collectively** — every computing thread
  contributes its local servant instance; requests are delivered to all
  threads (rank 0 forwards the header through the server's communication
  domain) and distributed arguments arrive as direct thread-to-thread
  fragments (paper §2.1/§3.1);
* single objects are activated by their one owning thread and serviced by
  it alone; distributing several single objects over the threads of a
  parallel server enables parallel interaction (the §4.2 scenario).

``impl_is_ready()`` enters the request loop and never returns;
``process_requests()`` drains currently-queued requests and returns so a
server can interleave servicing with its own computation (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..cdr import DSequenceTC, encode as cdr_encode
from ..runtime.program import PORT_ORB
from ..runtime.tags import (
    TAG_ARG_FRAGMENT,
    TAG_REPLY_HEADER,
    TAG_REQUEST_HEADER,
    TAG_RESULT_FRAGMENT,
)
from .distribution import Distribution
from .dsequence import DistributedSequence
from .errors import BadOperation, BindingError, ObjectNotFound, UserException
from .interfacedef import InterfaceDef, OpDef, ParamDef
from .marshal import (
    as_distributed,
    decode_scalars,
    encode_scalars,
    fragment_payload,
    fragment_values,
    resolve_out_dist,
    scalar_in_specs,
    scalar_result_specs,
    wrap_out,
)
from .repository import ObjectRef
from .request import (
    Fragment,
    ReplyHeader,
    RequestHeader,
    STATUS_OK,
    STATUS_SYS_EXC,
    STATUS_USER_EXC,
    build as build_dist,
    describe as describe_dist,
)
from . import transfer as _transfer


@dataclass
class ServantRecord:
    name: str
    iface: InterfaceDef
    kind: str                        # "spmd" | "single"
    owner_rank: int
    servants: dict[int, Any] = field(default_factory=dict)
    in_dists: dict = field(default_factory=dict)


class POA:
    """Per-thread handle on the program's object adapter."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        svc = ctx.orb.program_services(ctx.program)
        self._registry: dict[str, ServantRecord] = svc.setdefault("servants", {})

    # -- activation ------------------------------------------------------------

    def activate(self, servant, name: str, kind: str = "spmd",
                 in_dists: Optional[dict] = None) -> ObjectRef:
        """Register a servant under ``name``.

        SPMD activation is collective over all computing threads of the
        server ("the instantiation of an SPMD object is collective",
        §3.1).  ``in_dists`` maps ``(op, param)`` to a distribution kind,
        overriding the IDL default for "in" arguments prior to
        registration (§3.2).
        """
        iface: InterfaceDef = servant._interface
        ctx = self.ctx
        # Publish the interface definition for dynamic (stubless) clients.
        from .dii import _interface_repository

        _interface_repository(ctx.orb).register(iface)
        if kind == "single":
            if iface.has_distributed_ops:
                raise BindingError(
                    f"{name!r}: only objects which do not operate on "
                    "distributed arguments can be created as single objects"
                )
            record = ServantRecord(name, iface, "single", ctx.rank,
                                   {ctx.rank: servant}, dict(in_dists or {}))
            self._registry[name] = record
            ref = self._make_ref(record)
            ctx.orb.repository(ctx.namespace).register(ref)
            return ref
        if kind != "spmd":
            raise ValueError(f"unknown object kind {kind!r}")
        record = self._registry.setdefault(
            name, ServantRecord(name, iface, "spmd", 0, {},
                                dict(in_dists or {}))
        )
        record.servants[ctx.rank] = servant
        ctx.barrier()
        if ctx.rank == 0:
            ref = self._make_ref(record)
            ctx.orb.repository(ctx.namespace).register(ref)
        ctx.barrier()
        return ctx.orb.repository(ctx.namespace).lookup(name)

    def deactivate(self, name: str) -> None:
        self._registry.pop(name, None)
        self.ctx.orb.repository(self.ctx.namespace).unregister(name)

    def _make_ref(self, record: ServantRecord) -> ObjectRef:
        prog = self.ctx.program
        return ObjectRef(
            name=record.name,
            repo_id=record.iface.repo_id,
            kind=record.kind,
            program_id=prog.program_id,
            host=prog.host,
            nthreads=prog.nprocs,
            owner_rank=record.owner_rank,
            endpoints=tuple(
                prog.address(r, PORT_ORB) for r in range(prog.nprocs)
            ),
            in_dists=dict(record.in_dists),
        )

    def _lookup_record(self, name: str) -> ServantRecord:
        try:
            return self._registry[name]
        except KeyError:
            raise ObjectNotFound(
                f"program {self.ctx.program.name!r} has no servant {name!r}"
            ) from None

    # -- request loops ----------------------------------------------------------

    def impl_is_ready(self) -> None:
        """Enter the request-polling loop; does not return (the server
        remains in the loop until it is deactivated/killed).  Collective
        with respect to all processing threads of the server."""
        while True:
            self._process_one(block=True)

    def process_requests(self) -> int:
        """Service the requests that have arrived so far, then return so
        the server can resume its interrupted computation (§3.3).
        Collective over the server's threads."""
        n = 0
        while self._process_one(block=False):
            n += 1
        return n

    def _process_one(self, block: bool) -> bool:
        ep = self.ctx.endpoint

        def match(env):
            return env.payload.tag == TAG_REQUEST_HEADER

        env = (ep.channel.receive(match, reason="impl_is_ready")
               if block else ep.channel.poll(match))
        if env is None:
            return False
        self._handle(env.payload.body)
        return True

    # -- dispatch -----------------------------------------------------------------

    def _handle(self, hdr: RequestHeader) -> None:
        ctx = self.ctx
        obs = ctx.orb.observer
        t0 = ctx.now() if obs is not None else 0.0
        record = self._lookup_record(hdr.object_name)
        is_root = True  # set properly below once the kind is known
        if record.kind == "spmd":
            if ctx.rank == 0 and not hdr.forwarded and ctx.nprocs > 1:
                fwd = replace(hdr, forwarded=True)
                for r in range(1, ctx.nprocs):
                    ctx.orb.world.transport.send(
                        ep_addr(ctx), ctx.program.address(r, PORT_ORB), fwd,
                        tag=TAG_REQUEST_HEADER, nbytes=hdr.nbytes(),
                    )
            servant = record.servants[ctx.rank]
            is_root = ctx.rank == 0
        else:
            servant = record.servants[record.owner_rank]

        op = self._resolve_op(record.iface, hdr, servant)
        if obs is not None:
            # Covers the servant lookup and (on rank 0) the SPMD forward.
            obs.span("dispatch", hdr.op, hdr.req_id, ctx.program.name,
                     ctx.rank, t0, ctx.now())
        if op is None:
            if is_root:
                self._send_reply(hdr, ReplyHeader(
                    hdr.req_id, STATUS_SYS_EXC,
                    exception=f"no operation {hdr.op!r} on {record.name!r}",
                ))
            return

        t_args0 = ctx.now() if obs is not None else 0.0
        try:
            args = self._collect_in_args(record, hdr, op)
        except Exception as exc:  # bad request: report, keep serving
            if is_root:
                self._send_reply(hdr, ReplyHeader(
                    hdr.req_id, STATUS_SYS_EXC, exception=repr(exc)))
            return
        if obs is not None:
            obs.span("recv_args", op.name, hdr.req_id, ctx.program.name,
                     ctx.rank, t_args0, ctx.now(),
                     nbytes=len(hdr.scalar_args))

        t_compute0 = ctx.now() if obs is not None else 0.0
        try:
            result = getattr(servant, op.name)(*args)
        except UserException as exc:
            if not hdr.oneway and is_root:
                self._send_reply(hdr, ReplyHeader(
                    hdr.req_id, STATUS_USER_EXC,
                    exception=(exc._repo_id,
                               cdr_encode(exc._typecode, exc._values())),
                ))
            return
        except Exception as exc:
            if not hdr.oneway and is_root:
                self._send_reply(hdr, ReplyHeader(
                    hdr.req_id, STATUS_SYS_EXC, exception=repr(exc)))
            return
        finally:
            if obs is not None:
                obs.span("compute", op.name, hdr.req_id, ctx.program.name,
                         ctx.rank, t_compute0, ctx.now())

        if hdr.oneway:
            return
        t_reply0 = ctx.now() if obs is not None else 0.0
        self._send_results(record, hdr, op, result)
        if obs is not None:
            obs.span("reply", op.name, hdr.req_id, ctx.program.name,
                     ctx.rank, t_reply0, ctx.now())

    def _resolve_op(self, iface: InterfaceDef, hdr: RequestHeader,
                    servant) -> Optional[OpDef]:
        op = iface.ops.get(hdr.op)
        if op is not None:
            return op
        # Attribute accessors are synthesized operations.
        if hdr.op.startswith("_get_"):
            attr = iface.attr(hdr.op[5:])
            if attr is not None:
                return OpDef(hdr.op, attr.tc, [])
        if hdr.op.startswith("_set_"):
            attr = iface.attr(hdr.op[5:])
            if attr is not None and not attr.readonly:
                return OpDef(hdr.op, None,
                             [ParamDef("in", "value", attr.tc)])
        return None

    # -- argument collection -----------------------------------------------------------

    def _collect_in_args(self, record: ServantRecord, hdr: RequestHeader,
                         op: OpDef) -> list:
        ctx = self.ctx
        specs = scalar_in_specs(op)
        scalars = decode_scalars(specs, hdr.scalar_args)
        from .marshal import materialize_objrefs

        materialize_objrefs(specs, scalars, ctx)
        values: dict[str, Any] = dict(scalars)
        for param in op.dseq_in_params:
            client_dist = build_dist(hdr.dseq_args[param.name])
            n = client_dist.n
            spec = record.in_dists.get((op.name, param.name),
                                       param.tc.server_dist)
            from .distribution import resolve_dist_spec

            server_dist = resolve_dist_spec(spec, n, ctx.nprocs)
            sched = _transfer.schedule(client_dist, server_dist)
            expected = sum(1 for t in sched if t.dst_rank == ctx.rank)
            storage = DistributedSequence(param.tc.element, server_dist,
                                          ctx.rank)
            ep = ctx.endpoint

            def match(env, pname=param.name):
                pkt = env.payload
                return (pkt.tag == TAG_ARG_FRAGMENT
                        and pkt.body.req_id == hdr.req_id
                        and pkt.body.param == pname)

            for _ in range(expected):
                frag: Fragment = ep.channel.receive(
                    match, reason=f"arg {param.name}").payload.body
                vals = fragment_values(param.tc.element, frag.payload)
                _transfer.insert(server_dist, ctx.rank, storage.owned_data,
                                 tuple(frag.intervals), vals)
            values[param.name] = wrap_out(param, storage)
        return [values[p.name] for p in op.in_params]

    # -- results ----------------------------------------------------------------------

    def _send_results(self, record: ServantRecord, hdr: RequestHeader,
                      op: OpDef, result) -> None:
        ctx = self.ctx
        expected = ([] if op.ret_tc is None else ["__return"]) + [
            p.name for p in op.out_params
        ]
        if not expected:
            out_values: dict[str, Any] = {}
        else:
            # Only unpack tuples when more than one slot is expected: a
            # single return value may itself be a tuple (e.g. a union).
            if len(expected) == 1:
                seq = (result,)
            else:
                seq = result if isinstance(result, tuple) else (result,)
            if len(seq) != len(expected):
                if (record.kind == "single") or ctx.rank == 0:
                    self._send_reply(hdr, ReplyHeader(
                        hdr.req_id, STATUS_SYS_EXC,
                        exception=(f"servant {op.name} returned {len(seq)} "
                                   f"values, expected {len(expected)}"),
                    ))
                return
            out_values = dict(zip(expected, seq))

        dseq_outs: dict[str, tuple] = {}
        frag_plan = []
        for param in op.dseq_out_params:
            container = out_values[param.name]
            ds = as_distributed(param, container, ctx.nprocs, ctx.rank)
            client_dist = resolve_out_dist(
                hdr.out_dists.get(param.name), param.tc.client_dist,
                ds.dist.n, hdr.client_nthreads,
            )
            dseq_outs[param.name] = describe_dist(ds.dist)
            frag_plan.append((param, ds, client_dist))

        is_root = (record.kind == "single") or ctx.rank == 0
        if is_root:
            scalar_bytes = encode_scalars(
                scalar_result_specs(op),
                {k: v for k, v in out_values.items()
                 if k == "__return" or not _is_dseq_param(op, k)},
            )
            self._send_reply(hdr, ReplyHeader(
                hdr.req_id, STATUS_OK, scalar_results=scalar_bytes,
                dseq_outs=dseq_outs,
            ))

        transport = ctx.orb.world.transport
        offload = ctx.orb.config.communication_threads
        for param, ds, client_dist in frag_plan:
            sched = _transfer.schedule(ds.dist, client_dist)
            for item in sched:
                if item.src_rank != ctx.rank:
                    continue
                vals = _transfer.extract(ds.dist, ctx.rank, ds.owned_data,
                                         item.intervals)
                payload = fragment_payload(param.tc.element, vals)
                frag = Fragment(hdr.req_id, param.name, ctx.rank,
                                item.intervals, payload)
                transport.send(
                    ep_addr(ctx), hdr.reply_to[item.dst_rank], frag,
                    tag=TAG_RESULT_FRAGMENT, nbytes=frag.nbytes(),
                    oneway=offload,
                )

    def _send_reply(self, hdr: RequestHeader, reply: ReplyHeader) -> None:
        transport = self.ctx.orb.world.transport
        for addr in hdr.reply_to:
            transport.send(ep_addr(self.ctx), addr, reply,
                           tag=TAG_REPLY_HEADER, nbytes=reply.nbytes())


def _is_dseq_param(op: OpDef, name: str) -> bool:
    return any(p.name == name for p in op.dseq_out_params)


def ep_addr(ctx):
    return ctx.endpoint.address
