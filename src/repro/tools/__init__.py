"""Operator tooling: packet tracing, lifecycle observation, distributed
tracing, metrics, summaries."""

from .metrics import ComputeMeter, attach_meter
from .observe import (
    RequestObserver,
    Span,
    TraceSession,
    attach_observer,
    detach_observer,
    validate_chrome_trace,
)
from .registry import (
    MetricsRegistry,
    attach_metrics,
    flatten_snapshot,
    parse_prometheus_text,
)
from .trace import PacketTrace, RingBuffer, TraceRecord, attach_tracer
from .tracing import (
    TRACE_CONTEXT,
    HeadSampling,
    TraceContext,
    TracingInterceptor,
    attach_tracing,
    detach_tracing,
)

__all__ = ["ComputeMeter", "HeadSampling", "MetricsRegistry", "PacketTrace",
           "RequestObserver", "RingBuffer", "Span", "TRACE_CONTEXT",
           "TraceContext", "TraceRecord", "TraceSession",
           "TracingInterceptor", "attach_meter", "attach_metrics",
           "attach_observer", "attach_tracer", "attach_tracing",
           "detach_observer", "detach_tracing", "flatten_snapshot",
           "parse_prometheus_text", "validate_chrome_trace"]
