"""Golden-file test for the code generator.

The generated source for a representative interface — a
``dsequence<sequence<double>>`` matrix service, the §4.1 shape that
exercises nested typedefs, distributed in/out parameters, and a
distributed return value — is pinned byte-for-byte against a checked-in
golden file.  Any codegen change shows up as a readable diff; regenerate
with ``python tests/idl/test_codegen_golden.py`` after reviewing it.
"""

from pathlib import Path

from repro.idl import compile_idl, generate

GOLDEN = Path(__file__).parent / "golden" / "matrix_stubs.py.golden"

MATRIX_IDL = """
    typedef sequence<double> row;
    typedef dsequence<row> matrix;
    typedef dsequence<double> vector;
    interface mat {
        double norm(in matrix a);
        void gemv(in matrix a, in vector x, out vector y);
        matrix transpose(in matrix a);
    };
"""

# source_name is part of the generated header; pin it for determinism.
SOURCE_NAME = "matrix.idl"


def test_generated_matrix_stubs_match_golden_bytes():
    generated = generate(MATRIX_IDL, source_name=SOURCE_NAME)
    assert generated == GOLDEN.read_text(), (
        "generated stubs diverge from tests/idl/golden/matrix_stubs.py.golden; "
        "if the codegen change is intentional, regenerate via "
        "`python tests/idl/test_codegen_golden.py` and review the diff"
    )


def test_generation_is_deterministic():
    a = generate(MATRIX_IDL, source_name=SOURCE_NAME)
    b = generate(MATRIX_IDL, source_name=SOURCE_NAME)
    assert a == b


def test_golden_source_is_a_working_module():
    """The pinned source is not just stable text — it compiles and
    exposes the expected proxy/skeleton surface."""
    mod = compile_idl(MATRIX_IDL, module_name="golden_matrix_stubs",
                      source_name=SOURCE_NAME)
    assert hasattr(mod, "mat") and hasattr(mod, "mat_skel")
    for op in ("norm", "gemv", "transpose"):
        assert hasattr(mod.mat, op)
        assert hasattr(mod.mat, f"{op}_nb")


if __name__ == "__main__":  # regenerate the golden file
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(generate(MATRIX_IDL, source_name=SOURCE_NAME))
    print(f"regenerated {GOLDEN}")
