"""Distributed tracing with wire-propagated context (CORBA-style).

A Fig-5 pipeline (visualizer → gradient → solver) runs three worlds of
observers, each recording spans that know nothing about each other; the
paper reconstructed the causal chain by hand (§6.3).  This module closes
that gap the way production ORBs did: a :class:`TracingInterceptor`
rides the portable-interceptor chain and carries a :class:`TraceContext`
inside the request's ``service_contexts`` (GIOP ServiceContextList), so
every hop — including SPMD fan-out to all servant threads, nested
downstream invocations made from inside a servant, and §4.1 local
bypasses — joins one trace.

Wire format, under the :data:`TRACE_CONTEXT` key (``"pardis.trace"``)::

    {"trace_id": "16-hex-chars",   # whole-journey id
     "span_id":  "16-hex-chars",   # the sender's span (receiver's parent)
     "sampled":  bool}             # head-based sampling verdict

Replies echo the *server's* context back under the same key, so clients
can attribute per-hop latency without a collector.

Identifiers are derived deterministically from the request id (BLAKE2b,
no randomness), which buys two properties the simulator needs:

* every thread of an SPMD collective invocation derives the *same*
  trace/span ids without communicating — the fan-out shares one logical
  span per side, exactly mirroring the paper's "one parallel entity"
  model (§3.1);
* traces are reproducible run-to-run, so tests can assert on structure.

Sampling is **head-based** (the root decides once, deterministically on
the trace id, and every downstream hop inherits the verdict) with an
**always-on-error** escape hatch: unsampled spans are buffered by the
observer and promoted to the permanent store when their request fails.

The interceptor implements only the interception points — none of the
span-sink hooks — so registering it alone leaves the chain's
``wants_spans`` fast-path flag off and the per-request span machinery
dormant; that is what keeps the benchmark-enforced overhead budget
(≤5 % vs the empty chain, see ``benchmarks/bench_infrastructure.py``).
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Optional

from ..core.pipeline.interceptors import (
    ClientRequestInfo,
    RequestInterceptor,
    ServerRequestInfo,
)
from ..simkernel import SimKernel

__all__ = [
    "TRACE_CONTEXT",
    "TraceContext",
    "HeadSampling",
    "TracingInterceptor",
    "attach_tracing",
    "detach_tracing",
]

#: service-context key carrying the trace context (see module docstring)
TRACE_CONTEXT = "pardis.trace"

#: SimThread-local key holding the stack of open trace scopes
_STACK_KEY = "pardis.trace_stack"


def _derive(text: str) -> str:
    """Deterministic 64-bit hex id of ``text``."""
    return blake2b(text.encode(), digest_size=8).hexdigest()


class TraceContext:
    """One request's position in a distributed trace.

    ``trace_id`` names the whole journey (pure hex, derived from the
    root request id); ``span_id`` this hop's span on one side — a
    ``c:``/``s:`` prefix plus the request-id hash, so both sides of both
    this and every nested request get distinct ids from *one* hash
    apiece; ``parent_id`` the span that caused it (empty for a root).
    ``sampled`` is the head-based verdict the root made — downstream
    hops inherit it unchanged.

    (A ``__slots__`` class rather than a dataclass: two of these are
    created per traced request, on the budget-gated hot path.)
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, parent_id: str = "",
                 sampled: bool = True) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = sampled

    def to_wire(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "sampled": self.sampled}

    def __eq__(self, other) -> bool:
        return (isinstance(other, TraceContext)
                and self.trace_id == other.trace_id
                and self.span_id == other.span_id
                and self.parent_id == other.parent_id
                and self.sampled == other.sampled)

    def __repr__(self) -> str:
        return (f"TraceContext(trace_id={self.trace_id!r}, "
                f"span_id={self.span_id!r}, parent_id={self.parent_id!r}, "
                f"sampled={self.sampled!r})")


class HeadSampling:
    """Deterministic head-based sampling: the decision is a pure function
    of the trace id, so every SPMD thread of a collective invocation —
    and every downstream hop — reaches the same verdict independently."""

    def __init__(self, rate: float = 1.0) -> None:
        self.rate = rate

    def sample(self, trace_id: str) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        return int(trace_id, 16) % 10_000 < round(self.rate * 10_000)


class TracingInterceptor(RequestInterceptor):
    """Propagates :class:`TraceContext` through the interception points.

    Scope model: each computing thread keeps a stack of open scopes in
    its SimThread locals.  ``receive_request`` pushes the server scope
    (popped by ``finish_request``); a §4.1 local bypass pushes its client
    scope for the duration of the direct call (popped by
    ``receive_reply``/``receive_exception``).  A ``send_request`` whose
    thread has an open scope parents the new span under it — that is the
    stitch that joins nested downstream invocations into one tree.
    """

    name = "tracing"

    def __init__(self, sampler: Optional[HeadSampling] = None,
                 always_on_error: bool = True,
                 capacity: int = 8192) -> None:
        self.sampler = sampler or HeadSampling()
        self.always_on_error = always_on_error
        self.capacity = capacity
        #: (req str, "client"|"server") -> TraceContext, bounded FIFO
        self._by_req: dict[tuple, TraceContext] = {}
        #: cross-link to the world's RequestObserver (set by attach)
        self.observer = None
        self.counters = {
            "traces_started": 0,     # roots created on this world
            "traces_joined": 0,      # wire contexts adopted by servers
            "traces_unsampled": 0,   # roots the sampler rejected
            "replies_echoed": 0,     # reply contexts seen by clients
            "local_scopes": 0,       # §4.1 bypasses framed
            "contexts_evicted": 0,   # FIFO evictions from the index
        }

    # -- context index -----------------------------------------------------

    def lookup(self, req, side: str) -> Optional[TraceContext]:
        """The context recorded for one request on one side, if any.

        The index is only maintained while an observer is cross-linked
        (it exists to annotate spans); a bare tracer skips it to stay
        inside the overhead budget.
        """
        return self._by_req.get((str(req), side))

    def _remember(self, req: str, side: str, tctx: TraceContext) -> None:
        by = self._by_req
        key = (req, side)
        if key not in by and len(by) >= self.capacity:
            del by[next(iter(by))]
            self.counters["contexts_evicted"] += 1
        by[key] = tctx

    # -- client points -----------------------------------------------------

    def send_request(self, info: ClientRequestInfo) -> None:
        req = str(info.req_id)
        h = _derive(req)
        locals_ = SimKernel.current().locals
        stack = locals_.get(_STACK_KEY)
        if stack:
            top = stack[-1]
            trace_id, parent_id, sampled = (top.trace_id, top.span_id,
                                            top.sampled)
        else:
            # A new root: the request-id hash doubles as the trace id.
            trace_id, parent_id = h, ""
            sampled = self.sampler.sample(trace_id)
            self.counters["traces_started"] += 1
            if not sampled:
                self.counters["traces_unsampled"] += 1
        tctx = TraceContext(trace_id, "c:" + h, parent_id, sampled)
        if self.observer is not None:
            self._remember(req, "client", tctx)
        info._tctx = tctx
        info.service_contexts[TRACE_CONTEXT] = tctx.to_wire()
        if info.local:
            # Frame the direct call: the servant body runs on this very
            # thread, so its own downstream invocations must parent here.
            if stack is None:
                stack = locals_[_STACK_KEY] = []
            stack.append(tctx)
            self.counters["local_scopes"] += 1

    def _close_client(self, info: ClientRequestInfo) -> None:
        tctx = getattr(info, "_tctx", None)
        if tctx is None:
            return  # an earlier interceptor aborted before we ran
        if info.local:
            stack = SimKernel.current().locals.get(_STACK_KEY)
            if stack and stack[-1] is tctx:
                stack.pop()
        reply = info.reply
        if reply is not None and TRACE_CONTEXT in reply.service_contexts:
            self.counters["replies_echoed"] += 1
        # Client-side sampling buffers resolve in the observer's own
        # request_finished hook (it fires after the last client span);
        # only the server side, which has no such hook, resolves here.

    def receive_reply(self, info: ClientRequestInfo) -> None:
        self._close_client(info)

    def receive_exception(self, info: ClientRequestInfo) -> None:
        self._close_client(info)

    # -- server points -----------------------------------------------------

    def receive_request(self, info: ServerRequestInfo) -> None:
        wire = info.header.service_contexts.get(TRACE_CONTEXT)
        if wire is not None:
            trace_id = wire["trace_id"]
            parent_id = wire["span_id"]
            sampled = wire.get("sampled", True)
            self.counters["traces_joined"] += 1
            # A parent from our own client side is "c:" + hash(req id);
            # reuse that hash rather than recomputing it.
            h = parent_id[2:] if parent_id[:2] == "c:" else _derive(
                str(info.req_id))
        else:
            # Untraced client: root the trace at the server.
            h = _derive(str(info.req_id))
            trace_id, parent_id = h, ""
            sampled = self.sampler.sample(trace_id)
            self.counters["traces_started"] += 1
            if not sampled:
                self.counters["traces_unsampled"] += 1
        tctx = TraceContext(trace_id, "s:" + h, parent_id, sampled)
        if self.observer is not None:
            self._remember(str(info.req_id), "server", tctx)
        info._tctx = tctx
        locals_ = SimKernel.current().locals
        stack = locals_.get(_STACK_KEY)
        if stack is None:
            stack = locals_[_STACK_KEY] = []
        stack.append(tctx)

    def send_reply(self, info: ServerRequestInfo) -> None:
        tctx = getattr(info, "_tctx", None)
        if tctx is not None:
            info.reply_service_contexts[TRACE_CONTEXT] = tctx.to_wire()

    def finish_request(self, info: ServerRequestInfo) -> None:
        tctx = getattr(info, "_tctx", None)
        if tctx is None:
            return  # shed before our receive_request ran
        stack = SimKernel.current().locals.get(_STACK_KEY)
        if stack and stack[-1] is tctx:
            stack.pop()
        if self.observer is not None and self.always_on_error:
            self.observer._resolve_trace(str(info.req_id), "server",
                                         info.ctx.rank,
                                         info.exception is not None)


# ---------------------------------------------------------------------------
# Attachment
# ---------------------------------------------------------------------------


def attach_tracing(world, sampler: Optional[HeadSampling] = None,
                   always_on_error: bool = True) -> TracingInterceptor:
    """Install a :class:`TracingInterceptor` on a world (before ``run()``).

    Registers it on the ORB's interceptor chain, publishes it as
    ``world.services["tracer"]``, and cross-links it with a previously
    attached :class:`~repro.tools.observe.RequestObserver` so spans gain
    trace/span/parent ids (attachment order doesn't matter — whichever
    attaches second completes the link).
    """
    tracer = TracingInterceptor(sampler=sampler,
                                always_on_error=always_on_error)
    world.services["tracer"] = tracer
    orb = world.services.get("orb")
    if orb is not None:
        orb.register_interceptor(tracer)
    obs = world.services.get("observer")
    if obs is not None:
        obs.tracer = tracer
        tracer.observer = obs
    return tracer


def detach_tracing(world) -> Optional[TracingInterceptor]:
    """Undo :func:`attach_tracing`; returns the removed tracer."""
    tracer = world.services.pop("tracer", None)
    if tracer is None:
        return None
    orb = world.services.get("orb")
    if orb is not None and tracer in orb.interceptors:
        orb.unregister_interceptor(tracer)
    obs = world.services.get("observer")
    if obs is not None and getattr(obs, "tracer", None) is tracer:
        obs.tracer = None
    tracer.observer = None
    return tracer
