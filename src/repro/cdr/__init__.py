"""CDR-style marshaling: typecodes, encoder, decoder.

The IDL compiler generates code that drives this layer; the same
marshaling routines serve both network transport and transport within a
parallel program's communication domain (paper §4.1).
"""

from .buffers import (
    BufferPool,
    PooledBuffer,
    ZeroCopyStats,
    fast_path,
    fast_path_enabled,
    get_pool,
    set_fast_path,
    set_pool,
)
from .decoder import CdrDecoder, decode, decode_bulk_payload
from .encoder import (
    CdrEncoder,
    MarshalError,
    bulk_header_size,
    encode,
    encode_bulk_payload,
    get_marshal_meter,
    set_marshal_meter,
)
from .typecodes import (
    ArrayTC,
    DSequenceTC,
    EnumTC,
    PRIMITIVES,
    PrimitiveTC,
    SequenceTC,
    StringTC,
    StructTC,
    TC_BOOLEAN,
    TC_CHAR,
    TC_DOUBLE,
    TC_FLOAT,
    TC_LONG,
    TC_LONGLONG,
    TC_OCTET,
    TC_SHORT,
    TC_ULONG,
    TC_ULONGLONG,
    TC_USHORT,
    TypeCode,
    is_numeric_primitive,
    wire_size,
)

from .typecodes import ObjectRefTC, UnionTC

__all__ = [
    "ArrayTC",
    "BufferPool",
    "CdrDecoder",
    "CdrEncoder",
    "DSequenceTC",
    "EnumTC",
    "MarshalError",
    "ObjectRefTC",
    "PRIMITIVES",
    "PooledBuffer",
    "PrimitiveTC",
    "SequenceTC",
    "StringTC",
    "StructTC",
    "TC_BOOLEAN",
    "TC_CHAR",
    "TC_DOUBLE",
    "TC_FLOAT",
    "TC_LONG",
    "TC_LONGLONG",
    "TC_OCTET",
    "TC_SHORT",
    "TC_ULONG",
    "TC_ULONGLONG",
    "TC_USHORT",
    "TypeCode",
    "UnionTC",
    "ZeroCopyStats",
    "bulk_header_size",
    "decode",
    "decode_bulk_payload",
    "encode",
    "encode_bulk_payload",
    "fast_path",
    "fast_path_enabled",
    "get_marshal_meter",
    "get_pool",
    "is_numeric_primitive",
    "set_fast_path",
    "set_marshal_meter",
    "set_pool",
    "wire_size",
]
