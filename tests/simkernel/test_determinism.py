"""Property-based determinism tests: the kernel's defining guarantee.

Random workloads of computing threads exchanging messages must produce
*identical* event orders and timings on every run — this is what makes
every experiment in the repository reproducible.
"""

from hypothesis import given, settings, strategies as st

from repro.simkernel import Channel, SimKernel

durations = st.lists(st.floats(min_value=0.0, max_value=2.0,
                               allow_nan=False), min_size=1, max_size=6)


def run_workload(schedules):
    """N threads, each advancing through its schedule and logging."""
    k = SimKernel()
    log = []

    def body(name, dts):
        for dt in dts:
            k.advance(dt)
            log.append((name, round(k.now(), 9)))

    for i, dts in enumerate(schedules):
        k.spawn(body, i, dts, name=f"w{i}")
    k.run()
    return log


@settings(max_examples=40, deadline=None)
@given(st.lists(durations, min_size=1, max_size=5))
def test_property_identical_runs_identical_logs(schedules):
    assert run_workload(schedules) == run_workload(schedules)


@settings(max_examples=40, deadline=None)
@given(st.lists(durations, min_size=1, max_size=5))
def test_property_log_ordered_by_virtual_time(schedules):
    log = run_workload(schedules)
    times = [t for _, t in log]
    assert times == sorted(times)


def run_message_workload(seed, nthreads=4, nmsgs=5):
    """Threads deterministically pseudo-randomly message each other."""
    import random

    k = SimKernel()
    chans = [Channel(k, name=f"c{i}") for i in range(nthreads)]
    log = []

    def body(me):
        rng = random.Random(seed * 1000 + me)
        for i in range(nmsgs):
            k.advance(rng.uniform(0.0, 1.0))
            dst = rng.randrange(nthreads)
            chans[dst].push((me, i), arrival=k.now() + rng.uniform(0, 0.5))
        # Drain whatever arrived for us.
        while True:
            env = chans[me].poll()
            if env is None:
                break
            log.append((me, env.payload, round(env.arrival, 9)))

    for i in range(nthreads):
        k.spawn(body, i, name=f"m{i}")
    k.run()
    return log


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_property_message_workloads_deterministic(seed):
    assert run_message_workload(seed) == run_message_workload(seed)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_property_kernel_counters_deterministic(seed):
    def run():
        import random

        k = SimKernel()

        def body(me):
            rng = random.Random(seed + me)
            for _ in range(4):
                k.advance(rng.uniform(0.01, 1.0))

        for i in range(3):
            k.spawn(body, i)
        k.run()
        return (k.events_processed, k.context_switches)

    assert run() == run()
