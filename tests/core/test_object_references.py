"""Object references as argument/result values: factory patterns, nil
references, typed narrowing, and the DII fallback."""

import pytest

from repro.core import Simulation, dynamic_bind
from repro.core.repository import ObjectRef
from repro.idl import compile_idl

IDL = """
    interface worker {
        long work(in long x);
    };
    interface registry {
        worker get_worker(in long which);
        Object get_any(in long which);
        void put_worker(in worker w);
        long use(in worker w, in long x);
    };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="objref_stubs")


def build_sim(mod, received):
    sim = Simulation()

    def server_main(ctx):
        class WorkerImpl(mod.worker_skel):
            def __init__(self, factor):
                self.factor = factor

            def work(self, x):
                return x * self.factor

        w2 = ctx.poa.activate(WorkerImpl(2), "worker-x2", kind="single")
        w3 = ctx.poa.activate(WorkerImpl(3), "worker-x3", kind="single")

        class RegistryImpl(mod.registry_skel):
            def get_worker(self, which):
                return [w2, w3][which]      # returning raw ObjectRefs

            def get_any(self, which):
                return None if which < 0 else [w2, w3][which]

            def put_worker(self, w):
                received.append(w)

            def use(self, w, x):
                # the server itself invokes through the received reference
                return w.work(x)

        ctx.poa.activate(RegistryImpl(), "registry", kind="single")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=1)
    return sim


class TestObjectReferences:
    def test_factory_returns_typed_proxy(self, mod):
        received = []
        sim = build_sim(mod, received)
        out = {}

        def client(ctx):
            reg = mod.registry._bind("registry")
            w = reg.get_worker(0)
            out["type"] = type(w).__name__
            out["value"] = w.work(21)       # invoke through the result!

        sim.client(client, host="HOST_1")
        sim.run()
        assert out["type"] == "worker"      # the generated proxy class
        assert out["value"] == 42

    def test_nil_reference(self, mod):
        sim = build_sim(mod, [])
        out = {}

        def client(ctx):
            reg = mod.registry._bind("registry")
            out["nil"] = reg.get_any(-1)
            out["real"] = reg.get_any(1).work(10)

        sim.client(client, host="HOST_1")
        sim.run()
        assert out["nil"] is None
        assert out["real"] == 30

    def test_passing_proxy_as_argument(self, mod):
        """The client hands the server a reference; the server invokes
        through it (the callback pattern)."""
        received = []
        sim = build_sim(mod, received)
        out = {}

        def client(ctx):
            reg = mod.registry._bind("registry")
            w3 = reg.get_worker(1)
            out["via_server"] = reg.use(w3, 5)   # server calls w3.work(5)
            reg.put_worker(w3)
            # give the server a beat to process put_worker, then have it
            # use its kept proxy via another call
            out["kept"] = reg.use(reg.get_worker(1), 4)

        sim.client(client, host="HOST_1")
        sim.run()
        assert out["via_server"] == 15
        assert out["kept"] == 12
        assert len(received) == 1
        assert type(received[0]).__name__ == "worker"  # live proxy kept

    def test_reference_through_dii(self, mod):
        sim = build_sim(mod, [])
        out = {}

        def client(ctx):
            reg = dynamic_bind("registry")
            w = reg.invoke("get_worker", 0)
            out["value"] = w.work(8)

        sim.client(client, host="HOST_1")
        sim.run()
        assert out["value"] == 16

    def test_reference_survives_marshaling_fidelity(self, mod):
        """What the servant receives is equivalent to what was sent."""
        received = []
        sim = build_sim(mod, received)

        def client(ctx):
            reg = mod.registry._bind("registry")
            w = reg.get_worker(1)
            reg.put_worker(w)

        sim.client(client, host="HOST_1")
        sim.run()
        ref = received[0]._binding.ref
        assert ref.name == "worker-x3"
        assert ref.repo_id == "IDL:worker:1.0"
        assert ref.kind == "single"
