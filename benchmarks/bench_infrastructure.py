"""Infrastructure benchmarks (real wall-clock): the simulation kernel's
event throughput, collective latency scaling, IDL compilation speed and
end-to-end invocation cost.  These guard the reproduction's own
performance — a slow simulator makes the paper-scale sweeps painful.
"""

import pytest

from repro.idl import compile_idl, generate
from repro.runtime import MPIRuntime, collectives as coll
from repro.simkernel import Channel, SimKernel

from repro.netsim import ATM_155, Host, Network
from repro.runtime import World


def make_world(nodes=16):
    net = Network()
    net.add_host(Host("hostA", nodes=nodes, node_flops=1e7))
    net.add_host(Host("hostB", nodes=nodes, node_flops=1e7))
    net.connect("hostA", "hostB", ATM_155)
    return World(net)


@pytest.mark.benchmark(group="infra-kernel")
def test_kernel_context_switch_throughput(benchmark):
    """Ping-pong between two threads: measures switches/second."""
    SWITCHES = 2000

    def run():
        k = SimKernel()
        ch_a, ch_b = Channel(k), Channel(k)

        def a():
            for i in range(SWITCHES // 2):
                ch_b.push(i, arrival=k.now())
                ch_a.receive()

        def b():
            for i in range(SWITCHES // 2):
                ch_b.receive()
                ch_a.push(i, arrival=k.now())

        k.spawn(a)
        k.spawn(b)
        k.run()
        return k.context_switches

    switches = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["context_switches"] = switches


@pytest.mark.benchmark(group="infra-kernel")
@pytest.mark.parametrize("nthreads", [8, 64])
def test_kernel_many_threads(benchmark, nthreads):
    def run():
        k = SimKernel()

        def body():
            for _ in range(20):
                k.advance(0.001)

        for _ in range(nthreads):
            k.spawn(body)
        k.run()

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="infra-collectives")
@pytest.mark.parametrize("nprocs", [4, 16])
def test_collective_allreduce_wallclock(benchmark, nprocs):
    def run():
        world = make_world(nodes=nprocs)
        prog = world.launch(
            lambda rts: [coll.allreduce(rts, rts.rank, lambda a, b: a + b)
                         for _ in range(10)][-1],
            host="hostA", nprocs=nprocs, rts_factory=MPIRuntime,
        )
        world.run()
        return prog.results[0]

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result == sum(range(nprocs))


SOLVER_IDL = """
    typedef sequence<double> row;
    typedef dsequence<row> matrix;
    typedef dsequence<double> vector;
    interface direct { void solve(in matrix A, in vector B, out vector X); };
    interface iterative {
        void solve(in double tol, in matrix A, in vector B, out vector X);
    };
"""


@pytest.mark.benchmark(group="infra-idlc")
def test_idl_generate_speed(benchmark):
    src = benchmark(generate, SOLVER_IDL)
    assert "class direct" in src


@pytest.mark.benchmark(group="infra-idlc")
def test_idl_compile_to_module_speed(benchmark):
    counter = [0]

    def run():
        counter[0] += 1
        return compile_idl(SOLVER_IDL,
                           module_name=f"bench_idlc_{counter[0]}")

    mod = benchmark.pedantic(run, rounds=5, iterations=1)
    assert hasattr(mod, "direct")


@pytest.mark.benchmark(group="infra-invocation")
def test_end_to_end_invocation_wallclock(benchmark):
    """Wall-clock cost of simulating 50 remote invocations."""
    from repro.core import OrbConfig, Simulation

    mod = compile_idl("interface p { long echo(in long x); };",
                      module_name="bench_invoke_stubs")

    def run():
        sim = Simulation(config=OrbConfig(max_outstanding=4))

        def server_main(ctx):
            class Impl(mod.p_skel):
                def echo(self, x):
                    return x

            ctx.poa.activate(Impl(), "p", kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_2", nprocs=1)
        out = {}

        def client(ctx):
            prx = mod.p._bind("p")
            for i in range(50):
                prx.echo(i)
            out["done"] = True

        sim.client(client, host="HOST_1")
        sim.run()
        return out["done"]

    assert benchmark.pedantic(run, rounds=3, iterations=1)


# ---------------------------------------------------------------------------
# Tracing overhead gate (plain test, no benchmark fixture: CI runs it with
# ``-k tracing_overhead`` on every push, not only under --benchmark-only)
# ---------------------------------------------------------------------------


def _echo_run(attach=None, n=200, admission=False):
    """Wall seconds and virtual end-time of an ``n``-invocation echo sim;
    ``attach(world)`` installs instrumentation before the run.  Payload-free
    blocking echoes are the *worst case* for fixed per-request overhead —
    any real workload amortizes it over marshalling and compute."""
    import gc
    import time

    from repro.core import OrbConfig, Simulation

    mod = compile_idl("interface g { long echo(in long x); };",
                      module_name="bench_overhead_stubs")
    sim = Simulation(config=OrbConfig(max_outstanding=4))
    if attach is not None:
        attach(sim.world)

    def server_main(ctx):
        class Impl(mod.g_skel):
            def echo(self, x):
                return x

        ctx.poa.activate(Impl(), "g", kind="spmd")
        if admission:
            from repro.services import AdmissionController

            ctx.poa.set_admission(AdmissionController(capacity=8))
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=1)

    def client(ctx):
        prx = mod.g._bind("g")
        for i in range(n):
            prx.echo(i)

    sim.client(client, host="HOST_1")
    # Collect leftover garbage from earlier samples and keep the GC out
    # of the timed region: a gen-2 pass over a prior (span-heavy) world's
    # graph landing mid-run would be charged to the wrong configuration.
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
    finally:
        gc.enable()
    return wall, sim.world.kernel.now()


def test_tracing_overhead_gate():
    """Benchmark-enforced overhead budget: the tracing interceptor alone
    must cost <= 5% end-to-end wall clock vs the *empty* chain (and must
    not move virtual time at all).  Interleaved rounds defend against
    drift; comparing the per-configuration *minima* defends against
    scheduler noise, which on a green-thread workload is strictly
    additive and right-skewed (the minimum is the least-contaminated
    estimate of intrinsic cost — the same reasoning as ``timeit``).
    Widen with PARDIS_OVERHEAD_GATE_PCT for pathologically noisy
    machines.  The full observability stack (observer + tracer +
    metrics) is measured alongside for the record — it flips the chain's
    span machinery on and has no 5% budget.
    """
    import os

    from repro.tools.observe import attach_observer
    from repro.tools.registry import attach_metrics
    from repro.tools.tracing import attach_tracing

    def full_stack(world):
        attach_observer(world)
        attach_tracing(world)
        attach_metrics(world)

    _echo_run()  # warm the stub/import caches outside the measurement
    plain, traced, stacked = [], [], []
    virtual = set()
    for _ in range(9):
        for samples, attach in ((plain, None), (traced, attach_tracing),
                                (stacked, full_stack)):
            wall, vt = _echo_run(attach)
            samples.append(wall)
            virtual.add(round(vt, 12))

    # Tracing must be invisible to the simulation's virtual clock.
    assert len(virtual) == 1, f"virtual end-times diverged: {virtual}"

    budget = float(os.environ.get("PARDIS_OVERHEAD_GATE_PCT", "5")) / 100.0
    p, t, s = min(plain), min(traced), min(stacked)
    # Small absolute slack so a sub-millisecond workload can't fail the
    # gate on scheduler jitter alone.
    assert t <= p * (1 + budget) + 0.001, (
        f"tracing overhead {100 * (t / p - 1):.1f}% exceeds "
        f"{100 * budget:.0f}% budget (plain {p * 1e3:.2f} ms, "
        f"traced {t * 1e3:.2f} ms)"
    )
    print(f"\ntracing-overhead gate: plain {p * 1e3:.2f} ms, "
          f"traced {t * 1e3:.2f} ms ({100 * (t / p - 1):+.1f}%), "
          f"full stack {s * 1e3:.2f} ms ({100 * (s / p - 1):+.1f}%)")


def test_services_overhead_gate():
    """Benchmark-enforced budget for the services layer's *dormant* cost:
    a run with an idle :class:`~repro.services.ThrottleInterceptor` in
    the chain (it rides every request but no backpressure ever arrives)
    must cost <= 5% end-to-end wall clock vs the empty chain, and must
    not move virtual time — with no admission controller and no bind
    policy, the request path's only additions are ``admission is None``
    checks and the single-ref bind fast path.  Same min-of-interleaved-
    rounds methodology as :func:`test_tracing_overhead_gate`; widen with
    PARDIS_OVERHEAD_GATE_PCT on noisy machines.  An admission-controlled
    run (bounded queue engaged, zero sheds) is measured alongside for
    the record — it has no budget: the load reports it piggybacks on
    every reply legitimately move virtual time.
    """
    import os

    from repro.services import ThrottleInterceptor

    def attach_throttle(world):
        world.services["orb"].register_interceptor(
            ThrottleInterceptor(seed=0))

    _echo_run()  # warm the stub/import caches outside the measurement
    plain, throttled, admitted = [], [], []
    virtual = set()
    for _ in range(9):
        wall, vt = _echo_run()
        plain.append(wall)
        virtual.add(round(vt, 12))
        wall, vt = _echo_run(attach_throttle)
        throttled.append(wall)
        virtual.add(round(vt, 12))
        wall, _ = _echo_run(admission=True)
        admitted.append(wall)

    # An idle throttle must be invisible to the simulation's clock.
    assert len(virtual) == 1, f"virtual end-times diverged: {virtual}"

    budget = float(os.environ.get("PARDIS_OVERHEAD_GATE_PCT", "5")) / 100.0
    p, t, a = min(plain), min(throttled), min(admitted)
    assert t <= p * (1 + budget) + 0.001, (
        f"idle-services overhead {100 * (t / p - 1):.1f}% exceeds "
        f"{100 * budget:.0f}% budget (plain {p * 1e3:.2f} ms, "
        f"throttled {t * 1e3:.2f} ms)"
    )
    print(f"\nservices-overhead gate: plain {p * 1e3:.2f} ms, "
          f"idle throttle {t * 1e3:.2f} ms ({100 * (t / p - 1):+.1f}%), "
          f"admission on {a * 1e3:.2f} ms ({100 * (a / p - 1):+.1f}%)")


DSEQ_IDL = """
    typedef dsequence<double, 1000000> vec;
    interface bulk { double total(in vec v); };
"""


@pytest.mark.benchmark(group="infra-invocation")
@pytest.mark.parametrize("n", [65_536])
def test_end_to_end_dseq_invocation_wallclock(benchmark, request, n):
    """Wall-clock cost of 20 invocations each shipping a 512 KiB
    distributed argument — the fragment lane end to end (encode →
    transport → decode → insert).  Run with ``--fast-path off`` for the
    zero-copy ablation; the lane taken is recorded in ``extra_info``.
    """
    import numpy as np

    from repro.core import OrbConfig, Simulation

    mod = compile_idl(DSEQ_IDL, module_name="bench_dseq_stubs")

    def run():
        sim = Simulation(config=OrbConfig(max_outstanding=4))

        def server_main(ctx):
            class Impl(mod.bulk_skel):
                def total(self, v):
                    return float(np.sum(v.owned_data))

            ctx.poa.activate(Impl(), "bulk", kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_2", nprocs=1)
        out = {}

        def client(ctx):
            prx = mod.bulk._bind("bulk")
            data = mod.vec(np.arange(float(n)))
            out["total"] = [prx.total(data) for _ in range(20)][-1]

        sim.client(client, host="HOST_1")
        sim.run()
        stats = sim.world.transport.buffer_pool.stats
        out["stats"] = stats.snapshot()
        return out

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert out["total"] == float(n) * (n - 1) / 2
    lane = request.config.getoption("--fast-path")
    benchmark.extra_info["fast_path"] = lane
    benchmark.extra_info["fast_encodes"] = out["stats"]["fast_encodes"]
    benchmark.extra_info["fallback_encodes"] = out["stats"]["fallback_encodes"]
    # Every borrowed payload buffer must have come back.
    assert (out["stats"]["borrows"] == out["stats"]["returns"])
    if lane == "on":
        assert out["stats"]["fast_encodes"] == 20
    else:
        assert out["stats"]["fast_encodes"] == 0
