"""Correctness tests for the §4.3 pipeline applications."""

import numpy as np
import pytest

from repro.core import Simulation
from repro.experiments.fig5_pipeline import _network
from repro.apps.diffusion import diffusion_client_main, initial_condition
from repro.apps.gradient import gradient_server_main, parallel_magnitude_gradient
from repro.apps.visualizer import visualizer_server_main
from repro.packages.pooma.stencil import magnitude_gradient
from repro.packages.pstl import DVector
from repro.runtime import MPIRuntime

from ..runtime.conftest import make_world


class TestParallelGradient:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_matches_sequential_reference(self, p):
        ny = nx = 12
        rng = np.random.default_rng(5)
        grid = rng.uniform(0, 1, (ny, nx))
        expected = magnitude_gradient(grid)

        def main(rts):
            from repro.core.distribution import RowBlock

            dist = RowBlock(nx).instantiate(ny * nx, rts.nprocs)
            lo, hi = (dist.intervals(rts.rank)[0]
                      if dist.intervals(rts.rank) else (0, 0))
            vec = DVector(ny * nx, rts.rank, rts.nprocs, rts,
                          local=grid.reshape(-1)[lo:hi].copy(), dist=dist)
            out = parallel_magnitude_gradient(vec, nx, rts)
            return out.assemble(root=0)

        world = make_world(nodes=max(p, 2))
        prog = world.launch(main, host="hostA", nprocs=p,
                            rts_factory=MPIRuntime)
        world.run()
        np.testing.assert_allclose(
            prog.results[0].reshape(ny, nx), expected, atol=1e-10)

    def test_unaligned_distribution_rejected(self):
        def main(rts):
            vec = DVector(100, rts.rank, rts.nprocs, rts,
                          local=np.zeros(100))
            with pytest.raises(ValueError, match="row-aligned"):
                parallel_magnitude_gradient(vec, 8, rts)  # 100 % 8 != 0

        world = make_world()
        world.launch(main, host="hostA", nprocs=1, rts_factory=MPIRuntime)
        world.run()


class TestInitialCondition:
    def test_hot_square(self):
        y, x = np.meshgrid(np.arange(128), np.arange(128), indexing="ij")
        grid = initial_condition(y, x)
        assert grid[64, 64] == 100.0
        assert grid[0, 0] == 0.0


class TestPipelineEndToEnd:
    def run_pipeline(self, procs=2, steps=10, n=16, gradient_every=5):
        sim = Simulation(network=_network())
        frames_diff: list = []
        frames_grad: list = []
        grad_stats: dict = {}
        sim.server(visualizer_server_main, host="SGI_PC", nprocs=1,
                   node_offset=9, args=("diff_visualizer", frames_diff))
        sim.server(visualizer_server_main, host="INDY", nprocs=1,
                   args=("grad_visualizer", frames_grad))
        sim.server(gradient_server_main, host="SP2", nprocs=procs,
                   args=(n, "grad_visualizer", grad_stats))
        reports: dict = {}
        sim.client(diffusion_client_main, host="SGI_PC", nprocs=procs,
                   args=(steps, gradient_every, n, 0.1, "field_operations",
                         "diff_visualizer", reports, 5.0))
        sim.run()
        return reports, frames_diff, frames_grad, grad_stats

    def test_counts_add_up(self):
        reports, fd, fg, gs = self.run_pipeline(procs=2, steps=10)
        r = reports[0]
        assert r.steps == 10
        assert r.frames_shown == 10
        assert r.gradients_requested == 2
        assert len(fd) == 10            # every time-step visualized
        assert len(fg) == 2             # every completed gradient visualized
        assert gs[0] == 2               # server processed both requests

    def test_gradient_every_parameter(self):
        reports, _, fg, _ = self.run_pipeline(procs=1, steps=12,
                                              gradient_every=3)
        assert reports[0].gradients_requested == 4
        assert len(fg) == 4

    def test_diffusion_preserves_positivity(self):
        reports, _, _, _ = self.run_pipeline(procs=2, steps=10)
        for r in reports.values():
            assert r.final_norm >= 0.0

    def test_parallel_diffusion_matches_serial(self):
        """The distributed stencil produces the same field regardless of
        the processor count."""
        norms = {}
        for p in (1, 2, 4):
            reports, _, _, _ = self.run_pipeline(procs=p, steps=8)
            norms[p] = sum(r.final_norm for r in reports.values())
        assert norms[1] == pytest.approx(norms[2], rel=1e-12)
        assert norms[1] == pytest.approx(norms[4], rel=1e-12)
