"""IDL compiler driver: text -> tokens -> AST -> IR -> Python module.

Use :func:`compile_idl` to get a live Python module of stubs/skeletons, or
:func:`generate` for the source text.  The ``pardis-idlc`` console script
wraps the same pipeline (``pardis-idlc file.idl [-pooma|-hpcxx] [-o out.py]``).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import types
from typing import Callable, Mapping, Optional, Union

from .codegen import generate_source
from .lexer import IdlSyntaxError
from .parser import parse
from .semantics import CompiledSpec, IdlSemanticError, analyze

__all__ = [
    "IdlSemanticError",
    "IdlSyntaxError",
    "compile_idl",
    "compile_spec",
    "generate",
    "main",
    "preprocess",
]

_module_counter = 0

_INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]+"([^"]+)"[ \t]*$',
                         re.MULTILINE)

Resolver = Union[Mapping[str, str], Callable[[str], str], None]


def _resolve(resolver: Resolver, name: str) -> str:
    if resolver is None:
        raise IdlSyntaxError(
            f'#include "{name}" found but no include resolver was given',
            1, 1,
        )
    if callable(resolver):
        return resolver(name)
    try:
        return resolver[name]
    except KeyError:
        raise IdlSyntaxError(f'cannot resolve #include "{name}"', 1, 1) \
            from None


def preprocess(source: str, includes: Resolver = None) -> str:
    """Expand ``#include "name"`` directives.

    ``includes`` maps include names to IDL text (or is a callable doing
    so; the CLI uses a file-system resolver).  Each file is included at
    most once (include-guard semantics) and cycles are rejected.
    """
    seen: set[str] = set()

    def expand(text: str, stack: tuple[str, ...]) -> str:
        def sub(match: re.Match) -> str:
            name = match.group(1)
            if name in stack:
                raise IdlSyntaxError(
                    f'circular #include of "{name}" '
                    f'(chain: {" -> ".join(stack + (name,))})', 1, 1)
            if name in seen:
                return ""  # include-once
            seen.add(name)
            return expand(_resolve(includes, name), stack + (name,))

        return _INCLUDE_RE.sub(sub, text)

    return expand(source, ())


def file_resolver(dirs: list[str]) -> Callable[[str], str]:
    """Include resolver searching a list of directories."""

    def resolve(name: str) -> str:
        for d in dirs:
            path = os.path.join(d, name)
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as fh:
                    return fh.read()
        raise IdlSyntaxError(
            f'#include "{name}" not found in {dirs}', 1, 1)

    return resolve


def compile_spec(source: str, includes: Resolver = None) -> CompiledSpec:
    """Parse + semantically analyze IDL text."""
    return analyze(parse(preprocess(source, includes)))


def generate(source: str, package: Optional[str] = None,
             source_name: str = "<idl>", includes: Resolver = None) -> str:
    """IDL text -> generated Python source.

    ``package`` selects a direct package mapping: ``"POOMA"`` (the paper's
    ``-pooma`` option), ``"HPC++"`` (``-hpcxx``), or ``None`` for standard
    PARDIS distributed-sequence stubs.  ``includes`` resolves
    ``#include`` directives (mapping or callable).
    """
    # Built-in mappings are POOMA and HPC++ (the paper's -pooma/-hpcxx);
    # any other name is a custom package whose container adapters must be
    # registered via repro.core.stubapi.register_adapter before the
    # generated module is imported — the §6 goal of making "mappings for
    # many diverse systems" cheap to add.
    return generate_source(compile_spec(source, includes), package,
                           source_name)


def compile_idl(source: str, package: Optional[str] = None,
                module_name: Optional[str] = None,
                source_name: str = "<idl>",
                includes: Resolver = None) -> types.ModuleType:
    """IDL text -> importable Python module of proxies and skeletons."""
    global _module_counter
    code = generate(source, package, source_name, includes)
    if module_name is None:
        _module_counter += 1
        module_name = f"_pardis_idl_{_module_counter}"
    mod = types.ModuleType(module_name)
    mod.__pardis_source__ = code
    # Register before exec: the dataclass machinery (struct codegen)
    # resolves the defining module through sys.modules.
    sys.modules[module_name] = mod
    exec(compile(code, f"<pardis-idlc {source_name}>", "exec"), mod.__dict__)
    return mod


def main(argv: Optional[list[str]] = None) -> int:
    """Console entry point: ``pardis-idlc``."""
    ap = argparse.ArgumentParser(
        prog="pardis-idlc",
        description="PARDIS IDL compiler: generates Python stubs/skeletons.",
    )
    ap.add_argument("input", help="IDL source file")
    ap.add_argument("-o", "--output", help="output .py file (default: stdout)")
    ap.add_argument("-I", "--include", action="append", default=[],
                    metavar="DIR", help="add an #include search directory")
    group = ap.add_mutually_exclusive_group()
    group.add_argument("-pooma", action="store_true",
                       help="generate POOMA field mappings for pragma'd dsequences")
    group.add_argument("-hpcxx", action="store_true",
                       help="generate HPC++ PSTL vector mappings for pragma'd dsequences")
    ns = ap.parse_args(argv)

    package = "POOMA" if ns.pooma else ("HPC++" if ns.hpcxx else None)
    with open(ns.input, "r", encoding="utf-8") as fh:
        source = fh.read()
    dirs = list(ns.include) + [os.path.dirname(os.path.abspath(ns.input))]
    try:
        code = generate(source, package, source_name=ns.input,
                        includes=file_resolver(dirs))
    except (IdlSyntaxError, IdlSemanticError) as exc:
        print(f"pardis-idlc: error: {exc}", file=sys.stderr)
        return 1
    if ns.output:
        with open(ns.output, "w", encoding="utf-8") as fh:
            fh.write(code)
    else:
        sys.stdout.write(code)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
