"""#include preprocessing tests."""

import pytest

from repro.idl import compile_idl
from repro.idl.compiler import file_resolver, preprocess
from repro.idl.lexer import IdlSyntaxError

COMMON = """
    typedef sequence<double> row;
    const long N = 16;
"""


class TestPreprocess:
    def test_simple_include(self):
        out = preprocess('#include "common.idl"\ntypedef row r2;',
                         {"common.idl": COMMON})
        assert "typedef sequence<double> row;" in out
        assert "typedef row r2;" in out

    def test_no_directive_passthrough(self):
        src = "typedef long t;"
        assert preprocess(src) == src

    def test_missing_resolver(self):
        with pytest.raises(IdlSyntaxError, match="no include resolver"):
            preprocess('#include "x.idl"')

    def test_unresolvable_name(self):
        with pytest.raises(IdlSyntaxError, match="cannot resolve"):
            preprocess('#include "ghost.idl"', {})

    def test_nested_includes(self):
        files = {
            "a.idl": '#include "b.idl"\ntypedef b_t a_t;',
            "b.idl": "typedef long b_t;",
        }
        out = preprocess('#include "a.idl"', files)
        assert out.index("typedef long b_t;") < out.index("typedef b_t a_t;")

    def test_include_once(self):
        files = {"c.idl": "typedef long c_t;"}
        out = preprocess('#include "c.idl"\n#include "c.idl"\n', files)
        assert out.count("typedef long c_t;") == 1

    def test_diamond_include_ok(self):
        files = {
            "base.idl": "typedef long base_t;",
            "left.idl": '#include "base.idl"\ntypedef base_t left_t;',
            "right.idl": '#include "base.idl"\ntypedef base_t right_t;',
        }
        out = preprocess('#include "left.idl"\n#include "right.idl"', files)
        assert out.count("typedef long base_t;") == 1

    def test_cycle_rejected(self):
        files = {
            "x.idl": '#include "y.idl"',
            "y.idl": '#include "x.idl"',
        }
        with pytest.raises(IdlSyntaxError, match="circular"):
            preprocess('#include "x.idl"', files)


class TestCompileWithIncludes:
    def test_compiled_module_sees_included_types(self):
        mod = compile_idl(
            '#include "common.idl"\n'
            "interface i { void f(in row r, in long n); };",
            includes={"common.idl": COMMON},
            module_name="include_test_stubs",
        )
        assert mod.N == 16
        assert "f" in mod.i._interface.ops


class TestFileResolver:
    def test_searches_directories(self, tmp_path):
        (tmp_path / "inc.idl").write_text("typedef long from_file;")
        resolve = file_resolver([str(tmp_path)])
        assert "from_file" in resolve("inc.idl")

    def test_not_found(self, tmp_path):
        resolve = file_resolver([str(tmp_path)])
        with pytest.raises(IdlSyntaxError, match="not found"):
            resolve("missing.idl")

    def test_cli_include_flag(self, tmp_path):
        import subprocess
        import sys

        (tmp_path / "types.idl").write_text("typedef double scalar;")
        main_idl = tmp_path / "main.idl"
        main_idl.write_text(
            '#include "types.idl"\ninterface i { scalar f(); };')
        r = subprocess.run(
            [sys.executable, "-m", "repro.idl.compiler", str(main_idl)],
            capture_output=True, text=True,
        )
        assert r.returncode == 0, r.stderr
        assert "class i(" in r.stdout
