"""The PARDIS Object Request Broker.

"An entity responsible for managing requests between the client and the
server.  In order to properly process requests the ORB may need to
communicate with the run-time system underlying the parallel server or
client."  (paper §2.2)

One :class:`ORB` exists per :class:`~repro.runtime.program.World`.  Every
computing thread of every launched program gets a :class:`PardisContext`:
its window onto the ORB (endpoint, POA handle, pending-request table,
compute-time charging).  The ORB also owns the object/implementation
repositories and the per-host activation agents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..cdr import TC_DOUBLE, TypeCode
from ..runtime.program import PORT_ORB, ParallelProgram, World
from ..simkernel import SimKernel
from .distribution import Distribution
from .dsequence import DistributedSequence
from .errors import ActivationError, ObjectNotFound
from .pipeline.interceptors import InterceptorChain, RequestInterceptor
from .repository import (
    ActivationRecord,
    ImplementationRepository,
    ObjectRef,
    ObjectRepository,
)


@dataclass
class OrbConfig:
    """Tunable ORB behaviour (several knobs exist purely so the ablation
    benchmarks can isolate one mechanism at a time)."""

    #: Maximum unreplied requests per binding before a new invocation
    #: blocks.  The paper's transport admits one outstanding request per
    #: connection, which is what produces the Fig-5 pipeline congestion.
    max_outstanding: int = 1
    #: Verify that all SPMD client threads issue the same invocation (the
    #: "request accepted by all computing threads" discipline).
    collective_checks: bool = True
    #: Virtual cost of one repository lookup.
    repo_lookup_cost: float = 200e-6
    #: Virtual cost charged by Future.resolved() polling.
    poll_cost: float = 1e-6
    #: Virtual cost of a bypassed (same-program) invocation (§4.1:
    #: "invocation on a local object becomes a direct call").
    local_call_overhead: float = 2e-6
    #: Virtual cost of establishing one binding.
    bind_cost: float = 500e-6
    #: Activation: polling interval and give-up horizon (virtual seconds).
    activation_poll_interval: float = 2e-3
    activation_timeout: float = 60.0
    #: How long a bind keeps retrying the repository for an object that is
    #: not yet registered and has no activation record (covers servers
    #: that are still starting up at bind time).
    resolve_grace: float = 1.0
    #: When True, data is handed to a communication thread and the compute
    #: thread does not pay serialization time (the paper's §6 future-work
    #: experiment; exercised by the commthreads ablation).
    communication_threads: bool = False
    #: Give up on a reply after this many virtual seconds (None = wait
    #: forever).  A timed-out request fails with a SystemException on all
    #: of its futures.
    request_timeout: Optional[float] = None
    #: Portable interceptors registered at ORB construction (instances of
    #: repro.core.pipeline.RequestInterceptor); more can be added later
    #: via ORB.register_interceptor.
    interceptors: tuple = ()


class ActivationAgent:
    """Per-host agent that starts servers on demand (paper §2.2:
    "establishing connection with an object can involve starting up the
    server which provides its implementation")."""

    def __init__(self, orb: "ORB", host: str, activating: bool = True) -> None:
        self.orb = orb
        self.host = host
        self.activating = activating
        self._launched: dict[str, Any] = {}

    def activate(self, record: ActivationRecord, namespace: str) -> None:
        if not self.activating:
            raise ActivationError(
                f"agent on host {self.host!r} is in non-activating mode"
            )
        prior = self._launched.get(record.object_name)
        if prior is not None:
            from ..simkernel import ThreadState

            still_running = any(
                t.state not in (ThreadState.DONE, ThreadState.FAILED)
                for t in prior.threads
            )
            if still_running:
                return  # activation already in flight / server alive
            # Non-persistent server exited: activate it again (§2.2).
        self._launched[record.object_name] = self.orb.launch_program(
            record.server_main,
            host=record.host,
            nprocs=record.nprocs,
            daemon=True,
            name=record.program_name or f"server:{record.object_name}",
            namespace=namespace,
            rts_factory=record.rts_factory,
            node_offset=record.node_offset,
            args=record.args,
        )


class ORB:
    """Request broker + naming + activation for one simulated world."""

    def __init__(self, world: World, config: Optional[OrbConfig] = None) -> None:
        self.world = world
        self.config = config or OrbConfig()
        self.repositories: dict[str, ObjectRepository] = {}
        self.impl_repository = ImplementationRepository()
        self.agents: dict[str, ActivationAgent] = {}
        world.services["orb"] = self
        #: counters for tests/benchmarks
        self.requests_sent = 0
        self.local_bypasses = 0
        #: orphaned argument fragments drained by POA dead-lettering
        self.dead_fragments = 0
        #: orphaned result fragments drained by a failed client request
        self.dead_result_fragments = 0
        #: portable-interceptor chain shared by every program's request
        #: path in this world; empty by default (zero hot-path cost)
        self.interceptors = InterceptorChain(self.config.interceptors)
        #: request-lifecycle observer (repro.tools.observe.attach_observer);
        #: kept as a plain attribute for introspection — the observer's
        #: span feed now arrives through the interceptor chain
        self.observer = None
        #: (namespace, name) -> repro.services.ReplicaGroup, created lazily
        #: on the first policy-driven bind against that name
        self._replica_groups: dict = {}
        #: live repro.services.AdmissionController instances (one per POA
        #: that enabled admission control) — registered here so metrics
        #: collectors can find them
        self.admission_controllers: list = []
        #: the world-wide LoadReportInterceptor, installed on first use
        self._load_reporter = None

    # -- replica groups ----------------------------------------------------------

    def replica_group(self, name: str, namespace: str = "default"):
        """Lazily create (and cache) the :class:`repro.services.ReplicaGroup`
        tracking the replicas of ``name``; installs the world's load-report
        interceptor the first time any group is created."""
        from ..services.replicas import LoadReportInterceptor, ReplicaGroup

        key = (namespace, name)
        group = self._replica_groups.get(key)
        if group is None:
            if self._load_reporter is None:
                self._load_reporter = self.register_interceptor(
                    LoadReportInterceptor(self)
                )
            group = self._replica_groups[key] = ReplicaGroup(self, name,
                                                             namespace)
        return group

    # -- portable interceptors ---------------------------------------------------

    def register_interceptor(self, icept: RequestInterceptor
                             ) -> RequestInterceptor:
        """Add a portable interceptor to the world's chain (points run in
        registration order); returns it for later unregistration."""
        return self.interceptors.add(icept)

    def unregister_interceptor(self, icept: RequestInterceptor) -> None:
        self.interceptors.remove(icept)

    # -- naming ------------------------------------------------------------------

    def repository(self, namespace: str = "default") -> ObjectRepository:
        repo = self.repositories.get(namespace)
        if repo is None:
            repo = self.repositories[namespace] = ObjectRepository(namespace)
        return repo

    def agent(self, host: str, activating: bool = True) -> ActivationAgent:
        ag = self.agents.get(host)
        if ag is None:
            ag = self.agents[host] = ActivationAgent(self, host, activating)
        return ag

    def set_activating(self, host: str, activating: bool) -> None:
        """Configure a host's agent mode (activating / non-activating)."""
        self.agent(host).activating = activating

    def resolve(self, name: str, ctx: "PardisContext") -> ObjectRef:
        """Find (or activate) the object ``name`` in the context's
        namespace; charges the lookup cost to the calling thread."""
        ctx.rts.compute(self.config.repo_lookup_cost)
        repo = self.repository(ctx.namespace)
        if repo.contains(name):
            return repo.lookup(name)
        record = self.impl_repository.lookup(name)
        if record is None:
            # No activation record: give a still-starting server a grace
            # window to register before giving up.
            deadline = ctx.now() + self.config.resolve_grace
            while ctx.now() < deadline:
                ctx.rts.compute(self.config.activation_poll_interval)
                if repo.contains(name):
                    return repo.lookup(name)
            raise ObjectNotFound(
                f"object {name!r} is neither registered nor activatable"
            )
        agent = self.agents.get(record.host)
        if agent is None:
            raise ActivationError(
                f"no activation agent on host {record.host!r} for {name!r}"
            )
        agent.activate(record, ctx.namespace)
        deadline = ctx.now() + self.config.activation_timeout
        while not repo.contains(name):
            if ctx.now() > deadline:
                raise ActivationError(
                    f"activation of {name!r} timed out after "
                    f"{self.config.activation_timeout}s"
                )
            ctx.rts.compute(self.config.activation_poll_interval)
        return repo.lookup(name)

    # -- program launching -----------------------------------------------------------

    def launch_program(self, main: Callable, *, host: str, nprocs: int,
                       daemon: bool = False, name: Optional[str] = None,
                       namespace: str = "default",
                       rts_factory: Optional[Callable] = None,
                       node_offset: int = 0, args: tuple = (),
                       start_time: float = 0.0) -> ParallelProgram:
        """Launch a parallel program whose threads receive a
        :class:`PardisContext` (``main(ctx, *args)``)."""

        def _wrapped(rts, *a):
            ctx = PardisContext(self, rts, namespace)
            SimKernel.current().locals["pardis"] = ctx
            return main(ctx, *a)

        return self.world.launch(
            _wrapped, host=host, nprocs=nprocs, daemon=daemon, name=name,
            rts_factory=rts_factory, node_offset=node_offset, args=args,
            start_time=start_time,
        )

    # -- programs' shared ORB state ---------------------------------------------------

    @staticmethod
    def program_services(program: ParallelProgram) -> dict:
        svc = program.onesided_store.setdefault(("_pardis", "services"), {})
        return svc


class PardisContext:
    """Per-computing-thread view of PARDIS (passed to every ``main``)."""

    def __init__(self, orb: ORB, rts, namespace: str = "default") -> None:
        from .poa import POA  # late import: poa imports this module

        self.orb = orb
        self.rts = rts
        self.namespace = namespace
        self.program = rts.program
        self.rank = rts.rank
        self.nprocs = rts.nprocs
        self.endpoint = orb.world.transport.endpoint(
            self.program.address(self.rank, PORT_ORB)
        )
        #: req_id -> PendingRequest (client role)
        self.pending: dict = {}
        self._binding_counter = 0
        self._bindings: dict = {}
        self.poa = POA(self)

    # -- identity / time -----------------------------------------------------------

    def now(self) -> float:
        return self.rts.now()

    def compute(self, seconds: float) -> None:
        self.rts.compute(seconds)

    def charge_flops(self, flops: float) -> None:
        self.rts.charge_flops(flops)

    def barrier(self) -> None:
        self.rts.barrier()

    # -- data ------------------------------------------------------------------------

    def dseq(self, n_or_data, element: TypeCode = TC_DOUBLE,
             kind: str = "BLOCK", dist: Optional[Distribution] = None
             ) -> DistributedSequence:
        """Construct a distributed sequence bound to this thread.

        ``n_or_data`` is either a global length (zero-initialized) or
        global data (each thread keeps its local part).
        """
        if isinstance(n_or_data, int):
            if dist is None:
                dist = Distribution.of_kind(kind, n_or_data, self.nprocs)
            return DistributedSequence(element, dist, self.rank)
        data = n_or_data
        if dist is None:
            dist = Distribution.of_kind(kind, len(data), self.nprocs)
        return DistributedSequence.from_global(data, dist, self.rank,
                                               element)

    def __repr__(self) -> str:
        return (f"<PardisContext {self.program.name}[{self.rank}] "
                f"ns={self.namespace!r}>")
