"""Replica groups: health-checked, load-balanced replica selection.

Several servers may activate servants under one object name
(``poa.activate(..., replica=True)``); the Object Repository then holds
them as an ordered replica list.  A :class:`ReplicaGroup` sits on top of
one such name and owns everything the repository deliberately does not:

* **selection** — a :class:`SelectionPolicy` picks one replica per bind
  (:class:`RoundRobin`, :class:`LeastLoaded` driven by the load reports
  servers piggyback on reply service contexts, :class:`LocalityAware`);
* **health** — replicas are ALIVE, SUSPECT (a request failed but the
  server still has running threads) or DEAD (every thread exited or
  failed); probing happens on every selection and via
  :meth:`ReplicaGroup.probe_all`;
* **failover** — :func:`failover_invoke` retries a failed blocking
  invocation against a surviving replica (collective clients re-select
  on rank 0 and broadcast, so all threads rebind identically), and a
  dead non-persistent replica is re-activated through the existing
  :class:`~repro.core.orb.ActivationAgent`.

Failover applies only to *blocking* invocations that fail with a
``SystemException``: user exceptions and
:class:`~repro.core.errors.TransientException` (admission shed) mean the
server is alive and answered deliberately, and non-blocking invocations
have already handed their futures out by the time a failure is known.
"""

from __future__ import annotations

from ..core.errors import (
    ActivationError,
    SystemException,
    TransientException,
    UserException,
)
from ..core.invocation import invoke
from ..core.pipeline.interceptors import ClientRequestInfo, RequestInterceptor
from ..core.repository import ObjectRef
from ..core.request import LOAD_CONTEXT
from ..runtime import collectives as coll
from ..simkernel import ThreadState

__all__ = [
    "ALIVE",
    "DEAD",
    "SUSPECT",
    "LeastLoaded",
    "LoadReportInterceptor",
    "LocalityAware",
    "ReplicaGroup",
    "RoundRobin",
    "SelectionPolicy",
    "failover_invoke",
    "make_policy",
]

#: replica health states
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


# ---------------------------------------------------------------------------
# Selection policies
# ---------------------------------------------------------------------------


class SelectionPolicy:
    """Picks one replica from the live candidate set.  Stateless with
    respect to the group: rotation counters live on the group so that
    every binding against a name shares one rotation."""

    name = "policy"

    def choose(self, group: "ReplicaGroup", ctx,
               candidates: list[ObjectRef]) -> ObjectRef:
        raise NotImplementedError


class RoundRobin(SelectionPolicy):
    """Rotate through the replicas in registration order."""

    name = "round_robin"

    def choose(self, group, ctx, candidates):
        ref = candidates[group._rotation % len(candidates)]
        group._rotation += 1
        return ref


class LeastLoaded(SelectionPolicy):
    """Prefer the replica with the lowest reported load (queue depth over
    capacity, piggybacked on replies by admission-controlled servers);
    unreported replicas count as idle, ties rotate round-robin."""

    name = "least_loaded"

    def choose(self, group, ctx, candidates):
        loads = group.known_loads()
        best = min(loads.get(r.program_id, 0.0) for r in candidates)
        tied = [r for r in candidates
                if loads.get(r.program_id, 0.0) <= best]
        ref = tied[group._rotation % len(tied)]
        group._rotation += 1
        return ref


class LocalityAware(SelectionPolicy):
    """Prefer replicas on the calling program's own host (cheapest
    network path), rotating among them; fall back to the full set."""

    name = "locality"

    def choose(self, group, ctx, candidates):
        local = [r for r in candidates if r.host == ctx.program.host]
        pool = local or candidates
        ref = pool[group._rotation % len(pool)]
        group._rotation += 1
        return ref


_POLICIES = {p.name: p for p in (RoundRobin, LeastLoaded, LocalityAware)}


def make_policy(spec) -> SelectionPolicy:
    """Coerce a policy name or instance into a :class:`SelectionPolicy`."""
    if isinstance(spec, SelectionPolicy):
        return spec
    try:
        return _POLICIES[spec]()
    except KeyError:
        raise ValueError(
            f"unknown selection policy {spec!r}; "
            f"known: {sorted(_POLICIES)}"
        ) from None


# ---------------------------------------------------------------------------
# The group
# ---------------------------------------------------------------------------


class ReplicaGroup:
    """Health and selection state for the replicas of one object name.

    Created lazily by :meth:`repro.core.orb.ORB.replica_group`; one
    instance per (namespace, name) per world, shared by every client
    binding that uses a selection policy.
    """

    #: give up failover after this many rebind attempts per invocation
    max_failover_attempts = 4

    def __init__(self, orb, name: str, namespace: str = "default") -> None:
        self.orb = orb
        self.name = name
        self.namespace = namespace
        #: program_id -> ALIVE | SUSPECT | DEAD
        self.health: dict[int, str] = {}
        self._rotation = 0
        #: counters (surfaced through the metrics registry)
        self.failovers = 0
        self.suspects = 0
        self.deaths = 0
        self.reactivations = 0
        self.selections = 0

    # -- load reports -------------------------------------------------------

    def known_loads(self) -> dict[int, float]:
        """program_id -> most recent reported load fraction (empty until
        admission-controlled replicas have replied at least once)."""
        reporter = self.orb._load_reporter
        return reporter.loads if reporter is not None else {}

    # -- health -------------------------------------------------------------

    def probe(self, ref: ObjectRef) -> bool:
        """Liveness check: the replica's program must still have at least
        one thread that has neither finished nor crashed."""
        for prog in self.orb.world.programs:
            if prog.program_id == ref.program_id:
                return any(
                    t.state not in (ThreadState.DONE, ThreadState.FAILED)
                    for t in prog.threads
                )
        return False

    def probe_all(self, ctx) -> dict[int, str]:
        """Sweep every registered replica, marking dead ones; returns the
        health map.  Charges one lookup cost."""
        ctx.rts.compute(self.orb.config.repo_lookup_cost)
        repo = self.orb.repository(self.namespace)
        for ref in repo.lookup_all(self.name):
            if not self.probe(ref):
                self.mark_dead(ref, ctx)
            elif self.health.get(ref.program_id) == DEAD:
                self.health[ref.program_id] = ALIVE
        return dict(self.health)

    def mark_suspect(self, ref: ObjectRef) -> None:
        if self.health.get(ref.program_id) != SUSPECT:
            self.health[ref.program_id] = SUSPECT
            self.suspects += 1

    def mark_dead(self, ref: ObjectRef, ctx) -> None:
        """Unregister a dead replica and, when it is a non-persistent
        server with an activation record, re-activate it (best effort —
        a non-activating agent leaves the group one replica smaller)."""
        if self.health.get(ref.program_id) == DEAD:
            return
        self.health[ref.program_id] = DEAD
        self.deaths += 1
        repo = self.orb.repository(self.namespace)
        repo.unregister(self.name, program_id=ref.program_id)
        record = self.orb.impl_repository.lookup(self.name)
        agent = self.orb.agents.get(record.host) if record else None
        if agent is not None:
            try:
                agent.activate(record, self.namespace)
                self.reactivations += 1
            except ActivationError:
                pass

    def report_failure(self, ref: ObjectRef, ctx) -> None:
        """An invocation against ``ref`` failed with a system exception:
        probe it, and mark it dead or suspect accordingly."""
        if self.probe(ref):
            self.mark_suspect(ref)
        else:
            self.mark_dead(ref, ctx)

    def report_success(self, ref: ObjectRef) -> None:
        if self.health.get(ref.program_id) in (SUSPECT, DEAD):
            self.health[ref.program_id] = ALIVE

    # -- selection ----------------------------------------------------------

    def select(self, ctx, policy: SelectionPolicy) -> ObjectRef:
        """Pick a live replica of the group's name.

        Probes every candidate first (dead ones are unregistered and
        re-activation is attempted); with no survivors this falls back to
        :meth:`ORB.resolve`, which waits out the resolve grace window /
        activation of a restarting server.  ALIVE replicas are preferred
        over SUSPECT ones.
        """
        self.selections += 1
        ctx.rts.compute(self.orb.config.repo_lookup_cost)
        repo = self.orb.repository(self.namespace)
        alive = []
        for ref in repo.lookup_all(self.name):
            if self.probe(ref):
                alive.append(ref)
            else:
                self.mark_dead(ref, ctx)
        if not alive:
            ref = self.orb.resolve(self.name, ctx)
            self.health[ref.program_id] = ALIVE
            return ref
        preferred = [r for r in alive
                     if self.health.get(r.program_id) != SUSPECT]
        return policy.choose(self, ctx, preferred or alive)


# ---------------------------------------------------------------------------
# Failover retry (blocking invocations on policy-bound proxies)
# ---------------------------------------------------------------------------


def failover_invoke(binding, op, in_values, distributions):
    """Issue a blocking invocation with transparent failover.

    Retries a ``SystemException`` failure against a surviving replica
    (rebinding the proxy in place) up to
    :attr:`ReplicaGroup.max_failover_attempts` times.  User exceptions
    and :class:`TransientException` (the server answered deliberately)
    propagate immediately.
    """
    group = binding.group
    ctx = binding.ctx
    chain = ctx.orb.interceptors
    for attempt in range(group.max_failover_attempts):
        try:
            result = invoke(binding, op, in_values, distributions,
                            blocking=True)
        except (UserException, TransientException):
            raise
        except SystemException:
            if attempt + 1 >= group.max_failover_attempts:
                raise
            group.report_failure(binding.ref, ctx)
            if binding.collective:
                new_ref = (group.select(ctx, binding.policy)
                           if ctx.rank == 0 else None)
                new_ref = coll.bcast(ctx.rts, new_ref, root=0)
            else:
                new_ref = group.select(ctx, binding.policy)
            if binding.client_index == 0:
                group.failovers += 1
            if chain.wants_spans:
                now = ctx.now()
                chain.span("failover", op.name,
                           (binding.uid, "failover", attempt),
                           ctx.program.name, binding.client_index, now, now)
            # Re-selecting the replica that just failed is allowed (sole
            # survivor, or SUSPECT but alive): the retry may still land.
            binding.rebind(new_ref)
        else:
            group.report_success(binding.ref)
            return result
    raise SystemException(  # pragma: no cover - loop always returns/raises
        f"{op.name}: failover attempts exhausted")


# ---------------------------------------------------------------------------
# Load reports (the client half of least-loaded selection)
# ---------------------------------------------------------------------------


class LoadReportInterceptor(RequestInterceptor):
    """Harvests the load samples admission-controlled servers piggyback
    on reply service contexts (successful *and* error replies), keyed by
    server program id.  Installed once per world, lazily, by
    :meth:`ORB.replica_group`."""

    name = "load-report"

    def __init__(self, orb) -> None:
        self.orb = orb
        #: server program_id -> last reported queue_depth / capacity
        self.loads: dict[int, float] = {}

    def receive_reply(self, info: ClientRequestInfo) -> None:
        self._record(info)

    def receive_exception(self, info: ClientRequestInfo) -> None:
        self._record(info)

    def _record(self, info: ClientRequestInfo) -> None:
        reply = info.reply
        if reply is None:
            return
        report = reply.service_contexts.get(LOAD_CONTEXT)
        if report is None:
            return
        capacity = max(report.get("capacity", 1), 1)
        self.loads[report["program_id"]] = (
            report.get("queue_depth", 0) / capacity
        )
