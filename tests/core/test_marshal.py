"""Unit tests for marshal helpers (scalar streams, container adaptation,
out-distribution requests)."""

import numpy as np
import pytest

from repro.cdr import DSequenceTC, StringTC, TC_DOUBLE, TC_LONG
from repro.core.distribution import Distribution
from repro.core.dsequence import DistributedSequence
from repro.core.errors import BadOperation
from repro.core.interfacedef import OpDef, ParamDef
from repro.core.marshal import (
    as_distributed,
    decode_scalars,
    encode_out_request,
    encode_scalars,
    resolve_out_dist,
    scalar_in_specs,
    scalar_result_specs,
)

DS = DSequenceTC(TC_DOUBLE)

OP = OpDef("f", TC_LONG, [
    ParamDef("in", "a", TC_DOUBLE),
    ParamDef("in", "v", DS),
    ParamDef("inout", "b", TC_LONG),
    ParamDef("out", "s", StringTC()),
    ParamDef("out", "w", DS),
])


class TestParamPartitions:
    def test_scalar_in_specs_include_inout(self):
        assert [n for n, _ in scalar_in_specs(OP)] == ["a", "b"]

    def test_scalar_result_specs_lead_with_return(self):
        assert [n for n, _ in scalar_result_specs(OP)] == \
            ["__return", "b", "s"]

    def test_void_no_scalar_outs(self):
        op = OpDef("g", None, [ParamDef("out", "w", DS)])
        assert scalar_result_specs(op) == []

    def test_dseq_partitions(self):
        assert [p.name for p in OP.dseq_in_params] == ["v"]
        assert [p.name for p in OP.dseq_out_params] == ["w"]
        assert OP.has_distributed_args


class TestScalarStreams:
    def test_roundtrip(self):
        specs = [("a", TC_DOUBLE), ("b", TC_LONG), ("s", StringTC())]
        data = encode_scalars(specs, {"a": 1.5, "b": -2, "s": "hey"})
        assert decode_scalars(specs, data) == {"a": 1.5, "b": -2, "s": "hey"}

    def test_empty(self):
        assert decode_scalars([], encode_scalars([], {})) == {}


class TestAsDistributed:
    def test_accepts_matching_dsequence(self):
        ds = DistributedSequence.create(10, TC_DOUBLE, rank=0, nprocs=2)
        p = ParamDef("in", "v", DS)
        assert as_distributed(p, ds, nthreads=2, rank=0) is ds

    def test_rejects_thread_count_mismatch(self):
        ds = DistributedSequence.create(10, TC_DOUBLE, rank=0, nprocs=2)
        p = ParamDef("in", "v", DS)
        with pytest.raises(ValueError, match="threads"):
            as_distributed(p, ds, nthreads=3, rank=0)

    def test_plain_array_for_single_invocation(self):
        p = ParamDef("in", "v", DS)
        out = as_distributed(p, np.arange(4.0), nthreads=1, rank=0)
        assert isinstance(out, DistributedSequence)
        assert out.dist.kind == "CONCENTRATED"

    def test_plain_array_rejected_for_spmd(self):
        p = ParamDef("in", "v", DS)
        with pytest.raises(TypeError, match="DistributedSequence"):
            as_distributed(p, np.arange(4.0), nthreads=2, rank=0)


class TestOutRequests:
    def test_none(self):
        assert encode_out_request(None) is None

    def test_kind_string(self):
        assert encode_out_request("CYCLIC") == ("KIND", "CYCLIC")

    def test_template_list(self):
        assert encode_out_request([3, 1]) == ("TEMPLATE", (3.0, 1.0))

    def test_exact_distribution(self):
        d = Distribution.block(8, 2)
        tag, descr = encode_out_request(d)
        assert tag == "EXACT"

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            encode_out_request(object())


class TestResolveOutDist:
    def test_default_kind(self):
        d = resolve_out_dist(None, "BLOCK", 10, 2)
        assert d.kind == "BLOCK" and d.n == 10 and d.p == 2

    def test_kind_request(self):
        d = resolve_out_dist(("KIND", "CYCLIC"), "BLOCK", 9, 3)
        assert d.kind == "CYCLIC"

    def test_template_request(self):
        d = resolve_out_dist(("TEMPLATE", (3.0, 1.0)), "BLOCK", 40, 2)
        assert d.counts == [30, 10]

    def test_template_wrong_arity(self):
        with pytest.raises(BadOperation, match="weights"):
            resolve_out_dist(("TEMPLATE", (1.0,)), "BLOCK", 10, 2)

    def test_exact_mismatch_rejected(self):
        from repro.core.request import describe

        d = Distribution.block(8, 2)
        with pytest.raises(BadOperation, match="does not match"):
            resolve_out_dist(("EXACT", describe(d)), "BLOCK", 9, 2)

    def test_unknown_tag(self):
        with pytest.raises(BadOperation):
            resolve_out_dist(("WAT", 1), "BLOCK", 4, 2)
