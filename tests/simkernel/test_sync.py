"""Tests for virtual-time synchronization primitives."""

import pytest

from repro.simkernel import (
    SimBarrier,
    SimCondition,
    SimError,
    SimKernel,
    SimLock,
    SimSemaphore,
    SimThreadFailed,
)


def test_lock_mutual_exclusion():
    k = SimKernel()
    lock = SimLock(k)
    log = []

    def body(name):
        with lock:
            log.append((name, "in"))
            k.advance(1.0)
            log.append((name, "out"))

    k.spawn(body, "a")
    k.spawn(body, "b")
    k.run()
    assert log == [("a", "in"), ("a", "out"), ("b", "in"), ("b", "out")]


def test_lock_release_by_non_owner_raises():
    k = SimKernel()
    lock = SimLock(k)
    k.spawn(lock.release)
    with pytest.raises(SimThreadFailed) as ei:
        k.run()
    assert isinstance(ei.value.original, SimError)


def test_lock_reacquire_raises():
    k = SimKernel()
    lock = SimLock(k)

    def body():
        lock.acquire()
        lock.acquire()

    k.spawn(body)
    with pytest.raises(SimThreadFailed):
        k.run()


def test_lock_fifo_order():
    k = SimKernel()
    lock = SimLock(k)
    order = []

    def holder():
        with lock:
            k.advance(10.0)

    def waiter(name, delay):
        k.advance(delay)
        with lock:
            order.append(name)

    k.spawn(holder)
    k.spawn(waiter, "first", 1.0)
    k.spawn(waiter, "second", 2.0)
    k.run()
    assert order == ["first", "second"]


def test_condition_wait_notify():
    k = SimKernel()
    lock = SimLock(k)
    cond = SimCondition(lock)
    state = {"ready": False, "seen": None}

    def consumer():
        with lock:
            while not state["ready"]:
                cond.wait()
            state["seen"] = k.now()

    def producer():
        k.advance(3.0)
        with lock:
            state["ready"] = True
            cond.notify()

    k.spawn(consumer)
    k.spawn(producer)
    k.run()
    assert state["seen"] == 3.0


def test_condition_wait_without_lock_raises():
    k = SimKernel()
    cond = SimCondition(SimLock(k))
    k.spawn(cond.wait)
    with pytest.raises(SimThreadFailed):
        k.run()


def test_condition_notify_all():
    k = SimKernel()
    lock = SimLock(k)
    cond = SimCondition(lock)
    woken = []

    def waiter(name):
        with lock:
            cond.wait()
            woken.append(name)

    def notifier():
        k.advance(1.0)
        with lock:
            cond.notify_all()

    for n in ["a", "b", "c"]:
        k.spawn(waiter, n)
    k.spawn(notifier)
    k.run()
    assert sorted(woken) == ["a", "b", "c"]


def test_barrier_releases_at_last_arrival():
    k = SimKernel()
    bar = SimBarrier(k, 3)
    times = {}

    def body(name, delay):
        k.advance(delay)
        bar.wait()
        times[name] = k.now()

    k.spawn(body, "a", 1.0)
    k.spawn(body, "b", 5.0)
    k.spawn(body, "c", 3.0)
    k.run()
    assert times == {"a": 5.0, "b": 5.0, "c": 5.0}


def test_barrier_reusable_generations():
    k = SimKernel()
    bar = SimBarrier(k, 2)
    gens = []

    def body(delay):
        for _ in range(3):
            k.advance(delay)
            gens.append(bar.wait())

    k.spawn(body, 1.0)
    k.spawn(body, 2.0)
    k.run()
    assert sorted(gens) == [0, 0, 1, 1, 2, 2]


def test_barrier_single_party_is_noop():
    k = SimKernel()
    bar = SimBarrier(k, 1)

    def body():
        bar.wait()
        return k.now()

    t = k.spawn(body)
    k.run()
    assert t.result == 0.0


def test_barrier_invalid_parties():
    k = SimKernel()
    with pytest.raises(ValueError):
        SimBarrier(k, 0)


def test_semaphore_bounds_concurrency():
    k = SimKernel()
    sem = SimSemaphore(k, 2)
    active = {"n": 0, "max": 0}

    def body():
        sem.acquire()
        active["n"] += 1
        active["max"] = max(active["max"], active["n"])
        k.advance(1.0)
        active["n"] -= 1
        sem.release()

    for _ in range(6):
        k.spawn(body)
    k.run()
    assert active["max"] == 2


def test_semaphore_initial_value_zero():
    k = SimKernel()
    sem = SimSemaphore(k, 0)
    log = []

    def waiter():
        sem.acquire()
        log.append(k.now())

    def releaser():
        k.advance(4.0)
        sem.release()

    k.spawn(waiter)
    k.spawn(releaser)
    k.run()
    assert log == [4.0]


def test_semaphore_negative_value_rejected():
    k = SimKernel()
    with pytest.raises(ValueError):
        SimSemaphore(k, -1)
