"""Edge cases through the full invocation path: empty distributed
arguments, cyclic wire layouts, single-element sequences, and experiment
determinism."""

import numpy as np
import pytest

from repro.core import Simulation
from repro.idl import compile_idl

IDL = """
    typedef dsequence<double, 100000> vec;
    typedef dsequence<double, 100000, CYCLIC, CYCLIC> cycvec;
    interface edge {
        double total(in vec v);
        void roundtrip(in cycvec v, out cycvec w);
        long length(in vec v);
    };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="edge_stubs")


def run_pair(mod, client_main, server_np=3, client_np=2):
    sim = Simulation()

    def server_main(ctx):
        from repro.core import DistributedSequence
        from repro.runtime import collectives as coll

        class Impl(mod.edge_skel):
            def total(self, v):
                local = float(np.sum(v.owned_data))
                return coll.allreduce(ctx.rts, local, lambda a, b: a + b)

            def roundtrip(self, v):
                return DistributedSequence(
                    v.element, v.dist, v.rank,
                    np.asarray(v.owned_data) + 1.0)

            def length(self, v):
                return len(v)

        ctx.poa.activate(Impl(), "edge", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=server_np)
    out = {}

    def wrapped(ctx):
        out[ctx.rank] = client_main(ctx)

    sim.client(wrapped, host="HOST_1", nprocs=client_np)
    sim.run()
    return out


class TestEmptyDistributedArguments:
    def test_zero_length_dsequence(self, mod):
        def main(ctx):
            v = ctx.dseq(0)
            e = mod.edge._spmd_bind("edge")
            return (e.total(v), e.length(v))

        out = run_pair(mod, main)
        assert out == {0: (0.0, 0), 1: (0.0, 0)}

    def test_single_element(self, mod):
        def main(ctx):
            v = ctx.dseq(np.array([42.0]))
            e = mod.edge._spmd_bind("edge")
            return e.total(v)

        out = run_pair(mod, main)
        assert out == {0: 42.0, 1: 42.0}

    def test_fewer_elements_than_threads(self, mod):
        """3 elements spread over more server threads than elements."""

        def main(ctx):
            v = ctx.dseq(np.array([1.0, 2.0, 3.0]))
            e = mod.edge._spmd_bind("edge")
            return e.total(v)

        out = run_pair(mod, main, server_np=5, client_np=2)
        assert out[0] == 6.0


class TestCyclicOverTheWire:
    def test_cyclic_both_sides(self, mod):
        n = 23

        def main(ctx):
            v = ctx.dseq(np.arange(float(n)), kind="CYCLIC")
            e = mod.edge._spmd_bind("edge")
            w = e.roundtrip(v)
            assert w.dist.kind == "CYCLIC"
            expected = [i + 1.0 for i in w.dist.global_indices(ctx.rank)]
            np.testing.assert_array_equal(w.owned_data, expected)
            return float(np.sum(w.owned_data))

        out = run_pair(mod, main)
        total = sum(out.values())
        assert total == pytest.approx(sum(range(23)) + 23)

    def test_cyclic_uneven_thread_counts(self, mod):
        def main(ctx):
            v = ctx.dseq(np.ones(31), kind="CYCLIC")
            e = mod.edge._spmd_bind("edge")
            return e.total(v)

        out = run_pair(mod, main, server_np=4, client_np=3)
        assert all(v == 31.0 for v in out.values())


class TestExperimentDeterminism:
    def test_fig2_deterministic(self):
        from repro.experiments import run_fig2

        a = run_fig2(sizes=(100,))
        b = run_fig2(sizes=(100,))
        assert a == b

    def test_fig5_deterministic(self):
        from repro.experiments import run_fig5

        a = run_fig5(procs=(2,), steps=8, n=16)
        b = run_fig5(procs=(2,), steps=8, n=16)
        assert a == b
