"""Unified metrics registry with Prometheus-text and JSON exporters.

PR 1-3 grew observability counters in four unrelated shapes —
``RequestObserver`` dicts, ``ComputeMeter.busy``, ``ZeroCopyStats``
slots, ``Transport.packets_sent`` attributes — each with its own ad-hoc
report string.  A :class:`MetricsRegistry` gives them one publication
surface: labeled counters, gauges, and bounded log-bucketed histograms,
exported as a plain-dict snapshot, JSON, or Prometheus text exposition.

Two feeding models coexist:

* **push** — hot-path code observes directly into an instrument
  (the observer's per-phase latency histograms);
* **pull** — a *collector* callback registered with
  :meth:`MetricsRegistry.register_collector` copies counters out of
  their native home at snapshot time (the ORB/transport/pool counters),
  so the hot paths keep their cheap ``+= 1`` attributes and pay nothing
  for the registry.

:func:`attach_metrics` wires a world's standard sources — ORB request
and dead-letter counters, transport packet/byte totals, the buffer
pool's :class:`~repro.cdr.buffers.ZeroCopyStats`, a
:class:`~repro.tools.metrics.ComputeMeter`, the
:class:`~repro.tools.observe.RequestObserver` (which also starts pushing
latency histograms), and the
:class:`~repro.tools.tracing.TracingInterceptor` counters — into one
registry published as ``world.services["metrics"]``.

The exporters round-trip: ``parse_prometheus_text(reg.prometheus_text())
== flatten_snapshot(reg.snapshot())`` and
``json.loads(reg.to_json()) == reg.snapshot()`` (asserted by the test
suite).
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Callable, Iterable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "attach_metrics",
    "flatten_snapshot",
    "parse_prometheus_text",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric/label name {name!r}")
    return name


def _fmt_value(v) -> str:
    """Exposition-format number; ``repr`` round-trips Python floats."""
    if isinstance(v, bool):
        return str(int(v))
    if isinstance(v, int):
        return str(v)
    return repr(float(v))


def _parse_value(text: str):
    try:
        return int(text)
    except ValueError:
        return float(text)


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _unescape(value: str) -> str:
    return (value.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(str(v))}"' for k, v in labels.items())
    return "{" + inner + "}"


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class Counter:
    """Monotonic count.  ``inc`` is the push-model entry point; ``set``
    exists for pull-model collectors that copy an externally maintained
    total (e.g. ``orb.requests_sent``) into the registry."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n=1) -> None:
        self.value += n

    def set(self, v) -> None:
        self.value = v


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0

    def set(self, v) -> None:
        self.value = v

    def inc(self, n=1) -> None:
        self.value += n


class Histogram:
    """Bounded log-bucketed histogram.

    Bucket upper bounds are ``start * factor**i`` for ``i`` in
    ``range(nbuckets)`` plus a ``+Inf`` overflow bucket, so memory is
    fixed no matter how many observations arrive — the registry never
    keeps raw samples.
    """

    __slots__ = ("bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, start: float = 1e-6, factor: float = 4.0,
                 nbuckets: int = 12) -> None:
        if start <= 0 or factor <= 1 or nbuckets < 1:
            raise ValueError("need start > 0, factor > 1, nbuckets >= 1")
        self.bounds = [start * factor ** i for i in range(nbuckets)]
        self.counts = [0] * (nbuckets + 1)   # + overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def buckets(self) -> list:
        """``[[upper_bound, cumulative_count], ...]`` ending at +Inf."""
        out, cum = [], 0
        for bound, n in zip(self.bounds, self.counts):
            cum += n
            out.append([bound, cum])
        out.append(["+Inf", self.count])
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All children of one metric name, one per label-value combination."""

    __slots__ = ("name", "kind", "help", "labelnames", "_children", "_kwargs")

    def __init__(self, name: str, kind: str, help: str = "",
                 labelnames: Iterable[str] = (), **kwargs) -> None:
        self.name = _check_name(name)
        self.kind = kind
        self.help = help
        self.labelnames = tuple(_check_name(n) for n in labelnames)
        self._children: dict[tuple, object] = {}
        self._kwargs = kwargs

    def labels(self, **labelvalues):
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _KINDS[self.kind](**self._kwargs)
        return child

    def samples(self) -> list[dict]:
        out = []
        for key, child in self._children.items():
            labels = dict(zip(self.labelnames, key))
            if self.kind == "histogram":
                out.append({"labels": labels, "buckets": child.buckets(),
                            "sum": child.sum, "count": child.count})
            else:
                out.append({"labels": labels, "value": child.value})
        return out


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """Named families of instruments plus pull-model collectors."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable] = []

    # -- family creation ---------------------------------------------------

    def _family(self, name: str, kind: str, help: str,
                labelnames: Iterable[str], **kwargs) -> _Family:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind or fam.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} re-registered with a different "
                    f"kind/label set"
                )
            return fam
        fam = self._families[name] = _Family(name, kind, help, labelnames,
                                             **kwargs)
        return fam

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> _Family:
        return self._family(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> _Family:
        return self._family(name, "gauge", help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (), start: float = 1e-6,
                  factor: float = 4.0, nbuckets: int = 12) -> _Family:
        return self._family(name, "histogram", help, labelnames,
                            start=start, factor=factor, nbuckets=nbuckets)

    # -- collectors --------------------------------------------------------

    def register_collector(self, fn: Callable) -> Callable:
        """Register a zero-argument callback run before every snapshot;
        it copies externally maintained counters into the registry."""
        self._collectors.append(fn)
        return fn

    def collect(self) -> None:
        for fn in self._collectors:
            fn()

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict (JSON-safe) view of every family, collectors run."""
        self.collect()
        return {
            name: {"kind": fam.kind, "help": fam.help,
                   "samples": fam.samples()}
            for name, fam in sorted(self._families.items())
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def prometheus_text(self, extra_labels: Optional[dict] = None) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        snap = self.snapshot()
        lines = []
        for name, fam in snap.items():
            if fam["help"]:
                lines.append(f"# HELP {name} {fam['help']}")
            lines.append(f"# TYPE {name} {fam['kind']}")
            for sample in fam["samples"]:
                labels = dict(extra_labels or {})
                labels.update(sample["labels"])
                if fam["kind"] == "histogram":
                    for bound, cum in sample["buckets"]:
                        ls = _label_str({**labels, "le": bound})
                        lines.append(f"{name}_bucket{ls} {cum}")
                    ls = _label_str(labels)
                    lines.append(f"{name}_sum{ls} {_fmt_value(sample['sum'])}")
                    lines.append(f"{name}_count{ls} {sample['count']}")
                else:
                    ls = _label_str(labels)
                    lines.append(f"{name}{ls} {_fmt_value(sample['value'])}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Round-trip helpers (exporter verification)
# ---------------------------------------------------------------------------


def flatten_snapshot(snap: dict, extra_labels: Optional[dict] = None) -> dict:
    """A snapshot as the flat ``{'name{labels}': value}`` mapping its
    Prometheus text renders to — the common form both exporters can be
    compared in."""
    flat: dict[str, object] = {}
    for name, fam in snap.items():
        for sample in fam["samples"]:
            labels = dict(extra_labels or {})
            labels.update(sample["labels"])
            if fam["kind"] == "histogram":
                for bound, cum in sample["buckets"]:
                    key = f"{name}_bucket{_label_str({**labels, 'le': bound})}"
                    flat[key] = cum
                flat[f"{name}_sum{_label_str(labels)}"] = sample["sum"]
                flat[f"{name}_count{_label_str(labels)}"] = sample["count"]
            else:
                flat[f"{name}{_label_str(labels)}"] = sample["value"]
    return flat


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict:
    """Parse text exposition back to the flat mapping
    :func:`flatten_snapshot` produces (comments ignored)."""
    flat: dict[str, object] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        labels = {k: _unescape(v)
                  for k, v in _LABEL_RE.findall(m.group("labels") or "")}
        flat[m.group("name") + _label_str(labels)] = \
            _parse_value(m.group("value"))
    return flat


# ---------------------------------------------------------------------------
# World attachment
# ---------------------------------------------------------------------------


def attach_metrics(world) -> MetricsRegistry:
    """Install a :class:`MetricsRegistry` on a world as
    ``world.services["metrics"]`` and wire every standard source into it
    (pull-model collectors for the native counters, push-model latency
    histograms on a previously attached observer)."""
    reg = MetricsRegistry()
    world.services["metrics"] = reg
    transport = world.transport

    packets = reg.counter("pardis_transport_packets_total",
                          "packets the world transport delivered")
    tbytes = reg.counter("pardis_transport_bytes_total",
                         "payload bytes the world transport delivered")

    @reg.register_collector
    def _collect_transport() -> None:
        snap = transport.snapshot()
        packets.labels().set(snap["packets_sent"])
        tbytes.labels().set(snap["bytes_sent"])

    zc_stats = transport.buffer_pool.stats
    zc = reg.gauge("pardis_zero_copy", "zero-copy lane / buffer-pool "
                   "counters (see repro.cdr.buffers)", ("counter",))

    @reg.register_collector
    def _collect_zero_copy() -> None:
        for field, value in zc_stats.snapshot().items():
            zc.labels(counter=field).set(value)

    orb = world.services.get("orb")
    if orb is not None:
        requests = reg.counter("pardis_requests_total",
                               "invocations issued on this world",
                               ("kind",))
        dead = reg.counter("pardis_dead_fragments_total",
                           "orphaned fragments dead-lettered", ("kind",))

        @reg.register_collector
        def _collect_orb() -> None:
            requests.labels(kind="remote").set(orb.requests_sent)
            requests.labels(kind="local_bypass").set(orb.local_bypasses)
            dead.labels(kind="arg").set(orb.dead_fragments)
            dead.labels(kind="result").set(orb.dead_result_fragments)

    if orb is not None:
        # Services layer (repro.services): admission controllers register
        # themselves on the ORB as POAs enable them, and replica groups
        # are created lazily on first policy bind — so both collectors
        # iterate the live lists at snapshot time instead of at attach.
        admission = reg.counter(
            "pardis_admission_requests_total",
            "admission-control outcomes per server program",
            ("program", "outcome"))
        queue_depth = reg.gauge(
            "pardis_admission_queue_depth",
            "currently queued requests per admission-controlled program",
            ("program",))
        queue_wait = reg.gauge(
            "pardis_admission_wait_seconds_total",
            "total virtual seconds served requests spent queued",
            ("program",))

        @reg.register_collector
        def _collect_admission() -> None:
            for adm in orb.admission_controllers:
                prog = adm.program_name or "unattached"
                admission.labels(program=prog, outcome="accepted").set(
                    adm.accepted)
                admission.labels(program=prog, outcome="shed").set(adm.shed)
                admission.labels(program=prog, outcome="served").set(
                    adm.served)
                queue_depth.labels(program=prog).set(adm.queue_depth)
                queue_wait.labels(program=prog).set(adm.total_wait)

        replica_events = reg.counter(
            "pardis_replica_events_total",
            "replica-group health/failover events per object name",
            ("object", "event"))
        replica_load = reg.gauge(
            "pardis_replica_load",
            "last reported load fraction per replica program id",
            ("object", "program_id"))

        @reg.register_collector
        def _collect_replicas() -> None:
            for (_, name), group in orb._replica_groups.items():
                replica_events.labels(object=name, event="failover").set(
                    group.failovers)
                replica_events.labels(object=name, event="suspect").set(
                    group.suspects)
                replica_events.labels(object=name, event="dead").set(
                    group.deaths)
                replica_events.labels(object=name, event="reactivation").set(
                    group.reactivations)
                replica_events.labels(object=name, event="selection").set(
                    group.selections)
                for pid, load in group.known_loads().items():
                    replica_load.labels(object=name, program_id=pid).set(load)

    meter = world.services.get("compute_meter")
    if meter is not None:
        busy = reg.gauge("pardis_compute_busy_seconds",
                         "virtual compute seconds charged per node",
                         ("host", "node"))

        @reg.register_collector
        def _collect_meter() -> None:
            for (host, node), seconds in meter.busy.items():
                busy.labels(host=host, node=node).set(seconds)

    tracer = world.services.get("tracer")
    if tracer is not None:
        trace_events = reg.counter("pardis_trace_events_total",
                                   "tracing interceptor event counters",
                                   ("event",))

        @reg.register_collector
        def _collect_tracer() -> None:
            for event, value in tracer.counters.items():
                trace_events.labels(event=event).set(value)

    obs = world.services.get("observer")
    if obs is not None:
        obs.bind_metrics(reg)
    return reg
