"""Mini-POOMA: a high-performance distributed simulation environment
(after [ABC+95]), reduced to what the paper's §4.3 experiments exercise —
2-D fields block-decomposed by rows with ghost-cell exchange, stencil
updates, and a PARDIS container mapping.
"""

from .field import Field
from .layout import GridLayout
from .layout2d import Field2D, GridLayout2D, diffusion_step_2d
from .stencil import diffusion_step, magnitude_gradient, nine_point_stencil

__all__ = [
    "Field",
    "Field2D",
    "GridLayout",
    "GridLayout2D",
    "diffusion_step",
    "diffusion_step_2d",
    "magnitude_gradient",
    "nine_point_stencil",
]
