"""Request-lifecycle observability for PARDIS deployments.

The paper's evaluation (Figs. 2-5) was produced by hand-instrumenting
stubs and skeletons; this module builds that measurement into the ORB.
A :class:`RequestObserver` attached to a world records a :class:`Span`
for every phase of every invocation:

========== ======= ====================================================
phase      side    covers
========== ======= ====================================================
marshal    client  scalar in-argument CDR encoding + header construction
send       client  request header + argument-fragment injection
wait       client  blocking on the reply header / result fragments
unmarshal  client  reply decode and result-fragment insertion
local      client  a bypassed (same-program) invocation (§4.1)
dispatch   server  servant lookup, SPMD forwarding, operation resolution
recv_args  server  argument-fragment collection and decode
compute    server  the servant method itself
reply      server  reply header + result-fragment injection
========== ======= ====================================================

The observer also owns a :class:`~repro.tools.trace.PacketTrace` (every
packet the transport moves), global CDR byte counters fed by the
encoder/decoder, transfer-schedule counters, and — when a
:class:`~repro.tools.metrics.ComputeMeter` is attached to the same world
— per-node compute utilization.  One ``world.services["observer"]``
object therefore answers "where did this request spend its time".

Instrumentation is **off by default**: the observer receives the ORB's
span feed as a *portable interceptor* (the span-sink hooks of
``repro.core.pipeline``), so the hot paths the benchmarks measure are
unaffected until :func:`attach_observer` registers it on the chain —
an empty chain costs one attribute load plus a truthiness check per
hook site.

When a :class:`~repro.tools.tracing.TracingInterceptor` shares the world
(see :func:`repro.tools.tracing.attach_tracing`), every span is
annotated with its trace/span/parent ids, :meth:`RequestObserver.
chrome_trace` emits cross-world *flow* arrows between causally linked
spans, and :meth:`RequestObserver.trace_tree` renders each trace as an
indented causal tree with per-hop latency attribution — the stitched
view of a Fig-5 pipeline the paper reconstructed by hand.  Span and
packet stores are bounded ring buffers (drops are counted and surfaced
in :meth:`RequestObserver.report`), and a
:class:`~repro.tools.registry.MetricsRegistry` bound via
``bind_metrics`` receives per-phase and end-to-end latency histograms.

Exports: Chrome-trace JSON (load ``chrome://tracing`` or
https://ui.perfetto.dev) via :meth:`RequestObserver.chrome_trace`, and a
text report of per-operation latency percentiles and byte counts via
:meth:`RequestObserver.report`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from ..core.pipeline.interceptors import (
    RequestInterceptor as RequestInterceptorBase,
)
from .metrics import ComputeMeter
from .trace import DEFAULT_CAPACITY, PacketTrace, RingBuffer

__all__ = [
    "Span",
    "ObserverInterceptor",
    "RequestObserver",
    "TraceSession",
    "attach_observer",
    "detach_observer",
    "validate_chrome_trace",
    "CLIENT_PHASES",
    "SERVER_PHASES",
    "PHASES",
]

CLIENT_PHASES = ("marshal", "send", "wait", "unmarshal", "local")
SERVER_PHASES = ("dispatch", "recv_args", "compute", "reply")
PHASES = CLIENT_PHASES + SERVER_PHASES

#: phase -> side, used as the Chrome-trace event category
PHASE_SIDE = {p: "client" for p in CLIENT_PHASES}
PHASE_SIDE.update({p: "server" for p in SERVER_PHASES})


@dataclass(frozen=True)
class Span:
    """One recorded phase of one request on one computing thread.

    Times are virtual seconds; ``req`` is the stringified request id
    (bypassed invocations draw theirs from the same per-binding sequence
    and appear with the single ``local`` phase).  The trace fields are
    empty unless a :class:`~repro.tools.tracing.TracingInterceptor`
    shares the world; SPMD threads of one collective invocation share
    one logical ``span_id`` per side.
    """

    phase: str
    op: str
    req: str
    program: str
    rank: int
    t0: float
    t1: float
    nbytes: int = 0
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @property
    def side(self) -> str:
        return PHASE_SIDE.get(self.phase, "other")


def _percentile(sorted_vals: list, q: float) -> float:
    """Linear-interpolation percentile of an already-sorted list."""
    if not sorted_vals:
        return 0.0
    if len(sorted_vals) == 1:
        return sorted_vals[0]
    pos = (len(sorted_vals) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1 - frac) + sorted_vals[hi] * frac


def _deep_t1(node: dict, children: dict) -> float:
    """Latest end time in a trace subtree."""
    t1 = node["t1"]
    for child in children.get(node["span_id"], ()):
        t1 = max(t1, _deep_t1(child, children))
    return t1


class RequestObserver:
    """Recorder of every request's end-to-end lifecycle in one world."""

    def __init__(self, label: str = "",
                 span_capacity: Optional[int] = DEFAULT_CAPACITY,
                 packet_capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        self.label = label
        self.spans: RingBuffer = RingBuffer(span_capacity)
        #: (req, program, rank) -> [op, t_start, t_end|None, status]
        self.requests: dict[tuple, list] = {}
        self.requests_dropped = 0
        self._request_capacity = span_capacity
        self.packet_trace = PacketTrace(RingBuffer(packet_capacity))
        self.meter: Optional[ComputeMeter] = None
        #: global CDR stream bytes (fed by the encoder/decoder hook)
        self.cdr_bytes = {"encoded": 0, "decoded": 0}
        #: transfer-schedule counters (fed by repro.core.transfer)
        self.transfer = {"schedules": 0, "fragments": 0, "elements": 0}
        #: the world transport's ZeroCopyStats (set by attach_observer)
        self.zero_copy = None
        #: cross-links set by attach_observer / attach_tracing
        self.tracer = None
        self.orb = None
        #: spans of not-yet-terminal unsampled requests, held back for the
        #: always-on-error promotion: (req, side, rank) -> [Span, ...]
        self._held: dict[tuple, list] = {}
        self.spans_unsampled = 0   # discarded by the sampling verdict
        self.spans_promoted = 0    # kept anyway because the request failed
        #: registry hooks set by bind_metrics
        self._phase_hist = None
        self._request_hist = None

    # -- recording (hot path; called only when an observer is attached) ----

    def span(self, phase: str, op: str, req, program: str, rank: int,
             t0: float, t1: float, nbytes: int = 0) -> None:
        req_s = str(req)
        trace_id = span_id = parent_id = ""
        sampled = True
        side = PHASE_SIDE.get(phase, "client")
        if self.tracer is not None:
            tctx = self.tracer.lookup(req_s, side)
            if tctx is not None:
                trace_id, span_id, parent_id = (
                    tctx.trace_id, tctx.span_id, tctx.parent_id)
                sampled = tctx.sampled
        span = Span(phase, op, req_s, program, rank, t0, t1, nbytes,
                    trace_id, span_id, parent_id)
        if self._phase_hist is not None:
            self._phase_hist.labels(phase=phase, op=op).observe(t1 - t0)
        if sampled:
            self.spans.append(span)
        elif self.tracer.always_on_error:
            self._held.setdefault((req_s, side, rank), []).append(span)
        else:
            self.spans_unsampled += 1

    def _resolve_trace(self, req, side: str, rank: int, error: bool) -> None:
        """An unsampled request reached a terminal state on one thread:
        promote its held-back spans if it failed, discard otherwise."""
        held = self._held.pop((str(req), side, rank), None)
        if held is None:
            return
        if error:
            self.spans.extend(held)
            self.spans_promoted += len(held)
        else:
            self.spans_unsampled += len(held)

    def request_started(self, req, op: str, program: str, rank: int,
                        t0: float) -> None:
        requests = self.requests
        key = (str(req), program, rank)
        if (self._request_capacity is not None and key not in requests
                and len(requests) >= self._request_capacity):
            del requests[next(iter(requests))]
            self.requests_dropped += 1
        requests[key] = [op, t0, None, "pending"]

    def request_finished(self, req, program: str, rank: int, t1: float,
                         status: str = "ok") -> None:
        rec = self.requests.get((str(req), program, rank))
        if rec is not None:
            rec[2] = t1
            rec[3] = status
            if self._request_hist is not None:
                self._request_hist.labels(op=rec[0], status=status) \
                    .observe(t1 - rec[1])
        if self.tracer is not None and self.tracer.always_on_error:
            self._resolve_trace(req, "client", rank,
                                error=status == "failed")

    # -- metrics-registry binding (repro.tools.registry) -------------------

    def bind_metrics(self, registry) -> None:
        """Publish push-model latency histograms and a pull-model
        collector for this observer's counters into ``registry``."""
        self._phase_hist = registry.histogram(
            "pardis_phase_seconds",
            "virtual-time latency of each request-lifecycle phase",
            ("phase", "op"))
        self._request_hist = registry.histogram(
            "pardis_request_seconds",
            "end-to-end virtual-time request latency",
            ("op", "status"))
        cdr = registry.counter("pardis_cdr_bytes_total",
                               "CDR stream bytes", ("direction",))
        transfer = registry.counter("pardis_transfer_total",
                                    "transfer-schedule counters", ("what",))
        drops = registry.counter(
            "pardis_observability_dropped_total",
            "records shed by the bounded observability stores", ("store",))

        @registry.register_collector
        def _collect_observer() -> None:
            cdr.labels(direction="encoded").set(self.cdr_bytes["encoded"])
            cdr.labels(direction="decoded").set(self.cdr_bytes["decoded"])
            for what, value in self.transfer.items():
                transfer.labels(what=what).set(value)
            drops.labels(store="spans").set(self.spans.dropped)
            drops.labels(store="packets").set(self.packet_trace.dropped)
            drops.labels(store="requests").set(self.requests_dropped)
            drops.labels(store="spans_unsampled").set(self.spans_unsampled)

    # -- CDR marshal-meter protocol (repro.cdr.encoder.set_marshal_meter) --

    def on_encode(self, nbytes: int) -> None:
        self.cdr_bytes["encoded"] += nbytes

    def on_decode(self, nbytes: int) -> None:
        self.cdr_bytes["decoded"] += nbytes

    # -- transfer-schedule hook (repro.core.transfer.set_observer) ---------

    def on_schedule(self, nfragments: int, nelements: int) -> None:
        self.transfer["schedules"] += 1
        self.transfer["fragments"] += nfragments
        self.transfer["elements"] += nelements

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def by_phase(self, phase: str) -> list[Span]:
        return [s for s in self.spans if s.phase == phase]

    def by_op(self, op: str) -> list[Span]:
        return [s for s in self.spans if s.op == op]

    def operations(self) -> list[str]:
        return sorted({s.op for s in self.spans})

    def phase_durations(self, phase: str, op: Optional[str] = None) -> list:
        return sorted(s.duration for s in self.spans
                      if s.phase == phase and (op is None or s.op == op))

    def phase_histogram(self, phase: str, op: Optional[str] = None,
                        bins: int = 10):
        """(counts, edges) histogram of a phase's virtual-time latencies."""
        import numpy as np

        durs = self.phase_durations(phase, op)
        return np.histogram(np.asarray(durs if durs else [0.0]), bins=bins)

    def request_breakdown(self, req) -> dict[str, float]:
        """Total virtual seconds per phase for one request — the answer to
        "where did this request spend its time"."""
        req = str(req)
        out: dict[str, float] = {}
        for s in self.spans:
            if s.req == req:
                out[s.phase] = out.get(s.phase, 0.0) + s.duration
        return out

    def bytes_by_op(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for s in self.spans:
            out[s.op] = out.get(s.op, 0) + s.nbytes
        return out

    def completed_requests(self) -> list[tuple]:
        """[(req, program, rank, op, latency), ...] for finished requests."""
        return [(req, prog, rank, op, t1 - t0)
                for (req, prog, rank), (op, t0, t1, _status)
                in self.requests.items() if t1 is not None]

    # -- stitched traces ---------------------------------------------------

    def _trace_nodes(self) -> dict[str, dict]:
        """Annotated spans aggregated into logical trace nodes.

        One node per ``span_id`` — all SPMD threads (and all phases) of
        one side of one invocation collapse into it, mirroring the
        paper's "one parallel entity" model.  Returns
        ``{span_id: node}`` where a node carries trace_id, parent_id,
        side, op, program, the participating ranks, and the [t0, t1]
        envelope.
        """
        nodes: dict[str, dict] = {}
        for s in self.spans:
            if not s.span_id:
                continue
            node = nodes.get(s.span_id)
            if node is None:
                node = nodes[s.span_id] = {
                    "trace_id": s.trace_id, "span_id": s.span_id,
                    "parent_id": s.parent_id, "side": s.side,
                    "op": s.op, "program": s.program,
                    "ranks": set(), "t0": s.t0, "t1": s.t1, "nbytes": 0,
                }
            node["ranks"].add(s.rank)
            node["t0"] = min(node["t0"], s.t0)
            node["t1"] = max(node["t1"], s.t1)
            node["nbytes"] += s.nbytes
        return nodes

    def trace_tree(self) -> str:
        """Every stitched trace as an indented causal tree with per-hop
        latency attribution (requires an attached tracing interceptor;
        returns a note when no annotated spans exist)."""
        nodes = self._trace_nodes()
        if not nodes:
            return ("no annotated spans (attach_tracing() before the run "
                    "to stitch traces)")
        children: dict[str, list] = {}
        roots: list[dict] = []
        for node in nodes.values():
            parent = node["parent_id"]
            if parent and parent in nodes:
                children.setdefault(parent, []).append(node)
            else:
                roots.append(node)
        for kids in children.values():
            kids.sort(key=lambda n: n["t0"])
        roots.sort(key=lambda n: (n["trace_id"], n["t0"]))

        lines: list[str] = []
        by_trace: dict[str, list] = {}
        for root in roots:
            by_trace.setdefault(root["trace_id"], []).append(root)

        def emit(node: dict, depth: int, parent: Optional[dict]) -> None:
            ranks = sorted(node["ranks"])
            rank_s = (f"rank {ranks[0]}" if len(ranks) == 1
                      else f"ranks {ranks[0]}-{ranks[-1]}")
            hop = ("" if parent is None else
                   f"  +{node['t0'] - parent['t0']:.6f}s after parent")
            lines.append(
                f"{'  ' * depth}{'└─ ' if depth else ''}"
                f"{node['side']} {node['op']} @{node['program']} "
                f"[{rank_s}]  t0={node['t0']:.6f} "
                f"dur={node['t1'] - node['t0']:.6f}{hop}"
            )
            for child in children.get(node["span_id"], ()):
                emit(child, depth + 1, node)

        for trace_id, trace_roots in by_trace.items():
            t0 = min(r["t0"] for r in trace_roots)
            t1 = max(_deep_t1(r, children) for r in trace_roots)
            n = sum(1 for node in nodes.values()
                    if node["trace_id"] == trace_id)
            lines.append(f"trace {trace_id} — {n} node(s), "
                         f"{t1 - t0:.6f} virtual s")
            for root in trace_roots:
                emit(root, 1, None)
        return "\n".join(lines)

    # -- Chrome-trace export ----------------------------------------------

    def chrome_trace(self) -> dict:
        """The recorded lifecycle as a Chrome-trace (``chrome://tracing``
        / Perfetto) JSON object."""
        return {"traceEvents": self._chrome_events(pid_base=1),
                "displayTimeUnit": "ms"}

    def _chrome_events(self, pid_base: int) -> list[dict]:
        events: list[dict] = []
        pids: dict[str, int] = {}

        def pid_of(name: str) -> int:
            pid = pids.get(name)
            if pid is None:
                pid = pids[name] = pid_base + len(pids)
                shown = f"{self.label}: {name}" if self.label else name
                events.append({"name": "process_name", "ph": "M", "pid": pid,
                               "tid": 0, "args": {"name": shown}})
            return pid

        for s in self.spans:
            args = {"op": s.op, "req": s.req, "bytes": s.nbytes}
            if s.trace_id:
                args["trace_id"] = s.trace_id
                args["span_id"] = s.span_id
            events.append({
                "name": f"{s.phase} {s.op}",
                "cat": s.side,
                "ph": "X",
                "ts": s.t0 * 1e6,
                "dur": s.duration * 1e6,
                "pid": pid_of(s.program),
                "tid": s.rank,
                "args": args,
            })
        # Cross-world flow arrows: one start/finish pair per causal edge
        # whose two nodes live in different programs (the stitch a Fig-5
        # chain needs; same-program nesting stays readable without them).
        nodes = self._trace_nodes()
        for node in nodes.values():
            parent = nodes.get(node["parent_id"])
            if parent is None or parent["program"] == node["program"]:
                continue
            flow_id = node["span_id"]
            events.append({
                "name": "trace", "cat": "flow", "ph": "s", "id": flow_id,
                "ts": parent["t0"] * 1e6, "pid": pid_of(parent["program"]),
                "tid": min(parent["ranks"]),
            })
            events.append({
                "name": "trace", "cat": "flow", "ph": "f", "bp": "e",
                "id": flow_id, "ts": max(node["t0"], parent["t0"]) * 1e6,
                "pid": pid_of(node["program"]), "tid": min(node["ranks"]),
            })
        for (req, prog, rank), (op, t0, t1, status) in self.requests.items():
            if t1 is None:
                continue
            pid = pid_of(prog)
            common = {"cat": "request", "id": req, "pid": pid, "tid": rank}
            events.append({"name": f"request {op}", "ph": "b",
                           "ts": t0 * 1e6,
                           "args": {"op": op, "status": status}, **common})
            events.append({"name": f"request {op}", "ph": "e",
                           "ts": t1 * 1e6, "args": {}, **common})
        net_pid = pid_of("network")
        link_tids: dict[tuple, int] = {}
        for r in self.packet_trace.records:
            link = (r.src.split(":")[0], r.dst.split(":")[0])
            tid = link_tids.get(link)
            if tid is None:
                tid = link_tids[link] = len(link_tids)
                events.append({"name": "thread_name", "ph": "M",
                               "pid": net_pid, "tid": tid,
                               "args": {"name": f"{link[0]} -> {link[1]}"}})
            events.append({
                "name": r.kind,
                "cat": "transport",
                "ph": "X",
                "ts": r.send_time * 1e6,
                "dur": (r.arrival - r.send_time) * 1e6,
                "pid": net_pid,
                "tid": tid,
                "args": {"src": r.src, "dst": r.dst, "bytes": r.nbytes,
                         "tag": r.tag},
            })
        return events

    # -- text report -------------------------------------------------------

    def report(self) -> str:
        lines = []
        title = "request-lifecycle report"
        if self.label:
            title += f" [{self.label}]"
        lines.append(title)

        done = self.completed_requests()
        npending = sum(1 for rec in self.requests.values() if rec[2] is None)
        nfailed = sum(1 for rec in self.requests.values()
                      if rec[3] not in ("ok", "oneway", "pending"))
        lines.append(f"  requests: {len(self.requests)} issued, "
                     f"{len(done)} finished, {npending} pending, "
                     f"{nfailed} failed")

        lines.append("  per-operation end-to-end latency (virtual s):")
        lines.append(f"  {'operation':>20} {'count':>6} {'p50':>10} "
                     f"{'p90':>10} {'p99':>10} {'max':>10}")
        per_op: dict[str, list] = {}
        for _req, _prog, _rank, op, lat in done:
            per_op.setdefault(op, []).append(lat)
        for op in sorted(per_op):
            lat = sorted(per_op[op])
            lines.append(
                f"  {op:>20} {len(lat):6d} {_percentile(lat, .5):10.6f} "
                f"{_percentile(lat, .9):10.6f} {_percentile(lat, .99):10.6f} "
                f"{lat[-1]:10.6f}"
            )

        lines.append("  per-operation phase latency (virtual s) and bytes:")
        lines.append(f"  {'operation':>20} {'phase':>10} {'count':>6} "
                     f"{'p50':>10} {'p99':>10} {'max':>10} {'bytes':>10}")
        keys = sorted({(s.op, s.phase) for s in self.spans},
                      key=lambda k: (k[0], PHASES.index(k[1])
                                     if k[1] in PHASES else 99))
        for op, phase in keys:
            durs = sorted(s.duration for s in self.spans
                          if s.op == op and s.phase == phase)
            nbytes = sum(s.nbytes for s in self.spans
                         if s.op == op and s.phase == phase)
            lines.append(
                f"  {op:>20} {phase:>10} {len(durs):6d} "
                f"{_percentile(durs, .5):10.6f} "
                f"{_percentile(durs, .99):10.6f} "
                f"{durs[-1] if durs else 0.0:10.6f} {nbytes:10d}"
            )

        dropped = (self.spans.dropped + self.packet_trace.dropped
                   + self.requests_dropped)
        if dropped or self.spans_unsampled or self.spans_promoted:
            lines.append(
                f"  store drops: {self.spans.dropped} spans, "
                f"{self.packet_trace.dropped} packets, "
                f"{self.requests_dropped} requests (ring buffers full); "
                f"{self.spans_unsampled} spans discarded unsampled, "
                f"{self.spans_promoted} promoted on error"
            )
        if self.orb is not None and (self.orb.dead_fragments
                                     or self.orb.dead_result_fragments):
            lines.append(
                f"  dead-lettered: {self.orb.dead_fragments} argument "
                f"fragments, {self.orb.dead_result_fragments} result "
                f"fragments"
            )
        lines.append(f"  cdr streams: {self.cdr_bytes['encoded']} bytes "
                     f"encoded, {self.cdr_bytes['decoded']} bytes decoded")
        lines.append(f"  transfer schedules: {self.transfer['schedules']} "
                     f"({self.transfer['fragments']} fragments, "
                     f"{self.transfer['elements']} elements)")
        if self.zero_copy is not None:
            from .metrics import zero_copy_summary

            lines.append("  " + zero_copy_summary(self.zero_copy))
        if len(self.packet_trace):
            lines.append("  " + self.packet_trace.summary()
                         .replace("\n", "\n  "))
        if self.meter is not None and self.meter.busy:
            elapsed = max((s.t1 for s in self.spans), default=0.0)
            if elapsed > 0:
                lines.append("  " + self.meter.report(elapsed)
                             .replace("\n", "\n  "))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Attachment
# ---------------------------------------------------------------------------


class ObserverInterceptor(RequestInterceptorBase):
    """Span-sink adapter: feeds the ORB's request-lifecycle events (the
    interceptor chain's ``on_span``/``on_request_*`` hooks) into a
    :class:`RequestObserver`.  It implements none of the five
    interception points, so it never perturbs request semantics."""

    name = "request-observer"

    def __init__(self, observer: RequestObserver) -> None:
        self.observer = observer

    def on_span(self, phase, op, req, program, rank, t0, t1,
                nbytes=0) -> None:
        self.observer.span(phase, op, req, program, rank, t0, t1, nbytes)

    def on_request_started(self, req, op, program, rank, t0) -> None:
        self.observer.request_started(req, op, program, rank, t0)

    def on_request_finished(self, req, program, rank, t1,
                            status="ok") -> None:
        self.observer.request_finished(req, program, rank, t1, status)


def attach_observer(world, label: str = "") -> RequestObserver:
    """Install a :class:`RequestObserver` on a world (before ``run()``).

    Registers it as ``world.services["observer"]``, registers an
    :class:`ObserverInterceptor` on the ORB's interceptor chain (the span
    feed), subscribes its packet trace to the transport, installs the CDR
    byte meter and the transfer-schedule hook, and picks up a previously
    attached :class:`ComputeMeter` if one exists.
    """
    from ..cdr.encoder import set_marshal_meter
    from ..core import transfer as _transfer

    obs = RequestObserver(label=label)
    world.services["observer"] = obs
    orb = world.services.get("orb")
    if orb is not None:
        obs.orb = orb
        orb.observer = obs
        obs._interceptor = orb.register_interceptor(ObserverInterceptor(obs))
    world.transport.observers.append(obs.packet_trace)
    obs.meter = world.services.get("compute_meter")
    obs.zero_copy = world.transport.buffer_pool.stats
    tracer = world.services.get("tracer")
    if tracer is not None:
        obs.tracer = tracer
        tracer.observer = obs
    registry = world.services.get("metrics")
    if registry is not None:
        obs.bind_metrics(registry)
    set_marshal_meter(obs)
    _transfer.set_observer(obs)
    return obs


def detach_observer(world) -> Optional[RequestObserver]:
    """Undo :func:`attach_observer`; returns the removed observer."""
    from ..cdr.encoder import get_marshal_meter, set_marshal_meter
    from ..core import transfer as _transfer

    obs = world.services.pop("observer", None)
    if obs is None:
        return None
    orb = world.services.get("orb")
    if orb is not None and orb.observer is obs:
        orb.observer = None
    icept = getattr(obs, "_interceptor", None)
    if orb is not None and icept is not None and icept in orb.interceptors:
        orb.unregister_interceptor(icept)
    try:
        world.transport.observers.remove(obs.packet_trace)
    except ValueError:
        pass
    if get_marshal_meter() is obs:
        set_marshal_meter(None)
    if _transfer.get_observer() is obs:
        _transfer.set_observer(None)
    return obs


# ---------------------------------------------------------------------------
# Multi-run sessions (the experiment drivers build one Simulation per point)
# ---------------------------------------------------------------------------


class TraceSession:
    """Collects observers across several simulation runs and merges them
    into one Chrome trace / report (used by ``--trace``, ``--trace-tree``
    and ``--metrics`` in the CLI).  ``tracing=True`` also attaches a
    :class:`~repro.tools.tracing.TracingInterceptor` to every run (so
    spans stitch into trees); ``metrics=True`` a per-run
    :class:`~repro.tools.registry.MetricsRegistry`."""

    def __init__(self, tracing: bool = False, metrics: bool = False) -> None:
        self.tracing = tracing
        self.metrics = metrics
        self.runs: list[RequestObserver] = []
        self.registries: list[tuple[str, Any]] = []

    def attach(self, sim, label: str = "") -> RequestObserver:
        obs = attach_observer(sim.world, label=label)
        if self.tracing:
            from .tracing import attach_tracing

            attach_tracing(sim.world)
        if self.metrics:
            from .registry import attach_metrics

            self.registries.append((label, attach_metrics(sim.world)))
        self.runs.append(obs)
        return obs

    def chrome_trace(self) -> dict:
        events: list[dict] = []
        for i, obs in enumerate(self.runs):
            events.extend(obs._chrome_events(pid_base=1 + i * 1000))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def report(self) -> str:
        return "\n\n".join(obs.report() for obs in self.runs)

    def trace_trees(self) -> str:
        """Stitched causal trees of every run that produced one."""
        blocks = []
        for obs in self.runs:
            tree = obs.trace_tree()
            head = f"[{obs.label}]\n" if obs.label else ""
            blocks.append(head + tree)
        return "\n\n".join(blocks)

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, indent=1)

    def write_metrics(self, path: str) -> None:
        """Export every run's registry: ``.prom`` gets concatenated
        Prometheus text (a ``run`` label distinguishes runs), anything
        else a JSON object keyed by run label."""
        if path.endswith(".prom"):
            text = "".join(
                reg.prometheus_text(extra_labels={"run": label or str(i)})
                for i, (label, reg) in enumerate(self.registries)
            )
            with open(path, "w") as fh:
                fh.write(text)
            return
        payload = {label or str(i): reg.snapshot()
                   for i, (label, reg) in enumerate(self.registries)}
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1)


# ---------------------------------------------------------------------------
# Schema validation (make trace-demo / CI)
# ---------------------------------------------------------------------------


def validate_chrome_trace(obj: Any,
                          require_phases: Iterable[str] = (),
                          require_flow_events: int = 0) -> int:
    """Check a Chrome-trace JSON object's schema; returns the event count.

    Raises ``ValueError`` on malformed traces.  ``require_phases`` lists
    span phases (e.g. ``("marshal", "compute")``) that must each appear in
    at least one duration event; ``require_flow_events`` demands at least
    that many *matched* cross-world flow arrows (an ``s`` event whose id
    also has an ``f`` event).
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValueError("trace must be an object with a traceEvents list")
    events = obj["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    seen_phases: set[str] = set()
    flow_starts: set = set()
    flow_finishes: set = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        for key in ("name", "ph", "pid"):
            if key not in ev:
                raise ValueError(f"event {i} is missing {key!r}")
        ph = ev["ph"]
        if ph not in ("X", "M", "b", "e", "i", "s", "t", "f"):
            raise ValueError(f"event {i} has unknown phase type {ph!r}")
        if ph != "M" and "ts" not in ev:
            raise ValueError(f"event {i} ({ph}) is missing 'ts'")
        if ph in ("s", "t", "f"):
            if "id" not in ev:
                raise ValueError(f"event {i} (flow {ph}) is missing 'id'")
            (flow_starts if ph == "s" else flow_finishes).add(ev["id"])
        if ph == "X":
            if "dur" not in ev or ev["dur"] < 0:
                raise ValueError(f"event {i} needs a non-negative 'dur'")
            seen_phases.add(ev["name"].split(" ", 1)[0])
            if ev.get("cat") == "transport":
                seen_phases.add("transport")
    missing = set(require_phases) - seen_phases
    if missing:
        raise ValueError(f"trace has no spans for phases: {sorted(missing)}")
    unmatched = flow_starts ^ flow_finishes
    if unmatched:
        raise ValueError(f"unmatched flow events: {sorted(unmatched)[:5]}")
    matched = len(flow_starts & flow_finishes)
    if matched < require_flow_events:
        raise ValueError(
            f"trace has {matched} cross-world flow event(s), "
            f"need >= {require_flow_events}"
        )
    return len(events)
