"""CDR-style encoder.

Follows CORBA CDR's layout rules: every primitive is aligned to its
natural boundary (relative to the start of the encapsulation), sequences
and strings carry a ``ulong`` length prefix, strings are NUL-terminated,
enums travel as ``ulong``.  Byte order is fixed little-endian (a real GIOP
stream carries a byte-order flag; a single simulation never mixes orders).

Bulk numeric sequences take a numpy fast path: one alignment pad, one
length word, one contiguous buffer copy.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from .typecodes import (
    ArrayTC,
    ObjectRefTC,
    DSequenceTC,
    EnumTC,
    INT_RANGES,
    PrimitiveTC,
    SequenceTC,
    StringTC,
    StructTC,
    TypeCode,
    UnionTC,
    is_numeric_primitive,
)


from .typecodes import TC_BOOLEAN as PRIM_BOOL


class MarshalError(ValueError):
    """Value cannot be encoded under the given TypeCode."""


#: Optional global marshal meter (an object with ``on_encode(nbytes)`` /
#: ``on_decode(nbytes)``), fed by the one-shot encode/decode entry points
#: and the ORB's scalar/fragment helpers.  ``None`` (the default) keeps
#: the hot paths at a single identity check.
_MARSHAL_METER = None


def set_marshal_meter(meter) -> None:
    """Install (or clear, with ``None``) the global marshal byte meter."""
    global _MARSHAL_METER
    _MARSHAL_METER = meter


def get_marshal_meter():
    return _MARSHAL_METER


class CdrEncoder:
    """Append-only CDR output stream."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    # -- low-level --------------------------------------------------------------

    def align(self, n: int) -> None:
        pad = (-len(self._buf)) % n
        if pad:
            self._buf.extend(b"\0" * pad)

    def put_primitive(self, tc: PrimitiveTC, value: Any) -> None:
        self.align(tc.size)
        if tc.name == "char":
            if isinstance(value, str):
                if len(value) != 1:
                    raise MarshalError(f"char needs a 1-char string, got {value!r}")
                value = ord(value)
            self._buf.append(int(value) & 0xFF)
            return
        if tc.name == "boolean":
            self._buf.append(1 if value else 0)
            return
        if tc.name in INT_RANGES:
            iv = int(value)
            lo, hi = INT_RANGES[tc.name]
            if not (lo <= iv <= hi):
                raise MarshalError(f"{iv} out of range for {tc.name}")
            self._buf.extend(np.array([iv], dtype=tc.dtype).tobytes())
            return
        # float / double
        self._buf.extend(struct.pack("<f" if tc.size == 4 else "<d", float(value)))

    def put_ulong(self, value: int) -> None:
        self.align(4)
        if not (0 <= value <= 0xFFFFFFFF):
            raise MarshalError(f"ulong out of range: {value}")
        self._buf.extend(struct.pack("<I", value))

    def put_string(self, value: str, bound: int | None = None) -> None:
        data = value.encode("utf-8")
        if bound is not None and len(data) > bound:
            raise MarshalError(f"string of {len(data)} bytes exceeds bound {bound}")
        self.put_ulong(len(data) + 1)
        self._buf.extend(data)
        self._buf.append(0)

    def put_bulk(self, element: PrimitiveTC, values: Any) -> None:
        """Numpy fast path: length prefix + contiguous element buffer."""
        arr = np.ascontiguousarray(values, dtype=element.dtype)
        if arr.ndim != 1:
            raise MarshalError(f"bulk sequence must be 1-D, got shape {arr.shape}")
        self.put_ulong(arr.size)
        self.align(element.size)
        self._buf.extend(arr.tobytes())

    # -- typecode-driven -----------------------------------------------------------

    def encode(self, tc: TypeCode, value: Any) -> "CdrEncoder":
        if isinstance(tc, PrimitiveTC):
            self.put_primitive(tc, value)
        elif isinstance(tc, StringTC):
            if not isinstance(value, str):
                raise MarshalError(f"expected str, got {type(value).__name__}")
            self.put_string(value, tc.bound)
        elif isinstance(tc, EnumTC):
            idx = tc.index_of(value)
            if not (0 <= idx < len(tc.members)):
                raise MarshalError(f"enum {tc.name} has no member index {idx}")
            self.put_ulong(idx)
        elif isinstance(tc, SequenceTC):
            self._encode_sequence(tc, value)
        elif isinstance(tc, DSequenceTC):
            # A whole dsequence encoded locally is just its fragment form.
            self._encode_sequence(tc.fragment_tc(), value)
        elif isinstance(tc, StructTC):
            for fname, ftc in tc.fields:
                try:
                    fval = value[fname] if isinstance(value, dict) else getattr(value, fname)
                except (KeyError, AttributeError):
                    raise MarshalError(
                        f"struct {tc.name} value missing field {fname!r}"
                    ) from None
                self.encode(ftc, fval)
        elif isinstance(tc, ArrayTC):
            self._encode_array(tc, value)
        elif isinstance(tc, UnionTC):
            self._encode_union(tc, value)
        elif isinstance(tc, ObjectRefTC):
            self._encode_objref(tc, value)
        else:
            raise MarshalError(f"cannot encode typecode {tc!r}")
        return self

    def _encode_objref(self, tc: ObjectRefTC, value: Any) -> None:
        # Accept proxies (static or dynamic) and raw ObjectRefs.
        binding = getattr(value, "_binding", None)
        if binding is not None:
            value = binding.ref
        if value is None:
            self.put_primitive(PRIM_BOOL, False)   # nil reference
            return
        required = ("name", "repo_id", "kind", "program_id", "host",
                    "nthreads", "owner_rank", "endpoints")
        if not all(hasattr(value, f) for f in required):
            raise MarshalError(
                f"expected an object reference or proxy, got {value!r}"
            )
        self.put_primitive(PRIM_BOOL, True)
        self.put_string(value.name)
        self.put_string(value.repo_id)
        self.put_string(value.kind)
        self.put_ulong(value.program_id)
        self.put_string(value.host)
        self.put_ulong(value.nthreads)
        self.put_ulong(value.owner_rank)
        self.put_ulong(len(value.endpoints))
        for addr in value.endpoints:
            self.put_string(addr.host)
            self.put_ulong(addr.node)
            self.put_ulong(addr.port)
        dists = value.in_dists or {}
        self.put_ulong(len(dists))
        for (op, param), spec in sorted(dists.items()):
            if not isinstance(spec, str):
                raise MarshalError(
                    "object references with non-named in-distribution "
                    f"overrides cannot travel by value ({op}/{param}: {spec!r})"
                )
            self.put_string(op)
            self.put_string(param)
            self.put_string(spec)

    def _encode_array(self, tc: ArrayTC, value: Any) -> None:
        if is_numeric_primitive(tc.element):
            arr = np.ascontiguousarray(value, dtype=tc.element.dtype)
            if arr.shape != tc.dims:
                raise MarshalError(
                    f"array value of shape {arr.shape} does not match "
                    f"declared dims {tc.dims}"
                )
            self.align(tc.element.size)
            self._buf.extend(arr.tobytes())
            return
        flat_tc = tc.element

        def walk(dims, v):
            if len(v) != dims[0]:
                raise MarshalError(
                    f"array dimension mismatch: expected {dims[0]} "
                    f"elements, got {len(v)}"
                )
            for item in v:
                if len(dims) == 1:
                    self.encode(flat_tc, item)
                else:
                    walk(dims[1:], item)

        walk(tc.dims, value)

    def _encode_union(self, tc: UnionTC, value: Any) -> None:
        try:
            disc, arm_value = value
        except (TypeError, ValueError):
            raise MarshalError(
                f"union {tc.name} value must be a (discriminant, value) "
                f"pair, got {value!r}"
            ) from None
        arm = tc.arm_for(disc)
        if arm is None:
            raise MarshalError(
                f"union {tc.name} has no arm for discriminant {disc!r}"
            )
        self.encode(tc.discriminator, disc)
        self.encode(arm[1], arm_value)

    def _encode_sequence(self, tc: SequenceTC, value: Any) -> None:
        try:
            n = len(value)
        except TypeError:
            raise MarshalError(
                f"expected a sized sequence, got {type(value).__name__}"
            ) from None
        if tc.bound is not None and n > tc.bound:
            raise MarshalError(f"sequence of {n} exceeds bound {tc.bound}")
        # The bulk path is only valid for numeric primitive elements: an
        # ndarray handed to a sequence-of-structs (or similar) must go
        # element-wise so a wrong element type raises MarshalError.
        if is_numeric_primitive(tc.element) and not isinstance(value, (str, bytes)):
            self.put_bulk(tc.element, value)
            return
        self.put_ulong(n)
        for item in value:
            self.encode(tc.element, item)


def encode(tc: TypeCode, value: Any) -> bytes:
    """One-shot encode."""
    data = CdrEncoder().encode(tc, value).getvalue()
    if _MARSHAL_METER is not None:
        _MARSHAL_METER.on_encode(len(data))
    return data


def bulk_header_size(element: PrimitiveTC) -> int:
    """Offset of the first element byte in a bulk sequence encoding.

    A sequence encapsulation starts at offset 0, so the 4-byte ulong
    length sits at 0 and the element data begins at 4 rounded up to the
    element's alignment — identical to what ``put_ulong`` + ``align``
    produce on an empty stream, which is the wire-parity invariant the
    property suite checks.
    """
    return 4 + ((-4) % element.size)


_ULONG = struct.Struct("<I")
_PAD4 = b"\0\0\0\0"


def _make_views(views: dict, element: PrimitiveTC, data, header: int):
    """Build (and cache on the pooled buffer) the writable and read-only
    full-buffer ndarray views of a bucket for one element dtype.  Bucket
    capacities are multiples of 8, so every element size divides the
    region past the header exactly."""
    w = np.frombuffer(data, dtype=element.dtype, offset=header)
    r = w[:]
    r.flags.writeable = False
    pair = views[element.name] = (w, r)
    return pair


def encode_bulk_payload(element: PrimitiveTC, values, pool):
    """Zero-copy lane: encode a numeric fragment into a pooled buffer.

    Writes the ``ulong`` count, alignment pad, and the element data with a
    single vectorized copy (``np.asarray`` accepts non-contiguous input;
    the strided gather happens inside the one ndarray assignment).  The
    produced bytes are identical to ``CdrEncoder.put_bulk`` on a fresh
    stream.  Returns a :class:`~repro.cdr.buffers.PooledBuffer` lease the
    caller owns.
    """
    dtype = element.dtype
    arr = values if (type(values) is np.ndarray and values.dtype == dtype) \
        else np.asarray(values, dtype=dtype)
    if arr.ndim != 1:
        raise MarshalError(f"bulk sequence must be 1-D, got shape {arr.shape}")
    size = element.size
    header = 4 + ((-4) % size)
    n = arr.size
    total = header + n * size
    buf = pool.acquire(total)
    data = buf.data
    _ULONG.pack_into(data, 0, n)
    if header > 4:
        data[4:header] = _PAD4[:header - 4]
    pair = buf.views.get(element.name)
    if pair is None:
        pair = _make_views(buf.views, element, data, header)
    pair[0][:n] = arr
    stats = pool.stats
    stats.fast_encodes += 1
    stats.bytes_fast += total
    if _MARSHAL_METER is not None:
        _MARSHAL_METER.on_encode(total)
    return buf
