"""Object and Implementation Repositories (paper §2.2).

"Databases which define a naming domain for interacting objects.  On
activation, every object registers with an object repository, which is
searched when the client requests a connection to a specific object.  Each
repository is associated with a unique namespace; configuring clients and
servers to work with different repositories allows the programmer to split
the namespace for interacting objects."

The Implementation Repository stores, for non-persistent servers, how an
object's server is to be activated (the paper's ``register`` facility);
activation agents consume those records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..netsim import Address
from .errors import ObjectNotFound


@dataclass
class ObjectRef:
    """An interoperable object reference (the PARDIS IOR)."""

    name: str
    repo_id: str                    # interface repository id
    kind: str                       # "spmd" | "single"
    program_id: int
    host: str
    nthreads: int                   # server computing threads
    owner_rank: int                 # servicing thread for single objects
    endpoints: tuple[Address, ...]  # ORB endpoint of every server thread
    #: server-side overrides: (op, param) -> distribution kind for "in"
    #: arguments, set before registration (paper §3.2)
    in_dists: dict = field(default_factory=dict)

    @property
    def root_endpoint(self) -> Address:
        return self.endpoints[self.owner_rank if self.kind == "single" else 0]


class ObjectRepository:
    """Name -> :class:`ObjectRef` within one namespace.

    A name usually maps to one reference, but servers may register as
    *replicas* of an existing name (``register(ref, replica=True)``):
    the repository then holds an ordered replica list — possibly SPMD
    servers of differing widths — and :meth:`lookup` keeps returning the
    first registration while :meth:`lookup_all` exposes the whole group
    for the selection policies in :mod:`repro.services`.
    """

    def __init__(self, namespace: str = "default") -> None:
        self.namespace = namespace
        self._objects: dict[str, list[ObjectRef]] = {}

    def register(self, ref: ObjectRef, replica: bool = False) -> None:
        refs = self._objects.get(ref.name)
        if refs is None:
            self._objects[ref.name] = [ref]
            return
        if any(r.program_id == ref.program_id for r in refs):
            raise ValueError(
                f"object {ref.name!r} already registered in namespace "
                f"{self.namespace!r} by program {ref.program_id}"
            )
        if not replica:
            raise ValueError(
                f"object {ref.name!r} already registered in namespace "
                f"{self.namespace!r} (pass replica=True to add a replica)"
            )
        refs.append(ref)

    def unregister(self, name: str, program_id: Optional[int] = None) -> None:
        """Remove a name — or, with ``program_id``, just that program's
        replica of it.  Idempotent (unknown names are ignored)."""
        if program_id is None:
            self._objects.pop(name, None)
            return
        refs = self._objects.get(name)
        if refs is None:
            return
        refs[:] = [r for r in refs if r.program_id != program_id]
        if not refs:
            del self._objects[name]

    def lookup(self, name: str) -> ObjectRef:
        try:
            return self._objects[name][0]
        except KeyError:
            raise ObjectNotFound(
                f"no object {name!r} in namespace {self.namespace!r}"
            ) from None

    def lookup_all(self, name: str) -> tuple[ObjectRef, ...]:
        """Every live registration of ``name`` (empty when unknown)."""
        return tuple(self._objects.get(name, ()))

    def contains(self, name: str) -> bool:
        return name in self._objects

    def names(self) -> list[str]:
        return sorted(self._objects)


@dataclass
class ActivationRecord:
    """How to start the server that implements an object (paper: the
    ``register`` facility of the Implementation Repository)."""

    object_name: str
    server_main: Callable           # main(ctx) run on every computing thread
    host: str
    nprocs: int
    rts_factory: Optional[Callable] = None
    node_offset: int = 0
    program_name: Optional[str] = None
    args: tuple = ()


class ImplementationRepository:
    """Object name -> :class:`ActivationRecord`."""

    def __init__(self) -> None:
        self._records: dict[str, ActivationRecord] = {}

    def register(self, record: ActivationRecord) -> None:
        self._records[record.object_name] = record

    def lookup(self, name: str) -> Optional[ActivationRecord]:
        return self._records.get(name)

    def names(self) -> list[str]:
        return sorted(self._records)
