"""The PARDIS run-time-system interface (paper §2.2).

"The run-time system interface through which the ORB communicates with
clients and servers comprises communication primitives and data marshaling
calls specific to a given system.  The functional requirements are
restricted to a very small subset of basic message passing primitives."

That subset is this abstract class: node identity, tagged point-to-point
send/recv/probe, and a barrier.  Everything else (collectives, argument
transfer schedules, the ORB protocol) is layered on top, which is exactly
what lets PARDIS interoperate with packages built on different run-time
systems — reproduced here by three interchangeable implementations
(:class:`~repro.runtime.mpi.MPIRuntime`,
:class:`~repro.runtime.tulip.TulipRuntime`,
:class:`~repro.runtime.pooma_rts.PoomaRuntime`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Optional

from ..netsim import ANY
from .tags import check_user_tag

__all__ = ["ANY", "RtsMessage", "RuntimeSystem"]


@dataclass
class RtsMessage:
    """A message as delivered by :meth:`RuntimeSystem.recv`."""

    src: int
    tag: int
    payload: Any
    nbytes: int


class RuntimeSystem(abc.ABC):
    """Minimal message-passing contract between the ORB and a parallel
    program's computing threads.

    One instance exists per computing thread (rank).  ``send``/``recv``
    address peers by rank within the same program; tags below
    :data:`~repro.runtime.tags.PARDIS_TAG_BASE` belong to user code, the
    rest to PARDIS.
    """

    # -- identity -------------------------------------------------------------

    @property
    @abc.abstractmethod
    def rank(self) -> int:
        """This computing thread's index within the program (0-based)."""

    @property
    @abc.abstractmethod
    def nprocs(self) -> int:
        """Number of computing threads in the program."""

    @property
    @abc.abstractmethod
    def program(self):
        """The owning :class:`~repro.runtime.program.ParallelProgram`."""

    # -- point-to-point ---------------------------------------------------------

    @abc.abstractmethod
    def _send(self, dest: int, payload: Any, tag: int,
              nbytes: Optional[int]) -> None:
        """Backend send; ``tag`` already validated/reserved-checked."""

    @abc.abstractmethod
    def recv(self, src=ANY, tag=ANY) -> RtsMessage:
        """Blocking tag/source-matched receive from a program peer."""

    @abc.abstractmethod
    def iprobe(self, src=ANY, tag=ANY) -> bool:
        """True iff a matching message has already arrived."""

    def send(self, dest: int, payload: Any, tag: int = 0,
             nbytes: Optional[int] = None) -> None:
        """User-facing send: rejects tags in the PARDIS reserved range."""
        check_user_tag(tag)
        self._send(dest, payload, tag, nbytes)

    def send_reserved(self, dest: int, payload: Any, tag: int,
                      nbytes: Optional[int] = None) -> None:
        """PARDIS-internal send; permits reserved tags."""
        self._send(dest, payload, tag, nbytes)

    # -- time charging ------------------------------------------------------------

    @abc.abstractmethod
    def compute(self, seconds: float) -> None:
        """Charge ``seconds`` of virtual compute time to this thread."""

    @abc.abstractmethod
    def charge_flops(self, flops: float) -> None:
        """Charge compute time for ``flops`` operations at this node's rate."""

    @abc.abstractmethod
    def now(self) -> float:
        """This thread's current virtual time."""

    # -- synchronization -----------------------------------------------------------

    @abc.abstractmethod
    def barrier(self) -> None:
        """Collective barrier over all computing threads of the program."""
