"""Health-checked failover: retrying blocking invocations against
surviving replicas, suspect marking, and dead-replica re-activation."""

import pytest

from repro.core import (
    FaultInjectionInterceptor,
    OrbConfig,
    Simulation,
    SystemException,
    TransientException,
)
from repro.idl import compile_idl
from repro.services import DEAD, SUSPECT

IDL = """
    interface failsvc {
        long echo(in long x);
    };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="failover_stubs")


def steady_server(mod, name, log, delay=0.0):
    def server_main(ctx):
        if delay:
            ctx.compute(delay)

        class Impl(mod.failsvc_skel):
            def echo(self, x):
                log.append(x)
                return x

        ctx.poa.activate(Impl(), name, kind="spmd", replica=True)
        ctx.poa.impl_is_ready()

    return server_main


def dying_server(mod, name, log, serve=2):
    """Serves ``serve`` requests, then exits *without* deactivating — a
    crash that leaves its stale reference registered."""

    def server_main(ctx):
        class Impl(mod.failsvc_skel):
            def __init__(self):
                self.served = 0

            def echo(self, x):
                self.served += 1
                log.append(x)
                return x

        servant = Impl()
        ctx.poa.activate(servant, name, kind="spmd", replica=True)
        while servant.served < serve:
            ctx.poa.process_requests()
            ctx.compute(1e-3)

    return server_main


class TestFailover:
    def test_replica_death_fails_over_with_zero_lost_requests(self, mod):
        """Killing one replica mid-run: the in-flight request times out,
        the group marks the replica dead, the binding fails over to the
        survivor, and every accepted request still returns its result."""
        sim = Simulation(config=OrbConfig(request_timeout=0.05))
        obs = sim.attach_observer()
        dying_log, steady_log = [], []
        # The dying replica registers first, so round-robin binds to it.
        sim.server(dying_server(mod, "dup", dying_log, serve=2),
                   host="HOST_2", nprocs=1)
        sim.server(steady_server(mod, "dup", steady_log, delay=5e-3),
                   host="HOST_2", nprocs=1, node_offset=1)
        results = []

        def client(ctx):
            p = mod.failsvc._bind("dup", policy="round_robin")
            for i in range(6):
                results.append(p.echo(i))

        sim.client(client, host="HOST_1")
        sim.run()

        assert results == list(range(6))      # zero lost accepted requests
        assert dying_log == [0, 1]
        assert steady_log == [2, 3, 4, 5]
        group = sim.orb.replica_group("dup")
        assert group.failovers == 1
        assert group.deaths == 1
        dead = [pid for pid, h in group.health.items() if h == DEAD]
        assert len(dead) == 1
        assert "failover" in {s.phase for s in obs.spans}

    def test_transient_fault_marks_suspect_and_retries(self, mod):
        """A SystemException against a replica that is still running
        marks it SUSPECT (not dead) and the retry lands elsewhere."""
        sim = Simulation()
        faults = sim.register_interceptor(FaultInjectionInterceptor())
        rule = faults.inject("send_request", op="echo", times=1)
        log_a, log_b = [], []
        sim.server(steady_server(mod, "pair", log_a), host="HOST_2",
                   nprocs=1)
        sim.server(steady_server(mod, "pair", log_b), host="HOST_2",
                   nprocs=1, node_offset=1)
        results = []

        def client(ctx):
            p = mod.failsvc._bind("pair", policy="round_robin")
            results.append(p.echo(7))

        sim.client(client, host="HOST_1")
        sim.run()

        assert rule.fired == 1
        assert results == [7]
        group = sim.orb.replica_group("pair")
        assert group.failovers == 1
        assert group.suspects == 1
        assert group.deaths == 0
        health = set(group.health.values())
        assert SUSPECT in health and DEAD not in health
        # The retry was served by exactly one replica.
        assert sorted(len(log) for log in (log_a, log_b)) == [0, 1]

    def test_persistent_failure_exhausts_attempts(self, mod):
        """When every attempt fails the original SystemException finally
        propagates (after max_failover_attempts tries)."""
        sim = Simulation()
        faults = sim.register_interceptor(FaultInjectionInterceptor())
        rule = faults.inject("send_request", op="echo", times=None)
        sim.server(steady_server(mod, "cursed", []), host="HOST_2",
                   nprocs=1)
        out = {}

        def client(ctx):
            p = mod.failsvc._bind("cursed", policy="round_robin")
            with pytest.raises(SystemException, match="injected fault"):
                p.echo(1)
            out["attempts"] = rule.fired

        sim.client(client, host="HOST_1")
        sim.run()
        group = sim.orb.replica_group("cursed")
        assert out["attempts"] == group.max_failover_attempts

    def test_transient_exception_propagates_without_retry(self, mod):
        """An admission shed means the server is alive and answered
        deliberately — failover must not mask it."""
        sim = Simulation()
        faults = sim.register_interceptor(FaultInjectionInterceptor())
        rule = faults.inject("receive_reply", op="echo",
                             exc=TransientException("shed upstream"),
                             times=1)
        log = []
        sim.server(steady_server(mod, "busy", log), host="HOST_2",
                   nprocs=1)
        out = {}

        def client(ctx):
            p = mod.failsvc._bind("busy", policy="round_robin")
            with pytest.raises(TransientException, match="shed upstream"):
                p.echo(1)
            out["retry"] = p.echo(2)          # rule exhausted

        sim.client(client, host="HOST_1")
        sim.run()
        assert rule.fired == 1
        assert out["retry"] == 2
        assert sim.orb.replica_group("busy").failovers == 0

    def test_dead_replica_reactivated_through_agent(self, mod):
        """A dead replica with an implementation record is re-launched by
        the activation agent when the group buries it."""
        launches = []
        log = []

        def server_main(ctx):
            launches.append(ctx.now())
            generation = len(launches)

            class Impl(mod.failsvc_skel):
                def __init__(self):
                    self.served = 0

                def echo(self, x):
                    self.served += 1
                    log.append((generation, x))
                    return x

            servant = Impl()
            ctx.poa.activate(servant, "phoenix", kind="spmd", replica=True)
            while servant.served < 2:
                ctx.poa.process_requests()
                ctx.compute(1e-3)
            # Crash without deactivating.

        sim = Simulation(config=OrbConfig(request_timeout=0.05))
        sim.register_implementation("phoenix", server_main,
                                    host="HOST_2", nprocs=1)
        results = []

        def client(ctx):
            p = mod.failsvc._bind("phoenix", policy="round_robin")
            for i in range(4):
                results.append(p.echo(i))

        sim.client(client, host="HOST_1")
        sim.run()

        assert results == list(range(4))
        assert len(launches) == 2             # original + re-activation
        group = sim.orb.replica_group("phoenix")
        assert group.reactivations == 1
        assert group.deaths == 1
        # The second generation served the post-crash requests.
        assert [g for g, _ in log] == [1, 1, 2, 2]
        # Only the first generation was ever marked (health is sparse:
        # absent means assumed alive); the re-launched replica took over.
        assert set(group.health.values()) == {DEAD}
        new_ref = sim.orb.repository("default").lookup("phoenix")
        assert group.health.get(new_ref.program_id) is None
