"""Figure 4: centralized vs distributed single objects on a parallel server.

"Execution time from the client's perspective under two different
distributions of single objects on the parallel server.  In the
centralized distribution scheme, all list servers are associated with one
computing thread ... In the second scheme, the list server objects are
distributed to balance the client's requests."

The five list servers have deliberately unequal per-query costs and the
server balances them *by number, not by weight* (round-robin), which
reproduces the paper's note that "redistribution going from 2 to 3
processors resulted in diminished difference".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import OrbConfig, Simulation
from ..netsim import ATM_155, Host, Network, SGI_SHMEM
from ..apps.dnadb import (
    CATEGORIES,
    MATCH_QUERY_COST,
    dna_server_main,
    list_server_name,
)
from ..apps.interfaces import dna_stubs

#: the paper varies the server's processors 1..8
PAPER_PROCS = tuple(range(1, 9))

#: match rounds: sum(MATCH_QUERY_COST) * MATCH_ROUNDS = the paper's
#: "total time spent in single object queries ... 30 seconds"
MATCH_ROUNDS = 20

DEFAULT_QUERY = "ACGTAC"
DEFAULT_NSEQS = 400


@dataclass
class Fig4Row:
    procs: int
    t_centralized: float
    t_distributed: float
    difference: float      # centralized - distributed (the right-hand graph)


def _network(max_procs: int) -> Network:
    net = Network()
    net.add_host(Host("CLIENT", nodes=1, node_flops=5.2e6, intra=SGI_SHMEM))
    net.add_host(Host("SERVER", nodes=max_procs, node_flops=6.6e6,
                      intra=SGI_SHMEM))
    net.connect("CLIENT", "SERVER", ATM_155)
    return net


def _client_main(ctx, query: str, rounds: int, out: dict) -> None:
    """One client issuing non-blocking requests: a search on the SPMD
    database object, interleaved with match queries to the five single
    list-server objects (the paper's §4.2 client)."""
    mod = dna_stubs()
    dna_database = mod.dna_db._bind("dna_database")
    servers = {cat: mod.list_server._bind(list_server_name(cat))
               for cat in CATEGORIES}
    t0 = ctx.now()
    stat = dna_database.search_nb(query)
    for _ in range(rounds):
        futures = {cat: servers[cat].match_nb(query[:3])
                   for cat in CATEGORIES}
        for cat, fut in futures.items():
            fut.value()  # process obtained results
    stat.value()
    # final processing round
    for cat in CATEGORIES:
        servers[cat].match(query[:3])
    out["total"] = ctx.now() - t0


def run_one(procs: int, placement: str, n_seqs: int = DEFAULT_NSEQS,
            query: str = DEFAULT_QUERY, rounds: int = MATCH_ROUNDS,
            session=None) -> float:
    """Client-perspective time of one search under one placement."""
    sim = Simulation(network=_network(max(PAPER_PROCS)),
                     config=OrbConfig(max_outstanding=1))
    if session is not None:
        session.attach(sim, label=f"fig4 p={procs} {placement}")
    sim.server(dna_server_main, host="SERVER", nprocs=procs,
               args=(n_seqs, query, placement), name=f"dna-{placement}")
    out: dict = {}
    sim.client(_client_main, host="CLIENT", nprocs=1,
               args=(query, rounds, out))
    sim.run()
    return out["total"]


def run_fig4(procs=PAPER_PROCS, n_seqs: int = DEFAULT_NSEQS,
             query: str = DEFAULT_QUERY,
             rounds: int = MATCH_ROUNDS, session=None) -> list[Fig4Row]:
    """Regenerate both panels of Figure 4."""
    rows = []
    for p in procs:
        cent = run_one(p, "centralized", n_seqs, query, rounds, session)
        dist = run_one(p, "distributed", n_seqs, query, rounds, session)
        rows.append(Fig4Row(p, cent, dist, cent - dist))
    return rows


def total_match_work(rounds: int = MATCH_ROUNDS) -> float:
    """The fixed single-object query workload (30 s in the paper)."""
    return rounds * sum(MATCH_QUERY_COST.values())
