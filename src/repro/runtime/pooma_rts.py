"""POOMA-communication-abstraction implementation of the RTS interface.

The POOMA library [ABC+95] carries its own communication layer with
*context*-addressed asynchronous sends and tag-matched receives.  PARDIS's
third RTS binding (paper §2.2) wraps that abstraction; here we reproduce
its idiom — ``csend``/``creceive`` in context vocabulary — on top of the
same transport, so the mini-POOMA package in :mod:`repro.packages.pooma`
runs unchanged over it.
"""

from __future__ import annotations

from typing import Any, Optional

from ..netsim import ANY
from .interface import RtsMessage
from .mpi import MPIRuntime


class PoomaRuntime(MPIRuntime):
    """RTS binding in POOMA's context-based communication vocabulary."""

    #: POOMA calls a computing thread a "context".
    @property
    def context(self) -> int:
        return self.rank

    @property
    def ncontexts(self) -> int:
        return self.nprocs

    def csend(self, context: int, payload: Any, tag: int = 0,
              nbytes: Optional[int] = None) -> None:
        """Asynchronous context-addressed send (POOMA's ``CSend``)."""
        self.send(context, payload, tag=tag, nbytes=nbytes)

    def creceive(self, context=ANY, tag=ANY) -> RtsMessage:
        """Tag-matched receive from a context (POOMA's ``CReceive``)."""
        return self.recv(src=context, tag=tag)
