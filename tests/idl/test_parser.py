"""Parser tests, including the paper's verbatim IDL samples."""

import pytest

from repro.idl import parse
from repro.idl.lexer import IdlSyntaxError
from repro.idl import ast


def test_empty_spec():
    assert parse("").definitions == []


def test_typedef_primitive():
    spec = parse("typedef long counter;")
    td = spec.definitions[0]
    assert isinstance(td, ast.Typedef)
    assert td.name == "counter"
    assert td.type == ast.PrimType("long")


@pytest.mark.parametrize("idl,expect", [
    ("typedef unsigned long u;", "ulong"),
    ("typedef unsigned short u;", "ushort"),
    ("typedef long long u;", "longlong"),
    ("typedef unsigned long long u;", "ulonglong"),
])
def test_multiword_integer_types(idl, expect):
    assert parse(idl).definitions[0].type == ast.PrimType(expect)


def test_sequence_with_bound():
    spec = parse("typedef sequence<double, 16> v;")
    t = spec.definitions[0].type
    assert isinstance(t, ast.SeqType)
    assert t.element == ast.PrimType("double")
    assert isinstance(t.bound, ast.Literal) and t.bound.value == 16


def test_dsequence_full_form():
    spec = parse("typedef dsequence<double, 1024, BLOCK, CONCENTRATED> d;")
    t = spec.definitions[0].type
    assert isinstance(t, ast.DSeqType)
    assert (t.client_dist, t.server_dist) == ("BLOCK", "CONCENTRATED")


def test_dsequence_defaults_block():
    t = parse("typedef dsequence<double> d;").definitions[0].type
    assert (t.client_dist, t.server_dist) == ("BLOCK", "BLOCK")


def test_dsequence_unknown_distribution():
    with pytest.raises(IdlSyntaxError, match="distribution"):
        parse("typedef dsequence<double, 8, DIAGONAL> d;")


def test_nested_sequence():
    spec = parse("typedef dsequence<sequence<double>> matrix;")
    t = spec.definitions[0].type
    assert isinstance(t, ast.DSeqType)
    assert isinstance(t.element, ast.SeqType)


def test_interface_with_operations():
    spec = parse("""
        interface direct {
            void solve(in double tol, out long status);
        };
    """)
    iface = spec.definitions[0]
    assert isinstance(iface, ast.InterfaceDecl)
    op = iface.body[0]
    assert op.name == "solve"
    assert [(p.direction, p.name) for p in op.params] == [
        ("in", "tol"), ("out", "status")]
    assert isinstance(op.return_type, ast.VoidType)


def test_interface_inheritance():
    spec = parse("""
        interface base { void f(); };
        interface derived : base { void g(); };
    """)
    derived = spec.definitions[1]
    assert derived.bases == [ast.NamedType(("base",))]


def test_oneway_operation():
    spec = parse("interface i { oneway void ping(in long x); };")
    assert spec.definitions[0].body[0].oneway is True


def test_raises_clause():
    spec = parse("""
        exception failed { string why; };
        interface i { void f() raises (failed); };
    """)
    op = spec.definitions[1].body[0]
    assert op.raises == [ast.NamedType(("failed",))]


def test_attribute():
    spec = parse("interface i { readonly attribute long n; attribute double v; };")
    a, b = spec.definitions[0].body
    assert (a.name, a.readonly) == ("n", True)
    assert (b.name, b.readonly) == ("v", False)


def test_module_nesting():
    spec = parse("""
        module outer {
            module inner { typedef long t; };
            interface i { void f(in inner::t x); };
        };
    """)
    outer = spec.definitions[0]
    assert isinstance(outer, ast.ModuleDecl)
    inner, iface = outer.body
    assert isinstance(inner, ast.ModuleDecl)
    param = iface.body[0].params[0]
    assert param.type == ast.NamedType(("inner", "t"))


def test_struct_with_multiple_declarators():
    spec = parse("struct p { double x, y; long n; };")
    s = spec.definitions[0]
    assert [m.name for m in s.members] == ["x", "y", "n"]


def test_enum():
    spec = parse("enum color { RED, GREEN, BLUE };")
    assert spec.definitions[0].members == ["RED", "GREEN", "BLUE"]


def test_const_expression():
    spec = parse("const long N = (2 + 3) * 4;")
    c = spec.definitions[0]
    assert isinstance(c.value, ast.BinaryExpr)
    assert c.value.op == "*"


def test_pragma_attaches_to_next_typedef():
    spec = parse("""
        #pragma HPC++:vector
        #pragma POOMA:field
        typedef dsequence<double, 128> field;
    """)
    td = spec.definitions[0]
    assert [(p.package, p.target) for p in td.pragmas] == [
        ("HPC++", "vector"), ("POOMA", "field")]


def test_dangling_pragma_rejected():
    with pytest.raises(IdlSyntaxError, match="typedef"):
        parse("#pragma POOMA:field\n")


def test_malformed_pragma_rejected():
    with pytest.raises(IdlSyntaxError, match="pragma"):
        parse("#pragma whatever\ntypedef long t;")


def test_missing_semicolon():
    with pytest.raises(IdlSyntaxError, match="';'"):
        parse("typedef long t")


def test_paper_solver_idl():
    """The §4.1 interfaces parse as written (modulo the C++ template fix)."""
    spec = parse("""
        typedef sequence<double> row;
        typedef dsequence<row> matrix;
        typedef dsequence<double> vector;
        interface direct {
            void solve(in matrix A, in vector B, out vector X);
        };
        interface iterative {
            void solve(in double tol, in matrix A, in vector B, out vector X);
        };
    """)
    assert len(spec.definitions) == 5


def test_paper_dna_idl():
    spec = parse("""
        enum status { DONE, PARTIAL };
        typedef sequence<string> dna_list;
        interface list_server {
            void match(in string s, out dna_list l);
        };
        interface dna_db {
            status search(in string s);
        };
    """)
    assert len(spec.definitions) == 4


def test_paper_pipeline_idl():
    spec = parse("""
        const long N = 128;
        #pragma HPC++:vector
        #pragma POOMA:field
        typedef dsequence<double, N*N, BLOCK, BLOCK> field;
        interface visualizer {
            void show(in field myfield);
        };
        interface field_operations {
            void gradient(in field myfield);
        };
    """)
    assert len(spec.definitions) == 4
