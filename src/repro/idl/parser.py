"""Recursive-descent parser for the PARDIS IDL.

Grammar: the CORBA 2.0 IDL subset used in the paper (modules, interfaces
with inheritance, typedefs, consts, structs, enums, exceptions, attributes
and operations with in/out/inout parameters and ``raises`` clauses)
extended with ``dsequence`` distributed-sequence types and ``#pragma``
package mappings.
"""

from __future__ import annotations

import re
from typing import Optional

from . import ast
from .lexer import (
    IdlSyntaxError,
    T_CHAR,
    T_EOF,
    T_FLOAT,
    T_IDENT,
    T_INT,
    T_KEYWORD,
    T_PRAGMA,
    T_PUNCT,
    T_STRING,
    Token,
    tokenize,
    unescape_string,
)

_PRAGMA_RE = re.compile(r"#\s*pragma\s+([A-Za-z_][\w+]*)\s*:\s*([A-Za-z_]\w*)")

_PRIM_SIMPLE = {"octet", "boolean", "char", "float", "double"}
_DISTRIBUTIONS = {"BLOCK", "CYCLIC", "CONCENTRATED"}


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        self._pending_pragmas: list[ast.Pragma] = []

    # -- token helpers ---------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def error(self, message: str) -> IdlSyntaxError:
        t = self.tok
        shown = t.value or "<eof>"
        return IdlSyntaxError(f"{message}, found {shown!r}", t.line, t.col)

    def next(self) -> Token:
        t = self.tok
        self.pos += 1
        return t

    def at(self, type_: str, value: Optional[str] = None) -> bool:
        t = self.tok
        return t.type == type_ and (value is None or t.value == value)

    def accept(self, type_: str, value: Optional[str] = None) -> Optional[Token]:
        if self.at(type_, value):
            return self.next()
        return None

    def expect(self, type_: str, value: Optional[str] = None) -> Token:
        if not self.at(type_, value):
            want = value if value is not None else type_
            raise self.error(f"expected {want!r}")
        return self.next()

    def expect_close_angle(self) -> None:
        """Consume a closing ``>``, splitting a ``>>`` token in two so that
        ``dsequence<sequence<double>>`` parses (the classic C++ problem)."""
        if self.at(T_PUNCT, ">>"):
            t = self.tok
            self.tokens[self.pos] = Token(T_PUNCT, ">", t.line, t.col + 1)
            return
        self.expect(T_PUNCT, ">")

    # -- entry point --------------------------------------------------------------

    def parse(self) -> ast.Specification:
        defs = []
        while not self.at(T_EOF):
            d = self.parse_definition()
            if d is not None:
                defs.append(d)
        if self._pending_pragmas:
            p = self._pending_pragmas[0]
            raise IdlSyntaxError(
                f"#pragma {p.package}:{p.target} is not followed by a typedef",
                p.line, 1,
            )
        return ast.Specification(defs)

    # -- definitions -----------------------------------------------------------------

    def parse_definition(self):
        if self.at(T_PRAGMA):
            self._take_pragma()
            return None
        if self.at(T_KEYWORD, "module"):
            return self.parse_module()
        if self.at(T_KEYWORD, "interface"):
            return self.parse_interface()
        return self.parse_export()

    def _take_pragma(self) -> None:
        t = self.next()
        m = _PRAGMA_RE.match(t.value)
        if m is None:
            raise IdlSyntaxError(
                f"malformed pragma {t.value!r} (expected '#pragma PKG:name')",
                t.line, t.col,
            )
        self._pending_pragmas.append(ast.Pragma(m.group(1), m.group(2), t.line))

    def _claim_pragmas(self) -> list[ast.Pragma]:
        p, self._pending_pragmas = self._pending_pragmas, []
        return p

    def parse_module(self) -> ast.ModuleDecl:
        self.expect(T_KEYWORD, "module")
        name = self.expect(T_IDENT).value
        self.expect(T_PUNCT, "{")
        body = []
        while not self.at(T_PUNCT, "}"):
            d = self.parse_definition()
            if d is not None:
                body.append(d)
        self.expect(T_PUNCT, "}")
        self.expect(T_PUNCT, ";")
        return ast.ModuleDecl(name, body)

    def parse_interface(self) -> ast.InterfaceDecl:
        self.expect(T_KEYWORD, "interface")
        name = self.expect(T_IDENT).value
        bases: list[ast.NamedType] = []
        if self.accept(T_PUNCT, ":"):
            bases.append(ast.NamedType(self.parse_scoped_name()))
            while self.accept(T_PUNCT, ","):
                bases.append(ast.NamedType(self.parse_scoped_name()))
        self.expect(T_PUNCT, "{")
        body = []
        while not self.at(T_PUNCT, "}"):
            if self.at(T_PRAGMA):
                self._take_pragma()
                continue
            body.append(self.parse_export())
        self.expect(T_PUNCT, "}")
        self.expect(T_PUNCT, ";")
        return ast.InterfaceDecl(name, bases, body)

    def parse_export(self):
        if self.at(T_KEYWORD, "typedef"):
            return self.parse_typedef()
        if self.at(T_KEYWORD, "const"):
            return self.parse_const()
        if self.at(T_KEYWORD, "struct"):
            return self.parse_struct()
        if self.at(T_KEYWORD, "enum"):
            return self.parse_enum()
        if self.at(T_KEYWORD, "union"):
            return self.parse_union()
        if self.at(T_KEYWORD, "exception"):
            return self.parse_exception()
        if self.at(T_KEYWORD, "readonly") or self.at(T_KEYWORD, "attribute"):
            return self.parse_attribute()
        if (self.at(T_KEYWORD, "oneway") or self.at(T_KEYWORD, "void")
                or self._at_type_start()):
            return self.parse_operation()
        raise self.error("expected a definition")

    def _at_type_start(self) -> bool:
        t = self.tok
        if t.type == T_IDENT:
            return True
        if t.type == T_KEYWORD and (
            t.value in _PRIM_SIMPLE
            or t.value in ("short", "long", "unsigned", "string",
                           "sequence", "dsequence")
        ):
            return True
        return t.type == T_PUNCT and t.value == "::"

    def parse_typedef(self) -> ast.Typedef:
        pragmas = self._claim_pragmas()
        self.expect(T_KEYWORD, "typedef")
        type_ = self.parse_type()
        name, type_ = self.parse_declarator(type_)
        self.expect(T_PUNCT, ";")
        return ast.Typedef(name, type_, pragmas)

    def parse_declarator(self, base_type):
        """IDENT with optional fixed-array dimensions: ``name[4][4]``."""
        name = self.expect(T_IDENT).value
        dims = []
        while self.accept(T_PUNCT, "["):
            dims.append(self.parse_const_expr())
            self.expect(T_PUNCT, "]")
        if dims:
            return name, ast.ArrayType(base_type, tuple(dims))
        return name, base_type

    def parse_const(self) -> ast.ConstDecl:
        self.expect(T_KEYWORD, "const")
        type_ = self.parse_type()
        name = self.expect(T_IDENT).value
        self.expect(T_PUNCT, "=")
        value = self.parse_const_expr()
        self.expect(T_PUNCT, ";")
        return ast.ConstDecl(name, type_, value)

    def parse_struct(self) -> ast.StructDecl:
        self.expect(T_KEYWORD, "struct")
        name = self.expect(T_IDENT).value
        self.expect(T_PUNCT, "{")
        members = self._parse_members()
        self.expect(T_PUNCT, "}")
        self.expect(T_PUNCT, ";")
        if not members:
            raise self.error(f"struct {name!r} must have at least one member")
        return ast.StructDecl(name, members)

    def parse_exception(self) -> ast.ExceptionDecl:
        self.expect(T_KEYWORD, "exception")
        name = self.expect(T_IDENT).value
        self.expect(T_PUNCT, "{")
        members = self._parse_members()
        self.expect(T_PUNCT, "}")
        self.expect(T_PUNCT, ";")
        return ast.ExceptionDecl(name, members)

    def _parse_members(self) -> list[ast.StructMember]:
        members = []
        while not self.at(T_PUNCT, "}"):
            type_ = self.parse_type()
            name, full = self.parse_declarator(type_)
            members.append(ast.StructMember(name, full))
            while self.accept(T_PUNCT, ","):
                name, full = self.parse_declarator(type_)
                members.append(ast.StructMember(name, full))
            self.expect(T_PUNCT, ";")
        return members

    def parse_enum(self) -> ast.EnumDecl:
        self.expect(T_KEYWORD, "enum")
        name = self.expect(T_IDENT).value
        self.expect(T_PUNCT, "{")
        members = [self.expect(T_IDENT).value]
        while self.accept(T_PUNCT, ","):
            members.append(self.expect(T_IDENT).value)
        self.expect(T_PUNCT, "}")
        self.expect(T_PUNCT, ";")
        return ast.EnumDecl(name, members)

    def parse_union(self) -> ast.UnionDecl:
        """``union ID switch (type) { case ...: T a; default: U b; };``"""
        self.expect(T_KEYWORD, "union")
        name = self.expect(T_IDENT).value
        self.expect(T_KEYWORD, "switch")
        self.expect(T_PUNCT, "(")
        disc = self.parse_type()
        self.expect(T_PUNCT, ")")
        self.expect(T_PUNCT, "{")
        cases: list[ast.UnionCase] = []
        saw_default = False
        while not self.at(T_PUNCT, "}"):
            labels = []
            while True:
                if self.accept(T_KEYWORD, "case"):
                    labels.append(self.parse_const_expr())
                    self.expect(T_PUNCT, ":")
                elif self.at(T_KEYWORD, "default"):
                    t = self.next()
                    if saw_default:
                        raise IdlSyntaxError(
                            f"union {name!r} has more than one default arm",
                            t.line, t.col)
                    saw_default = True
                    labels.append("default")
                    self.expect(T_PUNCT, ":")
                else:
                    break
            if not labels:
                raise self.error("expected 'case' or 'default' in union")
            arm_type = self.parse_type()
            arm_name, arm_type = self.parse_declarator(arm_type)
            self.expect(T_PUNCT, ";")
            cases.append(ast.UnionCase(labels, arm_name, arm_type))
        self.expect(T_PUNCT, "}")
        self.expect(T_PUNCT, ";")
        if not cases:
            raise self.error(f"union {name!r} needs at least one arm")
        return ast.UnionDecl(name, disc, cases)

    def parse_attribute(self) -> ast.Attribute:
        readonly = self.accept(T_KEYWORD, "readonly") is not None
        self.expect(T_KEYWORD, "attribute")
        type_ = self.parse_type()
        name = self.expect(T_IDENT).value
        self.expect(T_PUNCT, ";")
        return ast.Attribute(name, type_, readonly)

    def parse_operation(self) -> ast.Operation:
        oneway = self.accept(T_KEYWORD, "oneway") is not None
        if self.accept(T_KEYWORD, "void"):
            ret: ast.TypeExpr = ast.VoidType()
        else:
            ret = self.parse_type()
        name = self.expect(T_IDENT).value
        self.expect(T_PUNCT, "(")
        params: list[ast.Param] = []
        if not self.at(T_PUNCT, ")"):
            params.append(self.parse_param())
            while self.accept(T_PUNCT, ","):
                params.append(self.parse_param())
        self.expect(T_PUNCT, ")")
        raises: list[ast.NamedType] = []
        if self.accept(T_KEYWORD, "raises"):
            self.expect(T_PUNCT, "(")
            raises.append(ast.NamedType(self.parse_scoped_name()))
            while self.accept(T_PUNCT, ","):
                raises.append(ast.NamedType(self.parse_scoped_name()))
            self.expect(T_PUNCT, ")")
        self.expect(T_PUNCT, ";")
        return ast.Operation(name, ret, params, oneway, raises)

    def parse_param(self) -> ast.Param:
        for direction in ("in", "out", "inout"):
            if self.accept(T_KEYWORD, direction):
                break
        else:
            raise self.error("expected parameter direction (in/out/inout)")
        type_ = self.parse_type()
        name = self.expect(T_IDENT).value
        return ast.Param(direction, type_, name)

    # -- types --------------------------------------------------------------------

    def parse_type(self) -> ast.TypeExpr:
        t = self.tok
        if t.type == T_KEYWORD:
            if t.value in _PRIM_SIMPLE:
                self.next()
                return ast.PrimType(t.value)
            if t.value == "short":
                self.next()
                return ast.PrimType("short")
            if t.value == "long":
                self.next()
                if self.accept(T_KEYWORD, "long"):
                    return ast.PrimType("longlong")
                return ast.PrimType("long")
            if t.value == "unsigned":
                self.next()
                if self.accept(T_KEYWORD, "short"):
                    return ast.PrimType("ushort")
                self.expect(T_KEYWORD, "long")
                if self.accept(T_KEYWORD, "long"):
                    return ast.PrimType("ulonglong")
                return ast.PrimType("ulong")
            if t.value == "string":
                self.next()
                bound = None
                if self.accept(T_PUNCT, "<"):
                    bound = self.parse_const_expr()
                    self.expect_close_angle()
                return ast.StringType(bound)
            if t.value == "sequence":
                self.next()
                self.expect(T_PUNCT, "<")
                elem = self.parse_type()
                bound = None
                if self.accept(T_PUNCT, ","):
                    bound = self.parse_const_expr()
                self.expect_close_angle()
                return ast.SeqType(elem, bound)
            if t.value == "dsequence":
                return self.parse_dsequence()
        if t.type == T_IDENT or (t.type == T_PUNCT and t.value == "::"):
            return ast.NamedType(self.parse_scoped_name())
        raise self.error("expected a type")

    def parse_dsequence(self) -> ast.DSeqType:
        self.expect(T_KEYWORD, "dsequence")
        self.expect(T_PUNCT, "<")
        elem = self.parse_type()
        bound = None
        cdist = "BLOCK"
        sdist = "BLOCK"
        if self.accept(T_PUNCT, ","):
            bound = self.parse_const_expr()
            if self.accept(T_PUNCT, ","):
                cdist = self._parse_distribution()
                if self.accept(T_PUNCT, ","):
                    sdist = self._parse_distribution()
        self.expect_close_angle()
        return ast.DSeqType(elem, bound, cdist, sdist)

    def _parse_distribution(self) -> str:
        t = self.expect(T_IDENT)
        if t.value not in _DISTRIBUTIONS:
            raise IdlSyntaxError(
                f"unknown distribution {t.value!r} "
                f"(expected one of {sorted(_DISTRIBUTIONS)})",
                t.line, t.col,
            )
        return t.value

    def parse_scoped_name(self) -> tuple[str, ...]:
        parts = []
        if self.accept(T_PUNCT, "::"):
            parts.append("")  # absolute path marker
        parts.append(self.expect(T_IDENT).value)
        while self.accept(T_PUNCT, "::"):
            parts.append(self.expect(T_IDENT).value)
        return tuple(parts)

    # -- const expressions ---------------------------------------------------------

    _BINOPS = [("|",), ("^",), ("&",), ("<<", ">>"), ("+", "-"),
               ("*", "/", "%")]

    def parse_const_expr(self, level: int = 0) -> ast.ConstExpr:
        if level == len(self._BINOPS):
            return self.parse_const_unary()
        left = self.parse_const_expr(level + 1)
        while self.tok.type == T_PUNCT and self.tok.value in self._BINOPS[level]:
            op = self.next().value
            right = self.parse_const_expr(level + 1)
            left = ast.BinaryExpr(op, left, right)
        return left

    def parse_const_unary(self) -> ast.ConstExpr:
        if self.tok.type == T_PUNCT and self.tok.value in ("-", "+", "~"):
            op = self.next().value
            return ast.UnaryExpr(op, self.parse_const_unary())
        return self.parse_const_primary()

    def parse_const_primary(self) -> ast.ConstExpr:
        t = self.tok
        if t.type == T_INT:
            self.next()
            return ast.Literal(int(t.value, 0))
        if t.type == T_FLOAT:
            self.next()
            return ast.Literal(float(t.value))
        if t.type == T_STRING:
            self.next()
            return ast.Literal(unescape_string(t.value))
        if t.type == T_CHAR:
            self.next()
            return ast.Literal(unescape_string(t.value))
        if t.type == T_KEYWORD and t.value in ("TRUE", "FALSE"):
            self.next()
            return ast.Literal(t.value == "TRUE")
        if self.accept(T_PUNCT, "("):
            inner = self.parse_const_expr()
            self.expect(T_PUNCT, ")")
            return inner
        if t.type == T_IDENT or (t.type == T_PUNCT and t.value == "::"):
            return ast.ConstRef(self.parse_scoped_name())
        raise self.error("expected a constant expression")


def parse(source: str) -> ast.Specification:
    """Parse IDL text into a :class:`~repro.idl.ast.Specification`."""
    return Parser(source).parse()
