"""Direct package mappings through the IDL compiler (paper §3.4/§4.3):
the same IDL compiled with -pooma, -hpcxx, or no option produces stubs
marshaling into POOMA fields, PSTL vectors, or standard PARDIS sequences.
"""

import numpy as np
import pytest

from repro.core import DistributedSequence, Simulation
from repro.idl import compile_idl
from repro.packages.pooma import Field, GridLayout
from repro.packages.pstl import DVector
from repro.runtime import PoomaRuntime

PIPE_IDL = """
    const long N = 8;
    #pragma HPC++:vector
    #pragma POOMA:field
    typedef dsequence<double, N*N, BLOCK, BLOCK> field;
    interface field_operations {
        double checksum(in field myfield);
        void gradient(in field myfield, out field result);
    };
"""


@pytest.fixture(scope="module")
def mods():
    return {
        "pooma": compile_idl(PIPE_IDL, package="POOMA",
                             module_name="pipe_stubs_pooma"),
        "hpcxx": compile_idl(PIPE_IDL, package="HPC++",
                             module_name="pipe_stubs_hpcxx"),
        "plain": compile_idl(PIPE_IDL, module_name="pipe_stubs_plain"),
    }


def test_adapter_selection_depends_on_option(mods):
    p_pooma = mods["pooma"].field_operations._interface.op("checksum").params[0]
    p_hpcxx = mods["hpcxx"].field_operations._interface.op("checksum").params[0]
    p_plain = mods["plain"].field_operations._interface.op("checksum").params[0]
    from repro.packages.pooma.mapping import FieldAdapter
    from repro.packages.pstl.mapping import VectorAdapter

    assert isinstance(p_pooma.adapter, FieldAdapter)
    assert isinstance(p_hpcxx.adapter, VectorAdapter)
    assert p_plain.adapter is None


def run_mixed(server_mod, client_mod, server_np, client_np, client_main,
              servant_factory):
    """Server compiled with one mapping, client with another — components
    implemented in different systems interoperate (§4.3)."""
    sim = Simulation()
    seen = {}

    def server_main(ctx):
        ctx.poa.activate(servant_factory(server_mod, ctx, seen), "ops",
                         kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=server_np,
               rts_factory=PoomaRuntime)
    out = {}

    def wrapped(ctx):
        out[ctx.rank] = client_main(ctx)

    sim.client(wrapped, host="HOST_1", nprocs=client_np,
               rts_factory=PoomaRuntime)
    sim.run()
    return out, seen


def checksum_servant(mod, ctx, seen):
    class Impl(mod.field_operations_skel):
        def checksum(self, myfield):
            seen[ctx.rank] = type(myfield).__name__
            from repro.runtime import collectives as coll

            if isinstance(myfield, Field):
                local = float(np.sum(myfield.interior))
            elif isinstance(myfield, DVector):
                local = float(np.sum(myfield.local))
            else:
                local = float(np.sum(myfield.owned_data))
            return coll.allreduce(ctx.rts, local, lambda a, b: a + b)

        def gradient(self, myfield):
            raise NotImplementedError

    return Impl()


GRID = np.arange(64, dtype=float).reshape(8, 8)


def test_pooma_client_sends_field_pooma_server_receives_field(mods):
    mod = mods["pooma"]

    def client(ctx):
        lay = GridLayout(8, 8, ctx.nprocs)
        f = Field(lay, ctx.rank, ctx.rts, initial=GRID)
        ops = mod.field_operations._spmd_bind("ops")
        return ops.checksum(f)

    out, seen = run_mixed(mod, mod, 2, 2, client, checksum_servant)
    assert out == {0: GRID.sum(), 1: GRID.sum()}
    assert set(seen.values()) == {"Field"}


def test_hpcxx_server_with_pooma_client(mods):
    """POOMA diffusion feeding an HPC++ gradient server: the §4.3 pipeline
    pairing."""

    def client(ctx):
        lay = GridLayout(8, 8, ctx.nprocs)
        f = Field(lay, ctx.rank, ctx.rts, initial=GRID)
        ops = mods["pooma"].field_operations._spmd_bind("ops")
        return ops.checksum(f)

    out, seen = run_mixed(mods["hpcxx"], mods["pooma"], 2, 2, client,
                          checksum_servant)
    assert out == {0: GRID.sum(), 1: GRID.sum()}
    assert set(seen.values()) == {"DVector"}


def test_plain_stubs_yield_distributed_sequences(mods):
    mod = mods["plain"]

    def client(ctx):
        v = mod.field(GRID.reshape(-1))
        assert isinstance(v, DistributedSequence)
        ops = mod.field_operations._spmd_bind("ops")
        return ops.checksum(v)

    out, seen = run_mixed(mod, mod, 2, 2, client, checksum_servant)
    assert out == {0: GRID.sum(), 1: GRID.sum()}
    assert set(seen.values()) == {"DistributedSequence"}


def test_field_out_param_round_trip(mods):
    mod = mods["pooma"]

    def servant_factory(smod, ctx, seen):
        class Impl(smod.field_operations_skel):
            def checksum(self, myfield):
                raise NotImplementedError

            def gradient(self, myfield):
                out = Field(myfield.layout, myfield.rank, ctx.rts)
                out.interior = myfield.interior * 2.0
                return out

        return Impl()

    def client(ctx):
        lay = GridLayout(8, 8, ctx.nprocs)
        f = Field(lay, ctx.rank, ctx.rts, initial=GRID)
        ops = mod.field_operations._spmd_bind("ops")
        result = ops.gradient(f)
        assert isinstance(result, Field)
        np.testing.assert_array_equal(
            result.interior,
            2.0 * GRID[lay.row_start(ctx.rank):lay.row_stop(ctx.rank)],
        )
        return True

    out, _ = run_mixed(mod, mod, 2, 2, client, servant_factory)
    assert out == {0: True, 1: True}


def test_dseq_factory_with_adapter_builds_field(mods):
    """The generated `field(...)` typedef factory honours the mapping."""
    sim = Simulation()
    result = {}

    def main(ctx):
        f = mods["pooma"].field(np.ones(64))
        result["type"] = type(f).__name__
        result["shape"] = f.shape

    sim.client(main, host="HOST_1", nprocs=1, rts_factory=PoomaRuntime)
    sim.run()
    assert result == {"type": "Field", "shape": (8, 8)}


def test_nonsquare_length_needs_explicit_shape():
    from repro.packages.pooma.mapping import FieldAdapter

    ad = FieldAdapter()
    with pytest.raises(ValueError, match="square"):
        ad._grid_shape(12)
    ad2 = FieldAdapter(shape=(3, 4))
    assert ad2._grid_shape(12) == (3, 4)
    with pytest.raises(ValueError, match="match"):
        ad2._grid_shape(13)
