"""Tests (incl. property-based) for collectives layered on the RTS."""

import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import collectives as coll
from repro.runtime import MPIRuntime

from .conftest import make_world


def run_spmd(nprocs, main, nodes=None):
    world = make_world(nodes=nodes or max(nprocs, 2))
    prog = world.launch(main, host="hostA", nprocs=nprocs,
                        rts_factory=MPIRuntime)
    world.run()
    return prog.results


SIZES = [1, 2, 3, 4, 5, 8]


@pytest.mark.parametrize("nprocs", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_all_ranks_get_root_value(nprocs, root):
    root = nprocs - 1 if root == "last" else 0

    def main(rts):
        value = f"payload-{rts.rank}" if rts.rank == root else None
        return coll.bcast(rts, value, root=root)

    assert run_spmd(nprocs, main) == [f"payload-{root}"] * nprocs


@pytest.mark.parametrize("nprocs", SIZES)
def test_gather_collects_in_rank_order(nprocs):
    def main(rts):
        return coll.gather(rts, rts.rank * 10, root=0)

    res = run_spmd(nprocs, main)
    assert res[0] == [i * 10 for i in range(nprocs)]
    assert all(r is None for r in res[1:])


@pytest.mark.parametrize("nprocs", SIZES)
def test_scatter_distributes_in_rank_order(nprocs):
    def main(rts):
        values = [f"piece{i}" for i in range(rts.nprocs)] if rts.rank == 0 else None
        return coll.scatter(rts, values, root=0)

    assert run_spmd(nprocs, main) == [f"piece{i}" for i in range(nprocs)]


def test_scatter_wrong_length_raises():
    def main(rts):
        with pytest.raises(ValueError):
            coll.scatter(rts, [1], root=0)

    run_spmd(2, lambda rts: main(rts) if rts.rank == 0 else
             None)  # only root validates; avoid deadlock by not scattering


@pytest.mark.parametrize("nprocs", SIZES)
def test_allgather(nprocs):
    def main(rts):
        return coll.allgather(rts, rts.rank ** 2)

    expected = [i ** 2 for i in range(nprocs)]
    assert run_spmd(nprocs, main) == [expected] * nprocs


@pytest.mark.parametrize("nprocs", SIZES)
def test_reduce_sum(nprocs):
    def main(rts):
        return coll.reduce(rts, rts.rank + 1, operator.add, root=0)

    res = run_spmd(nprocs, main)
    assert res[0] == nprocs * (nprocs + 1) // 2


@pytest.mark.parametrize("nprocs", SIZES)
def test_allreduce_max(nprocs):
    def main(rts):
        return coll.allreduce(rts, (rts.rank * 7) % 5, max)

    expected = max((i * 7) % 5 for i in range(nprocs))
    assert run_spmd(nprocs, main) == [expected] * nprocs


@pytest.mark.parametrize("nprocs", SIZES)
def test_alltoall(nprocs):
    def main(rts):
        return coll.alltoall(rts, [(rts.rank, d) for d in range(rts.nprocs)])

    res = run_spmd(nprocs, main)
    for dst in range(nprocs):
        assert res[dst] == [(src, dst) for src in range(nprocs)]


def test_alltoall_wrong_length_raises():
    def main(rts):
        if rts.rank == 0:
            with pytest.raises(ValueError):
                coll.alltoall(rts, [1, 2, 3])

    run_spmd(1, main)


def test_back_to_back_collectives_do_not_alias():
    """Consecutive collectives must not steal each other's messages."""

    def main(rts):
        a = coll.bcast(rts, "first" if rts.rank == 0 else None, root=0)
        b = coll.bcast(rts, "second" if rts.rank == 0 else None, root=0)
        c = coll.gather(rts, rts.rank, root=0)
        return (a, b, c)

    res = run_spmd(4, main)
    assert all(r[0] == "first" and r[1] == "second" for r in res)
    assert res[0][2] == [0, 1, 2, 3]


@settings(max_examples=20, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=6),
    values=st.lists(st.integers(-1000, 1000), min_size=6, max_size=6),
)
def test_property_reduce_equals_python_sum(nprocs, values):
    def main(rts):
        return coll.allreduce(rts, values[rts.rank], operator.add)

    expected = sum(values[:nprocs])
    assert run_spmd(nprocs, main) == [expected] * nprocs


@settings(max_examples=20, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=6),
    root=st.integers(min_value=0, max_value=5),
    payload=st.one_of(st.integers(), st.text(max_size=20),
                      st.lists(st.integers(), max_size=5)),
)
def test_property_bcast_delivers_exactly_root_value(nprocs, root, payload):
    root = root % nprocs

    def main(rts):
        v = payload if rts.rank == root else None
        return coll.bcast(rts, v, root=root)

    assert run_spmd(nprocs, main) == [payload] * nprocs
