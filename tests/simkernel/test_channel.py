"""Tests for timestamped channels."""

import pytest

from repro.simkernel import Channel, DeadlockError, SimKernel


def test_receive_already_arrived_message():
    k = SimKernel()
    ch = Channel(k)
    got = {}

    def sender():
        ch.push("hello", arrival=0.0)

    def receiver():
        k.advance(1.0)
        env = ch.receive()
        got["payload"] = env.payload
        got["time"] = k.now()

    k.spawn(sender)
    k.spawn(receiver)
    k.run()
    assert got == {"payload": "hello", "time": 1.0}


def test_receive_blocks_until_arrival():
    k = SimKernel()
    ch = Channel(k)
    got = {}

    def sender():
        k.advance(2.0)
        ch.push("late", arrival=5.0)

    def receiver():
        env = ch.receive()
        got["payload"] = env.payload
        got["time"] = k.now()

    k.spawn(receiver)
    k.spawn(sender)
    k.run()
    assert got == {"payload": "late", "time": 5.0}


def test_messages_received_in_arrival_order_not_send_order():
    k = SimKernel()
    ch = Channel(k)
    order = []

    def sender():
        ch.push("second", arrival=10.0)
        ch.push("first", arrival=3.0)

    def receiver():
        for _ in range(2):
            order.append(ch.receive().payload)

    k.spawn(sender)
    k.spawn(receiver)
    k.run()
    assert order == ["first", "second"]


def test_equal_arrival_preserves_send_order():
    k = SimKernel()
    ch = Channel(k)
    order = []

    def sender():
        for i in range(5):
            ch.push(i, arrival=1.0)

    def receiver():
        for _ in range(5):
            order.append(ch.receive().payload)

    k.spawn(sender)
    k.spawn(receiver)
    k.run()
    assert order == [0, 1, 2, 3, 4]


def test_matched_receive_skips_nonmatching():
    k = SimKernel()
    ch = Channel(k)
    got = []

    def sender():
        ch.push({"tag": 1, "v": "a"}, arrival=0.0)
        ch.push({"tag": 2, "v": "b"}, arrival=0.0)

    def receiver():
        env = ch.receive(match=lambda e: e.payload["tag"] == 2)
        got.append(env.payload["v"])
        env = ch.receive()
        got.append(env.payload["v"])

    k.spawn(sender)
    k.spawn(receiver)
    k.run()
    assert got == ["b", "a"]


def test_poll_returns_none_when_empty_or_in_flight():
    k = SimKernel()
    ch = Channel(k)
    results = []

    def body():
        results.append(ch.poll())          # empty
        ch.push("x", arrival=5.0)
        results.append(ch.poll())          # in flight (now=0 < 5)
        k.advance(5.0)
        results.append(ch.poll().payload)  # arrived

    k.spawn(body)
    k.run()
    assert results == [None, None, "x"]


def test_peek_does_not_consume():
    k = SimKernel()
    ch = Channel(k)

    def body():
        ch.push("x", arrival=0.0)
        assert ch.peek().payload == "x"
        assert ch.peek().payload == "x"
        assert ch.poll().payload == "x"
        assert ch.peek() is None

    k.spawn(body)
    k.run()


def test_receiver_woken_by_earlier_message_while_waiting_for_later():
    """A receiver blocked on a message arriving at t=10 must take a message
    arriving at t=4 that is sent while it sleeps."""
    k = SimKernel()
    ch = Channel(k)
    order = []

    def slow_sender():
        ch.push("slow", arrival=10.0)

    def fast_sender():
        k.advance(1.0)
        ch.push("fast", arrival=4.0)

    def receiver():
        order.append((ch.receive().payload, k.now()))
        order.append((ch.receive().payload, k.now()))

    k.spawn(slow_sender)
    k.spawn(receiver)
    k.spawn(fast_sender)
    k.run()
    assert order == [("fast", 4.0), ("slow", 10.0)]


def test_two_receivers_each_get_one_message():
    k = SimKernel()
    ch = Channel(k)
    got = []

    def receiver(name):
        got.append((name, ch.receive().payload))

    def sender():
        k.advance(1.0)
        ch.push("m1", arrival=2.0)
        ch.push("m2", arrival=3.0)

    k.spawn(receiver, "r1")
    k.spawn(receiver, "r2")
    k.spawn(sender)
    k.run()
    assert sorted(p for _, p in got) == ["m1", "m2"]


def test_receive_with_no_sender_deadlocks():
    k = SimKernel()
    ch = Channel(k)
    k.spawn(lambda: ch.receive(), name="lonely")
    with pytest.raises(DeadlockError, match="lonely"):
        k.run()


def test_channel_len():
    k = SimKernel()
    ch = Channel(k)

    def body():
        assert len(ch) == 0
        ch.push(1, arrival=0.0)
        ch.push(2, arrival=9.0)
        assert len(ch) == 2
        ch.poll()
        assert len(ch) == 1

    k.spawn(body)
    k.run()


def test_meta_carried_through():
    k = SimKernel()
    ch = Channel(k)

    def body():
        ch.push("payload", arrival=0.0, src=3, tag=7)
        env = ch.receive()
        assert env.meta == {"src": 3, "tag": 7}

    k.spawn(body)
    k.run()
