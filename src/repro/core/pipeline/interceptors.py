"""Portable request interceptors (CORBA's portable-interceptor model).

Cross-cutting request services — tracing, deadline propagation, fault
injection, retry policies — hook the request path through a
:class:`RequestInterceptor` registered on the ORB's
:class:`InterceptorChain`, not through inline guards in the engine.  The
chain exposes the five classic interception points:

========================= ====== =========================================
point                     side   fires
========================= ====== =========================================
``send_request``          client after marshaling, before the header and
                                 argument fragments are injected; may add
                                 request ``service_contexts`` or abort the
                                 invocation by raising
``receive_reply``         client after a successful reply is fully
                                 assembled, before futures resolve; raising
                                 turns the success into a failure
``receive_exception``     client when the request fails (error reply, peer
                                 failure, timeout, or send-time abort); may
                                 replace the exception by raising
``receive_request``       server after operation resolution, before
                                 argument collection and the servant call;
                                 raising *sheds* the request (error reply,
                                 orphaned fragments dead-lettered)
``send_reply``            server before the reply header leaves the
                                 authoring thread; may add reply
                                 ``service_contexts``
``finish_request``        server when the dispatched request reaches a
                                 terminal state on this thread — success,
                                 shed, or servant failure alike.  Always
                                 paired with ``receive_request``;
                                 exceptions raised here are swallowed
                                 (the request has already completed)
========================= ====== =========================================

``service_contexts`` is a plain ``str -> picklable`` dict carried on
:class:`~repro.core.request.RequestHeader` and
:class:`~repro.core.request.ReplyHeader` (GIOP's ServiceContextList).

Interceptors may additionally implement the *span sink* protocol
(``on_span`` / ``on_request_started`` / ``on_request_finished``) to
receive the request-lifecycle phases the state machines emit; this is how
:class:`repro.tools.observe.RequestObserver` attaches.  An empty chain
keeps every hook site at one attribute load plus a truthiness check, so
the hot path is unaffected until an interceptor is registered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import BindingError
from ..interfacedef import OpDef
from ..request import ReplyHeader, RequestHeader

__all__ = [
    "ClientRequestInfo",
    "InterceptorChain",
    "RequestInterceptor",
    "ServerRequestInfo",
    "CLIENT_POINTS",
    "SERVER_POINTS",
    "POINTS",
]

CLIENT_POINTS = ("send_request", "receive_reply", "receive_exception")
SERVER_POINTS = ("receive_request", "send_reply", "finish_request")
POINTS = CLIENT_POINTS + SERVER_POINTS

#: span-sink protocol methods (the observability seam)
SPAN_HOOKS = ("on_span", "on_request_started", "on_request_finished")


@dataclass
class ClientRequestInfo:
    """What a client-side interceptor sees about one invocation."""

    ctx: Any                         # PardisContext of the invoking thread
    op: OpDef
    req_id: tuple
    object_name: str
    rank: int                        # client thread index in the invocation
    oneway: bool
    deadline: Optional[float]        # absolute virtual-time reply deadline
    #: True for a §4.1 local-bypass invocation: nothing travels on the
    #: wire, so ``send_request`` mutations of ``service_contexts`` go
    #: nowhere, but the points still fire around the direct call
    local: bool = False
    #: request service contexts; mutations in ``send_request`` travel on
    #: the RequestHeader
    service_contexts: dict = field(default_factory=dict)
    reply: Optional[ReplyHeader] = None
    result: Any = None
    exception: Optional[BaseException] = None

    @property
    def op_name(self) -> str:
        return self.op.name

    @property
    def reply_service_contexts(self) -> dict:
        return self.reply.service_contexts if self.reply is not None else {}


@dataclass
class ServerRequestInfo:
    """What a server-side interceptor sees about one dispatched request."""

    ctx: Any                         # PardisContext of the serving thread
    header: RequestHeader
    op: OpDef
    servant: Any
    is_root: bool                    # this thread authors the reply
    #: reply service contexts; mutations up to ``send_reply`` travel on
    #: the ReplyHeader
    reply_service_contexts: dict = field(default_factory=dict)
    result: Any = None
    exception: Optional[BaseException] = None

    @property
    def op_name(self) -> str:
        return self.header.op

    @property
    def object_name(self) -> str:
        return self.header.object_name

    @property
    def req_id(self) -> tuple:
        return self.header.req_id

    @property
    def service_contexts(self) -> dict:
        return self.header.service_contexts


class RequestInterceptor:
    """Base class: override any subset of the five points (and/or the
    span-sink hooks).  Unoverridden points cost nothing — the chain only
    dispatches to interceptors that actually implement a point."""

    name = "interceptor"

    # -- client points -----------------------------------------------------

    def send_request(self, info: ClientRequestInfo) -> None:
        """Before the request leaves the client; raising aborts it."""

    def receive_reply(self, info: ClientRequestInfo) -> None:
        """After a successful reply, before futures resolve."""

    def receive_exception(self, info: ClientRequestInfo) -> None:
        """When the request fails; ``info.exception`` is set."""

    # -- server points -----------------------------------------------------

    def receive_request(self, info: ServerRequestInfo) -> None:
        """Before argument collection; raising sheds the request."""

    def send_reply(self, info: ServerRequestInfo) -> None:
        """Before the reply header is sent by the authoring thread."""

    def finish_request(self, info: ServerRequestInfo) -> None:
        """The dispatched request reached a terminal state on this
        thread (fires exactly once per ``receive_request``, success and
        failure alike); raising here is swallowed."""

    # -- span sinks (observability seam) -----------------------------------

    def on_span(self, phase: str, op: str, req, program: str, rank: int,
                t0: float, t1: float, nbytes: int = 0) -> None:
        """One request-lifecycle phase completed on one thread."""

    def on_request_started(self, req, op: str, program: str, rank: int,
                           t0: float) -> None:
        """A request entered the pipeline."""

    def on_request_finished(self, req, program: str, rank: int, t1: float,
                            status: str = "ok") -> None:
        """A request reached a terminal status (ok/failed/oneway)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def _overrides(icept: RequestInterceptor, method: str) -> bool:
    return (getattr(type(icept), method, None)
            is not getattr(RequestInterceptor, method))


class InterceptorChain:
    """Ordered registry of interceptors with per-point dispatch lists.

    Points run in registration order.  ``active`` and ``wants_spans``
    are the two precomputed fast-path flags the state machines test on
    the hot path.
    """

    __slots__ = ("_interceptors", "_points", "_span_sinks",
                 "active", "wants_spans")

    def __init__(self, interceptors=()) -> None:
        self._interceptors: list[RequestInterceptor] = []
        self._points: dict[str, tuple] = {}
        self._span_sinks: tuple = ()
        self.active = False
        self.wants_spans = False
        self._rebuild()
        for icept in interceptors:
            self.add(icept)

    # -- registration ------------------------------------------------------

    def add(self, icept: RequestInterceptor) -> RequestInterceptor:
        if icept in self._interceptors:
            raise BindingError(f"{icept!r} is already registered")
        self._interceptors.append(icept)
        self._rebuild()
        return icept

    def remove(self, icept: RequestInterceptor) -> None:
        try:
            self._interceptors.remove(icept)
        except ValueError:
            raise BindingError(f"{icept!r} is not registered") from None
        self._rebuild()

    def clear(self) -> None:
        self._interceptors.clear()
        self._rebuild()

    def _rebuild(self) -> None:
        self._points = {
            point: tuple(i for i in self._interceptors if _overrides(i, point))
            for point in POINTS
        }
        self._span_sinks = tuple(
            i for i in self._interceptors
            if any(_overrides(i, h) for h in SPAN_HOOKS)
        )
        self.active = bool(self._interceptors)
        self.wants_spans = bool(self._span_sinks)

    def __len__(self) -> int:
        return len(self._interceptors)

    def __iter__(self):
        return iter(self._interceptors)

    def __contains__(self, icept) -> bool:
        return icept in self._interceptors

    # -- point dispatch ----------------------------------------------------

    def send_request(self, info: ClientRequestInfo) -> None:
        for icept in self._points["send_request"]:
            icept.send_request(info)

    def receive_reply(self, info: ClientRequestInfo) -> None:
        for icept in self._points["receive_reply"]:
            icept.receive_reply(info)

    def receive_exception(self, info: ClientRequestInfo) -> None:
        for icept in self._points["receive_exception"]:
            icept.receive_exception(info)

    def receive_request(self, info: ServerRequestInfo) -> None:
        for icept in self._points["receive_request"]:
            icept.receive_request(info)

    def send_reply(self, info: ServerRequestInfo) -> None:
        for icept in self._points["send_reply"]:
            icept.send_reply(info)

    def finish_request(self, info: ServerRequestInfo) -> None:
        """Completion notification: every registered hook runs even if an
        earlier one raises (the request is already terminal, so failures
        here must not disturb the server loop)."""
        for icept in self._points["finish_request"]:
            try:
                icept.finish_request(info)
            except Exception:
                pass

    # -- span fan-out ------------------------------------------------------

    def span(self, phase: str, op: str, req, program: str, rank: int,
             t0: float, t1: float, nbytes: int = 0) -> None:
        for sink in self._span_sinks:
            sink.on_span(phase, op, req, program, rank, t0, t1, nbytes)

    def request_started(self, req, op: str, program: str, rank: int,
                        t0: float) -> None:
        for sink in self._span_sinks:
            sink.on_request_started(req, op, program, rank, t0)

    def request_finished(self, req, program: str, rank: int, t1: float,
                         status: str = "ok") -> None:
        for sink in self._span_sinks:
            sink.on_request_finished(req, program, rank, t1, status)

    def __repr__(self) -> str:
        names = ", ".join(i.name for i in self._interceptors)
        return f"<InterceptorChain [{names}]>"
