"""Operator tooling: packet tracing, timelines, summaries."""

from .metrics import ComputeMeter, attach_meter
from .trace import PacketTrace, TraceRecord, attach_tracer

__all__ = ["ComputeMeter", "PacketTrace", "TraceRecord", "attach_meter",
           "attach_tracer"]
