#!/usr/bin/env python3
"""Replicated services: replica groups, load-balanced binding with
health-checked failover, and server-side admission control with
client-side backpressure throttling (`repro.services`).

Three replica servers activate servants under one object name; clients
bind with a selection policy and hammer the group.  One replica crashes
mid-run — its clients fail over transparently.  Every replica runs
behind a bounded admission queue, so overflow is shed promptly instead
of queueing without bound, and the throttle interceptor paces the
shed clients.

Run:  python examples/replicated_service.py
"""

from repro.core import OrbConfig, Simulation, TransientException
from repro.idl import compile_idl
from repro.netsim import ATM_155, Host, Network
from repro.services import AdmissionController, ThrottleInterceptor

IDL = """
    interface worker {
        long crunch(in long x);
    };
"""
stubs = compile_idl(IDL, module_name="replicated_stubs")

SERVICE_TIME = 2e-3     # virtual seconds of servant compute per request
N_CLIENTS = 8
REQUESTS = 12


# 1. Replica servers: same name, ``replica=True``; each behind its own
#    admission controller.  The first replica is mortal — it serves a
#    few requests and then "crashes" (exits without deactivating).
def make_server(tag, mortal=False):
    def server_main(ctx):
        served = [0]

        class WorkerImpl(stubs.worker_skel):
            def crunch(self, x):
                served[0] += 1
                ctx.compute(SERVICE_TIME)
                return x

        ctx.poa.activate(WorkerImpl(), "worker", kind="spmd", replica=True)
        ctx.poa.set_admission(AdmissionController(capacity=2))
        print(f"[{tag}] up at t={ctx.now() * 1e3:.2f}ms")
        if not mortal:
            ctx.poa.impl_is_ready()
            return
        while served[0] < 6:
            ctx.poa.process_requests(limit=1)
            ctx.compute(1e-3)
        print(f"[{tag}] crashing at t={ctx.now() * 1e3:.2f}ms "
              f"after {served[0]} requests")

    return server_main


# 2. Clients: least-loaded binding (driven by the load reports the
#    admission controllers piggyback on every reply) + failover.
def client_main(ctx):
    p = stubs.worker._bind("worker", policy="least_loaded")
    ok = shed = 0
    for i in range(REQUESTS):
        try:
            assert p.crunch(i) == i
            ok += 1
        except TransientException:      # shed by admission control
            shed += 1
    print(f"[client {ctx.rank}] ok={ok} shed={shed}")


def main():
    # The §4.1 testbed, widened so every closed-loop client gets a node.
    net = Network()
    net.add_host(Host("HOST_1", nodes=N_CLIENTS, node_flops=5.2e6))
    net.add_host(Host("HOST_2", nodes=10, node_flops=6.6e6))
    net.connect("HOST_1", "HOST_2", ATM_155)
    sim = Simulation(network=net,
                     config=OrbConfig(max_outstanding=1,
                                      request_timeout=0.05))
    sim.register_interceptor(ThrottleInterceptor(seed=11))
    sim.server(make_server("replica-0", mortal=True), host="HOST_2",
               nprocs=1, name="replica-0")
    sim.server(make_server("replica-1"), host="HOST_2", nprocs=1,
               node_offset=1, name="replica-1")
    sim.server(make_server("replica-2"), host="HOST_2", nprocs=1,
               node_offset=2, name="replica-2")
    sim.client(client_main, host="HOST_1", nprocs=N_CLIENTS, name="load")
    sim.run()

    group = sim.orb.replica_group("worker")
    print(f"\nreplica group after the run: "
          f"selections={group.selections} failovers={group.failovers} "
          f"suspects={group.suspects} deaths={group.deaths}")
    print("health:", dict(sorted(group.health.items())))
    for adm in sim.orb.admission_controllers:
        print(f"admission[{adm.program_name}]: accepted={adm.accepted} "
              f"served={adm.served} shed={adm.shed} "
              f"max_depth={adm.max_depth}")


if __name__ == "__main__":
    main()
