"""Tests for the packet transport over the simulated network."""

import numpy as np
import pytest

from repro.netsim import (
    Address,
    Host,
    LinkProfile,
    Network,
    Transport,
    estimate_nbytes,
)
from repro.simkernel import SimKernel

FAST = LinkProfile("fast-test", latency=1e-3, bandwidth=1e6, cpu_overhead=0.0)


def make_world():
    k = SimKernel()
    net = Network()
    net.add_host(Host("a", nodes=2))
    net.add_host(Host("b", nodes=2))
    net.connect("a", "b", FAST)
    tp = Transport(k, net)
    return k, net, tp


def test_send_recv_roundtrip():
    k, net, tp = make_world()
    src = Address("a", 0)
    dst = Address("b", 0)
    got = {}

    def sender():
        ep = tp.open(src)
        ep.send(dst, b"x" * 1000, tag=7)

    def receiver():
        ep = tp.open(dst)
        pkt = ep.recv(tag=7)
        got["body"] = pkt.body
        got["time"] = k.now()

    k.spawn(receiver)
    k.spawn(sender)
    k.run()
    assert got["body"] == b"x" * 1000
    # 1000 bytes at 1 MB/s = 1 ms serialization + 1 ms latency
    assert got["time"] == pytest.approx(0.002)


def test_sync_send_charges_serialization_to_sender():
    k, net, tp = make_world()
    times = {}

    def sender():
        ep = tp.open(Address("a", 0))
        tp.open(Address("b", 0))
        ep.send(Address("b", 0), b"x" * 500_000, tag=0)  # 0.5 s serialization
        times["after_send"] = k.now()

    k.spawn(sender)
    k.run()
    assert times["after_send"] == pytest.approx(0.5)


def test_oneway_send_returns_after_overhead_only():
    k = SimKernel()
    net = Network()
    net.add_host(Host("a", nodes=1))
    net.add_host(Host("b", nodes=1))
    profile = LinkProfile("ow", latency=1e-3, bandwidth=1e6, cpu_overhead=2e-4)
    net.connect("a", "b", profile)
    tp = Transport(k, net)
    times = {}

    def sender():
        ep = tp.open(Address("a", 0))
        tp.open(Address("b", 0))
        ep.send(Address("b", 0), b"x" * 500_000, tag=0, oneway=True)
        times["after_send"] = k.now()

    def receiver():
        pkt = tp.open(Address("b", 0)).recv()
        times["arrival"] = k.now()

    k.spawn(receiver)
    k.spawn(sender)
    k.run()
    assert times["after_send"] == pytest.approx(2e-4)
    assert times["arrival"] == pytest.approx(2e-4 + 0.5 + 1e-3)


def test_tag_and_source_matching():
    k, net, tp = make_world()
    order = []

    def sender(node, tag):
        ep = tp.open(Address("a", node, port=1))
        ep.send(Address("b", 0), f"from{node}", tag=tag)

    def receiver():
        ep = tp.open(Address("b", 0))
        pkt = ep.recv(tag=9)
        order.append(pkt.body)
        pkt = ep.recv(src=Address("a", 0, port=1))
        order.append(pkt.body)

    k.spawn(receiver)
    k.spawn(sender, 0, 5)
    k.spawn(sender, 1, 9)
    k.run()
    assert order == ["from1", "from0"]


def test_iprobe_and_poll():
    k, net, tp = make_world()
    results = []

    def body():
        ep = tp.open(Address("a", 0))
        results.append(ep.iprobe())
        results.append(ep.poll())
        tp.open(Address("a", 1)).send(Address("a", 0), "ping", tag=3)
        k.advance(1.0)
        results.append(ep.iprobe(tag=3))
        results.append(ep.poll(tag=3).body)

    k.spawn(body)
    k.run()
    assert results == [False, None, True, "ping"]


def test_unopened_destination_raises():
    k, net, tp = make_world()

    def sender():
        ep = tp.open(Address("a", 0))
        ep.send(Address("b", 1), "void")

    k.spawn(sender)
    with pytest.raises(Exception, match="no endpoint"):
        k.run()


def test_node_out_of_range_rejected():
    k, net, tp = make_world()

    def body():
        tp.open(Address("a", 99))

    k.spawn(body)
    with pytest.raises(Exception, match="out of range"):
        k.run()


def test_open_is_idempotent():
    k, net, tp = make_world()

    def body():
        e1 = tp.open(Address("a", 0))
        e2 = tp.open(Address("a", 0))
        assert e1 is e2

    k.spawn(body)
    k.run()


def test_transport_counters():
    k, net, tp = make_world()

    def body():
        ep = tp.open(Address("a", 0))
        tp.open(Address("b", 0))
        ep.send(Address("b", 0), b"12345", tag=0)
        ep.send(Address("b", 0), b"123", tag=0)

    k.spawn(body)
    k.run()
    assert tp.packets_sent == 2
    assert tp.bytes_sent == 8


class TestEstimateNbytes:
    def test_bytes(self):
        assert estimate_nbytes(b"abc") == 3

    def test_numpy(self):
        assert estimate_nbytes(np.zeros(10)) == 80

    def test_scalars_and_none(self):
        assert estimate_nbytes(3) == 8
        assert estimate_nbytes(3.5) == 8
        assert estimate_nbytes(None) == 16

    def test_containers_grow(self):
        assert estimate_nbytes([1, 2, 3]) > estimate_nbytes([1])
        assert estimate_nbytes({"k": "v"}) > estimate_nbytes({})

    def test_string(self):
        assert estimate_nbytes("hello") == 21
