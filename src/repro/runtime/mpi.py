"""MPI-style implementation of the RTS interface.

Two-sided, tag-matched point-to-point messaging over the program's
transport endpoints — the shape of the MPI binding the paper implemented
first (§2.2, [For95]).
"""

from __future__ import annotations

from typing import Any, Optional

from ..netsim import ANY
from .interface import RtsMessage, RuntimeSystem
from .program import PORT_RTS, ParallelProgram


class MPIRuntime(RuntimeSystem):
    """Tag-matched two-sided messaging (the MPI RTS binding)."""

    def __init__(self, program: ParallelProgram, rank: int) -> None:
        self._program = program
        self._rank = rank
        self._kernel = program.world.kernel
        self._endpoint = program.world.transport.endpoint(
            program.address(rank, PORT_RTS)
        )

    # -- identity --------------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def nprocs(self) -> int:
        return self._program.nprocs

    @property
    def program(self) -> ParallelProgram:
        return self._program

    # -- point-to-point ----------------------------------------------------------

    def _send(self, dest: int, payload: Any, tag: int,
              nbytes: Optional[int]) -> None:
        self._endpoint.send(
            self._program.address(dest, PORT_RTS), payload,
            tag=tag, nbytes=nbytes,
        )

    def _resolve_src(self, src):
        if src is ANY:
            return ANY
        return self._program.address(src, PORT_RTS)

    def recv(self, src=ANY, tag=ANY) -> RtsMessage:
        pkt = self._endpoint.recv(src=self._resolve_src(src), tag=tag)
        return RtsMessage(self._program.rank_of(pkt.src), pkt.tag,
                          pkt.body, pkt.nbytes)

    def iprobe(self, src=ANY, tag=ANY) -> bool:
        return self._endpoint.iprobe(src=self._resolve_src(src), tag=tag)

    # -- time -------------------------------------------------------------------

    def compute(self, seconds: float) -> None:
        host = self._program.host_obj
        meter = self._program.world.services.get("compute_meter")
        if meter is not None and seconds > 0:
            meter.charge(host.name, self._program.address(self._rank).node,
                         seconds)
        if host.timeshared and seconds > 0:
            node = self._program.address(self._rank).node
            end = self._program.world.network.reserve_node(
                host.name, node, seconds, self._kernel.now())
            self._kernel.sleep_until(end)
        else:
            self._kernel.advance(seconds)

    def charge_flops(self, flops: float) -> None:
        self.compute(self._program.host_obj.compute_time(flops))

    def now(self) -> float:
        return self._kernel.now()

    # -- synchronization ------------------------------------------------------------

    def barrier(self) -> None:
        from .collectives import barrier

        barrier(self)
