#!/usr/bin/env python3
"""Distributed sequences up close (paper §3.2): distribution templates,
redistribution, no-ownership construction, location-transparent element
access over a one-sided runtime, and client-requested layouts for out
arguments.

Run:  python examples/distribution_templates.py
"""

import numpy as np

from repro.core import Distribution, DistributedSequence, Future, Simulation
from repro.idl import compile_idl
from repro.runtime import TulipRuntime

IDL = """
    typedef dsequence<double, 100000, BLOCK, CONCENTRATED> samples;
    interface histogrammer {
        void rebin(in samples data, out samples binned);
    };
"""
stubs = compile_idl(IDL, module_name="dist_demo_stubs")


def server_main(ctx):
    class Impl(stubs.histogrammer_skel):
        def rebin(self, data):
            # The IDL says this argument arrives CONCENTRATED: thread 0
            # holds everything, the others hold nothing.
            print(f"  [server {ctx.rank}] received {data.local_size} "
                  f"of {len(data)} elements ({data.dist.kind})")
            full = np.sort(np.asarray(data.owned_data)) if data.local_size \
                else np.zeros(0)
            dist = Distribution.concentrated(len(data), ctx.nprocs)
            return DistributedSequence.adopt(full, dist, ctx.rank)

    ctx.poa.activate(Impl(), "histo", kind="spmd")
    ctx.poa.impl_is_ready()


def client_main(ctx):
    rng = np.random.default_rng(42 + ctx.rank)

    # Templates: distribute 12 samples 3:1 over the two client threads.
    tmpl = Distribution.template(12, [3, 1])
    local = rng.uniform(0, 1, tmpl.local_size(ctx.rank))
    data = DistributedSequence.adopt(local, tmpl, ctx.rank)  # no-ownership
    print(f"[client {ctx.rank}] owns {data.local_size} samples "
          f"under template [3, 1]")

    # Redistribution: the same data, now round-robin.
    cyclic = data.redistribute(Distribution.cyclic(12, ctx.nprocs), ctx.rts)
    print(f"[client {ctx.rank}] after redistribute -> CYCLIC: "
          f"{cyclic.local_size} samples")

    # Location transparency: reading a non-local element goes through the
    # one-sided (Tulip) runtime.
    cyclic.enable_remote_access(ctx.rts)
    ctx.barrier()
    print(f"[client {ctx.rank}] element 5 (owned by thread "
          f"{cyclic.dist.owner_of(5)}) reads {cyclic[5]:.4f}")
    ctx.barrier()

    # Client-requested out distribution via a future placeholder.
    srv = stubs.histogrammer._spmd_bind("histo")
    binned = Future(distribution="BLOCK")
    srv.rebin_nb(data, binned)
    result = binned.value()
    print(f"[client {ctx.rank}] rebinned result arrived {result.dist.kind}: "
          f"{np.round(np.asarray(result.owned_data), 3)}")


def main():
    sim = Simulation()
    sim.server(server_main, host="HOST_2", nprocs=2,
               rts_factory=TulipRuntime, name="histo-server")
    sim.client(client_main, host="HOST_1", nprocs=2,
               rts_factory=TulipRuntime, name="client")
    sim.run()


if __name__ == "__main__":
    main()
