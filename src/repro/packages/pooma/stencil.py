"""Stencil operators on POOMA fields.

The §4.3 metaapplication: "a simplified simulation of 2-D diffusion based
on a 9-point stencil operation" and "an application which computes
magnitude gradient of the diffusion field in order to identify areas of
the most intensive changes".
"""

from __future__ import annotations

import numpy as np

from .field import Field

#: Flops per grid point of one 9-point stencil update (8 adds + 2 muls,
#: conservatively rounded the way 1997 hand counts did).
STENCIL_FLOPS_PER_POINT = 11

#: Flops per grid point of the magnitude-gradient computation.
GRADIENT_FLOPS_PER_POINT = 7


def nine_point_stencil(src: np.ndarray, alpha: float) -> np.ndarray:
    """One 9-point weighted-average update on the padded array ``src``
    (shape (m+2, n+2) view convention: callers pass the full ghosted
    array); returns the new interior (m, n)."""
    c = src[1:-1, 1:-1]
    ortho = src[:-2, 1:-1] + src[2:, 1:-1] + src[1:-1, :-2] + src[1:-1, 2:]
    diag = src[:-2, :-2] + src[:-2, 2:] + src[2:, :-2] + src[2:, 2:]
    return c + alpha * (ortho + 0.5 * diag - 6.0 * c)


def diffusion_step(field: Field, alpha: float = 0.1,
                   charge: bool = True) -> None:
    """Advance the diffusion field one time step (in place).

    Exchanges ghosts, applies the 9-point stencil to a laterally-padded
    copy (zero-flux side walls), and charges the stencil flops to the
    calling context.
    """
    field.exchange_ghosts()
    rows = field.interior.shape[0]
    nx = field.layout.nx
    padded = np.zeros((rows + 2, nx + 2))
    padded[:, 1:-1] = field.data
    padded[:, 0] = padded[:, 1]
    padded[:, -1] = padded[:, -2]
    # Physical top/bottom walls: mirror (zero-flux) instead of ghost data.
    if field.layout.row_start(field.rank) == 0:
        padded[0, :] = padded[1, :]
    if field.layout.row_stop(field.rank) == field.layout.ny:
        padded[-1, :] = padded[-2, :]
    field.interior = nine_point_stencil(padded, alpha)
    if charge and field.rts is not None:
        field.rts.charge_flops(rows * nx * STENCIL_FLOPS_PER_POINT)


def magnitude_gradient(values: np.ndarray, charge_rts=None) -> np.ndarray:
    """|grad f| with central differences (one-sided at the walls).

    Works on a plain 2-D array (the gradient component in the paper is a
    separate HPC++ program; it receives the whole field values of a
    time-step, not a ghosted POOMA field).
    """
    gy, gx = np.gradient(values)
    out = np.hypot(gy, gx)
    if charge_rts is not None:
        charge_rts.charge_flops(values.size * GRADIENT_FLOPS_PER_POINT)
    return out
