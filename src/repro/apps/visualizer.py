"""The visualizer component of the §4.3 pipeline: "a simple program for
viewing the result" — a sequential server that accepts whole fields and
renders them (here: accumulates frame statistics, charging a per-frame
render cost)."""

from __future__ import annotations

import numpy as np

from .interfaces import pipeline_stubs

#: calibration: virtual seconds to render one frame.
RENDER_COST = 4e-3


def visualizer_server_main(ctx, object_name: str = "visualizer",
                           frames: list | None = None):
    """Single-threaded visualizer server (standard C++ stubs: "a no
    options invocation will generate standard C++ stubs used with the
    visualizer")."""
    mod = pipeline_stubs(None)

    class VisualizerImpl(mod.visualizer_skel):
        def __init__(self):
            self.frames_shown = 0
            self.last_stats = None

        def show(self, myfield):
            data = np.asarray(myfield.owned_data, dtype=float)
            ctx.compute(RENDER_COST)
            self.frames_shown += 1
            self.last_stats = (float(data.min()) if data.size else 0.0,
                               float(data.max()) if data.size else 0.0)
            if frames is not None:
                frames.append(self.frames_shown)
            return None

    ctx.poa.activate(VisualizerImpl(), object_name, kind="spmd")
    ctx.poa.impl_is_ready()
