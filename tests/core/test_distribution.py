"""Tests for distribution templates, incl. property-based coverage checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distribution import Distribution


class TestBlock:
    def test_even_split(self):
        d = Distribution.block(8, 4)
        assert d.counts == [2, 2, 2, 2]
        assert d.intervals(1) == ((2, 4),)

    def test_remainder_goes_to_first_ranks(self):
        d = Distribution.block(10, 4)
        assert d.counts == [3, 3, 2, 2]

    def test_more_ranks_than_elements(self):
        d = Distribution.block(2, 5)
        assert d.counts == [1, 1, 0, 0, 0]
        assert d.intervals(3) == ()

    def test_empty_sequence(self):
        d = Distribution.block(0, 3)
        assert d.counts == [0, 0, 0]


class TestCyclic:
    def test_round_robin_ownership(self):
        d = Distribution.cyclic(7, 3)
        assert [d.owner_of(i) for i in range(7)] == [0, 1, 2, 0, 1, 2, 0]
        assert d.counts == [3, 2, 2]

    def test_single_rank_collapses_to_block(self):
        d = Distribution.cyclic(5, 1)
        assert d.intervals(0) == ((0, 5),)


class TestConcentrated:
    def test_default_owner(self):
        d = Distribution.concentrated(6, 3)
        assert d.counts == [6, 0, 0]

    def test_custom_owner(self):
        d = Distribution.concentrated(6, 3, owner=2)
        assert d.counts == [0, 0, 6]

    def test_owner_out_of_range(self):
        with pytest.raises(ValueError):
            Distribution.concentrated(6, 3, owner=3)


class TestTemplate:
    def test_proportions(self):
        d = Distribution.template(100, [3, 1])
        assert d.counts == [75, 25]

    def test_last_rank_absorbs_rounding(self):
        d = Distribution.template(10, [1, 1, 1])
        assert sum(d.counts) == 10

    def test_zero_weight_rank(self):
        d = Distribution.template(10, [1, 0, 1])
        assert d.counts[1] == 0
        assert sum(d.counts) == 10

    def test_invalid_proportions(self):
        with pytest.raises(ValueError):
            Distribution.template(10, [0, 0])
        with pytest.raises(ValueError):
            Distribution.template(10, [-1, 2])


class TestIndexMath:
    def test_global_local_roundtrip_block(self):
        d = Distribution.block(11, 3)
        for i in range(11):
            r, li = d.global_to_local(i)
            assert d.local_to_global(r, li) == i

    def test_global_local_roundtrip_cyclic(self):
        d = Distribution.cyclic(11, 3)
        for i in range(11):
            r, li = d.global_to_local(i)
            assert d.local_to_global(r, li) == i
            assert r == i % 3

    def test_out_of_range(self):
        d = Distribution.block(4, 2)
        with pytest.raises(IndexError):
            d.owner_of(4)
        with pytest.raises(IndexError):
            d.local_to_global(0, 99)

    def test_global_indices_order(self):
        d = Distribution.cyclic(7, 2)
        assert list(d.global_indices(0)) == [0, 2, 4, 6]


class TestValidation:
    def test_explicit_valid(self):
        d = Distribution.explicit([[(0, 3)], [(3, 7)]], 7)
        assert d.counts == [3, 4]

    def test_explicit_gap_rejected(self):
        with pytest.raises(ValueError, match="gap"):
            Distribution.explicit([[(0, 2)], [(3, 5)]], 5)

    def test_explicit_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            Distribution.explicit([[(0, 3)], [(2, 5)]], 5)

    def test_explicit_wrong_total_rejected(self):
        with pytest.raises(ValueError):
            Distribution.explicit([[(0, 3)]], 5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Distribution.block(-1, 2)
        with pytest.raises(ValueError):
            Distribution.block(4, 0)
        with pytest.raises(ValueError):
            Distribution.of_kind("DIAGONAL", 4, 2)


@settings(max_examples=80)
@given(
    n=st.integers(0, 200),
    p=st.integers(1, 9),
    kind=st.sampled_from(["BLOCK", "CYCLIC", "CONCENTRATED"]),
)
def test_property_every_distribution_is_a_partition(n, p, kind):
    d = Distribution.of_kind(kind, n, p)
    seen = {}
    for r in range(p):
        for i in d.global_indices(r):
            assert i not in seen, f"element {i} owned by {seen[i]} and {r}"
            seen[i] = r
    assert len(seen) == n
    assert sum(d.counts) == n
    if n:
        d.validate()


@settings(max_examples=50)
@given(
    n=st.integers(1, 200),
    weights=st.lists(st.integers(0, 5), min_size=1, max_size=6).filter(
        lambda w: sum(w) > 0
    ),
)
def test_property_template_partitions(n, weights):
    d = Distribution.template(n, weights)
    assert sum(d.counts) == n
    d.validate()


@settings(max_examples=50)
@given(n=st.integers(1, 100), p=st.integers(1, 8), seed=st.integers(0, 10**6))
def test_property_owner_matches_global_to_local(n, p, seed):
    import random

    rng = random.Random(seed)
    kind = rng.choice(["BLOCK", "CYCLIC"])
    d = Distribution.of_kind(kind, n, p)
    i = rng.randrange(n)
    r, _ = d.global_to_local(i)
    assert d.owner_of(i) == r
