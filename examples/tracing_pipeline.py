#!/usr/bin/env python3
"""Distributed tracing across the §4.3 pipeline: one request chain,
three worlds, one stitched tree.

The diffusion client invokes the gradient server, whose servant — while
*inside* the dispatched request — invokes its visualizer.  Each hop
carries a trace context in the request's service contexts (the CORBA
ServiceContextList), so the spans recorded by three independent worlds
stitch into a single causal tree with per-hop latency attribution.  A
metrics registry collects labeled counters and histograms from every
layer alongside.

Run:  python examples/tracing_pipeline.py [PROCS] [STEPS]
"""

import sys

from repro.core import Simulation
from repro.experiments.fig5_pipeline import _network
from repro.apps.diffusion import diffusion_client_main
from repro.apps.gradient import gradient_server_main
from repro.apps.visualizer import visualizer_server_main
from repro.tools import attach_metrics, attach_observer, attach_tracing


def main():
    procs = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    n = 64

    sim = Simulation(network=_network())
    obs = attach_observer(sim.world)
    tracer = attach_tracing(sim.world)
    registry = attach_metrics(sim.world)

    sim.server(visualizer_server_main, host="SGI_PC", nprocs=1,
               node_offset=9, args=("diff_visualizer",), name="viz-diff")
    sim.server(visualizer_server_main, host="INDY", nprocs=1,
               args=("grad_visualizer",), name="viz-grad")
    sim.server(gradient_server_main, host="SP2", nprocs=procs,
               args=(n, "grad_visualizer"), name="gradient")

    reports: dict = {}
    sim.client(diffusion_client_main, host="SGI_PC", nprocs=procs,
               args=(steps, 2, n, 0.1, "field_operations",
                     "diff_visualizer", reports), name="diffusion")
    sim.run()

    # Find a trace whose tree spans at least three programs — the
    # diffusion -> gradient -> visualizer chain.
    nodes = obs._trace_nodes()
    by_trace: dict = {}
    for node in nodes.values():
        by_trace.setdefault(node["trace_id"], set()).add(node["program"])
    deep = [tid for tid, progs in sorted(by_trace.items())
            if len(progs) >= 3]
    assert deep, "no cross-world chain completed; raise STEPS"

    print(f"{len(by_trace)} traces recorded; "
          f"{len(deep)} span(s) 3 programs or more\n")
    print("one stitched trace (client world -> gradient world -> "
          "visualizer world):\n")
    full = obs.trace_tree()
    block = [part for part in full.split("trace ")
             if part.startswith(deep[0])]
    print("trace " + block[0])

    print("tracer counters:")
    for name, value in sorted(tracer.counters.items()):
        print(f"  {name:<18} {value}")

    print("\nmetrics registry (excerpt of the Prometheus exposition):")
    for line in registry.prometheus_text().splitlines():
        if line.startswith(("pardis_requests_total",
                            "pardis_trace_events_total")):
            print(f"  {line}")


if __name__ == "__main__":
    main()
