"""Explicit request state machines for both halves of the ORB.

:class:`ClientRequestState` owns one invocation from marshaling to future
resolution (it replaces the interleaved bodies of the old ``invoke()``
and ``PendingRequest.progress``); :class:`ServerRequestState` owns one
dispatched request from header receipt to reply emission (replacing
``POA._handle``/``_send_results``).  Both drive fragment movement through
the :class:`~repro.core.pipeline.courier.FragmentCourier` and run the
ORB's portable-interceptor chain at the five CORBA points.

Failure semantics beyond the old engine:

* a request that times out completes (``progress`` returns ``True`` and
  the futures fail) instead of looking forever-incomplete;
* a non-root SPMD server thread whose part of a fragment-bearing request
  fails sends a supplementary ``peer_exception`` reply, so the client
  fails promptly instead of waiting for fragments that will never
  arrive;
* server-side rejections (unknown operation, bad request, interceptor
  shed) dead-letter the request's orphaned argument fragments so they
  can never be mis-matched by a later request.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional

from ...cdr import encode as cdr_encode
from ...runtime.program import PORT_ORB
from ...runtime.tags import (
    TAG_ARG_FRAGMENT,
    TAG_REPLY_HEADER,
    TAG_REQUEST_HEADER,
    TAG_RESULT_FRAGMENT,
)
from ..distribution import Distribution, resolve_dist_spec
from ..dsequence import DistributedSequence
from ..errors import (
    BindingError,
    SystemException,
    TransientException,
    UserException,
)
from ..futures import Future
from ..interfacedef import OpDef
from ..marshal import (
    as_distributed,
    decode_scalars,
    encode_out_request,
    encode_scalars,
    materialize_objrefs,
    resolve_out_dist,
    scalar_in_specs,
    scalar_result_specs,
    wrap_out,
)
from ..repository import ObjectRef
from ..request import (
    OVERLOAD_CONTEXT,
    ReplyHeader,
    RequestHeader,
    STATUS_OK,
    STATUS_PEER_EXC,
    STATUS_SYS_EXC,
    STATUS_USER_EXC,
    build as build_dist,
    describe as describe_dist,
)
from .courier import FragmentCourier, release_fragment
from .interceptors import ClientRequestInfo, ServerRequestInfo

__all__ = ["ClientRequestState", "ServerRequestState"]


def _server_in_dist(ref: ObjectRef, op: OpDef, param, n: int) -> Distribution:
    """Server-side layout of a distributed in argument: the registration
    override if the server set one, else the IDL default."""
    spec = ref.in_dists.get((op.name, param.name), param.tc.server_dist)
    return resolve_dist_spec(spec, n, ref.nthreads)


# ---------------------------------------------------------------------------
# Client half
# ---------------------------------------------------------------------------


class ClientRequestState:
    """One in-flight request on one client thread.

    States: ``new`` → (``start``) → ``awaiting_reply`` → ``collecting``
    → ``done``; oneway requests and send-time aborts jump straight to
    ``done``.  ``progress()`` is the pump the futures' blocking reads
    drive; it returns ``True`` exactly when the request is complete —
    including completion *by failure* (error reply, peer failure,
    timeout).
    """

    def __init__(self, binding, op: OpDef, in_values: tuple,
                 distributions: Optional[dict],
                 placeholders: tuple = ()) -> None:
        self.binding = binding
        self.ctx = binding.ctx
        self.op = op
        self.in_values = in_values
        self.distributions = distributions or {}
        self.placeholders = tuple(placeholders)
        if len(self.placeholders) > len(op.out_params):
            raise BindingError(
                f"{op.name}: {len(self.placeholders)} future placeholders "
                f"for {len(op.out_params)} out parameters"
            )
        self.chain = self.ctx.orb.interceptors
        self.state = "new"
        self.req_id = None
        self.info: Optional[ClientRequestInfo] = None
        self.out_requests: dict[str, tuple] = {}
        self.reply: Optional[ReplyHeader] = None
        self.done = False
        self.error: Optional[BaseException] = None
        self.result: Any = None
        self.result_future: Optional[Future] = None
        #: param -> [dist, storage, remaining fragment count]
        self._out_state: dict[str, list] = {}
        #: stashed supplementary peer-failure reply (see request.py)
        self._peer_failure: Optional[ReplyHeader] = None
        timeout = self.ctx.orb.config.request_timeout
        self.deadline = (self.ctx.now() + timeout
                         if timeout is not None else None)

    # -- emission ----------------------------------------------------------

    def start(self, blocking: bool):
        """Marshal and send the request.  Returns the result (blocking),
        the result future (non-blocking) or ``None`` (oneway)."""
        ctx = self.ctx
        binding = self.binding
        op = self.op
        chain = self.chain
        spans = chain.wants_spans
        cfg = ctx.orb.config
        my_idx = binding.client_index
        self.req_id = req_id = binding.next_req_id()

        t_marshal0 = ctx.now() if spans else 0.0
        if spans:
            chain.request_started(req_id, op.name, ctx.program.name, my_idx,
                                  t_marshal0)

        # Partition arguments.
        named_in = dict(zip((p.name for p in op.in_params), self.in_values))
        scalar_args = encode_scalars(
            scalar_in_specs(op),
            {p.name: named_in[p.name] for p in op.scalar_in_params},
        )
        dseq_args: dict[str, DistributedSequence] = {}
        dseq_meta: dict[str, tuple] = {}
        for param in op.dseq_in_params:
            ds = as_distributed(param, named_in[param.name],
                                binding.client_nthreads, my_idx)
            dseq_args[param.name] = ds
            dseq_meta[param.name] = describe_dist(ds.dist)

        out_requests: dict[str, tuple] = {}
        for param in op.dseq_out_params:
            req = self.distributions.get(param.name)
            if req is None:
                idx = op.out_params.index(param)
                if (idx < len(self.placeholders)
                        and self.placeholders[idx].distribution is not None):
                    req = self.placeholders[idx].distribution
            enc = encode_out_request(req)
            if enc is not None:
                out_requests[param.name] = enc
        self.out_requests = out_requests

        self.info = ClientRequestInfo(
            ctx=ctx, op=op, req_id=req_id, object_name=binding.ref.name,
            rank=my_idx, oneway=op.oneway, deadline=self.deadline,
        )
        if chain.active:
            try:
                chain.send_request(self.info)
            except Exception as exc:
                return self._abort(exc, blocking)

        ref = binding.ref
        header = RequestHeader(
            req_id=req_id,
            object_name=ref.name,
            op=op.name,
            kind=ref.kind,
            client_program_id=ctx.program.program_id,
            client_nthreads=binding.client_nthreads,
            reply_to=binding.reply_endpoints(),
            scalar_args=scalar_args,
            dseq_args=dseq_meta,
            out_dists=out_requests,
            oneway=op.oneway,
            service_contexts=self.info.service_contexts,
        )

        t_send0 = ctx.now() if spans else 0.0
        if spans:
            chain.span("marshal", op.name, req_id, ctx.program.name, my_idx,
                       t_marshal0, t_send0, nbytes=len(scalar_args))

        sent_nbytes = 0
        offload = cfg.communication_threads
        if my_idx == 0:
            hdr_nb = header.nbytes()
            ctx.orb.world.transport.send(
                ctx.endpoint.address, ref.root_endpoint, header,
                tag=TAG_REQUEST_HEADER, nbytes=hdr_nb,
                oneway=op.oneway or offload,
            )
            sent_nbytes += hdr_nb

        # Direct parallel transfer of distributed in-arguments.
        courier = FragmentCourier(ctx)
        for param in op.dseq_in_params:
            ds = dseq_args[param.name]
            sent_nbytes += courier.send_fragments(
                src_dist=ds.dist,
                dst_dist=_server_in_dist(ref, op, param, ds.dist.n),
                rank=my_idx, local_data=ds.owned_data,
                element=param.tc.element, req_id=req_id, param=param.name,
                endpoints=ref.endpoints, tag=TAG_ARG_FRAGMENT,
                oneway=op.oneway or offload,
            )
        ctx.orb.requests_sent += 1

        if spans:
            now = ctx.now()
            chain.span("send", op.name, req_id, ctx.program.name, my_idx,
                       t_send0, now, nbytes=sent_nbytes)
            if op.oneway:
                chain.request_finished(req_id, ctx.program.name, my_idx,
                                       now, "oneway")
        if op.oneway:
            self.done = True
            self.state = "done"
            return None

        self._arm_futures()
        self.state = "awaiting_reply"
        ctx.pending[req_id] = self
        self.binding.outstanding.append(self)
        if blocking:
            self.progress(block=True)
            if self.error is not None:
                raise self.error
            return self.result
        return self.result_future

    def _arm_futures(self) -> None:
        self.result_future = Future(label=f"{self.op.name}#{self.req_id[-1]}")
        self.result_future._bind(self._progress_hook)
        for fut in self.placeholders:
            fut._bind(self._progress_hook)

    def _abort(self, exc: BaseException, blocking: bool):
        """``send_request`` vetoed the invocation: nothing was sent."""
        chain = self.chain
        self.info.exception = exc
        try:
            chain.receive_exception(self.info)
        except Exception as replaced:
            exc = replaced
            self.info.exception = exc
        self.done = True
        self.state = "done"
        self.error = exc
        if chain.wants_spans:
            chain.request_finished(self.req_id, self.ctx.program.name,
                                   self.binding.client_index,
                                   self.ctx.now(), "failed")
        if blocking or self.op.oneway:
            raise exc
        fut = Future(label=f"{self.op.name}#{self.req_id[-1]}")
        fut._fail(exc)
        self.result_future = fut
        for ph in self.placeholders:
            ph._fail(exc)
        return fut

    # -- progress ----------------------------------------------------------

    def _progress_hook(self, block: bool) -> None:
        if not block:
            self.ctx.compute(self.ctx.orb.config.poll_cost)
        self.progress(block)

    def progress(self, block: bool) -> bool:
        """Advance this request; returns True when complete (successfully
        or not — a timeout also completes the request)."""
        ep = self.ctx.endpoint
        while not self.done:
            if self.reply is None:
                body = self._take(ep, block, fragments=False)
                if body is None:
                    return self.done
                self._on_reply(body)
                continue
            if self._next_needed_param() is None:
                self._finish()
                continue
            body = self._take(ep, block, fragments=True)
            if body is None:
                return self.done
            if isinstance(body, ReplyHeader):
                # late failure notification while collecting fragments
                self._fail(self._build_exception(body))
                continue
            self._on_fragment(body)
        return True

    def _take(self, ep, block: bool, fragments: bool):
        """Next protocol message for this request: its reply header, or —
        in the ``collecting`` state — a result fragment for a pending
        param / a late failure reply.  ``None`` when non-blocking finds
        nothing, or when a blocking wait times out (the request is then
        failed and done)."""

        def match(env):
            pkt = env.payload
            body = pkt.body
            if pkt.tag == TAG_REPLY_HEADER:
                if body.req_id != self.req_id:
                    return False
                # While collecting, only failure notifications matter.
                return not fragments or body.status != STATUS_OK
            if fragments and pkt.tag == TAG_RESULT_FRAGMENT:
                return (body.req_id == self.req_id
                        and body.param in self._pending_params())
            return False

        if block:
            chain = self.chain
            spans = chain.wants_spans
            t0 = self.ctx.now() if spans else 0.0
            env = ep.channel.receive(match, reason=f"reply {self.op.name}",
                                     deadline=self.deadline)
            if spans:
                chain.span("wait", self.op.name, self.req_id,
                           self.ctx.program.name, self.binding.client_index,
                           t0, self.ctx.now())
            if env is None:
                self._fail(SystemException(
                    f"{self.op.name} timed out after "
                    f"{self.ctx.orb.config.request_timeout} virtual s"
                ))
                return None
        else:
            env = ep.channel.poll(match)
        return env.payload.body if env else None

    def _pending_params(self):
        return [p for p, st in self._out_state.items() if st[2] > 0]

    def _next_needed_param(self):
        pend = self._pending_params()
        return pend[0] if pend else None

    # -- reply handling ----------------------------------------------------

    def _on_reply(self, reply: ReplyHeader) -> None:
        if reply.status == STATUS_PEER_EXC:
            # Not authoritative — stash it and keep waiting for the
            # root's reply, which decides ok-with-fragments vs error.
            self._peer_failure = reply
            return
        self.reply = reply
        self.info.reply = reply
        if reply.status != STATUS_OK:
            self._fail(self._build_exception(reply))
            return
        if self._peer_failure is not None:
            # Root replied OK but a peer thread failed: its result
            # fragments will never arrive, so fail now.
            self._fail(self._build_exception(self._peer_failure))
            return
        my_idx = self.binding.client_index
        p_client = self.binding.client_nthreads
        for param in self.op.dseq_out_params:
            descr = reply.dseq_outs.get(param.name)
            if descr is None:
                self._fail(SystemException(
                    f"server reply missing layout for out arg {param.name!r}"
                ))
                return
            server_dist = build_dist(descr)
            n = server_dist.n
            client_dist = resolve_out_dist(
                self.out_requests.get(param.name), param.tc.client_dist,
                n, p_client,
            )
            expected = FragmentCourier.expected_fragments(
                server_dist, client_dist, my_idx)
            storage = DistributedSequence(param.tc.element, client_dist,
                                          my_idx)
            self._out_state[param.name] = [client_dist, storage, expected]
        self.state = "collecting"

    def _on_fragment(self, frag) -> None:
        state = self._out_state.get(frag.param)
        if state is None or state[2] <= 0:
            raise SystemException(
                f"unexpected fragment for {frag.param!r} of {self.op.name}"
            )
        chain = self.chain
        spans = chain.wants_spans
        t0 = self.ctx.now() if spans else 0.0
        dist, storage, _ = state
        param = next(p for p in self.op.dseq_out_params
                     if p.name == frag.param)
        FragmentCourier(self.ctx).insert_fragment(
            dist, self.binding.client_index, storage.owned_data,
            param.tc.element, frag)
        state[2] -= 1
        if spans:
            chain.span("unmarshal", self.op.name, self.req_id,
                       self.ctx.program.name, self.binding.client_index,
                       t0, self.ctx.now(), nbytes=len(frag.payload))

    def _build_exception(self, reply: ReplyHeader) -> BaseException:
        if reply.status == STATUS_USER_EXC:
            from ..stubapi import lookup_exception

            repo_id, data = reply.exception
            cls, tc = lookup_exception(repo_id)
            if cls is None:
                return SystemException(
                    f"unknown user exception {repo_id!r} from {self.op.name}"
                )
            from ...cdr import decode as cdr_decode

            return cls(**cdr_decode(tc, data))
        if reply.status == STATUS_PEER_EXC:
            return SystemException(
                f"{self.op.name} failed on a server thread (partial "
                f"failure): {reply.exception}"
            )
        if reply.service_contexts.get(OVERLOAD_CONTEXT):
            # The server shed the request un-executed: safe to retry.
            return TransientException(
                f"{self.op.name} rejected by server overload: "
                f"{reply.exception}"
            )
        return SystemException(
            f"{self.op.name} failed on the server: {reply.exception}"
        )

    # -- completion --------------------------------------------------------

    def _finish(self) -> None:
        chain = self.chain
        spans = chain.wants_spans
        t0 = self.ctx.now() if spans else 0.0
        specs = scalar_result_specs(self.op)
        scalars = decode_scalars(specs, self.reply.scalar_results)
        materialize_objrefs(specs, scalars, self.ctx)
        values = []
        if self.op.ret_tc is not None:
            values.append(scalars["__return"])
        out_values = []
        for param in self.op.out_params:
            if param.is_distributed:
                out_values.append(
                    wrap_out(param, self._out_state[param.name][1])
                )
            else:
                out_values.append(scalars[param.name])
        values.extend(out_values)
        self.result = (None if not values
                       else values[0] if len(values) == 1
                       else tuple(values))
        self.info.result = self.result
        if chain.active:
            try:
                chain.receive_reply(self.info)
            except Exception as exc:
                self._fail(exc)
                return
        self.done = True
        self.state = "done"
        self._detach()
        if spans:
            now = self.ctx.now()
            chain.span("unmarshal", self.op.name, self.req_id,
                       self.ctx.program.name, self.binding.client_index,
                       t0, now, nbytes=len(self.reply.scalar_results))
            chain.request_finished(self.req_id, self.ctx.program.name,
                                   self.binding.client_index, now, "ok")
        self.result_future._resolve(self.result)
        for fut, val in zip(self.placeholders, out_values):
            fut._resolve(val)

    def _drain_orphaned_results(self) -> None:
        """Discard already-queued result fragments of this failed request
        (releasing any pooled payload buffers).  Best effort: fragments
        still in flight are matched by nothing once the request is
        detached, and their leases are reclaimed by the GC."""
        channel = self.ctx.endpoint.channel
        req_id = self.req_id

        def match(env):
            pkt = env.payload
            return (pkt.tag == TAG_RESULT_FRAGMENT
                    and pkt.body.req_id == req_id)

        while True:
            env = channel.poll(match)
            if env is None:
                break
            release_fragment(env.payload.body)
            self.ctx.orb.dead_result_fragments += 1

    def _fail(self, exc: BaseException) -> None:
        if self.done:
            return
        chain = self.chain
        self.info.exception = exc
        if chain.active:
            try:
                chain.receive_exception(self.info)
            except Exception as replaced:
                exc = replaced
                self.info.exception = exc
        self.error = exc
        self.done = True
        self.state = "done"
        self._detach()
        self._drain_orphaned_results()
        if chain.wants_spans:
            chain.request_finished(self.req_id, self.ctx.program.name,
                                   self.binding.client_index,
                                   self.ctx.now(), "failed")
        self.result_future._fail(exc)
        for fut in self.placeholders:
            fut._fail(exc)

    def _detach(self) -> None:
        self.ctx.pending.pop(self.req_id, None)
        try:
            self.binding.outstanding.remove(self)
        except ValueError:
            pass

    def __repr__(self) -> str:
        return (f"<ClientRequestState {self.op.name} req={self.req_id} "
                f"{self.state}>")


# ---------------------------------------------------------------------------
# Server half
# ---------------------------------------------------------------------------


class ServerRequestState:
    """One dispatched request on one server thread.

    ``run()`` walks dispatch → interception → argument collection →
    servant call → reply/result emission; every early exit goes through
    :meth:`_reject`, which owns the error-reply / peer-notification /
    dead-letter policy.
    """

    def __init__(self, poa, hdr: RequestHeader) -> None:
        self.poa = poa
        self.ctx = poa.ctx
        self.hdr = hdr
        self.chain = self.ctx.orb.interceptors
        self.courier = FragmentCourier(self.ctx)
        self.record = None
        self.op: Optional[OpDef] = None
        self.servant = None
        self.is_root = True
        self.info: Optional[ServerRequestInfo] = None

    def run(self) -> None:
        ctx = self.ctx
        hdr = self.hdr
        chain = self.chain
        spans = chain.wants_spans
        t0 = ctx.now() if spans else 0.0
        record = self.record = self.poa._lookup_record(hdr.object_name)
        if record.kind == "spmd":
            if ctx.rank == 0 and not hdr.forwarded and ctx.nprocs > 1:
                fwd = replace(hdr, forwarded=True)
                for r in range(1, ctx.nprocs):
                    ctx.orb.world.transport.send(
                        ctx.endpoint.address,
                        ctx.program.address(r, PORT_ORB), fwd,
                        tag=TAG_REQUEST_HEADER, nbytes=hdr.nbytes(),
                    )
            self.servant = record.servants[ctx.rank]
            self.is_root = ctx.rank == 0
        else:
            self.servant = record.servants[record.owner_rank]
            self.is_root = True

        op = self.op = self.poa._resolve_op(record.iface, hdr, self.servant)
        if op is None:
            if spans:
                chain.span("dispatch", hdr.op, hdr.req_id, ctx.program.name,
                           ctx.rank, t0, ctx.now())
            self._reject(
                SystemException(f"no operation {hdr.op!r} on {record.name!r}"),
                wire_exc=f"no operation {hdr.op!r} on {record.name!r}",
                orphaned=True,
            )
            return

        info = self.info = ServerRequestInfo(
            ctx=ctx, header=hdr, op=op, servant=self.servant,
            is_root=self.is_root,
        )
        try:
            self._run_dispatched(t0)
        finally:
            # The paired completion point: fires on success, shed and
            # servant failure alike, so context-scoped interceptors
            # (tracing) can unwind their per-thread state.
            if chain.active:
                chain.finish_request(info)

    def _run_dispatched(self, t0: float) -> None:
        """Everything between operation resolution and the terminal
        state: interception, argument collection, the servant call, and
        reply/result emission."""
        ctx = self.ctx
        hdr = self.hdr
        op = self.op
        info = self.info
        chain = self.chain
        spans = chain.wants_spans
        if chain.active:
            try:
                chain.receive_request(info)
            except UserException as exc:
                if spans:
                    chain.span("dispatch", hdr.op, hdr.req_id,
                               ctx.program.name, ctx.rank, t0, ctx.now())
                self._reject(exc, user=True, orphaned=True)
                return
            except Exception as exc:
                if spans:
                    chain.span("dispatch", hdr.op, hdr.req_id,
                               ctx.program.name, ctx.rank, t0, ctx.now())
                self._reject(exc, orphaned=True)
                return
        if spans:
            # Covers the servant lookup, (on rank 0) the SPMD forward,
            # operation resolution and the receive_request interceptors.
            chain.span("dispatch", hdr.op, hdr.req_id, ctx.program.name,
                       ctx.rank, t0, ctx.now())

        t_args0 = ctx.now() if spans else 0.0
        try:
            args = self._collect_in_args()
        except Exception as exc:  # bad request: report, keep serving
            self._reject(exc, orphaned=True)
            return
        if spans:
            chain.span("recv_args", op.name, hdr.req_id, ctx.program.name,
                       ctx.rank, t_args0, ctx.now(),
                       nbytes=len(hdr.scalar_args))

        t_compute0 = ctx.now() if spans else 0.0
        try:
            result = getattr(self.servant, op.name)(*args)
        except UserException as exc:
            self._reject(exc, user=True, respect_oneway=True)
            return
        except Exception as exc:
            self._reject(exc, respect_oneway=True)
            return
        finally:
            if spans:
                chain.span("compute", op.name, hdr.req_id, ctx.program.name,
                           ctx.rank, t_compute0, ctx.now())

        info.result = result
        if hdr.oneway:
            return
        t_reply0 = ctx.now() if spans else 0.0
        self._send_results(result)
        if spans:
            chain.span("reply", op.name, hdr.req_id, ctx.program.name,
                       ctx.rank, t_reply0, ctx.now())

    # -- argument collection -----------------------------------------------

    def _collect_in_args(self) -> list:
        ctx = self.ctx
        hdr = self.hdr
        op = self.op
        specs = scalar_in_specs(op)
        scalars = decode_scalars(specs, hdr.scalar_args)
        materialize_objrefs(specs, scalars, ctx)
        values: dict[str, Any] = dict(scalars)
        for param in op.dseq_in_params:
            client_dist = build_dist(hdr.dseq_args[param.name])
            spec = self.record.in_dists.get((op.name, param.name),
                                            param.tc.server_dist)
            server_dist = resolve_dist_spec(spec, client_dist.n, ctx.nprocs)
            storage = DistributedSequence(param.tc.element, server_dist,
                                          ctx.rank)
            self.courier.receive_fragments(
                dist=server_dist, rank=ctx.rank,
                local_data=storage.owned_data, element=param.tc.element,
                req_id=hdr.req_id, param=param.name,
                expected=FragmentCourier.expected_fragments(
                    client_dist, server_dist, ctx.rank),
                tag=TAG_ARG_FRAGMENT, reason=f"arg {param.name}",
            )
            values[param.name] = wrap_out(param, storage)
        return [values[p.name] for p in op.in_params]

    # -- results -----------------------------------------------------------

    def _send_results(self, result) -> None:
        ctx = self.ctx
        hdr = self.hdr
        op = self.op
        chain = self.chain
        expected = ([] if op.ret_tc is None else ["__return"]) + [
            p.name for p in op.out_params
        ]
        if not expected:
            out_values: dict[str, Any] = {}
        else:
            # Only unpack tuples when more than one slot is expected: a
            # single return value may itself be a tuple (e.g. a union).
            if len(expected) == 1:
                seq = (result,)
            else:
                seq = result if isinstance(result, tuple) else (result,)
            if len(seq) != len(expected):
                msg = (f"servant {op.name} returned {len(seq)} values, "
                       f"expected {len(expected)}")
                self._reject(SystemException(msg), wire_exc=msg,
                             respect_oneway=True)
                return
            out_values = dict(zip(expected, seq))

        dseq_outs: dict[str, tuple] = {}
        frag_plan = []
        for param in op.dseq_out_params:
            container = out_values[param.name]
            ds = as_distributed(param, container, ctx.nprocs, ctx.rank)
            client_dist = resolve_out_dist(
                hdr.out_dists.get(param.name), param.tc.client_dist,
                ds.dist.n, hdr.client_nthreads,
            )
            dseq_outs[param.name] = describe_dist(ds.dist)
            frag_plan.append((param, ds, client_dist))

        if self.is_root:
            if chain.active:
                try:
                    chain.send_reply(self.info)
                except UserException as exc:
                    self._reject(exc, user=True, respect_oneway=True)
                    return
                except Exception as exc:
                    self._reject(exc, respect_oneway=True)
                    return
            scalar_bytes = encode_scalars(
                scalar_result_specs(op),
                {k: v for k, v in out_values.items()
                 if k == "__return" or not _is_dseq_param(op, k)},
            )
            contexts = dict(self.info.reply_service_contexts)
            if self.poa.admission is not None:
                # Piggyback the load report / backpressure hint
                # (least-loaded selection, client-side throttling).
                self.poa.admission.stamp_reply(contexts)
            self._send_to_clients(ReplyHeader(
                hdr.req_id, STATUS_OK, scalar_results=scalar_bytes,
                dseq_outs=dseq_outs,
                service_contexts=contexts,
            ))

        offload = ctx.orb.config.communication_threads
        for param, ds, client_dist in frag_plan:
            self.courier.send_fragments(
                src_dist=ds.dist, dst_dist=client_dist, rank=ctx.rank,
                local_data=ds.owned_data, element=param.tc.element,
                req_id=hdr.req_id, param=param.name, endpoints=hdr.reply_to,
                tag=TAG_RESULT_FRAGMENT, oneway=offload,
            )

    # -- failure policy ----------------------------------------------------

    def _reject(self, exc: BaseException, *, user: bool = False,
                orphaned: bool = False, respect_oneway: bool = False,
                wire_exc: Optional[str] = None) -> None:
        """Terminate this request with a failure.

        ``orphaned`` dead-letters the request's argument fragments (the
        failure happened before/during collection, so fragments may be
        queued or still in flight).  The reply policy mirrors the
        pre-pipeline engine: the root replies (``user_exception`` for IDL
        exceptions, ``system_exception`` otherwise; pre-dispatch failures
        reply even for oneway requests), and a *non-root* thread of a
        fragment-bearing operation now emits a supplementary
        ``peer_exception`` so clients cannot hang on missing fragments.
        """
        hdr = self.hdr
        if self.info is not None:
            self.info.exception = exc
        if orphaned and hdr.dseq_args:
            self.poa._dead_letter(hdr.req_id)
        if respect_oneway and hdr.oneway:
            return
        if self.is_root:
            if user:
                reply = ReplyHeader(
                    hdr.req_id, STATUS_USER_EXC,
                    exception=(exc._repo_id,
                               cdr_encode(exc._typecode, exc._values())),
                )
            else:
                reply = ReplyHeader(
                    hdr.req_id, STATUS_SYS_EXC,
                    exception=repr(exc) if wire_exc is None else wire_exc,
                )
            if self.info is not None:
                if self.chain.active:
                    try:
                        self.chain.send_reply(self.info)
                    except Exception:
                        pass  # already failing; keep the original error
                reply.service_contexts.update(
                    self.info.reply_service_contexts)
            if self.poa.admission is not None:
                self.poa.admission.stamp_reply(reply.service_contexts)
            self._send_to_clients(reply)
        elif (self.op is not None and self.op.dseq_out_params
              and not hdr.oneway):
            self._send_to_clients(ReplyHeader(
                hdr.req_id, STATUS_PEER_EXC, exception=repr(exc),
            ))

    def _send_to_clients(self, reply: ReplyHeader) -> None:
        transport = self.ctx.orb.world.transport
        src = self.ctx.endpoint.address
        nb = reply.nbytes()
        for addr in self.hdr.reply_to:
            transport.send(src, addr, reply, tag=TAG_REPLY_HEADER, nbytes=nb)

    def __repr__(self) -> str:
        return f"<ServerRequestState {self.hdr.op} req={self.hdr.req_id}>"


def _is_dseq_param(op: OpDef, name: str) -> bool:
    return any(p.name == name for p in op.dseq_out_params)
