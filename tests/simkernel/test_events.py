"""Unit tests for the event queue."""

import pytest

from repro.simkernel import EventQueue


class Dummy:
    pass


def test_pop_order_by_time():
    q = EventQueue()
    t = Dummy()
    q.push(3.0, t)
    q.push(1.0, t)
    q.push(2.0, t)
    assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]


def test_ties_broken_by_insertion_order():
    q = EventQueue()
    a, b = Dummy(), Dummy()
    q.push(1.0, a)
    q.push(1.0, b)
    assert q.pop().thread is a
    assert q.pop().thread is b


def test_cancelled_events_skipped():
    q = EventQueue()
    t = Dummy()
    ev = q.push(1.0, t)
    q.push(2.0, t)
    ev.cancel()
    assert q.pop().time == 2.0


def test_len_ignores_cancelled():
    q = EventQueue()
    t = Dummy()
    ev = q.push(1.0, t)
    q.push(2.0, t)
    assert len(q) == 2
    ev.cancel()
    assert len(q) == 1


def test_bool_and_peek():
    q = EventQueue()
    assert not q
    assert q.peek_time() is None
    t = Dummy()
    ev = q.push(5.0, t)
    assert q
    assert q.peek_time() == 5.0
    ev.cancel()
    assert not q
    assert q.peek_time() is None


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        EventQueue().pop()
