"""Benchmark configuration.

Every benchmark here runs a *deterministic virtual-time simulation*: the
numbers that reproduce the paper's figures are virtual seconds, reported
in each benchmark's ``extra_info`` and printed as tables; pytest-benchmark
additionally measures the wall-clock cost of running the simulation.
Simulations are deterministic, so one round is meaningful.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a simulation benchmark exactly once (deterministic)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
