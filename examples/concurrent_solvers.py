#!/usr/bin/env python3
"""The paper's §4.1 scenario: the same linear system solved concurrently
by a direct method and an iterative method on two supercomputers, with the
client comparing the returned solutions.

Demonstrates non-blocking invocations, location transparency (moving a
server needs only a different host binding), and automatically generated
marshaling of dynamically-sized nested types (the matrix is a distributed
sequence of variable-length rows).

Run:  python examples/concurrent_solvers.py [N]
"""

import sys

from repro.core import OrbConfig, Simulation, default_network
from repro.apps.interfaces import solver_stubs
from repro.apps.solvers import (
    compute_difference,
    direct_server_main,
    generate_system,
    iterative_server_main,
    matrix_as_rows,
)


def client_main(ctx, n):
    """A near-verbatim transcription of the paper's client listing."""
    mod = solver_stubs()

    # 00-01: collective binding to the two solver objects; switching a
    # computation between hosts is just a different host name here.
    d_solver = mod.direct._spmd_bind("direct_solver", "HOST_1")
    i_solver = mod.iterative._spmd_bind("itrt_solver", "HOST_2")

    # 02-04: build and distribute the system.
    a, b = generate_system(n)
    A = mod.matrix(matrix_as_rows(a))   # dsequence<sequence<double>>
    B = mod.vector(b)

    # 05-08: non-blocking invocation on the remote iterative solver...
    X1 = mod.Future()
    tolerance = 0.000001
    i_solver.solve_nb(tolerance, A, B, X1)
    # 09: ...overlapped with a blocking invocation of the direct solver.
    X2_real = d_solver.solve(A, B)
    # 10: reading the future blocks until the iterative result arrives.
    X1_real = X1.value()
    # 11: compare the two solutions.
    x1 = X1_real.gather(ctx.rts, root=0)
    x2 = X2_real.gather(ctx.rts, root=0)
    if ctx.rank == 0:
        difference = compute_difference(x1, x2)
        print(f"[client] n={n}: solved by both methods in "
              f"{ctx.now():.2f} virtual seconds")
        print(f"[client] max |X1 - X2| = {difference:.2e}")


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    sim = Simulation(network=default_network(),
                     config=OrbConfig(max_outstanding=2))
    # Direct solver shares HOST_1 with the client; iterative solver runs
    # on the faster remote HOST_2 ("substantial speedup by putting the
    # slower application on a faster remote resource").
    sim.server(direct_server_main, host="HOST_1", nprocs=2, node_offset=2,
               name="direct-server")
    sim.server(iterative_server_main, host="HOST_2", nprocs=2,
               name="iterative-server")
    sim.client(client_main, host="HOST_1", nprocs=2, args=(n,))
    sim.run()


if __name__ == "__main__":
    main()
