"""Miniature reproductions of the parallel packages PARDIS interfaces to:
POOMA (fields on grids) and HPC++ PSTL (distributed vectors)."""
