"""Portable Object Adapter: servant registration and request dispatch.

Server programs create servants and activate them through the POA:

* SPMD objects are activated **collectively** — every computing thread
  contributes its local servant instance; requests are delivered to all
  threads (rank 0 forwards the header through the server's communication
  domain) and distributed arguments arrive as direct thread-to-thread
  fragments (paper §2.1/§3.1);
* single objects are activated by their one owning thread and serviced by
  it alone; distributing several single objects over the threads of a
  parallel server enables parallel interaction (the §4.2 scenario).

``impl_is_ready()`` enters the request loop and never returns;
``process_requests()`` drains currently-queued requests and returns so a
server can interleave servicing with its own computation (§3.3).

Per-request protocol work — argument collection, servant dispatch,
reply/result emission, interceptor points — lives in
:class:`repro.core.pipeline.state.ServerRequestState`.  The POA keeps
the loops, the servant registry, and the *dead-letter* registry:
requests rejected before/during argument collection leave orphaned
argument fragments in flight, which are drained here so they can never
be mis-matched by a later request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..runtime.program import PORT_ORB
from ..runtime.tags import TAG_ARG_FRAGMENT, TAG_REPLY_HEADER, TAG_REQUEST_HEADER
from .errors import BindingError, ObjectNotFound
from .interfacedef import InterfaceDef, OpDef, ParamDef
from .pipeline.courier import release_fragment
from .pipeline.state import ServerRequestState
from .repository import ObjectRef
from .request import OVERLOAD_CONTEXT, ReplyHeader, RequestHeader, STATUS_SYS_EXC

#: Bound on remembered dead request ids (oldest forgotten first).  A
#: fragment of a forgotten request can no longer be mis-matched anyway:
#: request ids are never reused.
_DEAD_LETTER_LIMIT = 256


@dataclass
class ServantRecord:
    name: str
    iface: InterfaceDef
    kind: str                        # "spmd" | "single"
    owner_rank: int
    servants: dict[int, Any] = field(default_factory=dict)
    in_dists: dict = field(default_factory=dict)


class POA:
    """Per-thread handle on the program's object adapter."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        svc = ctx.orb.program_services(ctx.program)
        self._registry: dict[str, ServantRecord] = svc.setdefault("servants", {})
        #: request ids whose argument fragments are orphaned (rejected
        #: before collection completed); insertion-ordered for trimming
        self._dead_letters: dict = {}
        #: repro.services.AdmissionController, or None (dispatch whatever
        #: arrives — the historic behaviour, zero extra cost)
        self.admission = None

    def set_admission(self, controller) -> None:
        """Enable server-side admission control on this thread's request
        loop.  Call on every thread of an SPMD server; only the thread
        that receives requests directly from clients (rank 0 for SPMD,
        the owner for single objects) ever sheds — forwarded headers are
        always admitted so the peers replay rank 0's dispatch order."""
        self.admission = controller
        if controller is not None:
            controller.attach(self.ctx)
            self.ctx.orb.admission_controllers.append(controller)

    # -- activation ------------------------------------------------------------

    def activate(self, servant, name: str, kind: str = "spmd",
                 in_dists: Optional[dict] = None,
                 replica: bool = False) -> ObjectRef:
        """Register a servant under ``name``.

        SPMD activation is collective over all computing threads of the
        server ("the instantiation of an SPMD object is collective",
        §3.1).  ``in_dists`` maps ``(op, param)`` to a distribution kind,
        overriding the IDL default for "in" arguments prior to
        registration (§3.2).  ``replica=True`` joins an existing name's
        replica group instead of requiring the name to be free.
        """
        iface: InterfaceDef = servant._interface
        ctx = self.ctx
        # Publish the interface definition for dynamic (stubless) clients.
        from .dii import _interface_repository

        _interface_repository(ctx.orb).register(iface)
        if kind == "single":
            if iface.has_distributed_ops:
                raise BindingError(
                    f"{name!r}: only objects which do not operate on "
                    "distributed arguments can be created as single objects"
                )
            record = ServantRecord(name, iface, "single", ctx.rank,
                                   {ctx.rank: servant}, dict(in_dists or {}))
            self._registry[name] = record
            ref = self._make_ref(record)
            ctx.orb.repository(ctx.namespace).register(ref, replica=replica)
            return ref
        if kind != "spmd":
            raise ValueError(f"unknown object kind {kind!r}")
        record = self._registry.setdefault(
            name, ServantRecord(name, iface, "spmd", 0, {},
                                dict(in_dists or {}))
        )
        record.servants[ctx.rank] = servant
        ctx.barrier()
        if ctx.rank == 0:
            ref = self._make_ref(record)
            ctx.orb.repository(ctx.namespace).register(ref, replica=replica)
        ctx.barrier()
        repo = ctx.orb.repository(ctx.namespace)
        pid = ctx.program.program_id
        return next(r for r in repo.lookup_all(name) if r.program_id == pid)

    def deactivate(self, name: str) -> None:
        self._registry.pop(name, None)
        self.ctx.orb.repository(self.ctx.namespace).unregister(
            name, program_id=self.ctx.program.program_id)

    def _make_ref(self, record: ServantRecord) -> ObjectRef:
        prog = self.ctx.program
        return ObjectRef(
            name=record.name,
            repo_id=record.iface.repo_id,
            kind=record.kind,
            program_id=prog.program_id,
            host=prog.host,
            nthreads=prog.nprocs,
            owner_rank=record.owner_rank,
            endpoints=tuple(
                prog.address(r, PORT_ORB) for r in range(prog.nprocs)
            ),
            in_dists=dict(record.in_dists),
        )

    def _lookup_record(self, name: str) -> ServantRecord:
        try:
            return self._registry[name]
        except KeyError:
            raise ObjectNotFound(
                f"program {self.ctx.program.name!r} has no servant {name!r}"
            ) from None

    # -- request loops ----------------------------------------------------------

    def impl_is_ready(self) -> None:
        """Enter the request-polling loop; does not return (the server
        remains in the loop until it is deactivated/killed).  Collective
        with respect to all processing threads of the server."""
        while True:
            self._process_one(block=True)

    def process_requests(self, limit: Optional[int] = None) -> int:
        """Service the requests that have arrived so far, then return so
        the server can resume its interrupted computation (§3.3).
        Collective over the server's threads.  Under sustained offered
        load new requests keep arriving while earlier ones are served, so
        a server that must get back to its own work (or retire) can cap
        one visit at ``limit`` dispatches."""
        n = 0
        while ((limit is None or n < limit)
               and self._process_one(block=False)):
            n += 1
        return n

    def _process_one(self, block: bool) -> bool:
        ep = self.ctx.endpoint
        self._drain_dead_letters()

        def match(env):
            return env.payload.tag == TAG_REQUEST_HEADER

        if self.admission is None:
            env = (ep.channel.receive(match, reason="impl_is_ready")
                   if block else ep.channel.poll(match))
            if env is None:
                return False
            self._handle(env.payload.body)
            return True

        # Admission path: sweep the headers that arrived while the last
        # request was being served into the bounded queue (shedding the
        # overflow), then dispatch one according to the scheduling policy.
        # The sweep is bounded: each shed costs virtual time (the refusal
        # reply goes over the transport), during which closed-loop clients
        # retry — an unbounded drain would keep finding fresh arrivals and
        # starve the queue (receive livelock).
        budget = self.admission.sweep_budget
        while budget > 0:
            env = ep.channel.poll(match)
            if env is None:
                break
            self._admit(env.payload.body)
            budget -= 1
        hdr = self.admission.pop(self.ctx.now())
        if hdr is None:
            if not block:
                return False
            env = ep.channel.receive(match, reason="impl_is_ready")
            self._admit(env.payload.body)
            hdr = self.admission.pop(self.ctx.now())
            if hdr is None:
                return True  # the fresh arrival was shed; keep looping
        self._handle(hdr)
        return True

    def _admit(self, hdr: RequestHeader) -> None:
        if not self.admission.offer(hdr, self.ctx.now()):
            self._shed(hdr)

    def _shed(self, hdr: RequestHeader) -> None:
        """Refuse an un-admitted request: dead-letter its argument
        fragments, annotate the trace, and (for twoway requests) reply
        with the overload marker so the client raises
        :class:`~repro.core.errors.TransientException` and its throttle
        interceptor backs off."""
        ctx = self.ctx
        if hdr.dseq_args:
            self._dead_letter(hdr.req_id)
        chain = ctx.orb.interceptors
        if chain.wants_spans:
            now = ctx.now()
            chain.span("shed", hdr.op, hdr.req_id, ctx.program.name,
                       ctx.rank, now, now)
        if hdr.oneway:
            return
        contexts = {OVERLOAD_CONTEXT: True}
        self.admission.stamp_reply(contexts)
        reply = ReplyHeader(
            hdr.req_id, STATUS_SYS_EXC,
            exception=(f"{hdr.op} shed by admission control on "
                       f"{ctx.program.name} (queue full)"),
            service_contexts=contexts,
        )
        transport = ctx.orb.world.transport
        nb = reply.nbytes()
        for addr in hdr.reply_to:
            transport.send(ctx.endpoint.address, addr, reply,
                           tag=TAG_REPLY_HEADER, nbytes=nb)

    def _handle(self, hdr: RequestHeader) -> None:
        ServerRequestState(self, hdr).run()

    def _resolve_op(self, iface: InterfaceDef, hdr: RequestHeader,
                    servant) -> Optional[OpDef]:
        op = iface.ops.get(hdr.op)
        if op is not None:
            return op
        # Attribute accessors are synthesized operations.
        if hdr.op.startswith("_get_"):
            attr = iface.attr(hdr.op[5:])
            if attr is not None:
                return OpDef(hdr.op, attr.tc, [])
        if hdr.op.startswith("_set_"):
            attr = iface.attr(hdr.op[5:])
            if attr is not None and not attr.readonly:
                return OpDef(hdr.op, None,
                             [ParamDef("in", "value", attr.tc)])
        return None

    # -- dead-lettered argument fragments ---------------------------------------

    def _dead_letter(self, req_id) -> None:
        """Mark ``req_id``'s argument fragments as orphaned and sweep any
        that are already queued."""
        self._dead_letters[req_id] = True
        while len(self._dead_letters) > _DEAD_LETTER_LIMIT:
            self._dead_letters.pop(next(iter(self._dead_letters)))
        self._drain_dead_letters()

    def _drain_dead_letters(self) -> None:
        """Discard queued argument fragments of rejected requests.  Also
        run on every loop iteration: fragments may still have been in
        flight when their request was rejected."""
        if not self._dead_letters:
            return
        channel = self.ctx.endpoint.channel
        dead = self._dead_letters

        def match(env):
            pkt = env.payload
            return (pkt.tag == TAG_ARG_FRAGMENT
                    and pkt.body.req_id in dead)

        while True:
            env = channel.poll(match)
            if env is None:
                break
            release_fragment(env.payload.body)
            self.ctx.orb.dead_fragments += 1


def ep_addr(ctx):
    return ctx.endpoint.address
