"""Benchmark configuration.

Every benchmark here runs a *deterministic virtual-time simulation*: the
numbers that reproduce the paper's figures are virtual seconds, reported
in each benchmark's ``extra_info`` and printed as tables; pytest-benchmark
additionally measures the wall-clock cost of running the simulation.
Simulations are deterministic, so one round is meaningful.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--fast-path", choices=("on", "off"), default="on",
        help="zero-copy marshaling lane ablation: 'off' forces every "
             "fragment onto the classic per-allocation CDR path "
             "(see repro.cdr.buffers)",
    )


@pytest.fixture(autouse=True)
def _fast_path_flag(request):
    """Apply the ``--fast-path`` ablation to every benchmark."""
    from repro.cdr import set_fast_path

    prev = set_fast_path(request.config.getoption("--fast-path") == "on")
    yield
    set_fast_path(prev)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a simulation benchmark exactly once (deterministic)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
