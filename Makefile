# Convenience targets.  `install` uses the legacy editable path because
# this environment is offline and has no `wheel` package (PEP-517
# editable builds need it); with wheel available, `pip install -e .`
# works too.

.PHONY: install test bench figures trace-demo trace-fig5-demo all

install:
	python setup.py develop

test:
	python -m pytest tests/

bench:
	python -m pytest benchmarks/ --benchmark-only

figures:
	python -m repro.experiments all --plot

# Record the request lifecycle of a small fig2 run and validate the
# emitted Chrome-trace JSON (load it in chrome://tracing or Perfetto).
trace-demo:
	python -m repro.experiments --trace fig2-trace.json fig2 --sizes 200
	python -c "import json; from repro.tools import validate_chrome_trace; \
	n = validate_chrome_trace(json.load(open('fig2-trace.json')), \
	require_phases=('marshal', 'send', 'wait', 'unmarshal', 'dispatch', \
	'recv_args', 'compute', 'reply', 'transport')); \
	print(f'fig2-trace.json: {n} events, schema ok')"

# Distributed-tracing demo: run the Fig-5 three-world pipeline with
# tracing + metrics on, print the stitched causal trees, and validate
# that the Chrome trace carries cross-world flow arrows.
trace-fig5-demo:
	python -m repro.experiments --trace fig5-trace.json --trace-tree \
	--metrics fig5-metrics.json fig5 --procs 2 --steps 10
	python -c "import json; from repro.tools import validate_chrome_trace; \
	n = validate_chrome_trace(json.load(open('fig5-trace.json')), \
	require_flow_events=1); \
	print(f'fig5-trace.json: {n} events, cross-world flows ok')"

all: install test bench
