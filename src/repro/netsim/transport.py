"""Message transport over the simulated network.

This is the reproduction's stand-in for NexusLite: endpoints addressed by
``(host, node, port)``, framed packets with source/tag metadata, and
synchronous ("not oneway") vs. asynchronous ("oneway") send semantics.

Send cost model (see DESIGN.md):

* the sender always pays the link's fixed per-message CPU overhead;
* a **synchronous** send additionally occupies the sender until the
  message has been fully injected into the link (serialization time, plus
  any wait for a shared link to drain) — this is the effect behind the
  paper's Fig. 5 observation that "the time of send began to approach the
  execution time";
* a **oneway** send returns after the CPU overhead; the message still
  arrives at the physically-correct time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..cdr.buffers import BufferPool, PooledBuffer
from ..simkernel import Channel, SimKernel
from .topology import Network


class _AnyType:
    """Wildcard for tag/source matching (like MPI's ANY_SOURCE/ANY_TAG)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"


ANY = _AnyType()


@dataclass(frozen=True, order=True)
class Address:
    """Endpoint address: a port on a node of a host."""

    host: str
    node: int
    port: int = 0

    def __str__(self) -> str:
        return f"{self.host}:{self.node}:{self.port}"


@dataclass
class Packet:
    """A framed message as seen by the receiver."""

    src: Address
    dst: Address
    tag: int
    body: Any
    nbytes: int
    send_time: float = 0.0
    arrival: float = 0.0


def estimate_nbytes(obj: Any) -> int:
    """Rough wire size of a payload, used when the caller does not pass an
    explicit byte count (headers, control messages)."""
    if obj is None:
        return 16
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, PooledBuffer):
        return len(obj)
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, str):
        return 16 + len(obj)
    if isinstance(obj, (int, float, bool)):
        return 8
    if isinstance(obj, (list, tuple)):
        return 16 + sum(estimate_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 16 + sum(
            estimate_nbytes(k) + estimate_nbytes(v) for k, v in obj.items()
        )
    return 64


class Endpoint:
    """A receive queue bound to an :class:`Address`."""

    def __init__(self, transport: "Transport", address: Address) -> None:
        self.transport = transport
        self.address = address
        self.channel = Channel(transport.kernel, name=f"ep:{address}")

    # -- receiving -----------------------------------------------------------

    @staticmethod
    def _match(src, tag):
        def match(env) -> bool:
            pkt: Packet = env.payload
            if tag is not ANY and pkt.tag != tag:
                return False
            if src is not ANY and pkt.src != src:
                return False
            return True

        return match

    def recv(self, src=ANY, tag=ANY) -> Packet:
        """Blocking tag/source-matched receive."""
        env = self.channel.receive(self._match(src, tag), reason=f"recv@{self.address}")
        return env.payload

    def poll(self, src=ANY, tag=ANY) -> Optional[Packet]:
        """Non-blocking receive; ``None`` if nothing has arrived."""
        env = self.channel.poll(self._match(src, tag))
        return env.payload if env else None

    def iprobe(self, src=ANY, tag=ANY) -> bool:
        """True if a matching message has arrived (does not consume it)."""
        return self.channel.peek(self._match(src, tag)) is not None

    # -- sending --------------------------------------------------------------

    def send(self, dst: Address, body: Any, tag: int = 0,
             nbytes: int | None = None, oneway: bool = False) -> Packet:
        return self.transport.send(self.address, dst, body, tag=tag,
                                   nbytes=nbytes, oneway=oneway)


class Transport:
    """Routes packets between endpoints over a :class:`Network`."""

    def __init__(self, kernel: SimKernel, network: Network) -> None:
        self.kernel = kernel
        self.network = network
        self._endpoints: dict[Address, Endpoint] = {}
        self.packets_sent = 0
        self.bytes_sent = 0
        #: optional observer called with every delivered Packet
        #: (see repro.tools.trace.attach_tracer)
        self.on_send = None
        #: additional packet observers (see repro.tools.observe); an empty
        #: list keeps the send path at one truthiness check
        self.observers: list = []
        #: per-world pool the fragment courier leases payload buffers
        #: from (see repro.cdr.buffers); world-scoped so concurrent
        #: simulations never share (or skew the stats of) a pool
        self.buffer_pool = BufferPool()

    def snapshot(self) -> dict:
        """Current counters (the shape ``repro.tools.registry`` collects)."""
        return {"packets_sent": self.packets_sent,
                "bytes_sent": self.bytes_sent}

    def open(self, address: Address) -> Endpoint:
        """Create (or return) the endpoint bound to ``address``."""
        ep = self._endpoints.get(address)
        if ep is None:
            # Validate host/node against the topology up front.
            host = self.network.host(address.host)
            if not (0 <= address.node < host.nodes):
                raise ValueError(
                    f"node {address.node} out of range for host {address.host!r} "
                    f"({host.nodes} nodes)"
                )
            ep = Endpoint(self, address)
            self._endpoints[address] = ep
        return ep

    def endpoint(self, address: Address) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise KeyError(f"no endpoint open at {address}") from None

    def send(self, src: Address, dst: Address, body: Any, tag: int = 0,
             nbytes: int | None = None, oneway: bool = False) -> Packet:
        """Send ``body`` from ``src`` to ``dst``; see module docstring for
        the cost model.  Returns the :class:`Packet` as delivered."""
        dst_ep = self.endpoint(dst)
        th = self.kernel.current()
        profile = self.network.profile_between(src.host, dst.host)
        n = estimate_nbytes(body) if nbytes is None else int(nbytes)

        if profile.cpu_overhead:
            self.kernel.advance(profile.cpu_overhead)
        injection_done, arrival = self.network.reserve(
            src.host, dst.host, n, th.now
        )
        pkt = Packet(src=src, dst=dst, tag=tag, body=body, nbytes=n,
                     send_time=th.now, arrival=arrival)
        dst_ep.channel.push(pkt, arrival)
        self.packets_sent += 1
        self.bytes_sent += n
        if self.on_send is not None:
            self.on_send(pkt)
        if self.observers:
            for cb in self.observers:
                cb(pkt)
        if not oneway:
            self.kernel.sleep_until(injection_done)
        return pkt
