"""Run-time-system interface and backends (paper §2.2).

The ORB reaches the computing threads of a parallel program only through
the minimal :class:`RuntimeSystem` contract; three interchangeable
backends demonstrate the interoperability claim: :class:`MPIRuntime`
(two-sided, tag-matched), :class:`TulipRuntime` (adds one-sided get/put)
and :class:`PoomaRuntime` (POOMA's context vocabulary).
"""

from ..netsim import ANY
from . import collectives
from .interface import RtsMessage, RuntimeSystem
from .mpi import MPIRuntime
from .pooma_rts import PoomaRuntime
from .program import PORT_ORB, PORT_RTS, ParallelProgram, World
from .tags import (
    PARDIS_TAG_BASE,
    ReservedTagError,
    TAG_ACTIVATION,
    TAG_ARG_FRAGMENT,
    TAG_CONTROL,
    TAG_REPLY_HEADER,
    TAG_REPOSITORY,
    TAG_REQUEST_HEADER,
    TAG_RESULT_FRAGMENT,
    check_user_tag,
    is_reserved,
)
from .tulip import OneSidedError, TulipRuntime

__all__ = [
    "ANY",
    "MPIRuntime",
    "OneSidedError",
    "PARDIS_TAG_BASE",
    "PORT_ORB",
    "PORT_RTS",
    "ParallelProgram",
    "PoomaRuntime",
    "ReservedTagError",
    "RtsMessage",
    "RuntimeSystem",
    "TAG_ACTIVATION",
    "TAG_ARG_FRAGMENT",
    "TAG_CONTROL",
    "TAG_REPLY_HEADER",
    "TAG_REPOSITORY",
    "TAG_REQUEST_HEADER",
    "TAG_RESULT_FRAGMENT",
    "TulipRuntime",
    "World",
    "check_user_tag",
    "collectives",
    "is_reserved",
]
