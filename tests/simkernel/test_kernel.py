"""Tests for the virtual-time kernel scheduler."""

import pytest

from repro.simkernel import (
    DeadlockError,
    SimError,
    SimKernel,
    SimThreadFailed,
    ThreadState,
)


def test_single_thread_runs_to_completion():
    k = SimKernel()
    out = []
    k.spawn(lambda: out.append("ran"), name="t0")
    k.run()
    assert out == ["ran"]


def test_thread_result_is_captured():
    k = SimKernel()
    t = k.spawn(lambda: 42)
    k.run()
    assert t.result == 42
    assert t.state == ThreadState.DONE


def test_advance_moves_local_clock():
    k = SimKernel()
    times = []

    def body():
        times.append(k.now())
        k.advance(2.5)
        times.append(k.now())
        k.advance(0.5)
        times.append(k.now())

    k.spawn(body)
    end = k.run()
    assert times == [0.0, 2.5, 3.0]
    assert end == 3.0


def test_advance_zero_is_noop():
    k = SimKernel()

    def body():
        k.advance(0.0)
        return k.now()

    t = k.spawn(body)
    k.run()
    assert t.result == 0.0


def test_advance_negative_raises():
    k = SimKernel()

    def body():
        k.advance(-1.0)

    k.spawn(body)
    with pytest.raises(SimThreadFailed) as ei:
        k.run()
    assert isinstance(ei.value.original, ValueError)


def test_threads_interleave_in_virtual_time_order():
    k = SimKernel()
    order = []

    def body(name, step):
        for i in range(3):
            k.advance(step)
            order.append((name, k.now()))

    k.spawn(body, "a", 1.0)
    k.spawn(body, "b", 0.4)
    k.run()
    assert order == sorted(order, key=lambda x: x[1])
    assert order[0] == ("b", 0.4)
    assert order[-1] == ("a", 3.0)


def test_same_time_ties_broken_by_spawn_order():
    k = SimKernel()
    order = []
    for name in ["x", "y", "z"]:
        k.spawn(lambda n=name: order.append(n))
    k.run()
    assert order == ["x", "y", "z"]


def test_determinism_across_runs():
    def build():
        k = SimKernel()
        log = []

        def body(name, dts):
            for dt in dts:
                k.advance(dt)
                log.append((name, k.now()))

        k.spawn(body, "a", [0.3, 0.3, 0.1])
        k.spawn(body, "b", [0.2, 0.5, 0.2])
        k.spawn(body, "c", [0.7])
        k.run()
        return log

    assert build() == build()


def test_spawn_inside_sim_thread():
    k = SimKernel()
    log = []

    def child():
        log.append(("child", k.now()))

    def parent():
        k.advance(5.0)
        k.spawn(child, name="child")
        k.advance(1.0)
        log.append(("parent", k.now()))

    k.spawn(parent, name="parent")
    k.run()
    assert ("child", 5.0) in log
    assert ("parent", 6.0) in log


def test_spawn_start_time_in_future():
    k = SimKernel()
    t = k.spawn(lambda: k.now(), start_time=10.0)
    k.run()
    assert t.result == 10.0


def test_spawn_start_time_not_before_parent():
    k = SimKernel()

    def parent():
        k.advance(8.0)
        return k.spawn(lambda: k.now(), start_time=3.0)

    p = k.spawn(parent)
    k.run()
    assert p.result.result == 8.0


def test_exception_propagates_with_thread_name():
    k = SimKernel()

    def boom():
        raise RuntimeError("kapow")

    k.spawn(boom, name="bomber")
    with pytest.raises(SimThreadFailed, match="bomber"):
        k.run()


def test_deadlock_detected():
    k = SimKernel()
    k.spawn(lambda: k.block("waiting forever"), name="stuck")
    with pytest.raises(DeadlockError, match="stuck"):
        k.run()


def test_daemon_thread_does_not_deadlock_run():
    k = SimKernel()
    k.spawn(lambda: k.block("serving"), name="server", daemon=True)
    k.spawn(lambda: k.advance(1.0), name="client")
    assert k.run() == 1.0


def test_block_and_wake_transfer_time():
    k = SimKernel()
    result = {}

    def sleeper():
        k.block("for wake")
        result["woke_at"] = k.now()

    def waker(target):
        k.advance(4.0)
        k.wake(target, 7.0)

    t = k.spawn(sleeper)
    k.spawn(waker, t)
    k.run()
    assert result["woke_at"] == 7.0


def test_wake_never_moves_clock_backwards():
    k = SimKernel()
    result = {}

    def sleeper():
        k.advance(10.0)
        k.block("for wake")
        result["woke_at"] = k.now()

    def waker(target):
        k.advance(11.0)
        k.wake(target, 2.0)

    t = k.spawn(sleeper)
    k.spawn(waker, t)
    k.run()
    assert result["woke_at"] == 10.0


def test_run_until_stops_early():
    k = SimKernel()
    log = []

    def body():
        for _ in range(10):
            k.advance(1.0)
            log.append(k.now())

    k.spawn(body)
    k.run(until=3.5)
    assert log == [1.0, 2.0, 3.0]
    k.run()  # resume to completion
    assert log[-1] == 10.0


def test_run_not_reentrant():
    k = SimKernel()

    def body():
        k.run()

    k.spawn(body)
    with pytest.raises(SimThreadFailed) as ei:
        k.run()
    assert isinstance(ei.value.original, SimError)


def test_spawn_after_finish_rejected():
    k = SimKernel()
    k.spawn(lambda: None)
    k.run()
    with pytest.raises(SimError):
        k.spawn(lambda: None)


def test_sleep_until():
    k = SimKernel()

    def body():
        k.sleep_until(5.0)
        a = k.now()
        k.sleep_until(2.0)  # in the past: no-op
        return (a, k.now())

    t = k.spawn(body)
    k.run()
    assert t.result == (5.0, 5.0)


def test_many_threads_scale():
    k = SimKernel()
    done = []
    for i in range(100):
        k.spawn(lambda i=i: (k.advance(i * 0.01), done.append(i)))
    k.run()
    assert sorted(done) == list(range(100))
    # increasing advance => completion order equals spawn order
    assert done == list(range(100))


def test_now_outside_sim_is_zero():
    k = SimKernel()
    assert k.now() == 0.0


def test_current_outside_sim_raises():
    with pytest.raises(Exception):
        SimKernel.current()
