"""Transfer schedules between distributions.

"Knowledge of distribution allows the ORB to efficiently transfer
arguments between the client and server" [KG97]: given the source and
destination :class:`~repro.core.distribution.Distribution` of a
distributed argument, the ORB computes which global index ranges each
source thread must ship to each destination thread, and the threads
exchange exactly those fragments **directly**, in parallel — no funneling
through a single node (the ablation benchmark quantifies the difference).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distribution import Distribution, Interval


#: Optional schedule observer (an object with ``on_schedule(nfragments,
#: nelements)``), installed by repro.tools.observe.  ``None`` keeps
#: schedule() at a single identity check.
_OBSERVER = None


def set_observer(obs) -> None:
    """Install (or clear, with ``None``) the global schedule observer."""
    global _OBSERVER
    _OBSERVER = obs


def get_observer():
    return _OBSERVER


@dataclass(frozen=True)
class TransferItem:
    """One point-to-point fragment of a schedule."""

    src_rank: int
    dst_rank: int
    intervals: tuple[Interval, ...]   # global index ranges, sorted

    @property
    def size(self) -> int:
        return sum(b - a for a, b in self.intervals)


def _intersect(a: tuple[Interval, ...], b: tuple[Interval, ...]) -> tuple[Interval, ...]:
    """Intersection of two sorted interval lists."""
    out: list[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            out.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return tuple(out)


def schedule(src: Distribution, dst: Distribution) -> list[TransferItem]:
    """All fragments needed to convert data laid out as ``src`` into ``dst``.

    Raises ``ValueError`` when the global lengths differ.  Fragments where
    source and destination rank coincide are included (they are applied
    locally without touching the network).
    """
    if src.n != dst.n:
        raise ValueError(
            f"cannot transfer between lengths {src.n} and {dst.n}"
        )
    items: list[TransferItem] = []
    for s in range(src.p):
        s_ivs = src.intervals(s)
        if not s_ivs:
            continue
        for d in range(dst.p):
            common = _intersect(s_ivs, dst.intervals(d))
            if common:
                items.append(TransferItem(s, d, common))
    if _OBSERVER is not None:
        _OBSERVER.on_schedule(len(items), sum(t.size for t in items))
    return items


#: Memoized schedules keyed by the (kind, n, p, parts) identity of both
#: distributions.  The request path recomputes identical schedules for
#: every invocation of the same operation; the cache turns that into one
#: dict lookup.  Bounded FIFO eviction keeps it from growing with the
#: number of distinct layouts, not the number of requests.
_SCHEDULE_CACHE: dict[tuple, tuple] = {}
_SCHEDULE_CACHE_MAX = 512


def _dist_key(d: Distribution) -> tuple:
    return (d.kind, d.n, d.p, d.parts)


def cached_schedule(src: Distribution, dst: Distribution) -> list[TransferItem]:
    """Memoizing :func:`schedule`.  Returns a shared list — callers must
    not mutate it.  The schedule observer is notified on hits as well, so
    its counters keep counting logical schedule computations."""
    key = (_dist_key(src), _dist_key(dst))
    hit = _SCHEDULE_CACHE.get(key)
    if hit is not None:
        items, nfrag, nelem = hit
        if _OBSERVER is not None:
            _OBSERVER.on_schedule(nfrag, nelem)
        return items
    items = schedule(src, dst)
    if len(_SCHEDULE_CACHE) >= _SCHEDULE_CACHE_MAX:
        _SCHEDULE_CACHE.pop(next(iter(_SCHEDULE_CACHE)))
    _SCHEDULE_CACHE[key] = (items, len(items), sum(t.size for t in items))
    return items


def outgoing(sched: list[TransferItem], rank: int) -> list[TransferItem]:
    """The fragments ``rank`` must send (excluding rank-local ones)."""
    return [t for t in sched if t.src_rank == rank and t.dst_rank != rank]


def incoming(sched: list[TransferItem], rank: int) -> list[TransferItem]:
    """The fragments ``rank`` will receive (excluding rank-local ones)."""
    return [t for t in sched if t.dst_rank == rank and t.src_rank != rank]


def local_items(sched: list[TransferItem], rank: int) -> list[TransferItem]:
    """Fragments that stay on ``rank``."""
    return [t for t in sched if t.src_rank == rank and t.dst_rank == rank]


# ---------------------------------------------------------------------------
# Extraction / insertion of fragment data from local storage
# ---------------------------------------------------------------------------


def _interval_indices(intervals) -> np.ndarray:
    """Concatenated global indices of a sorted interval list (vectorized:
    no Python-level per-element loop, which matters for cyclic layouts
    whose schedules contain tens of thousands of unit intervals)."""
    ivs = np.asarray(intervals, dtype=np.int64).reshape(-1, 2)
    if not len(ivs):
        return np.zeros(0, dtype=np.int64)
    lens = ivs[:, 1] - ivs[:, 0]
    total = int(lens.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    cum = np.concatenate(([0], np.cumsum(lens)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(cum, lens)
    return np.repeat(ivs[:, 0], lens) + within


def _local_index_map(dist: Distribution, rank: int,
                     gidx: np.ndarray) -> np.ndarray:
    """Map global indices (all owned by ``rank``) to local storage offsets
    via binary search over the rank's interval starts."""
    own = np.asarray(dist.intervals(rank), dtype=np.int64).reshape(-1, 2)
    starts = own[:, 0]
    lens = own[:, 1] - own[:, 0]
    cum = np.concatenate(([0], np.cumsum(lens)[:-1]))
    j = np.searchsorted(starts, gidx, side="right") - 1
    return cum[j] + (gidx - starts[j])


def extract(dist: Distribution, rank: int, local_data,
            intervals: tuple[Interval, ...]):
    """Pull the elements of global ``intervals`` out of ``rank``'s local
    storage (numpy array or list, in distribution storage order)."""
    gidx = _interval_indices(intervals)
    if not len(gidx):
        return local_data[:0] if isinstance(local_data, np.ndarray) else []
    lidx = _local_index_map(dist, rank, gidx)
    if isinstance(local_data, np.ndarray):
        return local_data[lidx]
    return [local_data[i] for i in lidx]


def insert(dist: Distribution, rank: int, local_data,
           intervals: tuple[Interval, ...], values) -> None:
    """Write fragment ``values`` (ordered by global index) into ``rank``'s
    local storage at the positions of ``intervals``."""
    gidx = _interval_indices(intervals)
    if not len(gidx):
        return
    lidx = _local_index_map(dist, rank, gidx)
    if isinstance(local_data, np.ndarray):
        local_data[lidx] = np.asarray(values)[:len(lidx)]
    else:
        for k, i in enumerate(lidx):
            local_data[i] = values[k]
