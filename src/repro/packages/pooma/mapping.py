"""PARDIS <-> POOMA container mapping (``#pragma POOMA:field``).

Compiling an IDL file with ``-pooma`` makes dsequence parameters whose
typedef carries this pragma marshal directly into :class:`Field` objects:
the stub hands the servant/client a Field, and the wire sees the field's
row-major flattening with its natural block-row distribution — "stub code
marshaling the distributed sequence into a POOMA field" (§4.3).
"""

from __future__ import annotations

import math

import numpy as np

from ...core.dsequence import DistributedSequence
from ...core.stubapi import current_context, register_adapter
from .field import Field
from .layout import GridLayout


class FieldAdapter:
    """Container adapter between POOMA fields and distributed sequences.

    The IDL carries a flat length; the grid shape is recovered as the
    square root (the paper's example is the square ``N x N`` diffusion
    grid).  Non-square grids can register a dedicated adapter built with
    an explicit shape.
    """

    def __init__(self, shape: tuple[int, int] | None = None) -> None:
        self.shape = shape

    # -- protocol used by repro.core.marshal ------------------------------------

    def handles(self, value) -> bool:
        return isinstance(value, Field)

    def unwrap(self, field: Field, element_tc) -> DistributedSequence:
        """Field -> row-major dsequence, zero-copy (the interior rows of a
        C-ordered array are contiguous)."""
        dist = field.layout.flat_distribution()
        flat = field.interior.reshape(-1)
        return DistributedSequence.adopt(flat, dist, field.rank, element_tc)

    def wrap(self, dseq: DistributedSequence) -> Field:
        """dsequence -> Field on the calling context's layout.

        Requires the sequence's distribution to sit on whole-row
        boundaries; the stubs guarantee that by requesting the layout's
        flat distribution for "out" arguments.
        """
        ny, nx = self._grid_shape(len(dseq))
        ctx = current_context()
        layout = GridLayout(ny, nx, dseq.dist.p)
        expected = layout.flat_distribution()
        if expected.parts != dseq.dist.parts:
            # Lay the data out on row boundaries first.
            dseq = dseq.redistribute(expected, ctx.rts)
        local = np.asarray(dseq.owned_data, dtype=float).reshape(
            layout.local_rows(dseq.rank), nx)
        return Field(layout, dseq.rank, ctx.rts, initial=local)

    def _grid_shape(self, n: int) -> tuple[int, int]:
        if self.shape is not None:
            if self.shape[0] * self.shape[1] != n:
                raise ValueError(
                    f"adapter shape {self.shape} does not match length {n}"
                )
            return self.shape
        side = int(math.isqrt(n))
        if side * side != n:
            raise ValueError(
                f"cannot infer a square grid from length {n}; register a "
                "FieldAdapter with an explicit shape"
            )
        return (side, side)


register_adapter("POOMA", "field", FieldAdapter())
