"""The saturation experiment: graceful degradation under admission
control (services-layer evidence, not a paper figure)."""

import json
import subprocess
import sys

import pytest

from repro.experiments.saturation import (
    SaturationRow,
    rows_to_json,
    run_point,
    run_saturation,
)


class TestRunPoint:
    def test_light_load_sheds_nothing(self):
        row = run_point(1, requests=5, capacity=2)
        assert row.accepted == 5
        assert row.shed == 0
        assert row.p99_ms >= row.p50_ms > 0

    def test_overload_sheds_with_admission_on(self):
        off = run_point(6, requests=6, capacity=None)
        on = run_point(6, requests=6, capacity=2, throttle=False)
        assert off.shed == 0
        assert off.accepted == 36
        assert on.shed > 0
        assert on.accepted + on.shed == 36
        # Bounded queue: accepted-request p99 beats the unbounded queue.
        assert on.p99_ms < off.p99_ms

    def test_deterministic(self):
        a = run_point(4, requests=5, capacity=2)
        b = run_point(4, requests=5, capacity=2)
        assert a == b

    def test_throttle_counts_paced_requests(self):
        row = run_point(6, requests=6, capacity=1, throttle=True)
        assert row.throttled > 0


class TestSweep:
    def test_three_series_and_json_round_trip(self):
        results = run_saturation(clients=(1, 6), requests=5, capacity=2)
        assert set(results) == {"admission_off", "admission_on",
                                "admission_on_throttled"}
        for rows in results.values():
            assert [r.clients for r in rows] == [1, 6]
            assert all(isinstance(r, SaturationRow) for r in rows)
        doc = json.loads(rows_to_json(results))
        assert doc["admission_on"][1]["shed"] > 0
        assert doc["admission_off"][1]["shed"] == 0

    @pytest.mark.slow
    def test_degradation_is_graceful(self):
        """The acceptance shape: without admission p99 grows with the
        client count; with admission it stays near the queue bound."""
        results = run_saturation(clients=(1, 4, 16), requests=10,
                                 capacity=4)
        off = results["admission_off"]
        on = results["admission_on"]
        assert off[2].p99_ms > 3 * off[0].p99_ms      # unbounded growth
        assert on[2].p99_ms < 0.7 * off[2].p99_ms     # bounded queue
        assert on[2].shed > 0


class TestCli:
    def test_saturation_subcommand_writes_json(self, tmp_path):
        out = tmp_path / "sat.json"
        r = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "--plot",
             "saturation", "--clients", "1", "4", "--requests", "4",
             "--capacity", "2", "--json", str(out)],
            capture_output=True, text=True, timeout=300,
        )
        assert r.returncode == 0, r.stderr
        assert "admission off" in r.stdout
        assert "p99" in r.stdout
        doc = json.loads(out.read_text())
        assert set(doc) == {"admission_off", "admission_on",
                            "admission_on_throttled"}
