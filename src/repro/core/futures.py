"""Futures for non-blocking invocation (paper §3.3).

"An invocation through the non-blocking stub returns immediately after
the request has been sent with futures of its 'out' arguments and return
value. ... Trying to read a future before the result it represents is
returned ... will cause the program to block until the result is
delivered.  Alternatively, the programmer may poll on a future to check if
it has been resolved."

The C++ mapping models futures on ABC++'s; this Python mapping keeps the
same operations (blocking read, ``resolved()`` polling) plus an explicit
``value()`` accessor.  Futures bound to the same invocation all resolve
together when the reply completes.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .errors import FutureError

_UNSET = object()


class Future:
    """A placeholder for a result that may not yet be available.

    A fresh ``Future()`` may be passed to a ``*_nb`` stub as an out-param
    placeholder; the stub binds it to the pending request.  ``distribution``
    optionally carries the client's requested layout for a distributed out
    argument ("the client can set the distribution of the expected 'out'
    arguments before making an invocation", §3.2).
    """

    __slots__ = ("_value", "_exc", "_progress", "distribution", "label")

    def __init__(self, distribution=None, label: str = "") -> None:
        self._value: Any = _UNSET
        self._exc: Optional[BaseException] = None
        self._progress: Optional[Callable[[bool], None]] = None
        self.distribution = distribution
        self.label = label

    # -- binding (internal, used by stubs) ------------------------------------

    def _bind(self, progress: Callable[[bool], None]) -> None:
        if self._progress is not None or self._value is not _UNSET:
            raise FutureError("future is already bound to an invocation")
        self._progress = progress

    def _settled(self) -> bool:
        return self._value is not _UNSET or self._exc is not None

    def _resolve(self, value: Any) -> None:
        if self._settled():
            raise FutureError(
                f"future {self.label or '<anonymous>'} is already settled; "
                "cannot resolve it twice"
            )
        self._value = value
        self._progress = None

    def _fail(self, exc: BaseException) -> None:
        if self._settled():
            raise FutureError(
                f"future {self.label or '<anonymous>'} is already settled; "
                "cannot fail it twice"
            )
        self._exc = exc
        self._value = None
        self._progress = None

    # -- user API -----------------------------------------------------------------

    def resolved(self) -> bool:
        """Poll: has the result been delivered?  Never blocks (but drives
        the ORB's progress engine so replies are noticed)."""
        if self._value is _UNSET and self._progress is not None:
            self._progress(False)
        return self._value is not _UNSET or self._exc is not None

    def value(self) -> Any:
        """Blocking read: waits until the result is delivered, then
        returns it (or raises the invocation's exception)."""
        if self._value is _UNSET and self._exc is None:
            if self._progress is None:
                raise FutureError("reading an unbound future would block forever")
            self._progress(True)
        if self._exc is not None:
            raise self._exc
        return self._value

    def wait(self) -> "Future":
        """Block until resolved; returns self (for chaining)."""
        if not self.resolved():
            self.value()
        return self

    def __repr__(self) -> str:
        state = ("failed" if self._exc is not None
                 else "resolved" if self._value is not _UNSET
                 else "pending")
        lbl = f" {self.label}" if self.label else ""
        return f"<Future{lbl} {state}>"
