"""Ablation benchmarks: each isolates one PARDIS mechanism called out in
DESIGN.md and quantifies its effect in virtual time.

* parallel vs funneled argument transfer (the [KG97] claim);
* non-blocking futures vs blocking invocation (Fig 2's mechanism);
* redistribution cost across layout pairs;
* local bypass vs remote invocation (§4.1);
* communication-thread offload and outstanding-request window vs the
  Fig-5 pipeline congestion (§6 future work).
"""

import numpy as np
import pytest

from repro.core import Distribution, OrbConfig, Simulation
from repro.idl import compile_idl
from repro.runtime import MPIRuntime

VEC_IDL = """
    typedef dsequence<double, 10000000> vec;
    typedef dsequence<double, 10000000, CONCENTRATED, CONCENTRATED> cvec;
    interface sink {
        void put(in vec v);
        void put_funneled(in cvec v);
        double echo(in double x);
    };
"""
stubs = compile_idl(VEC_IDL, module_name="ablation_stubs")


def make_sink(ctx):
    class SinkImpl(stubs.sink_skel):
        def put(self, v):
            return None

        def put_funneled(self, v):
            # The funneled protocol still has to spread the data over the
            # server's threads before compute could start.
            from repro.core.dsequence import DistributedSequence

            v.redistribute(Distribution.block(len(v), ctx.nprocs), ctx.rts)
            return None

        def echo(self, x):
            return x

    return SinkImpl()


def sink_world(nprocs=4, config=None):
    sim = Simulation(config=config)

    def server_main(ctx):
        ctx.poa.activate(make_sink(ctx), "sink", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=nprocs, name="sink")
    return sim


N = 400_000  # 3.2 MB of doubles


def _parallel_transfer() -> float:
    """Distributed argument sent directly thread-to-thread."""
    sim = sink_world()
    out = {}

    def client(ctx):
        v = stubs.vec(np.zeros(N))           # BLOCK over client threads
        s = stubs.sink._spmd_bind("sink")
        t0 = ctx.now()
        s.put(v)
        if ctx.rank == 0:
            out["t"] = ctx.now() - t0

    sim.client(client, host="HOST_1", nprocs=4)
    sim.run()
    return out["t"]


def _funneled_transfer() -> float:
    """The same bytes funneled through one thread on each side: gather on
    the client, single fat transfer, spread on the server."""
    sim = sink_world()
    out = {}

    def client(ctx):
        v = stubs.vec(np.zeros(N))
        s = stubs.sink._spmd_bind("sink")
        t0 = ctx.now()
        funneled = v.redistribute(
            Distribution.concentrated(N, ctx.nprocs), ctx.rts)
        s.put_funneled(funneled)
        if ctx.rank == 0:
            out["t"] = ctx.now() - t0

    sim.client(client, host="HOST_1", nprocs=4)
    sim.run()
    return out["t"]


@pytest.mark.benchmark(group="ablation-transfer")
def test_parallel_vs_funneled_transfer(benchmark):
    def run():
        return _parallel_transfer(), _funneled_transfer()

    parallel, funneled = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(parallel_s=round(parallel, 4),
                                funneled_s=round(funneled, 4),
                                speedup=round(funneled / parallel, 2))
    print(f"\n  parallel transfer : {parallel:.4f} virtual s")
    print(f"  funneled transfer : {funneled:.4f} virtual s "
          f"({funneled / parallel:.2f}x slower)")
    assert parallel < funneled


# ---------------------------------------------------------------------------


def _overlap(nonblocking: bool) -> float:
    """Two 1-second services on two servers, invoked either as blocking
    calls or with a future overlapping the first call."""
    sim = Simulation(config=OrbConfig(max_outstanding=2))

    def make_slow(ctx):
        class Slow(stubs.sink_skel):
            def echo(self, x):
                ctx.compute(1.0)
                return x

            def put(self, v):
                return None

            def put_funneled(self, v):
                return None

        return Slow()

    for i, host in enumerate(["HOST_1", "HOST_2"]):
        def server_main(ctx, _i=i):
            ctx.poa.activate(make_slow(ctx), f"slow{_i}", kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host=host, nprocs=1,
                   node_offset=2 if host == "HOST_1" else 0,
                   name=f"slow{i}")
    out = {}

    def client(ctx):
        a = stubs.sink._bind("slow0")
        b = stubs.sink._bind("slow1")
        t0 = ctx.now()
        if nonblocking:
            fut = b.echo_nb(1.0)
            a.echo(2.0)
            fut.value()
        else:
            b.echo(1.0)
            a.echo(2.0)
        out["t"] = ctx.now() - t0

    sim.client(client, host="HOST_1", nprocs=1)
    sim.run()
    return out["t"]


@pytest.mark.benchmark(group="ablation-futures")
def test_nonblocking_overlap_vs_blocking(benchmark):
    def run():
        return _overlap(nonblocking=True), _overlap(nonblocking=False)

    nb, blocking = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(nonblocking_s=round(nb, 3),
                                blocking_s=round(blocking, 3))
    print(f"\n  blocking     : {blocking:.3f} virtual s")
    print(f"  non-blocking : {nb:.3f} virtual s")
    assert nb < blocking * 0.7  # ~max() vs ~sum() of the two services


# ---------------------------------------------------------------------------


REDIST_CASES = [("BLOCK", "CYCLIC"), ("BLOCK", "CONCENTRATED"),
                ("CYCLIC", "BLOCK")]


@pytest.mark.benchmark(group="ablation-redistribution")
@pytest.mark.parametrize("src,dst", REDIST_CASES)
def test_redistribution_cost(benchmark, src, dst):
    from repro.core.dsequence import DistributedSequence

    n = 100_000

    def run():
        sim = Simulation()
        out = {}

        def main(ctx):
            d = DistributedSequence.from_global(
                np.zeros(n), Distribution.of_kind(src, n, ctx.nprocs),
                ctx.rank)
            t0 = ctx.now()
            d.redistribute(Distribution.of_kind(dst, n, ctx.nprocs), ctx.rts)
            if ctx.rank == 0:
                out["t"] = ctx.now() - t0

        sim.client(main, host="HOST_2", nprocs=4)
        sim.run()
        return out["t"]

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(src=src, dst=dst, virtual_s=round(t, 5))


# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="ablation-local-bypass")
def test_local_bypass_vs_remote(benchmark):
    def run():
        times = {}
        for local in (True, False):
            sim = Simulation()
            out = {}

            def client(ctx):
                if local:
                    ctx.poa.activate(make_sink(ctx), "sink", kind="spmd")
                    s = stubs.sink._bind("sink")
                else:
                    s = stubs.sink._bind("sink")
                t0 = ctx.now()
                for _ in range(10):
                    s.echo(1.0)
                out["t"] = (ctx.now() - t0) / 10

            if not local:
                def server_main(ctx):
                    ctx.poa.activate(make_sink(ctx), "sink", kind="spmd")
                    ctx.poa.impl_is_ready()

                sim.server(server_main, host="HOST_2", nprocs=1)
            sim.client(client, host="HOST_1", nprocs=1)
            sim.run()
            times[local] = out["t"]
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(local_s=times[True], remote_s=times[False])
    print(f"\n  local bypass : {times[True] * 1e6:.1f} virtual us/call")
    print(f"  remote       : {times[False] * 1e6:.1f} virtual us/call")
    assert times[True] < times[False] / 10


# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="ablation-commthreads")
def test_pipeline_congestion_relief(benchmark):
    """The paper's §6 hypothesis: communication threads (send offload) and
    a deeper pipeline window alleviate the Fig-5 congestion."""
    from repro.experiments.fig5_pipeline import run_overall

    def run():
        base = run_overall(4, steps=50, n=64,
                           config=OrbConfig(max_outstanding=1))
        offload = run_overall(4, steps=50, n=64,
                              config=OrbConfig(max_outstanding=1,
                                               communication_threads=True))
        deep = run_overall(4, steps=50, n=64,
                           config=OrbConfig(max_outstanding=4,
                                            communication_threads=True))
        return base, offload, deep

    base, offload, deep = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(baseline_s=round(base, 3),
                                comm_threads_s=round(offload, 3),
                                comm_threads_deep_window_s=round(deep, 3))
    print(f"\n  baseline (1 outstanding, sync sends)  : {base:.3f} virtual s")
    print(f"  + communication threads               : {offload:.3f}")
    print(f"  + 4-deep pipeline window              : {deep:.3f}")
    assert offload < base
    assert deep <= offload


# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="ablation-timesharing")
def test_timeshared_vs_dedicated_nodes(benchmark):
    """Opt-in CPU contention: two co-located 1-second computations either
    overlap (dedicated processors, the paper's testbed) or serialize
    (time-shared node)."""
    from repro.netsim import Host, Network
    from repro.runtime import World

    def run_one(timeshared):
        net = Network()
        net.add_host(Host("h", nodes=1, node_flops=1e6,
                          timeshared=timeshared))
        world = World(net)
        ends = []

        def main(rts):
            rts.compute(1.0)
            ends.append(rts.now())

        world.launch(main, host="h", nprocs=1)
        world.launch(main, host="h", nprocs=1)
        world.run()
        return max(ends)

    def run():
        return run_one(False), run_one(True)

    dedicated, shared = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(dedicated_s=dedicated, timeshared_s=shared)
    print(f"\n  dedicated nodes : {dedicated:.2f} virtual s (overlapped)")
    print(f"  time-shared node: {shared:.2f} virtual s (serialized)")
    assert shared == pytest.approx(2 * dedicated)


# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="ablation-network")
def test_network_sensitivity_of_pipeline(benchmark):
    """§4.3's closing remark inverted: with a deterministic testbed we CAN
    separate the pipeline's non-scaling influences — run the same
    metaapplication over three interconnects with the send-offload and
    window knobs toggled."""
    from repro.experiments.common import format_table
    from repro.experiments.network_sensitivity import run_sensitivity

    rows = benchmark.pedantic(run_sensitivity,
                              kwargs=dict(procs=2, steps=50, n=64),
                              rounds=1, iterations=1)
    print()
    print(format_table(rows, "Pipeline vs interconnect (virtual s)",
                       float_fmt="{:10.4f}"))
    by_link = {r.link: r for r in rows}
    # The synchronous-send influence shrinks as the link gets faster...
    assert by_link["ethernet-100"].send_effect < \
        by_link["ethernet-10"].send_effect
    # ...and every configuration runs no slower on a faster link.
    assert by_link["atm-155"].t_baseline <= by_link["ethernet-10"].t_baseline
    for r in rows:
        assert r.congestion_effect >= -1e-9
