"""Unit tests for the Future abstraction (paper §3.3)."""

import pytest

from repro.core import Future
from repro.core.errors import FutureError


class TestUnbound:
    def test_fresh_future_unresolved(self):
        f = Future()
        assert not f.resolved()

    def test_reading_unbound_future_raises(self):
        with pytest.raises(FutureError, match="block forever"):
            Future().value()

    def test_repr_states(self):
        f = Future(label="X1")
        assert "pending" in repr(f)
        assert "X1" in repr(f)
        f._resolve(1)
        assert "resolved" in repr(f)
        g = Future()
        g._fail(RuntimeError("no"))
        assert "failed" in repr(g)


class TestResolution:
    def test_resolve_then_value(self):
        f = Future()
        f._resolve(42)
        assert f.resolved()
        assert f.value() == 42

    def test_value_idempotent(self):
        f = Future()
        f._resolve([1, 2])
        assert f.value() is f.value()

    def test_resolve_none_counts_as_resolved(self):
        f = Future()
        f._resolve(None)
        assert f.resolved()
        assert f.value() is None

    def test_fail_then_value_raises(self):
        f = Future()
        f._fail(ValueError("bad"))
        assert f.resolved()
        with pytest.raises(ValueError, match="bad"):
            f.value()

    def test_wait_returns_self(self):
        f = Future()
        f._resolve(7)
        assert f.wait() is f

    def test_wait_blocks_via_progress(self):
        f = Future()

        def progress(block):
            if block:
                f._resolve("late")

        f._bind(progress)
        assert f.wait() is f
        assert f.value() == "late"

    def test_double_resolve_rejected(self):
        f = Future(label="R")
        f._resolve(1)
        with pytest.raises(FutureError, match="already settled"):
            f._resolve(2)
        assert f.value() == 1

    def test_double_fail_rejected(self):
        f = Future()
        f._fail(ValueError("first"))
        with pytest.raises(FutureError, match="already settled"):
            f._fail(ValueError("second"))

    def test_resolve_after_fail_rejected(self):
        f = Future()
        f._fail(RuntimeError("no"))
        with pytest.raises(FutureError, match="already settled"):
            f._resolve(1)

    def test_fail_after_resolve_rejected(self):
        f = Future()
        f._resolve(1)
        with pytest.raises(FutureError, match="already settled"):
            f._fail(RuntimeError("no"))


class TestBinding:
    def test_progress_called_on_poll(self):
        calls = []
        f = Future()
        f._bind(lambda block: calls.append(block))
        f.resolved()
        assert calls == [False]

    def test_progress_called_blocking_on_value(self):
        f = Future()

        def progress(block):
            if block:
                f._resolve("done")

        f._bind(progress)
        assert f.value() == "done"

    def test_double_bind_rejected(self):
        f = Future()
        f._bind(lambda block: None)
        with pytest.raises(FutureError, match="already bound"):
            f._bind(lambda block: None)

    def test_bind_after_resolve_rejected(self):
        f = Future()
        f._resolve(1)
        with pytest.raises(FutureError):
            f._bind(lambda block: None)

    def test_distribution_attribute_carried(self):
        f = Future(distribution="CYCLIC")
        assert f.distribution == "CYCLIC"
