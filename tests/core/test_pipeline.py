"""The protocol pipeline: portable interceptors, service contexts,
deadline propagation, fault injection, partial-failure handling, and the
request state machines' failure edges."""

import numpy as np
import pytest

from repro.core import (
    BindingError,
    DeadlineInterceptor,
    Distribution,
    FaultInjectionInterceptor,
    Future,
    InterceptorChain,
    OrbConfig,
    RequestInterceptor,
    Simulation,
    SystemException,
)
from repro.idl import compile_idl

IDL = """
    typedef dsequence<double, 100000> vec;
    interface pipesvc {
        double total(in vec v);
        void scale(in double k, in vec v, out vec w);
        long add(in long a, in long b);
        double poke(in double delay);
        long boom(in long x);
        void pair(in long x, out long a, out long b);
    };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="pipeline_stubs")


def make_impl(mod, fail_ranks=()):
    class Impl(mod.pipesvc_skel):
        def __init__(self, ctx):
            self.ctx = ctx

        def total(self, v):
            from repro.runtime import collectives as coll

            local = float(np.sum(v.owned_data))
            return coll.allreduce(self.ctx.rts, local, lambda a, b: a + b)

        def scale(self, k, v):
            if self.ctx.rank in fail_ranks:
                raise RuntimeError(f"rank {self.ctx.rank} failed")
            from repro.core import DistributedSequence

            return DistributedSequence(v.element, v.dist, v.rank,
                                       np.asarray(v.owned_data) * k)

        def add(self, a, b):
            return a + b

        def poke(self, delay):
            self.ctx.compute(delay)
            return float(delay)

        def boom(self, x):
            raise RuntimeError("kaboom")

        def pair(self, x):
            raise RuntimeError("kaboom")

    return Impl


def build(mod, *, server_np=1, config=None, fail_ranks=()):
    sim = Simulation(config=config)
    impl = make_impl(mod, fail_ranks)

    def server_main(ctx):
        ctx.poa.activate(impl(ctx), "pipes", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=server_np)
    return sim


# ---------------------------------------------------------------------------
# Interceptor chain mechanics
# ---------------------------------------------------------------------------


class Recorder(RequestInterceptor):
    """Appends (tag, point, op) for every interception point it sees."""

    def __init__(self, tag, log):
        self.tag = tag
        self.log = log
        self.name = f"recorder-{tag}"

    def send_request(self, info):
        self.log.append((self.tag, "send_request", info.op_name))

    def receive_reply(self, info):
        self.log.append((self.tag, "receive_reply", info.op_name))

    def receive_exception(self, info):
        self.log.append((self.tag, "receive_exception", info.op_name))

    def receive_request(self, info):
        self.log.append((self.tag, "receive_request", info.op_name))

    def send_reply(self, info):
        self.log.append((self.tag, "send_reply", info.op_name))


def test_chain_registration_errors():
    chain = InterceptorChain()
    assert len(chain) == 0 and not chain.active and not chain.wants_spans
    icept = RequestInterceptor()
    chain.add(icept)
    assert chain.active and icept in chain
    with pytest.raises(BindingError):
        chain.add(icept)
    chain.remove(icept)
    assert not chain.active
    with pytest.raises(BindingError):
        chain.remove(icept)


def test_chain_span_flag_tracks_sink_overrides():
    class SpanSink(RequestInterceptor):
        def on_span(self, *a, **k):
            pass

    chain = InterceptorChain([RequestInterceptor()])
    assert chain.active and not chain.wants_spans
    sink = chain.add(SpanSink())
    assert chain.wants_spans
    chain.remove(sink)
    assert not chain.wants_spans


def test_points_fire_in_registration_order(mod):
    sim = build(mod)
    log = []
    sim.register_interceptor(Recorder("A", log))
    sim.register_interceptor(Recorder("B", log))
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        out["v"] = srv.add(2, 3)

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["v"] == 5
    points = {p for _t, p, _o in log}
    assert points == {"send_request", "receive_request", "send_reply",
                      "receive_reply"}
    for point in points:
        tags = [t for t, p, _o in log if p == point]
        assert tags == ["A", "B"]


def test_service_contexts_round_trip_on_the_wire(mod):
    """Request contexts set in send_request surface in receive_request;
    reply contexts set server-side surface in receive_reply."""

    class ContextEcho(RequestInterceptor):
        name = "ctx-echo"

        def __init__(self):
            self.seen = {}

        def send_request(self, info):
            info.service_contexts["trace-id"] = ("trace", info.req_id[-1])

        def receive_request(self, info):
            self.seen["server"] = info.service_contexts.get("trace-id")
            info.reply_service_contexts["server-note"] = "pong"

        def receive_reply(self, info):
            self.seen["client"] = info.reply_service_contexts.get(
                "server-note")

    sim = build(mod)
    echo = sim.register_interceptor(ContextEcho())

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        srv.add(1, 1)

    sim.client(client, host="HOST_1")
    sim.run()
    assert echo.seen["server"] is not None
    assert echo.seen["server"][0] == "trace"
    assert echo.seen["client"] == "pong"


# ---------------------------------------------------------------------------
# Deadline propagation
# ---------------------------------------------------------------------------


def test_expired_deadline_is_shed_promptly(mod):
    """A request whose propagated deadline passed in transit is rejected
    at the POA: the client sees a SystemException long before its own
    request_timeout would fire."""
    sim = build(mod, config=OrbConfig(request_timeout=60.0))
    dl = sim.register_interceptor(DeadlineInterceptor(budget=1e-9))
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        t0 = ctx.now()
        with pytest.raises(SystemException, match="shed"):
            srv.add(1, 1)
        out["elapsed"] = ctx.now() - t0

    sim.client(client, host="HOST_1")
    sim.run()
    assert dl.shed_count == 1
    assert out["elapsed"] < 1.0  # nowhere near the 60 s timeout


def test_deadline_within_budget_passes_through(mod):
    sim = build(mod, config=OrbConfig(request_timeout=60.0))
    dl = sim.register_interceptor(DeadlineInterceptor(budget=30.0))
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        out["v"] = srv.add(20, 22)

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["v"] == 42
    assert dl.shed_count == 0


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


def test_fault_at_send_request_aborts_before_sending(mod):
    sim = build(mod)
    faults = sim.register_interceptor(FaultInjectionInterceptor())
    rule = faults.inject("send_request", op="add", times=1)
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        sent_before = ctx.orb.requests_sent
        with pytest.raises(SystemException, match="injected fault"):
            srv.add(1, 2)
        out["sent_during"] = ctx.orb.requests_sent - sent_before
        out["retry"] = srv.add(1, 2)  # rule exhausted: goes through

    sim.client(client, host="HOST_1")
    sim.run()
    assert rule.fired == 1
    assert out["sent_during"] == 0  # aborted before wire injection
    assert out["retry"] == 3


def test_fault_at_send_request_fails_nonblocking_future(mod):
    sim = build(mod)
    faults = sim.register_interceptor(FaultInjectionInterceptor())
    faults.inject("send_request", op="add", times=1)
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        fut = srv.add_nb(1, 2)
        out["resolved"] = fut.resolved()
        try:
            fut.value()
        except SystemException as exc:
            out["error"] = str(exc)

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["resolved"] is True
    assert "injected fault" in out["error"]


def test_fault_at_receive_reply_turns_success_into_failure(mod):
    sim = build(mod)
    faults = sim.register_interceptor(FaultInjectionInterceptor())
    faults.inject("receive_reply", op="add", times=1)
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        with pytest.raises(SystemException, match="injected fault"):
            srv.add(1, 2)
        out["retry"] = srv.add(2, 2)

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["retry"] == 4


def test_fault_at_send_reply_becomes_error_reply(mod):
    sim = build(mod)
    faults = sim.register_interceptor(FaultInjectionInterceptor())
    faults.inject("send_reply", op="add", times=1)
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        with pytest.raises(SystemException, match="injected fault"):
            srv.add(1, 2)
        out["retry"] = srv.add(3, 3)

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["retry"] == 6


def test_shed_request_dead_letters_orphaned_fragments(mod):
    """A request rejected before argument collection leaves its argument
    fragments in flight; the POA drains them so later requests on the
    same channel are untouched."""
    sim = build(mod)
    faults = sim.register_interceptor(FaultInjectionInterceptor())
    faults.inject("receive_request", op="total", times=1)
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        with pytest.raises(SystemException, match="injected fault"):
            srv.total(mod.vec(np.arange(16.0)))
        # The orphaned fragment of the shed request must not disturb
        # subsequent distributed-argument traffic.
        out["second"] = srv.total(mod.vec(np.arange(16.0)))

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["second"] == float(sum(range(16)))
    assert sim.orb.dead_fragments == 1


def test_interceptor_mutating_contexts_on_every_hook(mod):
    """An interceptor that rewrites the context dicts at *every*
    interception point must not corrupt the request, leak state across
    requests, or disturb fragment-bearing (dsequence) operations."""

    class Mutator(RequestInterceptor):
        name = "mutator"

        def __init__(self):
            self.hops = []

        def send_request(self, info):
            info.service_contexts["hop"] = ("client-send",)

        def receive_request(self, info):
            info.service_contexts["hop"] += ("server-recv",)
            info.service_contexts["noise"] = "x" * 64
            info.reply_service_contexts["hops"] = info.service_contexts["hop"]

        def send_reply(self, info):
            # send_reply fires before the reply contexts are copied into
            # the reply packet, so this append must reach the client.
            info.reply_service_contexts["hops"] += ("server-send",)
            info.reply_service_contexts["noise"] = None

        def receive_reply(self, info):
            self.hops.append(info.reply_service_contexts["hops"])
            info.reply_service_contexts.clear()  # must not leak onward

        def receive_exception(self, info):
            self.hops.append(("exception", info.op_name))

    sim = build(mod)
    mut = sim.register_interceptor(Mutator())
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        out["total"] = srv.total(mod.vec(np.arange(16.0)))
        out["add"] = srv.add(4, 5)
        with pytest.raises(SystemException, match="kaboom"):
            srv.boom(1)

    sim.client(client, host="HOST_1")
    sim.run()
    assert out == {"total": float(sum(range(16))), "add": 9}
    full_trip = ("client-send", "server-recv", "server-send")
    assert mut.hops == [full_trip, full_trip, ("exception", "boom")]


def test_deadline_expires_mid_fragment_transfer(mod):
    """A deadline that expires while a dsequence argument's fragments are
    still in flight: the header is shed at the POA and the orphaned
    fragments are dead-lettered (releasing any pooled payload buffers)
    instead of lingering on the channel."""
    sim = build(mod, config=OrbConfig(request_timeout=60.0))
    dl = sim.register_interceptor(DeadlineInterceptor(budget=1e-9))
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        t0 = ctx.now()
        with pytest.raises(SystemException, match="shed"):
            srv.total(mod.vec(np.arange(48.0)))
        # A second (header-only, also shed) request wakes the server
        # loop, which sweeps any fragments that arrived after the shed.
        with pytest.raises(SystemException, match="shed"):
            srv.add(1, 1)
        out["elapsed"] = ctx.now() - t0

    sim.client(client, host="HOST_1")
    sim.run()
    assert dl.shed_count == 2
    assert sim.orb.dead_fragments == 1
    assert sim.world.transport.buffer_pool.stats.outstanding == 0
    assert out["elapsed"] < 1.0


@pytest.mark.parametrize("lane", [True, False],
                         ids=["fast-path-on", "fast-path-off"])
def test_dead_letter_drain_balances_pool_leases(mod, lane):
    """The dead-letter sweep must release pooled fast-path payloads of
    orphaned fragments; with the lane off the same drain handles plain
    bytes payloads untouched."""
    from repro.cdr import fast_path

    with fast_path(lane):
        sim = build(mod)
        faults = sim.register_interceptor(FaultInjectionInterceptor())
        faults.inject("receive_request", op="total", times=1)
        out = {}

        def client(ctx):
            srv = mod.pipesvc._bind("pipes")
            with pytest.raises(SystemException, match="injected fault"):
                srv.total(mod.vec(np.arange(64.0)))
            out["second"] = srv.total(mod.vec(np.arange(64.0)))

        sim.client(client, host="HOST_1")
        sim.run()
    stats = sim.world.transport.buffer_pool.stats
    assert out["second"] == float(sum(range(64)))
    assert sim.orb.dead_fragments == 1
    assert stats.outstanding == 0  # drained fragment's lease came back
    if lane:
        assert stats.fast_encodes >= 2
    else:
        assert stats.fast_encodes == 0


def test_fault_rule_validation():
    faults = FaultInjectionInterceptor()
    with pytest.raises(ValueError, match="unknown interception point"):
        faults.inject("before_dinner")
    rule = faults.inject("send_request", times=None)
    assert rule.matches("send_request", "anything")
    faults.reset()
    assert not faults.rules


# ---------------------------------------------------------------------------
# SPMD partial failure
# ---------------------------------------------------------------------------


def test_spmd_partial_failure_fails_promptly(mod):
    """A non-root server thread that raises on a fragment-bearing op used
    to leave the client waiting for fragments until request_timeout; the
    supplementary peer_exception reply makes it fail promptly."""
    sim = build(mod, server_np=2, fail_ranks=(1,),
                config=OrbConfig(request_timeout=60.0))
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        v = mod.vec(np.arange(32.0))
        t0 = ctx.now()
        with pytest.raises(SystemException,
                           match="partial failure|failed on"):
            srv.scale(2.0, v)
        out["elapsed"] = ctx.now() - t0

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["elapsed"] < 1.0  # nowhere near the 60 s timeout


def test_spmd_partial_failure_fails_nonblocking_future(mod):
    sim = build(mod, server_np=2, fail_ranks=(1,),
                config=OrbConfig(request_timeout=60.0))
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        w = Future()
        srv.scale_nb(2.0, mod.vec(np.arange(32.0)), w)
        t0 = ctx.now()
        with pytest.raises(SystemException):
            w.value()
        out["elapsed"] = ctx.now() - t0

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["elapsed"] < 1.0


def test_spmd_all_ranks_healthy_still_works(mod):
    sim = build(mod, server_np=2)
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        w = srv.scale(2.0, mod.vec(np.arange(32.0)))
        out["sum"] = float(np.sum(w.gather(ctx.rts)))

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["sum"] == 2.0 * sum(range(32))


# ---------------------------------------------------------------------------
# Timeout completes the request (progress/wait regression)
# ---------------------------------------------------------------------------


def test_timeout_completes_progress(mod):
    """progress(block=True) returns True when the timeout *completes* the
    request (by failing it) — it used to report False, leaving callers
    thinking the request was still in flight."""
    sim = build(mod, config=OrbConfig(request_timeout=0.25))
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        fut = srv.poke_nb(10.0)
        state = next(iter(ctx.pending.values()))
        out["ret"] = state.progress(block=True)
        out["done"] = state.done
        out["failed"] = isinstance(state.error, SystemException)
        out["resolved"] = fut.resolved()

    sim.client(client, host="HOST_1")
    sim.run()
    assert out == {"ret": True, "done": True, "failed": True,
                   "resolved": True}


def test_timeout_raises_through_wait(mod):
    sim = build(mod, config=OrbConfig(request_timeout=0.25))

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        fut = srv.poke_nb(10.0)
        with pytest.raises(SystemException, match="timed out"):
            fut.wait()

    sim.client(client, host="HOST_1")
    sim.run()


def test_timeout_raises_through_blocking_invoke(mod):
    sim = build(mod, config=OrbConfig(request_timeout=0.25))
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        t0 = ctx.now()
        with pytest.raises(SystemException, match="timed out"):
            srv.poke(10.0)
        out["elapsed"] = ctx.now() - t0

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["elapsed"] == pytest.approx(0.25, rel=0.1)


# ---------------------------------------------------------------------------
# Local bypass failure semantics
# ---------------------------------------------------------------------------


def _local_program(mod, body, out):
    """A single program that activates the servant and binds to it, so
    every invocation takes the §4.1 local bypass."""

    def prog(ctx):
        ctx.poa.activate(make_impl(mod)(ctx), "pipes", kind="spmd")
        srv = mod.pipesvc._bind("pipes")
        assert srv._binding.local
        body(ctx, srv)

    return prog


def test_local_bypass_blocking_failure_raises(mod):
    sim = Simulation()
    out = {}

    def body(ctx, srv):
        with pytest.raises(RuntimeError, match="kaboom"):
            srv.boom(1)
        out["ok"] = srv.add(1, 1)
        out["bypasses"] = ctx.orb.local_bypasses

    sim.client(_local_program(mod, body, out), host="HOST_1")
    sim.run()
    assert out["ok"] == 2
    assert out["bypasses"] == 2  # boom + add, both bypassed


def test_local_bypass_nonblocking_failure_fails_futures(mod):
    sim = Simulation()
    out = {}

    def body(ctx, srv):
        fut = srv.boom_nb(1)
        out["resolved"] = fut.resolved()
        try:
            fut.value()
        except RuntimeError as exc:
            out["error"] = str(exc)
        a, b = Future(), Future()
        ret = srv.pair_nb(1, a, b)
        for key, f in (("ret", ret), ("a", a), ("b", b)):
            try:
                f.value()
            except RuntimeError:
                out[key] = "failed"

    sim.client(_local_program(mod, body, out), host="HOST_1")
    sim.run()
    assert out["resolved"] is True
    assert out["error"] == "kaboom"
    assert out["ret"] == out["a"] == out["b"] == "failed"


def test_local_bypass_failure_reaches_observer(mod):
    sim = Simulation()
    obs = sim.attach_observer()
    out = {}

    def body(ctx, srv):
        with pytest.raises(RuntimeError):
            srv.boom(1)
        out["ok"] = srv.add(3, 4)

    sim.client(_local_program(mod, body, out), host="HOST_1")
    sim.run()
    statuses = sorted(rec[3] for rec in obs.requests.values())
    assert statuses == ["failed", "ok"]
    assert {s.phase for s in obs.spans} == {"local"}


# ---------------------------------------------------------------------------
# Schedule memoization
# ---------------------------------------------------------------------------


def test_cached_schedule_memoizes_and_notifies_observer():
    from repro.core import transfer

    src = Distribution.of_kind("BLOCK", 64, 2)
    dst = Distribution.of_kind("CYCLIC", 64, 2)
    first = transfer.cached_schedule(src, dst)
    again = transfer.cached_schedule(Distribution.of_kind("BLOCK", 64, 2),
                                     Distribution.of_kind("CYCLIC", 64, 2))
    assert again is first  # structurally-equal dists hit the cache
    assert first == transfer.schedule(src, dst)

    class Counting:
        def __init__(self):
            self.calls = 0

        def on_schedule(self, nfrag, nelem):
            self.calls += 1

    counting = Counting()
    transfer.set_observer(counting)
    try:
        transfer.cached_schedule(src, dst)
        transfer.cached_schedule(src, dst)
    finally:
        transfer.set_observer(None)
    assert counting.calls == 2  # hits still count as logical schedules


# ---------------------------------------------------------------------------
# finish_request (completion notification)
# ---------------------------------------------------------------------------


class FinishRecorder(RequestInterceptor):
    """Records finish_request firings with the request's final status."""

    name = "finish-recorder"

    def __init__(self, raise_in_finish=False):
        self.finished = []
        self.raise_in_finish = raise_in_finish

    def finish_request(self, info):
        self.finished.append(
            (info.op_name, "failed" if info.exception is not None else "ok"))
        if self.raise_in_finish:
            raise RuntimeError("finish hook exploded")


def test_finish_request_fires_on_success(mod):
    sim = build(mod)
    rec = sim.register_interceptor(FinishRecorder())
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        out["v"] = srv.add(2, 2)

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["v"] == 4
    assert rec.finished == [("add", "ok")]


def test_finish_request_fires_on_servant_failure(mod):
    """A servant that raises mid-dispatch still gets its terminal
    notification, with the exception visible on the info object."""
    sim = build(mod)
    rec = sim.register_interceptor(FinishRecorder())

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        with pytest.raises(SystemException):
            srv.boom(1)

    sim.client(client, host="HOST_1")
    sim.run()
    assert rec.finished == [("boom", "failed")]


def test_finish_request_exceptions_do_not_disturb_the_server(mod):
    """The request is already terminal when finish_request runs, so a
    raising hook is swallowed and later requests proceed normally."""
    sim = build(mod)
    rec = sim.register_interceptor(FinishRecorder(raise_in_finish=True))
    out = {}

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        out["a"] = srv.add(1, 1)
        out["b"] = srv.add(2, 2)  # server loop survived the first finish

    sim.client(client, host="HOST_1")
    sim.run()
    assert (out["a"], out["b"]) == (2, 4)
    assert rec.finished == [("add", "ok"), ("add", "ok")]


def test_finish_request_fires_when_request_is_shed(mod):
    """Even a request shed in receive_request reaches finish_request —
    the notification is tied to request lifetime, not success."""
    sim = build(mod, config=OrbConfig(request_timeout=60.0))
    sim.register_interceptor(DeadlineInterceptor(budget=1e-9))
    rec = sim.register_interceptor(FinishRecorder())

    def client(ctx):
        srv = mod.pipesvc._bind("pipes")
        with pytest.raises(SystemException, match="shed"):
            srv.add(1, 1)

    sim.client(client, host="HOST_1")
    sim.run()
    assert rec.finished == [("add", "failed")]
