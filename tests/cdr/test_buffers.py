"""Unit tests for the zero-copy lane's buffer pool."""

import numpy as np
import pytest

from repro.cdr import (
    BufferPool,
    MarshalError,
    TC_DOUBLE,
    decode_bulk_payload,
    encode_bulk_payload,
    fast_path,
    fast_path_enabled,
    get_pool,
    set_fast_path,
    set_pool,
)
from repro.cdr.buffers import _MIN_BUCKET


class TestBucketing:
    def test_small_payloads_share_the_minimum_bucket(self):
        assert BufferPool.bucket_of(0) == _MIN_BUCKET
        assert BufferPool.bucket_of(1) == _MIN_BUCKET
        assert BufferPool.bucket_of(_MIN_BUCKET) == _MIN_BUCKET

    def test_power_of_two_rounding(self):
        assert BufferPool.bucket_of(_MIN_BUCKET + 1) == 2 * _MIN_BUCKET
        assert BufferPool.bucket_of(1024) == 1024
        assert BufferPool.bucket_of(1025) == 2048
        assert BufferPool.bucket_of(100_000) == 131_072

    def test_negative_lease_rejected(self):
        with pytest.raises(ValueError, match="-1"):
            BufferPool().acquire(-1)


class TestLeaseLifecycle:
    def test_acquire_release_reuses_storage(self):
        pool = BufferPool()
        a = pool.acquire(100)
        backing = a.data
        a.release()
        b = pool.acquire(200)  # same bucket (256)
        assert b.data is backing
        assert pool.stats.pool_hits == 1
        assert pool.stats.pool_misses == 1

    def test_length_is_exact_while_capacity_is_bucketed(self):
        pool = BufferPool()
        buf = pool.acquire(100)
        assert len(buf) == 100
        assert len(buf.data) == _MIN_BUCKET
        assert len(buf.view()) == 100
        assert len(buf.readonly()) == 100
        buf.release()

    def test_release_is_idempotent(self):
        pool = BufferPool()
        buf = pool.acquire(10)
        assert buf.release() is True
        assert buf.release() is False
        assert pool.stats.returns == 1
        # A double release must not double-insert into the free list.
        assert pool.free_buffers() == 1

    def test_views_of_released_buffer_raise(self):
        buf = BufferPool().acquire(10)
        buf.release()
        with pytest.raises(ValueError, match="released"):
            buf.view()
        with pytest.raises(ValueError, match="released"):
            buf.readonly()
        with pytest.raises(ValueError, match="released"):
            buf.tobytes()

    def test_decode_of_released_buffer_raises(self):
        pool = BufferPool()
        buf = encode_bulk_payload(TC_DOUBLE, np.arange(4.0), pool)
        buf.release()
        with pytest.raises(MarshalError, match="released"):
            decode_bulk_payload(TC_DOUBLE, buf)

    def test_readonly_view_rejects_writes(self):
        buf = BufferPool().acquire(10)
        ro = buf.readonly()
        with pytest.raises(TypeError):
            ro[0] = 1
        buf.release()


class TestFreeListBound:
    def test_free_list_is_bounded_per_bucket(self):
        pool = BufferPool(max_free_per_bucket=2)
        leases = [pool.acquire(100) for _ in range(5)]
        for lease in leases:
            lease.release()
        assert pool.free_buffers() == 2
        assert pool.stats.returns == 5  # returns counted even when dropped

    def test_clear_drops_storage_but_keeps_counters(self):
        pool = BufferPool()
        pool.acquire(100).release()
        assert pool.free_buffers() == 1
        pool.clear()
        assert pool.free_buffers() == 0
        assert pool.stats.borrows == 1


class TestViewCache:
    def test_ndarray_views_recycle_with_the_storage(self):
        """The per-dtype view cache travels with the bytearray through the
        pool, so a re-lease of the same bucket reuses the cached views."""
        pool = BufferPool()
        a = encode_bulk_payload(TC_DOUBLE, np.arange(4.0), pool)
        cached = a.views["double"]
        a.release()
        b = encode_bulk_payload(TC_DOUBLE, np.arange(8.0), pool)
        assert b.data is a.data
        assert b.views["double"] is cached
        assert decode_bulk_payload(TC_DOUBLE, b).tolist() == list(range(8))
        b.release()


class TestStats:
    def test_outstanding_and_snapshot(self):
        pool = BufferPool()
        a = pool.acquire(10)
        b = pool.acquire(10)
        assert pool.stats.outstanding == 2
        a.release()
        assert pool.stats.outstanding == 1
        snap = pool.stats.snapshot()
        assert snap["borrows"] == 2 and snap["returns"] == 1
        b.release()
        pool.stats.reset()
        assert pool.stats.snapshot() == dict.fromkeys(snap, 0)


class TestLaneSwitch:
    def test_set_fast_path_returns_previous(self):
        prev = set_fast_path(False)
        try:
            assert not fast_path_enabled()
        finally:
            set_fast_path(prev)

    def test_fast_path_context_manager_restores(self):
        before = fast_path_enabled()
        with fast_path(not before):
            assert fast_path_enabled() is (not before)
        assert fast_path_enabled() is before

    def test_fast_path_restores_on_exception(self):
        before = fast_path_enabled()
        with pytest.raises(RuntimeError):
            with fast_path(not before):
                raise RuntimeError("boom")
        assert fast_path_enabled() is before

    def test_set_pool_swaps_default(self):
        mine = BufferPool()
        prev = set_pool(mine)
        try:
            assert get_pool() is mine
        finally:
            set_pool(prev)
        assert get_pool() is prev
