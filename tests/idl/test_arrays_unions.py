"""Fixed-size arrays and discriminated unions, from IDL to the wire."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cdr import (
    ArrayTC,
    EnumTC,
    MarshalError,
    StringTC,
    TC_DOUBLE,
    TC_LONG,
    UnionTC,
    decode,
    encode,
)
from repro.idl import IdlSemanticError, compile_idl, compile_spec
from repro.idl.lexer import IdlSyntaxError


class TestArrayTypeCode:
    def test_numeric_roundtrip(self):
        tc = ArrayTC(TC_DOUBLE, (2, 3))
        v = np.arange(6.0).reshape(2, 3)
        out = decode(tc, encode(tc, v))
        np.testing.assert_array_equal(out, v)
        assert out.shape == (2, 3)

    def test_no_length_prefix_on_wire(self):
        tc = ArrayTC(TC_DOUBLE, (4,))
        assert len(encode(tc, np.zeros(4))) == 32  # exactly 4 doubles

    def test_shape_mismatch_rejected(self):
        tc = ArrayTC(TC_DOUBLE, (2, 2))
        with pytest.raises(MarshalError, match="shape"):
            encode(tc, np.zeros((2, 3)))

    def test_object_element_array(self):
        tc = ArrayTC(StringTC(), (2, 2))
        v = [["a", "b"], ["c", "d"]]
        assert decode(tc, encode(tc, v)) == v

    def test_object_dimension_mismatch(self):
        tc = ArrayTC(StringTC(), (2,))
        with pytest.raises(MarshalError, match="dimension"):
            encode(tc, ["a", "b", "c"])

    def test_default_numeric_is_zeros(self):
        tc = ArrayTC(TC_LONG, (2, 2))
        np.testing.assert_array_equal(tc.default(), np.zeros((2, 2)))

    def test_default_object_nested_lists(self):
        tc = ArrayTC(StringTC(), (2, 2))
        assert tc.default() == [["", ""], ["", ""]]

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ArrayTC(TC_LONG, ())
        with pytest.raises(ValueError):
            ArrayTC(TC_LONG, (0,))


class TestUnionTypeCode:
    TC = UnionTC("val", TC_LONG, (
        (1, "d", TC_DOUBLE),
        (2, "s", StringTC()),
    ), default_case=("n", TC_LONG))

    def test_case_roundtrip(self):
        assert decode(self.TC, encode(self.TC, (1, 2.5))) == (1, 2.5)
        assert decode(self.TC, encode(self.TC, (2, "hi"))) == (2, "hi")

    def test_default_arm(self):
        assert decode(self.TC, encode(self.TC, (99, 7))) == (99, 7)

    def test_no_default_unknown_disc_rejected(self):
        tc = UnionTC("v", TC_LONG, ((1, "d", TC_DOUBLE),))
        with pytest.raises(MarshalError, match="no arm"):
            encode(tc, (9, 1.0))

    def test_malformed_value(self):
        with pytest.raises(MarshalError, match="pair"):
            encode(self.TC, 42)

    def test_enum_discriminator(self):
        # An enum discriminator decodes to its member name (and a name may
        # be used when encoding, too).
        color = EnumTC("color", ("RED", "GREEN"))
        tc = UnionTC("cv", color, ((0, "r", TC_DOUBLE), (1, "g", TC_LONG)))
        assert decode(tc, encode(tc, (0, 1.5))) == ("RED", 1.5)
        assert decode(tc, encode(tc, ("GREEN", 7))) == ("GREEN", 7)

    def test_enum_carried_in_union_arm(self):
        mood = EnumTC("mood", ("HAPPY", "GRUMPY"))
        tc = UnionTC("mv", TC_LONG, ((0, "m", mood), (1, "n", TC_LONG)))
        assert decode(tc, encode(tc, (0, "GRUMPY"))) == (0, "GRUMPY")
        assert decode(tc, encode(tc, (0, 0))) == (0, "HAPPY")


class TestIdlArrays:
    def test_typedef_array(self):
        spec = compile_spec("typedef double mat[3][4];")
        tc = spec.typedefs[0].tc
        assert tc == ArrayTC(TC_DOUBLE, (3, 4))

    def test_dims_from_consts(self):
        spec = compile_spec("const long N = 4; typedef long grid[N][N*2];")
        assert spec.typedefs[0].tc.dims == (4, 8)

    def test_struct_member_array(self):
        spec = compile_spec("struct s { double xyz[3]; long n; };")
        fields = dict(spec.structs[0].tc.fields)
        assert fields["xyz"] == ArrayTC(TC_DOUBLE, (3,))
        assert fields["n"] == TC_LONG

    def test_array_of_dsequence_rejected(self):
        with pytest.raises(IdlSemanticError, match="arrays of dsequence"):
            compile_spec("typedef dsequence<double> v; typedef v bad[4];")

    def test_zero_dim_rejected(self):
        with pytest.raises(IdlSemanticError, match="positive"):
            compile_spec("typedef long bad[0];")

    def test_struct_with_array_default(self):
        mod = compile_idl("struct s { double xyz[3]; };",
                          module_name="array_struct_stubs")
        v = mod.s()
        np.testing.assert_array_equal(v.xyz, np.zeros(3))

    def test_array_over_the_wire(self):
        from repro.core import Simulation

        mod = compile_idl("""
            typedef double triple[3];
            interface geom { double norm(in triple v); };
        """, module_name="array_wire_stubs")
        sim = Simulation()

        def server_main(ctx):
            class Impl(mod.geom_skel):
                def norm(self, v):
                    return float(np.linalg.norm(v))

            ctx.poa.activate(Impl(), "geom", kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_2", nprocs=1)
        out = {}

        def client(ctx):
            g = mod.geom._bind("geom")
            out["n"] = g.norm(np.array([3.0, 4.0, 0.0]))

        sim.client(client, host="HOST_1")
        sim.run()
        assert out["n"] == 5.0


class TestIdlUnions:
    IDL = """
        enum kind { INT_KIND, TEXT_KIND, REAL_KIND };
        union value switch (kind) {
            case INT_KIND: long i;
            case TEXT_KIND: string s;
            default: double d;
        };
    """

    def test_union_compiles(self):
        spec = compile_spec(self.IDL)
        tc = spec.unions[0].tc
        assert tc.name == "value"
        assert len(tc.cases) == 2
        assert tc.default_case[0] == "d"

    def test_union_in_generated_module(self):
        mod = compile_idl(self.IDL, module_name="union_stubs")
        tc = mod.value
        assert decode(tc, encode(tc, (0, 41))) == ("INT_KIND", 41)
        assert decode(tc, encode(tc, (1, "x"))) == ("TEXT_KIND", "x")
        assert decode(tc, encode(tc, (2, 2.5))) == ("REAL_KIND", 2.5)

    def test_union_usable_in_operation(self):
        from repro.core import Simulation

        mod = compile_idl(self.IDL + """
            interface store { value get(in long which); };
        """, module_name="union_wire_stubs")
        sim = Simulation()

        def server_main(ctx):
            class Impl(mod.store_skel):
                def get(self, which):
                    return [(0, 10), (1, "ten"), (2, 10.0)][which]

            ctx.poa.activate(Impl(), "store", kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_2", nprocs=1)
        out = {}

        def client(ctx):
            s = mod.store._bind("store")
            out["vals"] = [s.get(0), s.get(1), s.get(2)]

        sim.client(client, host="HOST_1")
        sim.run()
        assert out["vals"] == [("INT_KIND", 10), ("TEXT_KIND", "ten"),
                               ("REAL_KIND", 10.0)]

    def test_duplicate_case_label_rejected(self):
        with pytest.raises(IdlSemanticError, match="duplicate case"):
            compile_spec("""
                union u switch (long) { case 1: long a; case 1: double b; };
            """)

    def test_two_defaults_rejected(self):
        with pytest.raises(IdlSyntaxError, match="default"):
            compile_spec("""
                union u switch (long) {
                    default: long a;
                    default: double b;
                };
            """)

    def test_non_integral_discriminator_rejected(self):
        with pytest.raises(IdlSemanticError, match="discriminator"):
            compile_spec("union u switch (string) { case 1: long a; };")

    def test_dsequence_arm_rejected(self):
        with pytest.raises(IdlSemanticError, match="distributed"):
            compile_spec("""
                typedef dsequence<double> v;
                union u switch (long) { case 1: v a; };
            """)

    def test_union_without_labelled_case_rejected(self):
        with pytest.raises(IdlSemanticError, match="labelled"):
            compile_spec("union u switch (long) { default: long a; };")

    def test_multi_label_case(self):
        spec = compile_spec("""
            union u switch (long) { case 1: case 2: long a; };
        """)
        tc = spec.unions[0].tc
        assert tc.arm_for(1) == tc.arm_for(2) == ("a", TC_LONG)


@settings(max_examples=60)
@given(
    disc=st.integers(-100, 100),
    dval=st.floats(allow_nan=False, allow_infinity=False),
    sval=st.text(max_size=20),
)
def test_property_union_roundtrip(disc, dval, sval):
    tc = UnionTC("u", TC_LONG, (
        (1, "d", TC_DOUBLE), (2, "s", StringTC()),
    ), default_case=("n", TC_LONG))
    if disc == 1:
        v = (1, dval)
    elif disc == 2:
        v = (2, sval)
    else:
        v = (disc, disc)
    assert decode(tc, encode(tc, v)) == v


@settings(max_examples=40)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False),
                min_size=6, max_size=6))
def test_property_array_roundtrip(values):
    tc = ArrayTC(TC_DOUBLE, (2, 3))
    v = np.array(values).reshape(2, 3)
    np.testing.assert_array_equal(decode(tc, encode(tc, v)), v)
