"""POOMA-style distributed 2-D fields with ghost cells."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ...runtime.collectives import _next_tag, gather
from .layout import GridLayout


class Field:
    """A 2-D scalar field block-decomposed by rows, one ghost row on each
    interior boundary.

    ``data`` holds ``local_rows + 2`` x ``nx`` values; row 0 and row -1
    are ghosts (unused at the physical boundary).  Stencil code operates
    on the interior view after :meth:`exchange_ghosts`.
    """

    def __init__(self, layout: GridLayout, rank: int,
                 rts=None, initial: Optional[np.ndarray] = None) -> None:
        self.layout = layout
        self.rank = rank
        self.rts = rts
        rows = layout.local_rows(rank)
        self.data = np.zeros((rows + 2, layout.nx))
        if initial is not None:
            initial = np.asarray(initial, dtype=float)
            if initial.shape == (layout.ny, layout.nx):
                self.data[1:-1, :] = initial[
                    layout.row_start(rank):layout.row_stop(rank), :]
            elif initial.shape == (rows, layout.nx):
                self.data[1:-1, :] = initial
            else:
                raise ValueError(
                    f"initial data of shape {initial.shape} matches neither "
                    f"the global grid {(layout.ny, layout.nx)} nor the local "
                    f"block {(rows, layout.nx)}"
                )

    # -- views -----------------------------------------------------------------

    @property
    def interior(self) -> np.ndarray:
        """This context's owned rows (no ghosts); writable view."""
        return self.data[1:-1, :]

    @interior.setter
    def interior(self, values) -> None:
        self.data[1:-1, :] = values

    @property
    def shape(self) -> tuple[int, int]:
        return (self.layout.ny, self.layout.nx)

    # -- communication ------------------------------------------------------------

    def exchange_ghosts(self) -> None:
        """Swap boundary rows with the neighbouring contexts.

        Deadlock-free ordering: everyone sends both directions first (the
        transport buffers), then receives.  Costs real virtual time via
        the RTS.
        """
        if self.rts is None or self.layout.p == 1:
            return
        rts = self.rts
        tag = _next_tag(rts)
        up, down = self.layout.neighbors(self.rank)
        nbytes = self.layout.nx * 8
        if up is not None:
            rts.send_reserved(up, ("from_below", self.data[1, :].copy()),
                              tag, nbytes=nbytes)
        if down is not None:
            rts.send_reserved(down, ("from_above", self.data[-2, :].copy()),
                              tag, nbytes=nbytes)
        for _ in range(int(up is not None) + int(down is not None)):
            msg = rts.recv(tag=tag)
            kind, row = msg.payload
            if kind == "from_above":   # sent by my upper neighbour
                self.data[0, :] = row
            else:                      # sent by my lower neighbour
                self.data[-1, :] = row

    def assemble(self, root: int = 0) -> Optional[np.ndarray]:
        """Collective: the full ``ny`` x ``nx`` array on ``root``."""
        if self.rts is None or self.layout.p == 1:
            return self.interior.copy()
        pieces = gather(self.rts, (self.layout.row_start(self.rank),
                                   self.interior.copy()), root=root)
        if pieces is None:
            return None
        full = np.zeros(self.shape)
        for start, block in pieces:
            full[start:start + block.shape[0], :] = block
        return full

    # -- element-wise operations -----------------------------------------------------

    def fill(self, fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> None:
        """Set interior values from global coordinates: ``fn(Y, X)``."""
        ys = np.arange(self.layout.row_start(self.rank),
                       self.layout.row_stop(self.rank))
        xs = np.arange(self.layout.nx)
        yy, xx = np.meshgrid(ys, xs, indexing="ij")
        self.interior = fn(yy, xx)

    def copy(self) -> "Field":
        out = Field(self.layout, self.rank, self.rts)
        out.data[:] = self.data
        return out

    def local_norm2(self) -> float:
        return float(np.sum(self.interior ** 2))

    def __repr__(self) -> str:
        return (f"<Field {self.layout.ny}x{self.layout.nx} "
                f"ctx={self.rank}/{self.layout.p} "
                f"rows={self.layout.local_rows(self.rank)}>")
