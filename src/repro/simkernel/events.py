"""Event queue for the virtual-time kernel.

Events are totally ordered by ``(time, seq)``: ``seq`` is a monotonically
increasing insertion counter, so two events at the same virtual time fire
in insertion order.  This tie-break is what makes whole simulations
deterministic — given identical inputs, threads are resumed in an
identical order and therefore observe identical message interleavings.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any


@dataclass(order=True)
class Event:
    """A scheduled wake-up for a simulated thread."""

    time: float
    seq: int
    thread: Any = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return any(not e.cancelled for e in self._heap)

    def push(self, time: float, thread) -> Event:
        ev = Event(time, next(self._seq), thread)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event."""
        while True:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                return ev

    def peek_time(self) -> float | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
