"""Runtime support imported by compiler-generated stub modules.

The PARDIS IDL compiler generates thin classes; everything behavioural
lives here:

* :class:`ProxyBase` — ``_bind`` / ``_spmd_bind`` class methods (paper
  §3.1) and the ``_invoke``/``_invoke_nb`` entry points the generated
  per-operation stubs call;
* :class:`SkeletonBase` — base class of servant implementations;
* :class:`DSeqFactory` — the callable emitted for dsequence typedefs, so
  client code can write ``matrix(N)`` like the paper's C++;
* the container-adapter registry behind ``#pragma`` package mappings;
* the user-exception registry used to re-raise IDL exceptions client-side.
"""

from __future__ import annotations

from typing import Any, Optional

from ..cdr import DSequenceTC
from ..simkernel import SimKernel
from .distribution import Distribution
from .dsequence import DistributedSequence
from .errors import BindingError, UserException
from .futures import Future
from .interfacedef import AttrDef, InterfaceDef, OpDef, ParamDef
from .invocation import Binding, invoke

__all__ = [
    "AttrDef",
    "Binding",
    "DSeqFactory",
    "Future",
    "InterfaceDef",
    "OpDef",
    "ParamDef",
    "ProxyBase",
    "SkeletonBase",
    "UserException",
    "current_context",
    "lookup_exception",
    "proxy_for",
    "register_adapter",
    "register_exception",
    "register_proxy",
    "resolve_adapter",
]


def current_context():
    """The :class:`~repro.core.orb.PardisContext` of the calling thread."""
    th = SimKernel.current_or_none()
    ctx = th.locals.get("pardis") if th is not None else None
    if ctx is None:
        raise BindingError(
            "no PARDIS context: this code must run on a computing thread "
            "launched through ORB.launch_program / Simulation"
        )
    return ctx


# ---------------------------------------------------------------------------
# Proxies
# ---------------------------------------------------------------------------


class ProxyBase:
    """Base class of generated client proxies.

    Instances are created by the binding class methods and hold the
    per-thread (or collective) :class:`Binding`.  The paper's managed
    ``T_var`` pointers map onto ordinary Python references.
    """

    _interface: InterfaceDef = None  # overridden by generated classes

    def __init__(self, binding: Binding) -> None:
        self._binding = binding

    # -- binding ---------------------------------------------------------------

    @classmethod
    def _bind(cls, name: str, host: Optional[str] = None,
              policy=None, max_outstanding: Optional[int] = None
              ) -> "ProxyBase":
        """Per-thread binding: this computing thread acts as a separate
        entity ("calling bind ... creates one binding per thread").

        ``policy`` selects among replicas of ``name`` (a policy name such
        as ``"round_robin"``/``"least_loaded"``/``"locality"`` or a
        :class:`repro.services.SelectionPolicy` instance) and arms
        health-checked failover on the binding; ``max_outstanding``
        overrides the ORB-wide flow-control window for this binding.
        """
        ctx = current_context()
        group = sel = None
        if policy is not None:
            from ..services.replicas import make_policy

            sel = make_policy(policy)
            group = ctx.orb.replica_group(name, ctx.namespace)
            ref = group.select(ctx, sel)
        else:
            ref = ctx.orb.resolve(name, ctx)
        cls._check_ref(name, ref, host)
        return cls(Binding(ctx, ref, collective=False,
                           max_outstanding=max_outstanding,
                           group=group, policy=sel))

    @classmethod
    def _spmd_bind(cls, name: str, host: Optional[str] = None,
                   policy=None, max_outstanding: Optional[int] = None
                   ) -> "ProxyBase":
        """Collective binding: represents the parallel client to the ORB
        as one entity; all proxy operations must then be invoked
        collectively and can use distributed arguments (§3.1).  Replica
        selection (``policy``) runs on rank 0 and is broadcast so every
        thread binds the same replica."""
        ctx = current_context()
        group = sel = None
        if policy is not None:
            from ..services.replicas import make_policy

            sel = make_policy(policy)
            group = ctx.orb.replica_group(name, ctx.namespace)
        if ctx.rank == 0:
            ref = (group.select(ctx, sel) if group is not None
                   else ctx.orb.resolve(name, ctx))
        else:
            ref = None
        from ..runtime import collectives as coll

        ref = coll.bcast(ctx.rts, ref, root=0)
        cls._check_ref(name, ref, host)
        return cls(Binding(ctx, ref, collective=True,
                           max_outstanding=max_outstanding,
                           group=group, policy=sel))

    @classmethod
    def _check_ref(cls, name: str, ref, host: Optional[str]) -> None:
        if cls._interface is not None and ref.repo_id != cls._interface.repo_id:
            raise BindingError(
                f"object {name!r} implements {ref.repo_id}, not "
                f"{cls._interface.repo_id}"
            )
        if host is not None and ref.host != host:
            raise BindingError(
                f"object {name!r} lives on host {ref.host!r}, "
                f"but the binding requested {host!r}"
            )

    # -- invocation ------------------------------------------------------------------

    def _op(self, name: str) -> OpDef:
        try:
            return self._interface.ops[name]
        except KeyError:
            raise BindingError(
                f"{self._interface.name} has no operation {name!r}"
            ) from None

    def _invoke(self, op_name: str, in_args: tuple, distributions=None):
        if self._binding.group is not None:
            from ..services.replicas import failover_invoke

            return failover_invoke(self._binding, self._op(op_name),
                                   in_args, distributions)
        return invoke(self._binding, self._op(op_name), in_args,
                      distributions, blocking=True)

    def _invoke_nb(self, op_name: str, in_args: tuple, futures: tuple,
                   distributions=None) -> Future:
        return invoke(self._binding, self._op(op_name), in_args,
                      distributions, placeholders=tuple(futures),
                      blocking=False)

    def _invoke_attr_get(self, attr_name: str):
        attr = self._interface.attr(attr_name)
        op = OpDef(f"_get_{attr_name}", attr.tc, [])
        return invoke(self._binding, op, (), None, blocking=True)

    def _invoke_attr_set(self, attr_name: str, value) -> None:
        attr = self._interface.attr(attr_name)
        op = OpDef(f"_set_{attr_name}", None,
                   [ParamDef("in", "value", attr.tc)])
        return invoke(self._binding, op, (value,), None, blocking=True)

    # -- introspection ------------------------------------------------------------------

    @property
    def _object_name(self) -> str:
        return self._binding.ref.name

    @property
    def _is_local(self) -> bool:
        return self._binding.local

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} proxy -> "
                f"{self._binding.ref.name!r}>")


class SkeletonBase:
    """Base class of servant implementations.

    Subclass the generated ``*_skel`` class, implement its operations, and
    activate an instance through the POA.  Attribute state is plain Python
    attributes (the POA's synthesized ``_get_*``/``_set_*`` operations use
    ``getattr``/``setattr``)."""

    _interface: InterfaceDef = None

    def __getattr__(self, name: str):
        # Synthesized attribute accessors for servants: _get_x/_set_x fall
        # back to the plain attribute.
        if name.startswith("_get_"):
            attr = name[5:]
            return lambda: getattr(self, attr)
        if name.startswith("_set_"):
            attr = name[5:]
            return lambda value: setattr(self, attr, value)
        raise AttributeError(name)


# ---------------------------------------------------------------------------
# dsequence typedef factories
# ---------------------------------------------------------------------------


class DSeqFactory:
    """The callable bound to a dsequence typedef name.

    Mirrors the paper's C++ usage: ``matrix A(N)`` becomes
    ``A = matrix(N)``.  With a package adapter (pragma mapping), the
    factory produces the package-native container instead.
    """

    def __init__(self, tc: DSequenceTC, adapter=None, name: str = "dseq") -> None:
        self.tc = tc
        self.adapter = adapter
        self.name = name

    @property
    def element(self):
        return self.tc.element

    def __call__(self, n_or_data, kind: Optional[str] = None,
                 dist: Optional[Distribution] = None):
        ctx = current_context()
        kind = kind or self.tc.client_dist
        if self.tc.bound is not None:
            n = n_or_data if isinstance(n_or_data, int) else len(n_or_data)
            if n > self.tc.bound:
                raise ValueError(
                    f"{self.name}: length {n} exceeds bound {self.tc.bound}"
                )
        ds = ctx.dseq(n_or_data, element=self.tc.element, kind=kind, dist=dist)
        if self.adapter is not None:
            return self.adapter.wrap(ds)
        return ds

    def adopt(self, local_data, dist: Distribution):
        """No-ownership construction around this thread's existing buffer."""
        ctx = current_context()
        return DistributedSequence.adopt(local_data, dist, ctx.rank,
                                         self.tc.element)

    def __repr__(self) -> str:
        return f"<dsequence typedef {self.name!r} of {self.tc.element!r}>"


# ---------------------------------------------------------------------------
# Container adapters (pragma package mappings)
# ---------------------------------------------------------------------------

_ADAPTERS: dict[tuple[str, str], Any] = {}


def register_adapter(package: str, target: str, adapter: Any) -> None:
    """Register a container adapter for ``#pragma package:target``."""
    _ADAPTERS[(package, target)] = adapter


def resolve_adapter(package: str, target: str) -> Any:
    """Find the adapter for a pragma mapping, importing the package
    integration module on demand."""
    key = (package, target)
    if key not in _ADAPTERS:
        if package == "POOMA":
            import repro.packages.pooma.mapping  # noqa: F401
        elif package == "HPC++":
            import repro.packages.pstl.mapping  # noqa: F401
    try:
        return _ADAPTERS[key]
    except KeyError:
        raise BindingError(
            f"no container adapter registered for #pragma {package}:{target}"
        ) from None


# ---------------------------------------------------------------------------
# Proxy registry (object references received as argument/result values)
# ---------------------------------------------------------------------------

_PROXIES: dict[str, type] = {}


def register_proxy(cls: type) -> type:
    """Register a generated proxy class by repository id, so object
    references received over the wire materialize as typed proxies."""
    _PROXIES[cls._interface.repo_id] = cls
    return cls


def proxy_for(ref, ctx):
    """Turn a decoded :class:`ObjectRef` into the best available proxy:
    the generated class if its stub module is loaded, else a
    :class:`~repro.core.dii.DynamicProxy` if the interface is in the
    Interface Repository, else the raw reference."""
    if ref is None:
        return None
    cls = _PROXIES.get(ref.repo_id)
    if cls is not None:
        return cls(Binding(ctx, ref, collective=False))
    from .dii import DynamicProxy, _interface_repository

    ir = _interface_repository(ctx.orb)
    if ir.contains(ref.repo_id):
        return DynamicProxy(Binding(ctx, ref, collective=False),
                            ir.lookup(ref.repo_id))
    return ref


# ---------------------------------------------------------------------------
# User-exception registry
# ---------------------------------------------------------------------------

_EXCEPTIONS: dict[str, type] = {}


def register_exception(cls: type) -> type:
    """Register a generated exception class by repository id so replies
    can be re-raised as the right type on the client."""
    _EXCEPTIONS[cls._repo_id] = cls
    return cls


def lookup_exception(repo_id: str):
    cls = _EXCEPTIONS.get(repo_id)
    if cls is None:
        return None, None
    return cls, cls._typecode
