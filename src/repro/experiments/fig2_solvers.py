"""Figure 2: distributed vs local performance of concurrent solvers.

"We ran this application both in single-server and distributed-servers
mode and obtained substantial speedup by putting the slower application on
a faster remote resource. ... The total execution time of the distributed
computation is t = to + max{ti, td} where ti, td are times of computation
of the solvers, and to is the time of communication overhead."

Four series over problem size (200..1200 in the paper):

* ``t_direct``     — computation time of the direct method on HOST_1;
* ``t_iterative``  — computation time of the iterative method on HOST_2
  (distributed mode) / HOST_1 (same-server mode is reported separately);
* ``t_distributed``— client-perspective total, servers on both hosts;
* ``t_same_server``— client-perspective total, both servers on HOST_1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import OrbConfig, Simulation, default_network
from ..apps.interfaces import solver_stubs
from ..apps.solvers import (
    compute_difference,
    generate_system,
    matrix_as_rows,
)

#: the paper sweeps problem sizes 200..1200
PAPER_SIZES = tuple(range(200, 1201, 100))

TOLERANCE = 1e-6


@dataclass
class Fig2Row:
    n: int
    t_direct: float        # direct method on HOST_1 (server compute time)
    t_iterative: float     # iterative method on HOST_2 (server compute time)
    t_distributed: float   # client total, different servers
    t_same_server: float   # client total, both servers on HOST_1
    difference: float      # max |X1 - X2| (the client's agreement metric)


def _client_main(ctx, n: int, iterative_host_2: bool, out: dict) -> None:
    """The paper's §4.1 client, line for line where Python allows."""
    mod = solver_stubs()
    d_solver = mod.direct._spmd_bind("direct_solver", "HOST_1")
    i_solver = mod.iterative._spmd_bind(
        "itrt_solver", "HOST_2" if iterative_host_2 else "HOST_1")

    a, b = generate_system(n)
    A = mod.matrix(matrix_as_rows(a))
    B = mod.vector(b)
    t0 = ctx.now()
    X1 = mod.Future()
    tolerance = TOLERANCE
    i_solver.solve_nb(tolerance, A, B, X1)
    X2_real = d_solver.solve(A, B)
    X1_real = X1.value()
    x1 = X1_real.gather(ctx.rts, root=0)
    x2 = X2_real.gather(ctx.rts, root=0)
    if ctx.rank == 0:
        out["difference"] = compute_difference(x1, x2)
        out["total"] = ctx.now() - t0


def _run_config(n: int, iterative_host_2: bool, client_np: int,
                solver_np: int, session=None) -> dict:
    sim = Simulation(network=default_network(),
                     config=OrbConfig(max_outstanding=2))
    if session is not None:
        mode = "distributed" if iterative_host_2 else "same-server"
        session.attach(sim, label=f"fig2 n={n} {mode}")
    probe: dict = {}

    def timed_direct(ctx):
        servant = _timed_servant_factory(
            ctx, "direct", probe, lambda c: _direct(c))
        ctx.poa.activate(servant, "direct_solver", kind="spmd")
        ctx.poa.impl_is_ready()

    def timed_iterative(ctx):
        servant = _timed_servant_factory(
            ctx, "iterative", probe, lambda c: _iterative(c))
        ctx.poa.activate(servant, "itrt_solver", kind="spmd")
        ctx.poa.impl_is_ready()

    # HOST_1 has 4 nodes: client on 0..1, direct on 2..3.  In same-server
    # mode the iterative server shares HOST_1's nodes 2..3 (the 1997 run
    # time-shared the Onyx; co-located programs here run without CPU
    # contention, which matches the measured max{}-like behaviour).
    sim.server(timed_direct, host="HOST_1", nprocs=solver_np, node_offset=2,
               name="direct-server")
    if iterative_host_2:
        sim.server(timed_iterative, host="HOST_2", nprocs=solver_np,
                   name="iterative-server")
    else:
        sim.server(timed_iterative, host="HOST_1", nprocs=solver_np,
                   node_offset=2, name="iterative-server")

    out: dict = {}
    sim.client(_client_main, host="HOST_1", nprocs=client_np,
               args=(n, iterative_host_2, out))
    sim.run()
    out.update(probe)
    return out


def _direct(ctx):
    from ..apps.solvers import make_direct_servant

    return make_direct_servant(ctx)


def _iterative(ctx):
    from ..apps.solvers import make_iterative_servant

    return make_iterative_servant(ctx)


def _timed_servant_factory(ctx, label: str, probe: dict, make):
    """Wrap a servant so rank 0 records the compute time of each solve
    (the paper's per-component ti/td series)."""
    servant = make(ctx)
    real_solve = servant.solve

    def timed_solve(*args):
        t0 = ctx.now()
        result = real_solve(*args)
        if ctx.rank == 0:
            probe[label] = ctx.now() - t0
        return result

    servant.solve = timed_solve
    return servant


def run_fig2(sizes=PAPER_SIZES, client_np: int = 2,
             solver_np: int = 2, session=None) -> list[Fig2Row]:
    """Regenerate the Figure 2 series.

    ``session`` (a :class:`repro.tools.observe.TraceSession`) attaches a
    request-lifecycle observer to every simulation the sweep creates.
    """
    rows = []
    for n in sizes:
        distributed = _run_config(n, iterative_host_2=True,
                                  client_np=client_np, solver_np=solver_np,
                                  session=session)
        same = _run_config(n, iterative_host_2=False,
                           client_np=client_np, solver_np=solver_np,
                           session=session)
        rows.append(Fig2Row(
            n=n,
            t_direct=distributed["direct"],
            t_iterative=distributed["iterative"],
            t_distributed=distributed["total"],
            t_same_server=same["total"],
            difference=distributed["difference"],
        ))
    return rows
