"""The fragment courier: the ORB's one implementation of distributed-
argument fragment movement.

Before this package existed, the schedule→extract→fragment→send half and
the receive→insert half of distributed-argument transfer were each
implemented twice (client in-args and server out-args; server in-args
and client out-args).  The courier owns all four:

* :meth:`FragmentCourier.send_fragments` — the send loop, used for
  client "in" arguments and server "out" results alike;
* :meth:`FragmentCourier.receive_fragments` — the blocking
  receive/insert loop, used for server "in" arguments;
* :meth:`FragmentCourier.insert_fragment` — the single-fragment insert
  step the client's progress engine pumps for "out" results (fragments
  are matched, not ordered, so the client inserts them as they arrive);
* :func:`redistribute_exchange` — the same extract/insert engine over a
  run-time-system channel, backing
  :meth:`~repro.core.dsequence.DistributedSequence.redistribute`.

``transfer.extract`` and ``transfer.insert`` are called from nowhere
else in the tree.
"""

from __future__ import annotations

from ...cdr import CdrDecoder, CdrEncoder, SequenceTC, TypeCode
from ...cdr import encoder as _cdr_encoder
from ..distribution import Distribution
from ..request import Fragment
from .. import transfer as _transfer

__all__ = ["FragmentCourier", "fragment_payload", "fragment_values",
           "redistribute_exchange"]


def fragment_payload(element: TypeCode, values) -> bytes:
    """CDR-encode one fragment's element run (``sequence<element>``)."""
    data = CdrEncoder().encode(SequenceTC(element), values).getvalue()
    meter = _cdr_encoder._MARSHAL_METER
    if meter is not None:
        meter.on_encode(len(data))
    return data


def fragment_values(element: TypeCode, payload: bytes):
    """Decode one fragment's element run."""
    dec = CdrDecoder(payload)
    meter = _cdr_encoder._MARSHAL_METER
    if meter is not None:
        meter.on_decode(len(payload))
    return dec.decode(SequenceTC(element))


class FragmentCourier:
    """Per-thread fragment mover bound to one :class:`PardisContext`."""

    __slots__ = ("ctx", "transport")

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.transport = ctx.orb.world.transport

    # -- sending -----------------------------------------------------------

    def send_fragments(self, *, src_dist: Distribution, dst_dist: Distribution,
                       rank: int, local_data, element: TypeCode, req_id,
                       param: str, endpoints, tag: int,
                       oneway: bool = False) -> int:
        """Ship this thread's overlap of ``src_dist -> dst_dist`` directly
        to the destination threads; returns the bytes injected."""
        sched = _transfer.cached_schedule(src_dist, dst_dist)
        src_addr = self.ctx.endpoint.address
        nbytes = 0
        for item in sched:
            if item.src_rank != rank:
                continue
            values = _transfer.extract(src_dist, rank, local_data,
                                       item.intervals)
            frag = Fragment(req_id, param, rank, item.intervals,
                            fragment_payload(element, values))
            frag_nb = frag.nbytes()
            self.transport.send(src_addr, endpoints[item.dst_rank], frag,
                                tag=tag, nbytes=frag_nb, oneway=oneway)
            nbytes += frag_nb
        return nbytes

    # -- receiving ---------------------------------------------------------

    @staticmethod
    def expected_fragments(src_dist: Distribution, dst_dist: Distribution,
                           rank: int) -> int:
        """How many fragments of ``src_dist -> dst_dist`` target ``rank``."""
        sched = _transfer.cached_schedule(src_dist, dst_dist)
        return sum(1 for t in sched if t.dst_rank == rank)

    def receive_fragments(self, *, dist: Distribution, rank: int, local_data,
                          element: TypeCode, req_id, param: str,
                          expected: int, tag: int, reason: str) -> None:
        """Blocking receive/insert loop: collect exactly ``expected``
        fragments of ``param`` and insert them by global index."""
        channel = self.ctx.endpoint.channel

        def match(env):
            pkt = env.payload
            return (pkt.tag == tag and pkt.body.req_id == req_id
                    and pkt.body.param == param)

        for _ in range(expected):
            frag = channel.receive(match, reason=reason).payload.body
            self.insert_fragment(dist, rank, local_data, element, frag)

    def insert_fragment(self, dist: Distribution, rank: int, local_data,
                        element: TypeCode, frag: Fragment) -> None:
        """Insert one received fragment into local storage."""
        values = fragment_values(element, frag.payload)
        _transfer.insert(dist, rank, local_data, tuple(frag.intervals),
                         values)


# ---------------------------------------------------------------------------
# RTS-channel exchange (redistribution)
# ---------------------------------------------------------------------------


def redistribute_exchange(element: TypeCode, src_dist: Distribution,
                          dst_dist: Distribution, rank: int, src_data,
                          dst_data, rts) -> None:
    """Collective fragment exchange over the program's run-time system:
    every thread ships its overlaps of ``src_dist -> dst_dist`` and
    collects what lands on it (the engine behind
    ``DistributedSequence.redistribute``)."""
    from ...cdr import decode, encode
    from ...runtime.collectives import _next_tag

    sched = _transfer.cached_schedule(src_dist, dst_dist)
    tag = _next_tag(rts)
    ftc = SequenceTC(element)
    for item in _transfer.outgoing(sched, rank):
        values = _transfer.extract(src_dist, rank, src_data, item.intervals)
        payload = encode(ftc, values)
        rts.send_reserved(item.dst_rank, (item.intervals, payload), tag,
                          nbytes=len(payload))
    for item in _transfer.local_items(sched, rank):
        values = _transfer.extract(src_dist, rank, src_data, item.intervals)
        _transfer.insert(dst_dist, rank, dst_data, item.intervals, values)
    for _ in range(len(_transfer.incoming(sched, rank))):
        msg = rts.recv(tag=tag)
        intervals, payload = msg.payload
        values = decode(ftc, payload)
        _transfer.insert(dst_dist, rank, dst_data, tuple(intervals), values)
