"""Wire-level protocol messages of the PARDIS ORB (GIOP-flavoured).

Three message kinds travel on ORB endpoints (all with reserved tags):

* :class:`RequestHeader` — operation name, request id, CDR-encoded scalar
  in-arguments, and layout metadata for distributed arguments;
* :class:`Fragment` — one thread-to-thread piece of a distributed
  argument or result;
* :class:`ReplyHeader` — completion status, CDR-encoded scalar results,
  and layout metadata for distributed results.

Distributions travel as compact :func:`describe`/:func:`build` descriptors
so each side can reconstruct the schedule locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..netsim import Address
from .distribution import Distribution

# Request id: unique per (client program, binding, sequence number).
ReqId = tuple

# ---------------------------------------------------------------------------
# Well-known service-context keys (the wire contract of repro.services).
# Kept here, next to the headers they travel on, so the core protocol and
# the services layer agree without importing each other.
# ---------------------------------------------------------------------------

#: reply marker: the request was shed by admission control and was NOT
#: executed (clients map such replies to TransientException)
OVERLOAD_CONTEXT = "pardis.overload"
#: reply hint: suggested client back-off in virtual seconds, set when the
#: server's request queue is past its high watermark (also present on
#: successful replies from a nearly saturated server)
BACKPRESSURE_CONTEXT = "pardis.backpressure"
#: reply report: ``{"program_id", "queue_depth", "capacity"}`` load
#: sample piggybacked for least-loaded replica selection
LOAD_CONTEXT = "pardis.load"
#: request priority (higher is served first under the "priority" policy)
PRIORITY_CONTEXT = "pardis.priority"


def describe(dist: Distribution) -> tuple:
    """Compact, picklable descriptor of a distribution."""
    if dist.kind in ("BLOCK", "CYCLIC"):
        return (dist.kind, dist.n, dist.p)
    if dist.kind == "CONCENTRATED":
        owner = next(
            (r for r in range(dist.p) if dist.local_size(r)), 0
        )
        return ("CONCENTRATED", dist.n, dist.p, owner)
    return ("EXPLICIT", dist.n, dist.p, dist.parts)


def build(descr: tuple) -> Distribution:
    """Inverse of :func:`describe`."""
    kind = descr[0]
    if kind in ("BLOCK", "CYCLIC"):
        return Distribution.of_kind(kind, descr[1], descr[2])
    if kind == "CONCENTRATED":
        return Distribution.concentrated(descr[1], descr[2], descr[3])
    if kind == "EXPLICIT":
        return Distribution(descr[1], descr[2], "EXPLICIT", descr[3])
    raise ValueError(f"bad distribution descriptor {descr!r}")


@dataclass
class RequestHeader:
    """First message of an invocation, delivered to every server thread
    (rank 0 receives it from the client and forwards to its peers through
    the server's communication domain)."""

    req_id: ReqId
    object_name: str
    op: str
    kind: str                       # "spmd" | "single"
    client_program_id: int
    client_nthreads: int
    reply_to: tuple[Address, ...]   # ORB endpoints of the client threads
    scalar_args: bytes              # CDR: non-distributed in-args, in order
    #: param name -> distribution descriptor of the client-side layout
    dseq_args: dict[str, tuple] = field(default_factory=dict)
    #: param name -> client-requested layout for distributed out args
    out_dists: dict[str, tuple] = field(default_factory=dict)
    oneway: bool = False
    forwarded: bool = False
    #: GIOP-style ServiceContextList: opaque per-request entries added by
    #: portable interceptors (deadlines, tracing ids, ...).
    service_contexts: dict[str, Any] = field(default_factory=dict)

    def nbytes(self) -> int:
        return 96 + len(self.scalar_args) + 24 * (
            len(self.dseq_args) + len(self.out_dists) + len(self.reply_to)
            + len(self.service_contexts)
        )


@dataclass
class Fragment:
    """One thread-to-thread piece of a distributed argument/result."""

    req_id: ReqId
    param: str
    src_rank: int
    intervals: tuple
    payload: bytes                  # CDR-encoded element run

    def nbytes(self) -> int:
        return 48 + len(self.payload) + 16 * len(self.intervals)


#: ReplyHeader.status values
STATUS_OK = "ok"
STATUS_USER_EXC = "user_exception"
STATUS_SYS_EXC = "system_exception"
#: Supplementary failure notification from a *non-root* SPMD server
#: thread whose part of the request failed after the root may already
#: have replied OK.  Not authoritative: a client that sees it before the
#: root's reply keeps waiting for the real reply, but a client that is
#: collecting result fragments fails promptly instead of hanging on
#: fragments the dead thread will never send.
STATUS_PEER_EXC = "peer_exception"


@dataclass
class ReplyHeader:
    req_id: ReqId
    status: str
    scalar_results: bytes = b""     # CDR: return value then scalar outs
    #: out param name -> (distribution descriptor of server-side layout)
    dseq_outs: dict[str, tuple] = field(default_factory=dict)
    #: (exception repo_id, CDR fields) for user exceptions,
    #: or a message string for system exceptions
    exception: Optional[Any] = None
    #: GIOP-style ServiceContextList for the reply direction.
    service_contexts: dict[str, Any] = field(default_factory=dict)

    def nbytes(self) -> int:
        extra = 0
        if isinstance(self.exception, tuple):
            extra = 32 + len(self.exception[1])
        elif isinstance(self.exception, str):
            extra = len(self.exception)
        return (64 + len(self.scalar_results) + 24 * len(self.dseq_outs)
                + 24 * len(self.service_contexts) + extra)
