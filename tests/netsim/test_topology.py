"""Tests for link profiles and network topology."""

import pytest

from repro.netsim import (
    ATM_155,
    ETHERNET_10,
    LinkProfile,
    Host,
    Network,
    NoRouteError,
    SGI_SHMEM,
)


def make_net():
    net = Network()
    net.add_host(Host("h1", nodes=4, node_flops=5e6))
    net.add_host(Host("h2", nodes=10, node_flops=8e6))
    net.connect("h1", "h2", ATM_155)
    return net


class TestLinkProfile:
    def test_transfer_time_components(self):
        p = LinkProfile("t", latency=1e-3, bandwidth=1e6, cpu_overhead=1e-4)
        assert p.serialization_time(1_000_000) == pytest.approx(1.0)
        assert p.transfer_time(1_000_000) == pytest.approx(1.0 + 1e-3 + 1e-4)

    def test_zero_bytes_costs_latency_and_overhead(self):
        p = LinkProfile("t", latency=2e-3, bandwidth=1e6, cpu_overhead=5e-4)
        assert p.transfer_time(0) == pytest.approx(2.5e-3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinkProfile("bad", latency=-1.0, bandwidth=1e6)
        with pytest.raises(ValueError):
            LinkProfile("bad", latency=0.0, bandwidth=0.0)

    def test_atm_faster_than_ethernet_for_bulk(self):
        mb = 1_000_000
        assert ATM_155.transfer_time(mb) < ETHERNET_10.transfer_time(mb)


class TestHost:
    def test_compute_time(self):
        h = Host("h", nodes=2, node_flops=1e6)
        assert h.compute_time(2e6) == pytest.approx(2.0)

    def test_invalid_hosts_rejected(self):
        with pytest.raises(ValueError):
            Host("h", nodes=0)
        with pytest.raises(ValueError):
            Host("h", nodes=1, node_flops=0.0)


class TestNetwork:
    def test_profile_between_hosts(self):
        net = make_net()
        assert net.profile_between("h1", "h2") is ATM_155
        assert net.profile_between("h2", "h1") is ATM_155

    def test_intra_host_uses_host_fabric(self):
        net = make_net()
        assert net.profile_between("h1", "h1") is SGI_SHMEM

    def test_no_route_raises(self):
        net = make_net()
        net.add_host(Host("h3", nodes=1))
        with pytest.raises(NoRouteError):
            net.profile_between("h1", "h3")

    def test_duplicate_host_rejected(self):
        net = make_net()
        with pytest.raises(ValueError):
            net.add_host(Host("h1", nodes=1))

    def test_connect_unknown_host_rejected(self):
        net = make_net()
        with pytest.raises(KeyError):
            net.connect("h1", "nope", ATM_155)

    def test_self_connect_rejected(self):
        net = make_net()
        with pytest.raises(ValueError):
            net.connect("h1", "h1", ATM_155)

    def test_shared_link_serializes_transfers(self):
        net = make_net()
        nbytes = int(ATM_155.bandwidth)  # 1 second of serialization
        done1, arr1 = net.reserve("h1", "h2", nbytes, now=0.0)
        done2, arr2 = net.reserve("h1", "h2", nbytes, now=0.0)
        assert done1 == pytest.approx(1.0)
        assert done2 == pytest.approx(2.0)  # waited for the first transfer
        assert arr2 == pytest.approx(2.0 + ATM_155.latency)

    def test_unshared_intra_fabric_does_not_serialize(self):
        net = make_net()
        nbytes = int(SGI_SHMEM.bandwidth)
        done1, _ = net.reserve("h1", "h1", nbytes, now=0.0)
        done2, _ = net.reserve("h1", "h1", nbytes, now=0.0)
        assert done1 == pytest.approx(done2)

    def test_reset_occupancy(self):
        net = make_net()
        net.reserve("h1", "h2", int(ATM_155.bandwidth), now=0.0)
        net.reset_occupancy()
        done, _ = net.reserve("h1", "h2", 0, now=0.0)
        assert done == pytest.approx(0.0)
