"""Failure injection: how the ORB fails, and that it fails loudly."""

import numpy as np
import pytest

from repro.core import OrbConfig, Simulation
from repro.idl import compile_idl
from repro.simkernel import DeadlockError, SimThreadFailed

IDL = """
    typedef dsequence<double, 64> vec;
    interface svc {
        double total(in vec v);
        long plain(in long x);
    };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="failure_stubs")


def server_main_factory(mod, ctx_holder=None):
    def server_main(ctx):
        from repro.runtime import collectives as coll

        class Impl(mod.svc_skel):
            def total(self, v):
                local = float(np.sum(v.owned_data))
                return coll.allreduce(ctx.rts, local, lambda a, b: a + b)

            def plain(self, x):
                return x

        ctx.poa.activate(Impl(), "svc", kind="spmd")
        ctx.poa.impl_is_ready()

    return server_main


def test_partial_collective_invocation_deadlocks_with_diagnostics(mod):
    """With collective checks disabled, a thread that skips a collective
    invocation produces a deadlock whose report names the stuck threads."""
    sim = Simulation(config=OrbConfig(collective_checks=False))
    sim.server(server_main_factory(mod), host="HOST_2", nprocs=2)

    def client(ctx):
        srv = mod.svc._spmd_bind("svc")
        v = ctx.dseq(np.ones(8))
        if ctx.rank == 0:
            srv.total(v)  # rank 1 never joins in

    sim.client(client, host="HOST_1", nprocs=2)
    with pytest.raises(DeadlockError):
        sim.run()


def test_collective_checks_catch_it_instead(mod):
    """With checks on (the default), the same bug raises a clean
    CollectiveMismatch on every thread instead of deadlocking."""
    from repro.core import CollectiveMismatch

    sim = Simulation()
    sim.server(server_main_factory(mod), host="HOST_2", nprocs=2)
    outcomes = {}

    def client(ctx):
        srv = mod.svc._spmd_bind("svc")
        v = ctx.dseq(np.ones(8))
        try:
            if ctx.rank == 0:
                srv.total(v)
            else:
                srv.plain(3)
        except CollectiveMismatch:
            outcomes[ctx.rank] = "caught"

    sim.client(client, host="HOST_1", nprocs=2)
    sim.run()
    assert outcomes == {0: "caught", 1: "caught"}


def test_client_exception_fails_simulation_with_thread_name(mod):
    sim = Simulation()

    def client(ctx):
        raise RuntimeError("client bug")

    sim.client(client, host="HOST_1", name="buggy-client")
    with pytest.raises(SimThreadFailed, match="buggy-client"):
        sim.run()


def test_server_setup_exception_propagates(mod):
    sim = Simulation()

    def bad_server(ctx):
        raise ValueError("config error before activate")

    sim.server(bad_server, host="HOST_2", name="bad-server")
    sim.client(lambda ctx: ctx.compute(0.01), host="HOST_1")
    with pytest.raises(SimThreadFailed, match="bad-server"):
        sim.run()


def test_duplicate_object_name_fails_activation(mod):
    sim = Simulation()
    s = server_main_factory(mod)
    sim.server(s, host="HOST_2", nprocs=1, node_offset=0)
    sim.server(s, host="HOST_2", nprocs=1, node_offset=1)
    sim.client(lambda ctx: ctx.compute(0.01), host="HOST_1")
    with pytest.raises(SimThreadFailed, match="already registered"):
        sim.run()


def test_reply_to_dead_client_is_harmless(mod):
    """A oneway-style fire-and-exit client: the server's reply lands in a
    mailbox nobody reads; the simulation still completes."""
    sim = Simulation(config=OrbConfig(max_outstanding=4))
    sim.server(server_main_factory(mod), host="HOST_2", nprocs=1)

    def client(ctx):
        srv = mod.svc._bind("svc")
        srv.plain_nb(1)  # never resolved

    sim.client(client, host="HOST_1")
    sim.run()  # no deadlock, no error


FAIL_IDL = """
    typedef dsequence<double, 64> fvec;
    interface failing { double chew(in fvec v); };
"""


def test_servant_exception_releases_pooled_argument_buffers():
    """A servant that raises after its dsequence arguments arrived: every
    pooled fast-path payload buffer borrowed for those fragments must be
    back in the pool once the failure reply reaches the client."""
    from repro.core import SystemException

    mod = compile_idl(FAIL_IDL, module_name="failure_fastpath_stubs")
    sim = Simulation()

    def server_main(ctx):
        class Impl(mod.failing_skel):
            def chew(self, v):
                raise RuntimeError("servant blew up")

        ctx.poa.activate(Impl(), "failing", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=1)
    out = {}

    def client(ctx):
        srv = mod.failing._bind("failing")
        with pytest.raises(SystemException, match="servant blew up"):
            srv.chew(mod.fvec(np.arange(32.0)))
        out["done"] = True

    sim.client(client, host="HOST_1")
    sim.run()
    stats = sim.world.transport.buffer_pool.stats
    assert out["done"]
    assert stats.fast_encodes >= 1  # the argument took the zero-copy lane
    assert stats.borrows == stats.returns


def test_failed_request_drains_queued_result_fragments():
    """Deterministic client-side drain: a result fragment that is already
    queued when the request fails (here: times out) is discarded by the
    failure path, releasing its pooled payload buffer."""
    from repro.cdr import TC_DOUBLE, encode_bulk_payload
    from repro.core import SystemException
    from repro.core.request import Fragment
    from repro.netsim.transport import Packet
    from repro.runtime.tags import TAG_RESULT_FRAGMENT

    mod = compile_idl("interface slow { double poke(in double delay); };",
                      module_name="failure_slow_stubs")
    sim = Simulation(config=OrbConfig(request_timeout=0.25))

    def server_main(ctx):
        class Impl(mod.slow_skel):
            def poke(self, delay):
                ctx.compute(delay)
                return float(delay)

        ctx.poa.activate(Impl(), "slow", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=1)
    out = {}

    def client(ctx):
        srv = mod.slow._bind("slow")
        fut = srv.poke_nb(10.0)  # will time out at 0.25 s
        state = next(iter(ctx.pending.values()))
        # Forge a result fragment for the pending request with a pooled
        # payload and queue it on the client's own endpoint.
        pool = sim.world.transport.buffer_pool
        buf = encode_bulk_payload(TC_DOUBLE, np.arange(4.0), pool)
        frag = Fragment(req_id=state.req_id, param="_return", src_rank=0,
                        intervals=((0, 4),), payload=buf)
        ep = ctx.endpoint
        ep.channel.push(
            Packet(src=ep.address, dst=ep.address, tag=TAG_RESULT_FRAGMENT,
                   body=frag, nbytes=len(buf)),
            arrival=ctx.now())
        with pytest.raises(SystemException, match="timed out"):
            fut.wait()
        out["released"] = buf.released
        out["dead"] = ctx.orb.dead_result_fragments

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["released"] is True
    assert out["dead"] == 1


def test_mixed_thread_counts_client_server(mod):
    """8 client threads against a 3-thread server and vice versa."""
    for cnp, snp in [(8, 3), (3, 8)]:
        sim = Simulation()
        sim.server(server_main_factory(mod), host="HOST_2", nprocs=snp)
        out = {}

        def client(ctx):
            srv = mod.svc._spmd_bind("svc")
            v = ctx.dseq(np.arange(40.0))
            out[ctx.rank] = srv.total(v)

        sim.client(client, host="HOST_2", nprocs=cnp,
                   node_offset=0 if snp <= 2 else 0)
        # client shares HOST_2's nodes; ensure capacity
        sim.run()
        assert all(v == sum(range(40)) for v in out.values())
