#!/usr/bin/env python3
"""The paper's §4.3 scenario: a pipelined metaapplication built from
components implemented in *different* parallel packages.

A POOMA diffusion simulation (9-point stencil) pipelines its field to an
HPC++ PSTL gradient server every 5th time-step; both components pipeline
every completed result to visualizer servers.  The pragma-driven package
mappings mean no component ever converts another's data structures by
hand: the same IDL compiled with -pooma, -hpcxx and no option produces the
three sets of stubs.

Run:  python examples/pipeline.py [PROCS] [STEPS]
"""

import sys

from repro.core import Simulation
from repro.experiments.fig5_pipeline import _network
from repro.apps.diffusion import diffusion_client_main
from repro.apps.gradient import gradient_server_main
from repro.apps.visualizer import visualizer_server_main


def main():
    procs = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    n = 64

    sim = Simulation(network=_network())
    sim.server(visualizer_server_main, host="SGI_PC", nprocs=1,
               node_offset=9, args=("diff_visualizer",), name="viz-diff")
    sim.server(visualizer_server_main, host="INDY", nprocs=1,
               args=("grad_visualizer",), name="viz-grad")
    sim.server(gradient_server_main, host="SP2", nprocs=procs,
               args=(n, "grad_visualizer"), name="gradient")

    reports: dict = {}
    sim.client(diffusion_client_main, host="SGI_PC", nprocs=procs,
               args=(steps, 5, n, 0.1, "field_operations",
                     "diff_visualizer", reports), name="diffusion")
    sim.run()

    r0 = reports[0]
    print(f"pipeline on {procs}+{procs} processors, {n}x{n} grid, "
          f"{steps} time-steps:")
    print(f"  diffusion steps          : {r0.steps}")
    print(f"  frames to visualizer     : {r0.frames_shown}")
    print(f"  gradient requests        : {r0.gradients_requested}")
    print(f"  overall (client view)    : {max(r.elapsed for r in reports.values()):.2f} virtual s")
    print(f"  POOMA (SGI PC) -> HPC++ (SP/2) -> visualizers (SGI PC, Indy)")
    print(f"  components were written against different run-time systems;")
    print(f"  the IDL pragma mappings did every conversion.")


if __name__ == "__main__":
    main()
