"""Smoke-run the marshaling microbenchmarks without pytest-benchmark.

``benchmarks/bench_marshal.py`` normally runs under ``make bench``; this
suite imports it and drives every benchmark function once with a stub
``benchmark`` fixture, so a refactor of the CDR layer that breaks the
benchmark harness (or its typecodes) fails fast in the tier-1 tests.
"""

import importlib.util
import pathlib

import pytest

BENCH_PATH = (pathlib.Path(__file__).resolve().parents[2]
              / "benchmarks" / "bench_marshal.py")


def _load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_marshal_smoke",
                                                  BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class _OneShotBenchmark:
    """pytest-benchmark stand-in: runs the target exactly once."""

    def __init__(self):
        self.extra_info = {}

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)

    def pedantic(self, fn, args=(), kwargs=None, **_ignored):
        return fn(*args, **(kwargs or {}))


@pytest.fixture(scope="module")
def bench_mod():
    return _load_bench_module()


def test_flat_doubles_smoke(bench_mod):
    bench_mod.test_encode_flat_doubles(_OneShotBenchmark(), 1_000)
    bench_mod.test_decode_flat_doubles(_OneShotBenchmark(), 1_000)


def test_nested_rows_smoke(bench_mod):
    bench_mod.test_encode_matrix_of_rows(_OneShotBenchmark(), 10)
    bench_mod.test_decode_matrix_of_rows(_OneShotBenchmark(), 10)


def test_records_smoke(bench_mod):
    bench_mod.test_roundtrip_heterogeneous_records(_OneShotBenchmark())


def test_fast_path_smoke(bench_mod):
    bench_mod.test_bulk_fast_path_speedup(_OneShotBenchmark())
