"""Semantic analysis for the PARDIS IDL.

Single pass over the AST (IDL requires declaration before use), building
scoped symbol tables, evaluating constant expressions, resolving types to
:mod:`repro.cdr` TypeCodes, and validating PARDIS-specific rules:

* ``dsequence`` may not nest inside another ``dsequence``;
* distributed arguments only make sense on operations (used by the
  compiler to emit SPMD and single stub variants, paper §3.1);
* ``#pragma PKG:name`` package mappings must annotate dsequence typedefs.

The output :class:`CompiledSpec` is the IR consumed by the code generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

from ..cdr import (
    ArrayTC,
    ObjectRefTC,
    DSequenceTC,
    EnumTC,
    PRIMITIVES,
    SequenceTC,
    StringTC,
    StructTC,
    TypeCode,
    UnionTC,
)
from . import ast


class IdlSemanticError(Exception):
    """Name, type or constraint error in otherwise well-formed IDL."""


# ---------------------------------------------------------------------------
# Resolved IR
# ---------------------------------------------------------------------------


@dataclass
class RTypedef:
    qname: tuple[str, ...]
    tc: TypeCode
    pragmas: list[ast.Pragma] = field(default_factory=list)

    @property
    def python_name(self) -> str:
        return "_".join(self.qname)


@dataclass
class RConst:
    qname: tuple[str, ...]
    value: Any

    @property
    def python_name(self) -> str:
        return "_".join(self.qname)


@dataclass
class RStruct:
    qname: tuple[str, ...]
    tc: StructTC

    @property
    def python_name(self) -> str:
        return "_".join(self.qname)


@dataclass
class REnum:
    qname: tuple[str, ...]
    tc: EnumTC

    @property
    def python_name(self) -> str:
        return "_".join(self.qname)


@dataclass
class RUnion:
    qname: tuple[str, ...]
    tc: UnionTC

    @property
    def python_name(self) -> str:
        return "_".join(self.qname)


@dataclass
class RException:
    qname: tuple[str, ...]
    tc: StructTC

    @property
    def python_name(self) -> str:
        return "_".join(self.qname)


@dataclass
class RParam:
    direction: str
    name: str
    tc: TypeCode
    #: the typedef that introduced this type, if any (carries pragmas)
    via_typedef: Optional[RTypedef] = None

    @property
    def is_distributed(self) -> bool:
        return isinstance(self.tc, DSequenceTC)


@dataclass
class ROperation:
    name: str
    ret_tc: Optional[TypeCode]          # None for void
    params: list[RParam]
    oneway: bool = False
    raises: list[RException] = field(default_factory=list)

    @property
    def has_distributed_args(self) -> bool:
        return any(p.is_distributed for p in self.params) or isinstance(
            self.ret_tc, DSequenceTC
        )

    @property
    def in_params(self) -> list[RParam]:
        return [p for p in self.params if p.direction in ("in", "inout")]

    @property
    def out_params(self) -> list[RParam]:
        return [p for p in self.params if p.direction in ("out", "inout")]


@dataclass
class RAttribute:
    name: str
    tc: TypeCode
    readonly: bool = False


@dataclass
class RInterface:
    qname: tuple[str, ...]
    bases: list["RInterface"]
    ops: list[ROperation]
    attrs: list[RAttribute]

    @property
    def python_name(self) -> str:
        return "_".join(self.qname)

    def all_ops(self) -> list[ROperation]:
        """Own + inherited operations, base-first, no duplicates."""
        seen: dict[str, ROperation] = {}
        for base in self.bases:
            for op in base.all_ops():
                seen.setdefault(op.name, op)
        for op in self.ops:
            seen[op.name] = op
        return list(seen.values())

    def all_attrs(self) -> list[RAttribute]:
        seen: dict[str, RAttribute] = {}
        for base in self.bases:
            for a in base.all_attrs():
                seen.setdefault(a.name, a)
        for a in self.attrs:
            seen[a.name] = a
        return list(seen.values())


@dataclass
class CompiledSpec:
    typedefs: list[RTypedef] = field(default_factory=list)
    consts: list[RConst] = field(default_factory=list)
    structs: list[RStruct] = field(default_factory=list)
    enums: list[REnum] = field(default_factory=list)
    unions: list[RUnion] = field(default_factory=list)
    exceptions: list[RException] = field(default_factory=list)
    interfaces: list[RInterface] = field(default_factory=list)

    def interface(self, name: str) -> RInterface:
        for i in self.interfaces:
            if i.python_name == name or i.qname[-1] == name:
                return i
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Scopes
# ---------------------------------------------------------------------------


@dataclass
class _Entry:
    kind: str     # typedef/const/struct/enum/enum_member/exception/interface/module
    value: Any


class _Scope:
    def __init__(self, name: str, parent: Optional["_Scope"]) -> None:
        self.name = name
        self.parent = parent
        self.entries: dict[str, _Entry] = {}

    @property
    def path(self) -> tuple[str, ...]:
        if self.parent is None:
            return ()
        return self.parent.path + (self.name,)

    def define(self, name: str, kind: str, value: Any) -> _Entry:
        if name in self.entries:
            raise IdlSemanticError(
                f"duplicate definition of {name!r} in scope "
                f"{'::'.join(self.path) or '<global>'}"
            )
        entry = _Entry(kind, value)
        self.entries[name] = entry
        return entry

    def lookup(self, scoped: tuple[str, ...]) -> _Entry:
        if scoped and scoped[0] == "":  # absolute ::name
            root = self
            while root.parent is not None:
                root = root.parent
            return root._lookup_path(scoped[1:])
        scope: Optional[_Scope] = self
        while scope is not None:
            try:
                return scope._lookup_path(scoped)
            except KeyError:
                scope = scope.parent
        raise IdlSemanticError(f"unknown name {'::'.join(scoped)!r}")

    def _lookup_path(self, scoped: tuple[str, ...]) -> _Entry:
        entry = self.entries[scoped[0]]
        for part in scoped[1:]:
            if entry.kind not in ("module", "interface"):
                raise KeyError(part)
            entry = entry.value.entries[part]
        return entry


# ---------------------------------------------------------------------------
# Analyzer
# ---------------------------------------------------------------------------


class Analyzer:
    def __init__(self) -> None:
        self.root = _Scope("", None)
        self.spec = CompiledSpec()

    # -- const evaluation ---------------------------------------------------------

    def eval_const(self, expr: ast.ConstExpr, scope: _Scope) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ConstRef):
            entry = scope.lookup(expr.scoped_name)
            if entry.kind == "const":
                return entry.value.value
            if entry.kind == "enum_member":
                return entry.value
            raise IdlSemanticError(
                f"{'::'.join(expr.scoped_name)!r} is not a constant"
            )
        if isinstance(expr, ast.UnaryExpr):
            v = self.eval_const(expr.operand, scope)
            if expr.op == "-":
                return -v
            if expr.op == "+":
                return +v
            if expr.op == "~":
                return ~v
        if isinstance(expr, ast.BinaryExpr):
            a = self.eval_const(expr.left, scope)
            b = self.eval_const(expr.right, scope)
            ops = {
                "+": lambda: a + b, "-": lambda: a - b, "*": lambda: a * b,
                "/": lambda: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
                "%": lambda: a % b, "<<": lambda: a << b, ">>": lambda: a >> b,
                "|": lambda: a | b, "&": lambda: a & b, "^": lambda: a ^ b,
            }
            try:
                return ops[expr.op]()
            except ZeroDivisionError:
                raise IdlSemanticError("division by zero in constant expression") from None
        raise IdlSemanticError(f"cannot evaluate constant expression {expr!r}")

    def _eval_bound(self, bound, scope: _Scope) -> Optional[int]:
        if bound is None:
            return None
        value = self.eval_const(bound, scope)
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            raise IdlSemanticError(
                f"bound must be a positive integer constant, got {value!r}"
            )
        return value

    # -- type resolution ---------------------------------------------------------------

    def resolve_type(self, texpr: ast.TypeExpr, scope: _Scope,
                     inside_dseq: bool = False) -> tuple[TypeCode, Optional[RTypedef]]:
        """Returns (typecode, originating typedef or None)."""
        if isinstance(texpr, ast.PrimType):
            return PRIMITIVES[texpr.name], None
        if isinstance(texpr, ast.StringType):
            return StringTC(self._eval_bound(texpr.bound, scope)), None
        if isinstance(texpr, ast.SeqType):
            elem, _ = self.resolve_type(texpr.element, scope, inside_dseq)
            return SequenceTC(elem, self._eval_bound(texpr.bound, scope)), None
        if isinstance(texpr, ast.DSeqType):
            if inside_dseq:
                raise IdlSemanticError(
                    "dsequence cannot be nested inside another dsequence"
                )
            elem, _ = self.resolve_type(texpr.element, scope, inside_dseq=True)
            return DSequenceTC(
                elem, self._eval_bound(texpr.bound, scope),
                texpr.client_dist, texpr.server_dist,
            ), None
        if isinstance(texpr, ast.ArrayType):
            elem, _ = self.resolve_type(texpr.element, scope, inside_dseq)
            if isinstance(elem, DSequenceTC):
                raise IdlSemanticError("arrays of dsequence are not allowed")
            dims = tuple(self._eval_bound(d, scope) for d in texpr.dims)
            return ArrayTC(elem, dims), None
        if isinstance(texpr, ast.NamedType):
            if texpr.scoped_name == ("Object",):
                # the CORBA wildcard object-reference type
                return ObjectRefTC(None), None
            entry = scope.lookup(texpr.scoped_name)
            if entry.kind == "typedef":
                td: RTypedef = entry.value
                if inside_dseq and isinstance(td.tc, DSequenceTC):
                    raise IdlSemanticError(
                        "dsequence cannot be nested inside another dsequence"
                    )
                return td.tc, td
            if entry.kind in ("struct", "enum", "union"):
                return entry.value.tc, None
            if entry.kind == "exception":
                raise IdlSemanticError(
                    f"exception {texpr.text!r} cannot be used as a data type"
                )
            if entry.kind == "interface":
                # Interface-typed values travel as object references.
                riface = entry.value._resolved
                return ObjectRefTC("IDL:" + "/".join(riface.qname) + ":1.0"), None
            raise IdlSemanticError(f"{texpr.text!r} is not a type")
        raise IdlSemanticError(f"unsupported type expression {texpr!r}")

    # -- declarations ---------------------------------------------------------------------

    def analyze(self, spec: ast.Specification) -> CompiledSpec:
        for d in spec.definitions:
            self.visit(d, self.root)
        return self.spec

    def visit(self, node, scope: _Scope) -> None:
        if isinstance(node, ast.ModuleDecl):
            sub = _Scope(node.name, scope)
            scope.define(node.name, "module", sub)
            for d in node.body:
                self.visit(d, sub)
        elif isinstance(node, ast.Typedef):
            self.visit_typedef(node, scope)
        elif isinstance(node, ast.ConstDecl):
            value = self.eval_const(node.value, scope)
            self._check_const_type(node, value)
            rc = RConst(scope.path + (node.name,), value)
            scope.define(node.name, "const", rc)
            self.spec.consts.append(rc)
        elif isinstance(node, ast.StructDecl):
            tc = StructTC(node.name, tuple(
                (m.name, self.resolve_type(m.type, scope)[0]) for m in node.members
            ))
            self._check_unique([m.name for m in node.members],
                               f"struct {node.name!r} member")
            rs = RStruct(scope.path + (node.name,), tc)
            scope.define(node.name, "struct", rs)
            self.spec.structs.append(rs)
        elif isinstance(node, ast.EnumDecl):
            self._check_unique(node.members, f"enum {node.name!r} member")
            tc = EnumTC(node.name, tuple(node.members))
            re_ = REnum(scope.path + (node.name,), tc)
            scope.define(node.name, "enum", re_)
            for idx, m in enumerate(node.members):
                scope.define(m, "enum_member", idx)
            self.spec.enums.append(re_)
        elif isinstance(node, ast.UnionDecl):
            self.visit_union(node, scope)
        elif isinstance(node, ast.ExceptionDecl):
            tc = StructTC(node.name, tuple(
                (m.name, self.resolve_type(m.type, scope)[0]) for m in node.members
            ))
            rx = RException(scope.path + (node.name,), tc)
            scope.define(node.name, "exception", rx)
            self.spec.exceptions.append(rx)
        elif isinstance(node, ast.InterfaceDecl):
            self.visit_interface(node, scope)
        else:
            raise IdlSemanticError(f"unexpected definition {node!r} at top level")

    def visit_typedef(self, node: ast.Typedef, scope: _Scope) -> None:
        tc, _ = self.resolve_type(node.type, scope)
        if node.pragmas and not isinstance(tc, DSequenceTC):
            p = node.pragmas[0]
            raise IdlSemanticError(
                f"#pragma {p.package}:{p.target} must annotate a dsequence "
                f"typedef, but {node.name!r} is {tc!r}"
            )
        td = RTypedef(scope.path + (node.name,), tc, list(node.pragmas))
        scope.define(node.name, "typedef", td)
        self.spec.typedefs.append(td)

    def _check_const_type(self, node: ast.ConstDecl, value: Any) -> None:
        t = node.type
        if isinstance(t, ast.PrimType):
            if t.name in ("float", "double"):
                if not isinstance(value, (int, float)):
                    raise IdlSemanticError(
                        f"const {node.name!r}: expected a number, got {value!r}"
                    )
            elif t.name == "boolean":
                if not isinstance(value, bool):
                    raise IdlSemanticError(
                        f"const {node.name!r}: expected TRUE/FALSE, got {value!r}"
                    )
            elif t.name == "char":
                if not (isinstance(value, str) and len(value) == 1):
                    raise IdlSemanticError(
                        f"const {node.name!r}: expected a char, got {value!r}"
                    )
            else:
                if not isinstance(value, int) or isinstance(value, bool):
                    raise IdlSemanticError(
                        f"const {node.name!r}: expected an integer, got {value!r}"
                    )
        elif isinstance(t, ast.StringType):
            if not isinstance(value, str):
                raise IdlSemanticError(
                    f"const {node.name!r}: expected a string, got {value!r}"
                )
        else:
            raise IdlSemanticError(
                f"const {node.name!r}: type must be primitive or string"
            )

    def _check_unique(self, names, what: str) -> None:
        seen = set()
        for n in names:
            if n in seen:
                raise IdlSemanticError(f"duplicate {what} {n!r}")
            seen.add(n)

    def visit_union(self, node: ast.UnionDecl, scope: _Scope) -> None:
        disc_tc, _ = self.resolve_type(node.discriminator, scope)
        ok = isinstance(disc_tc, EnumTC) or (
            disc_tc.kind in ("boolean", "char", "short", "ushort", "long",
                             "ulong", "longlong", "ulonglong", "octet")
        )
        if not ok:
            raise IdlSemanticError(
                f"union {node.name!r}: discriminator must be an integer, "
                f"char, boolean or enum type, not {disc_tc!r}"
            )
        self._check_unique([c.name for c in node.cases],
                           f"union {node.name!r} arm")
        cases = []
        default_case = None
        seen_labels = set()
        for case in node.cases:
            arm_tc, _ = self.resolve_type(case.type, scope)
            if isinstance(arm_tc, DSequenceTC):
                raise IdlSemanticError(
                    f"union {node.name!r}: arms cannot be distributed"
                )
            for label in case.labels:
                if label == "default":
                    default_case = (case.name, arm_tc)
                    continue
                value = self.eval_const(label, scope)
                if isinstance(disc_tc, EnumTC) or disc_tc.kind not in (
                        "boolean", "char"):
                    if not isinstance(value, int) or isinstance(value, bool):
                        if not (disc_tc.kind == "boolean"
                                or disc_tc.kind == "char"):
                            raise IdlSemanticError(
                                f"union {node.name!r}: case label {value!r} "
                                f"does not fit discriminator {disc_tc!r}"
                            )
                if value in seen_labels:
                    raise IdlSemanticError(
                        f"union {node.name!r}: duplicate case label {value!r}"
                    )
                seen_labels.add(value)
                cases.append((value, case.name, arm_tc))
        if not cases and default_case is None:
            raise IdlSemanticError(f"union {node.name!r} has no arms")
        if not cases:
            raise IdlSemanticError(
                f"union {node.name!r} needs at least one labelled case"
            )
        tc = UnionTC(node.name, disc_tc, tuple(cases), default_case)
        ru = RUnion(scope.path + (node.name,), tc)
        scope.define(node.name, "union", ru)
        self.spec.unions.append(ru)

    def visit_interface(self, node: ast.InterfaceDecl, scope: _Scope) -> None:
        bases: list[RInterface] = []
        for b in node.bases:
            entry = scope.lookup(b.scoped_name)
            if entry.kind != "interface":
                raise IdlSemanticError(
                    f"interface {node.name!r} cannot inherit from "
                    f"non-interface {b.text!r}"
                )
            bases.append(entry.value._resolved)
        sub = _Scope(node.name, scope)
        entry = scope.define(node.name, "interface", sub)
        riface = RInterface(scope.path + (node.name,), bases, [], [])
        sub._resolved = riface  # type: ignore[attr-defined]
        entry.value._resolved = riface  # type: ignore[attr-defined]

        inherited_ops = {op.name for b in bases for op in b.all_ops()}
        op_names: set[str] = set()
        for item in node.body:
            if isinstance(item, ast.Operation):
                if item.name in op_names or item.name in inherited_ops:
                    raise IdlSemanticError(
                        f"duplicate operation {item.name!r} in interface "
                        f"{node.name!r} (CORBA IDL has no overloading)"
                    )
                op_names.add(item.name)
                riface.ops.append(self.visit_operation(item, sub, node.name))
            elif isinstance(item, ast.Attribute):
                tc, _ = self.resolve_type(item.type, sub)
                if isinstance(tc, DSequenceTC):
                    raise IdlSemanticError(
                        f"attribute {item.name!r} cannot be distributed"
                    )
                riface.attrs.append(RAttribute(item.name, tc, item.readonly))
            else:
                self.visit(item, sub)
        self.spec.interfaces.append(riface)

    def visit_operation(self, op: ast.Operation, scope: _Scope,
                        iface_name: str) -> ROperation:
        self._check_unique([p.name for p in op.params],
                           f"parameter of {iface_name}::{op.name}")
        params: list[RParam] = []
        for p in op.params:
            tc, via = self.resolve_type(p.type, scope)
            params.append(RParam(p.direction, p.name, tc, via))
        if isinstance(op.return_type, ast.VoidType):
            ret_tc = None
        else:
            ret_tc, _ = self.resolve_type(op.return_type, scope)
        raises: list[RException] = []
        for r in op.raises:
            entry = scope.lookup(r.scoped_name)
            if entry.kind != "exception":
                raise IdlSemanticError(
                    f"raises clause of {iface_name}::{op.name} references "
                    f"non-exception {r.text!r}"
                )
            raises.append(entry.value)
        if op.oneway:
            if ret_tc is not None or any(p.direction != "in" for p in params):
                raise IdlSemanticError(
                    f"oneway operation {iface_name}::{op.name} must return "
                    "void and take only 'in' parameters"
                )
            if raises:
                raise IdlSemanticError(
                    f"oneway operation {iface_name}::{op.name} cannot raise"
                )
        return ROperation(op.name, ret_tc, params, op.oneway, raises)


def analyze(spec: ast.Specification) -> CompiledSpec:
    """Run semantic analysis over a parsed specification."""
    return Analyzer().analyze(spec)
