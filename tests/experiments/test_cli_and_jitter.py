"""Experiments CLI and the measurement-jitter model."""

import subprocess
import sys

import pytest

from repro.netsim import Network
from repro.experiments.fig5_pipeline import run_overall


class TestJitterModel:
    def test_zero_jitter_is_exactly_deterministic(self):
        a = run_overall(1, steps=5, n=16)
        b = run_overall(1, steps=5, n=16)
        assert a == b

    def test_jitter_changes_results_per_seed(self):
        a = run_overall(1, steps=5, n=16, jitter=0.2, seed=1)
        b = run_overall(1, steps=5, n=16, jitter=0.2, seed=2)
        assert a != b

    def test_same_seed_same_result(self):
        a = run_overall(1, steps=5, n=16, jitter=0.2, seed=5)
        b = run_overall(1, steps=5, n=16, jitter=0.2, seed=5)
        assert a == b

    def test_jitter_bounded(self):
        base = run_overall(1, steps=5, n=16)
        jit = run_overall(1, steps=5, n=16, jitter=0.1, seed=3)
        assert abs(jit - base) / base < 0.25

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            Network(jitter=1.5)
        with pytest.raises(ValueError):
            Network(jitter=-0.1)

    def test_network_perturb_identity_without_jitter(self):
        net = Network()
        assert net._perturb(3.0) == 3.0

    def test_averaged_rows(self):
        from repro.experiments import run_fig5

        rows = run_fig5(procs=(1,), steps=5, n=16, repeats=3, jitter=0.2)
        assert len(rows) == 1
        assert rows[0].t_overall > 0


class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments", *args],
            capture_output=True, text=True, timeout=300,
        )

    def test_fig2_small(self):
        r = self.run_cli("fig2", "--sizes", "100")
        assert r.returncode == 0
        assert "t_distributed" in r.stdout
        assert "Figure 2" in r.stdout

    def test_fig4_small(self):
        r = self.run_cli("fig4", "--procs", "1", "2", "--nseqs", "40",
                         "--rounds", "3")
        assert r.returncode == 0
        assert "t_centralized" in r.stdout

    def test_fig5_small(self):
        r = self.run_cli("fig5", "--procs", "1", "--steps", "5", "--n", "16")
        assert r.returncode == 0
        assert "t_overall" in r.stdout

    def test_requires_subcommand(self):
        r = self.run_cli()
        assert r.returncode != 0


class TestNetworkSensitivity:
    def test_send_effect_shrinks_on_faster_links(self):
        from repro.experiments.network_sensitivity import run_sensitivity

        rows = {r.link: r for r in run_sensitivity(procs=2, steps=10, n=32)}
        assert rows["ethernet-100"].send_effect < \
            rows["ethernet-10"].send_effect
        assert rows["atm-155"].t_baseline <= rows["ethernet-10"].t_baseline

    def test_effects_are_nonnegative(self):
        from repro.experiments.network_sensitivity import run_sensitivity

        for r in run_sensitivity(procs=1, steps=10, n=32):
            assert r.send_effect >= -1e-9
            assert r.congestion_effect >= -1e-9
