"""PSTL parallel algorithms over distributed vectors.

Each algorithm runs on every computing thread, operates on the local
block, and (where needed) combines results with RTS collectives — the
SPMD execution model of HPC++'s PSTL.  Vectorized callables (numpy
ufuncs / array functions) are applied to the whole local block at once.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ...runtime.collectives import allreduce
from .dvector import DVector

#: calibration: flops charged per element for an elementwise operation
ELEMENTWISE_FLOPS = 4


def par_transform(src: DVector, fn: Callable, out: DVector | None = None,
                  charge: bool = True) -> DVector:
    """``out[i] = fn(src[i])`` in parallel; returns ``out``."""
    if out is None:
        out = DVector(len(src), src.rank, src.dist.p, src.rts, dist=src.dist)
    if out.dist.parts != src.dist.parts:
        raise ValueError("par_transform needs aligned distributions")
    out.local[:] = fn(src.local)
    if charge and src.rts is not None:
        src.rts.charge_flops(src.local_size * ELEMENTWISE_FLOPS)
    return out


def par_for_each(vec: DVector, fn: Callable, charge: bool = True) -> None:
    """Apply ``fn`` to the local block in place."""
    vec.local[:] = fn(vec.local)
    if charge and vec.rts is not None:
        vec.rts.charge_flops(vec.local_size * ELEMENTWISE_FLOPS)


def par_reduce(vec: DVector, op: Callable[[float, float], float] = None,
               local_op: Callable[[np.ndarray], float] = np.sum,
               charge: bool = True) -> float:
    """Reduce the whole vector to one value, identical on every thread."""
    if charge and vec.rts is not None:
        vec.rts.charge_flops(vec.local_size)
    local = float(local_op(vec.local)) if vec.local_size else 0.0
    if vec.rts is None or vec.dist.p == 1:
        return local
    combine = op if op is not None else (lambda a, b: a + b)
    return allreduce(vec.rts, local, combine)
