"""CDR-style marshaling: typecodes, encoder, decoder.

The IDL compiler generates code that drives this layer; the same
marshaling routines serve both network transport and transport within a
parallel program's communication domain (paper §4.1).
"""

from .decoder import CdrDecoder, decode
from .encoder import (
    CdrEncoder,
    MarshalError,
    encode,
    get_marshal_meter,
    set_marshal_meter,
)
from .typecodes import (
    ArrayTC,
    DSequenceTC,
    EnumTC,
    PRIMITIVES,
    PrimitiveTC,
    SequenceTC,
    StringTC,
    StructTC,
    TC_BOOLEAN,
    TC_CHAR,
    TC_DOUBLE,
    TC_FLOAT,
    TC_LONG,
    TC_LONGLONG,
    TC_OCTET,
    TC_SHORT,
    TC_ULONG,
    TC_ULONGLONG,
    TC_USHORT,
    TypeCode,
    is_numeric_primitive,
    wire_size,
)

from .typecodes import ObjectRefTC, UnionTC

__all__ = [
    "ArrayTC",
    "CdrDecoder",
    "CdrEncoder",
    "DSequenceTC",
    "EnumTC",
    "MarshalError",
    "ObjectRefTC",
    "PRIMITIVES",
    "PrimitiveTC",
    "SequenceTC",
    "StringTC",
    "StructTC",
    "TC_BOOLEAN",
    "TC_CHAR",
    "TC_DOUBLE",
    "TC_FLOAT",
    "TC_LONG",
    "TC_LONGLONG",
    "TC_OCTET",
    "TC_SHORT",
    "TC_ULONG",
    "TC_ULONGLONG",
    "TC_USHORT",
    "TypeCode",
    "UnionTC",
    "decode",
    "encode",
    "get_marshal_meter",
    "is_numeric_primitive",
    "set_marshal_meter",
    "wire_size",
]
