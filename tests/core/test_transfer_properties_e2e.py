"""Property-based stress of the paper's core mechanism: ANY combination
of client layout, server layout, length, and thread counts must move
distributed arguments through a real invocation without loss."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Simulation
from repro.idl import compile_idl

IDL = """
    typedef dsequence<double, 1000000> vec;
    interface echo2 {
        void bounce(in vec v, out vec w);
        double checksum(in vec v);
    };
"""

_mod = compile_idl(IDL, module_name="transfer_prop_stubs")

KINDS = ["BLOCK", "CYCLIC", "CONCENTRATED"]


def run_case(n, client_np, server_np, in_kind, server_kind, out_kind):
    data = np.arange(float(n)) * 1.25
    sim = Simulation()

    def server_main(ctx):
        from repro.core import DistributedSequence
        from repro.runtime import collectives as coll

        class Impl(_mod.echo2_skel):
            def bounce(self, v):
                return DistributedSequence(v.element, v.dist, v.rank,
                                           np.asarray(v.owned_data))

            def checksum(self, v):
                local = float(np.sum(v.owned_data))
                return coll.allreduce(ctx.rts, local, lambda a, b: a + b)

        ctx.poa.activate(Impl(), "echo2", kind="spmd",
                         in_dists={("bounce", "v"): server_kind,
                                   ("checksum", "v"): server_kind})
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=server_np)
    gathered = {}

    def client(ctx):
        e = _mod.echo2._spmd_bind("echo2")
        v = ctx.dseq(data, kind=in_kind)
        total = e.checksum(v)
        w = e.bounce(v, _distributions={"w": out_kind})
        gathered[ctx.rank] = (total, w.dist.kind,
                              np.asarray(w.owned_data),
                              list(w.dist.global_indices(ctx.rank)))

    sim.client(client, host="HOST_1", nprocs=client_np)
    sim.run()
    return data, gathered


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(0, 60),
    client_np=st.integers(1, 4),
    server_np=st.integers(1, 4),
    in_kind=st.sampled_from(KINDS),
    server_kind=st.sampled_from(KINDS),
    out_kind=st.sampled_from(KINDS),
)
def test_property_any_layout_combination_roundtrips(
        n, client_np, server_np, in_kind, server_kind, out_kind):
    data, gathered = run_case(n, client_np, server_np,
                              in_kind, server_kind, out_kind)
    expected_total = float(np.sum(data))
    reassembled = np.zeros(n)
    for rank, (total, kind, local, idx) in gathered.items():
        assert total == pytest.approx(expected_total)
        assert kind == out_kind
        reassembled[idx] = local
    np.testing.assert_allclose(reassembled, data)


def test_extreme_thread_imbalance():
    data, gathered = run_case(40, 1, 4, "CONCENTRATED", "CYCLIC", "BLOCK")
    total, kind, local, idx = gathered[0]
    assert total == pytest.approx(float(np.sum(data)))
    np.testing.assert_allclose(local, data)  # single client gets it all
