#!/usr/bin/env python3
"""Dynamic invocation and packet tracing: talk to a PARDIS object without
its generated stubs, and watch the ORB's protocol on the wire.

The server side is ordinary (IDL-compiled skeleton).  The client side
never imports the stub module: it binds by name and drives the operations
through the Interface Repository — CORBA's Dynamic Invocation Interface,
inherited by PARDIS.

Run:  python examples/dynamic_client.py
"""

import numpy as np

from repro.core import Simulation, dynamic_bind
from repro.idl import compile_idl
from repro.tools import attach_tracer

SERVER_IDL = """
    typedef dsequence<double, 4096> samples;
    interface stats {
        double mean(in samples v);
        double maximum(in samples v);
        long count();
    };
"""


def server_main(ctx):
    stubs = compile_idl(SERVER_IDL, module_name="dyn_server_stubs")
    from repro.runtime import collectives as coll

    class StatsImpl(stubs.stats_skel):
        def __init__(self):
            self.calls = 0

        def _reduce(self, local_sum, local_n, op):
            return coll.allreduce(ctx.rts, (local_sum, local_n),
                                  lambda a, b: op(a, b))

        def mean(self, v):
            self.calls += 1
            data = np.asarray(v.owned_data)
            s, n = coll.allreduce(
                ctx.rts, (float(data.sum()), data.size),
                lambda a, b: (a[0] + b[0], a[1] + b[1]))
            return s / n

        def maximum(self, v):
            self.calls += 1
            data = np.asarray(v.owned_data)
            local = float(data.max()) if data.size else float("-inf")
            return coll.allreduce(ctx.rts, local, max)

        def count(self):
            return self.calls

    ctx.poa.activate(StatsImpl(), "stats", kind="spmd")
    ctx.poa.impl_is_ready()


def client_main(ctx):
    # No stub import anywhere in this function: dynamic binding finds the
    # interface definition in the Interface Repository.
    proxy = dynamic_bind("stats", collective=True)
    print(f"[client {ctx.rank}] bound dynamically: {proxy!r}")
    if ctx.rank == 0:
        print(f"[client] operations discovered: {proxy.operations()}")

    v = ctx.dseq(np.linspace(0.0, 10.0, 101))
    mean = proxy.invoke("mean", v)
    fut = proxy.invoke_nb("maximum", v)
    maximum = fut.value()
    calls = proxy.invoke("count")
    if ctx.rank == 0:
        print(f"[client] mean={mean:.3f} max={maximum:.3f} "
              f"(server served {calls} collective calls)")


def main():
    sim = Simulation()
    trace = attach_tracer(sim.world.transport)
    sim.server(server_main, host="HOST_2", nprocs=2, name="stats-server")
    sim.client(client_main, host="HOST_1", nprocs=2, name="dyn-client")
    sim.run()

    print("\nwire summary:")
    print(trace.summary())
    print("\nfirst protocol packets:")
    print(trace.timeline(limit=8, kinds={"request", "reply",
                                         "arg-fragment"}))


if __name__ == "__main__":
    main()
