"""High-level facade: a PARDIS world in a box.

:class:`Simulation` wires together the kernel, the network topology, the
transport, the ORB and the repositories, and exposes the three verbs a
metaapplication needs: launch a client, launch a server, and register a
server for on-demand activation.  All example programs and experiments sit
on this class.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..netsim import ATM_155, Host, Network
from ..runtime.mpi import MPIRuntime
from ..runtime.program import ParallelProgram, World
from .orb import ORB, OrbConfig
from .repository import ActivationRecord


def default_network() -> Network:
    """The paper's §4.1 testbed: a 4-node SGI Onyx (HOST_1) and a 10-node
    SGI PowerChallenge (HOST_2) joined by dedicated 155 Mb/s ATM."""
    net = Network()
    net.add_host(Host("HOST_1", nodes=4, node_flops=5.2e6))
    net.add_host(Host("HOST_2", nodes=10, node_flops=6.6e6))
    net.connect("HOST_1", "HOST_2", ATM_155)
    return net


class Simulation:
    """One PARDIS deployment: topology + ORB + programs."""

    def __init__(self, network: Optional[Network] = None,
                 config: Optional[OrbConfig] = None,
                 trace: Callable[[str], None] | None = None) -> None:
        self.world = World(network or default_network(), trace=trace)
        self.orb = ORB(self.world, config)

    @property
    def network(self) -> Network:
        return self.world.network

    @property
    def kernel(self):
        return self.world.kernel

    # -- programs ----------------------------------------------------------------

    def client(self, main: Callable, *, host: str, nprocs: int = 1,
               name: Optional[str] = None, namespace: str = "default",
               rts_factory: Optional[Callable] = None, node_offset: int = 0,
               args: tuple = (), start_time: float = 0.0) -> ParallelProgram:
        """Launch a parallel client; ``main(ctx, *args)`` runs on every
        computing thread.  The simulation ends when all clients finish."""
        return self.orb.launch_program(
            main, host=host, nprocs=nprocs, daemon=False, name=name,
            namespace=namespace, rts_factory=rts_factory or MPIRuntime,
            node_offset=node_offset, args=args, start_time=start_time,
        )

    def server(self, main: Callable, *, host: str, nprocs: int = 1,
               name: Optional[str] = None, namespace: str = "default",
               rts_factory: Optional[Callable] = None, node_offset: int = 0,
               args: tuple = (), start_time: float = 0.0) -> ParallelProgram:
        """Launch a persistent parallel server (a daemon: it may sit in
        ``impl_is_ready`` forever without holding the simulation open)."""
        return self.orb.launch_program(
            main, host=host, nprocs=nprocs, daemon=True, name=name,
            namespace=namespace, rts_factory=rts_factory or MPIRuntime,
            node_offset=node_offset, args=args, start_time=start_time,
        )

    def register_implementation(self, object_name: str, server_main: Callable,
                                *, host: str, nprocs: int,
                                rts_factory: Optional[Callable] = None,
                                node_offset: int = 0,
                                program_name: Optional[str] = None,
                                args: tuple = ()) -> None:
        """Record how to activate the server for ``object_name`` on demand
        (the paper's Implementation Repository ``register`` facility)."""
        self.orb.impl_repository.register(ActivationRecord(
            object_name=object_name, server_main=server_main, host=host,
            nprocs=nprocs, rts_factory=rts_factory or MPIRuntime,
            node_offset=node_offset, program_name=program_name, args=args,
        ))
        self.orb.agent(host)  # ensure an agent exists on the server's host

    # -- observability / interception --------------------------------------------------

    def attach_observer(self, label: str = ""):
        """Install a request-lifecycle observer (see
        :mod:`repro.tools.observe`) on this simulation; returns it."""
        from ..tools.observe import attach_observer

        return attach_observer(self.world, label=label)

    def register_interceptor(self, icept):
        """Register a portable interceptor (see
        :mod:`repro.core.pipeline`) on this world's ORB; returns it."""
        return self.orb.register_interceptor(icept)

    # -- execution --------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run to completion; returns the final virtual time."""
        return self.world.run(until=until)
