"""CDR-style decoder; exact mirror of :mod:`repro.cdr.encoder`."""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from . import encoder as _encoder
from .buffers import PooledBuffer
from .encoder import MarshalError
from .typecodes import (
    ArrayTC,
    ObjectRefTC,
    TC_BOOLEAN as PRIM_BOOL,
    DSequenceTC,
    EnumTC,
    INT_RANGES,
    PrimitiveTC,
    SequenceTC,
    StringTC,
    StructTC,
    TypeCode,
    UnionTC,
    is_numeric_primitive,
)


class CdrDecoder:
    """Sequential CDR input stream."""

    def __init__(self, data: bytes) -> None:
        self._data = memoryview(data)
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def done(self) -> bool:
        return self._pos == len(self._data)

    # -- low-level --------------------------------------------------------------

    def align(self, n: int) -> None:
        self._pos += (-self._pos) % n

    def _take(self, n: int) -> memoryview:
        if self._pos + n > len(self._data):
            raise MarshalError(
                f"buffer underrun: need {n} bytes at offset {self._pos}, "
                f"only {self.remaining} remain"
            )
        chunk = self._data[self._pos:self._pos + n]
        self._pos += n
        return chunk

    def get_primitive(self, tc: PrimitiveTC) -> Any:
        self.align(tc.size)
        raw = self._take(tc.size)
        if tc.name == "char":
            return chr(raw[0])
        if tc.name == "boolean":
            return bool(raw[0])
        if tc.name in INT_RANGES:
            return int(np.frombuffer(raw, dtype=tc.dtype)[0])
        return float(struct.unpack("<f" if tc.size == 4 else "<d", raw)[0])

    def get_ulong(self) -> int:
        self.align(4)
        return int(struct.unpack("<I", self._take(4))[0])

    def get_string(self) -> str:
        n = self.get_ulong()
        if n < 1:
            raise MarshalError("string length prefix must be >= 1")
        raw = self._take(n)
        if raw[-1] != 0:
            raise MarshalError("string is not NUL-terminated")
        return bytes(raw[:-1]).decode("utf-8")

    def get_bulk(self, element: PrimitiveTC) -> np.ndarray:
        n = self.get_ulong()
        self.align(element.size)
        raw = self._take(n * element.size)
        return np.frombuffer(raw, dtype=element.dtype).copy()

    # -- typecode-driven -----------------------------------------------------------

    def decode(self, tc: TypeCode) -> Any:
        if isinstance(tc, PrimitiveTC):
            return self.get_primitive(tc)
        if isinstance(tc, StringTC):
            s = self.get_string()
            if tc.bound is not None and len(s.encode("utf-8")) > tc.bound:
                raise MarshalError(f"decoded string exceeds bound {tc.bound}")
            return s
        if isinstance(tc, EnumTC):
            idx = self.get_ulong()
            if idx >= len(tc.members):
                raise MarshalError(f"enum {tc.name} has no member index {idx}")
            # Decoding yields the member *name*: the encoder accepts both
            # names and indices, so name-out makes decode(encode(v)) a
            # fixed point regardless of which form was encoded.
            return tc.members[idx]
        if isinstance(tc, SequenceTC):
            return self._decode_sequence(tc)
        if isinstance(tc, DSequenceTC):
            return self._decode_sequence(tc.fragment_tc())
        if isinstance(tc, StructTC):
            return {fname: self.decode(ftc) for fname, ftc in tc.fields}
        if isinstance(tc, ArrayTC):
            return self._decode_array(tc)
        if isinstance(tc, ObjectRefTC):
            return self._decode_objref(tc)
        if isinstance(tc, UnionTC):
            disc = self.decode(tc.discriminator)
            arm = tc.arm_for(disc)
            if arm is None:
                raise MarshalError(
                    f"union {tc.name}: no arm for discriminant {disc!r}"
                )
            return (disc, self.decode(arm[1]))
        raise MarshalError(f"cannot decode typecode {tc!r}")

    def _decode_objref(self, tc: ObjectRefTC):
        from ..core.repository import ObjectRef
        from ..netsim import Address

        if not self.get_primitive(PRIM_BOOL):
            return None
        name = self.get_string()
        repo_id = self.get_string()
        kind = self.get_string()
        program_id = self.get_ulong()
        host = self.get_string()
        nthreads = self.get_ulong()
        owner_rank = self.get_ulong()
        n_ep = self.get_ulong()
        endpoints = tuple(
            Address(self.get_string(), self.get_ulong(), self.get_ulong())
            for _ in range(n_ep)
        )
        n_dists = self.get_ulong()
        in_dists = {}
        for _ in range(n_dists):
            op = self.get_string()
            param = self.get_string()
            in_dists[(op, param)] = self.get_string()
        return ObjectRef(name=name, repo_id=repo_id, kind=kind,
                         program_id=program_id, host=host,
                         nthreads=nthreads, owner_rank=owner_rank,
                         endpoints=endpoints, in_dists=in_dists)

    def _decode_array(self, tc: ArrayTC):
        if is_numeric_primitive(tc.element):
            self.align(tc.element.size)
            raw = self._take(tc.total * tc.element.size)
            return np.frombuffer(raw, dtype=tc.element.dtype).reshape(
                tc.dims).copy()

        def walk(dims):
            if len(dims) == 1:
                return [self.decode(tc.element) for _ in range(dims[0])]
            return [walk(dims[1:]) for _ in range(dims[0])]

        return walk(tc.dims)

    def _decode_sequence(self, tc: SequenceTC) -> Any:
        if is_numeric_primitive(tc.element):
            arr = self.get_bulk(tc.element)
            if tc.bound is not None and arr.size > tc.bound:
                raise MarshalError(f"sequence of {arr.size} exceeds bound {tc.bound}")
            return arr
        n = self.get_ulong()
        if tc.bound is not None and n > tc.bound:
            raise MarshalError(f"sequence of {n} exceeds bound {tc.bound}")
        return [self.decode(tc.element) for _ in range(n)]


def decode_bulk_payload(element: PrimitiveTC, payload) -> np.ndarray:
    """Zero-copy lane: view a numeric fragment payload as an ndarray.

    Accepts a :class:`~repro.cdr.buffers.PooledBuffer` lease or anything
    exposing the buffer protocol (``bytes``, ``memoryview``).  Returns a
    **read-only** ndarray aliasing the payload storage — no copy; the
    caller must finish with the array before releasing the underlying
    buffer.  Mirrors ``CdrDecoder.get_bulk`` except trailing bytes beyond
    the declared count are tolerated (a pooled buffer's bucket capacity
    can exceed the payload length).
    """
    pooled = type(payload) is PooledBuffer
    if pooled:
        if payload.released:
            raise MarshalError("decode of a released PooledBuffer")
        avail = payload.length
        data = payload.data
    else:
        avail = len(payload)
        data = payload
    if avail < 4:
        raise MarshalError(f"bulk payload of {avail} bytes has no length word")
    (n,) = struct.unpack_from("<I", data, 0)
    size = element.size
    header = 4 + ((-4) % size)
    end = header + n * size
    if avail < end:
        raise MarshalError(
            f"buffer underrun: bulk payload declares {n} elements "
            f"({end} bytes) but only {avail} are present"
        )
    if pooled:
        pair = payload.views.get(element.name)
        if pair is None:
            pair = _encoder._make_views(payload.views, element, data, header)
        arr = pair[1][:n]
    else:
        arr = np.frombuffer(data, dtype=element.dtype, count=n,
                            offset=header)
        if arr.flags.writeable:
            arr.flags.writeable = False
    if _encoder._MARSHAL_METER is not None:
        _encoder._MARSHAL_METER.on_decode(end)
    return arr


def decode(tc: TypeCode, data: bytes) -> Any:
    """One-shot decode; requires the buffer to be fully consumed."""
    from .encoder import _MARSHAL_METER

    dec = CdrDecoder(data)
    value = dec.decode(tc)
    if not dec.done():
        raise MarshalError(f"{dec.remaining} trailing bytes after decode")
    if _MARSHAL_METER is not None:
        _MARSHAL_METER.on_decode(len(data))
    return value
