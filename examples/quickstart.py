#!/usr/bin/env python3
"""PARDIS quickstart: define an interface in IDL, serve it from a parallel
(SPMD) server, and invoke it from a parallel client — blocking and
non-blocking — over a simulated two-host testbed.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Simulation
from repro.idl import compile_idl

# 1. Define the interface in PARDIS IDL.  `dsequence` is the PARDIS
#    extension: a sequence distributed over the computing threads of the
#    caller and the callee.
IDL = """
    typedef dsequence<double, 100000> vec;
    interface norms {
        double norm2(in vec v);
        void normalize(in vec v, out vec unit);
    };
"""
stubs = compile_idl(IDL, module_name="quickstart_stubs")


# 2. Implement a servant against the generated skeleton.  Each computing
#    thread of the server runs one servant instance and receives its own
#    fragment of every distributed argument.
def server_main(ctx):
    from repro.runtime import collectives as coll
    from repro.core import DistributedSequence

    class NormsImpl(stubs.norms_skel):
        def norm2(self, v):
            local = float(np.sum(np.square(v.owned_data)))
            return coll.allreduce(ctx.rts, local, lambda a, b: a + b) ** 0.5

        def normalize(self, v):
            total = self.norm2(v)
            return DistributedSequence(
                v.element, v.dist, v.rank,
                np.asarray(v.owned_data) / total)

    ctx.poa.activate(NormsImpl(), "norms", kind="spmd")
    print(f"[server thread {ctx.rank}] ready at t={ctx.now():.6f}s")
    ctx.poa.impl_is_ready()


# 3. The client: collective binding, one blocking and one non-blocking
#    invocation with overlapped local computation.
def client_main(ctx):
    srv = stubs.norms._spmd_bind("norms")

    v = stubs.vec(np.arange(1.0, 1001.0))   # BLOCK-distributed over threads
    n = srv.norm2(v)                        # blocking stub

    fut = srv.norm2_nb(v)                   # non-blocking stub -> future
    ctx.compute(0.01)                       # overlapped "useful work"
    n_again = fut.value()                   # blocks until resolved

    unit = srv.normalize(v)                 # distributed out argument
    if ctx.rank == 0:
        print(f"[client] ||v||          = {n:.4f}")
        print(f"[client] via future     = {n_again:.4f}")
        print(f"[client] local piece of the unit vector: "
              f"{np.asarray(unit.owned_data)[:3]} ...")
        print(f"[client] virtual time   = {ctx.now() * 1e3:.2f} ms")


def main():
    sim = Simulation()                      # the paper's HOST_1/HOST_2 testbed
    sim.server(server_main, host="HOST_2", nprocs=3, name="norms-server")
    sim.client(client_main, host="HOST_1", nprocs=2, name="client")
    sim.run()
    print(f"transport: {sim.world.transport.packets_sent} packets, "
          f"{sim.world.transport.bytes_sent} bytes")


if __name__ == "__main__":
    main()
