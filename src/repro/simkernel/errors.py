"""Exception hierarchy for the virtual-time kernel."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all kernel-level errors."""


class DeadlockError(SimError):
    """Raised by :meth:`SimKernel.run` when the event queue drains while
    simulated threads are still blocked.

    The message lists every blocked thread and what it is waiting on, which
    is usually enough to spot a missing send or a mismatched collective.
    """

    def __init__(self, blocked):
        self.blocked = list(blocked)
        lines = ", ".join(
            f"{t.name} (waiting on {t.wait_reason or 'unknown'})" for t in self.blocked
        )
        super().__init__(f"simulation deadlock: {len(self.blocked)} thread(s) blocked: {lines}")


class SimKilled(BaseException):
    """Injected into simulated threads when the kernel tears down.

    Derives from ``BaseException`` so that well-meaning ``except Exception``
    blocks in user code do not swallow kernel shutdown.
    """


class NotInSimThread(SimError):
    """A kernel operation was invoked from outside any simulated thread."""


class SimThreadFailed(SimError):
    """A simulated thread raised; re-raised in :meth:`SimKernel.run` with
    the original exception chained as ``__cause__``."""

    def __init__(self, thread_name: str, exc: BaseException):
        self.thread_name = thread_name
        self.original = exc
        super().__init__(f"simulated thread {thread_name!r} failed: {exc!r}")
