"""Tests for transfer schedules: the data-movement core of [KG97]."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distribution import Distribution
from repro.core.transfer import (
    extract,
    incoming,
    insert,
    local_items,
    outgoing,
    schedule,
)


def apply_schedule(src_dist, dst_dist, global_data):
    """Run a schedule 'by hand' (no network) and return the dst local
    arrays; used to verify that schedules move exactly the right data."""
    src_locals = [
        np.asarray([global_data[i] for i in src_dist.global_indices(r)], dtype=float)
        for r in range(src_dist.p)
    ]
    dst_locals = [
        np.zeros(dst_dist.local_size(r)) for r in range(dst_dist.p)
    ]
    for item in schedule(src_dist, dst_dist):
        values = extract(src_dist, item.src_rank, src_locals[item.src_rank],
                         item.intervals)
        insert(dst_dist, item.dst_rank, dst_locals[item.dst_rank],
               item.intervals, values)
    return dst_locals


def check_conversion(src_dist, dst_dist):
    n = src_dist.n
    data = np.arange(n, dtype=float) * 1.5
    dst_locals = apply_schedule(src_dist, dst_dist, data)
    for r in range(dst_dist.p):
        expected = [data[i] for i in dst_dist.global_indices(r)]
        np.testing.assert_array_equal(dst_locals[r], expected)


class TestSchedules:
    def test_identity_schedule_is_all_local(self):
        d = Distribution.block(10, 3)
        sched = schedule(d, d)
        assert all(t.src_rank == t.dst_rank for t in sched)

    def test_block_to_concentrated(self):
        src = Distribution.block(10, 3)
        dst = Distribution.concentrated(10, 2)
        sched = schedule(src, dst)
        assert all(t.dst_rank == 0 for t in sched)
        assert sum(t.size for t in sched) == 10

    def test_block_p_change(self):
        check_conversion(Distribution.block(100, 3), Distribution.block(100, 5))

    def test_block_to_cyclic(self):
        check_conversion(Distribution.block(23, 4), Distribution.cyclic(23, 3))

    def test_cyclic_to_block(self):
        check_conversion(Distribution.cyclic(17, 3), Distribution.block(17, 4))

    def test_template_to_block(self):
        check_conversion(Distribution.template(50, [4, 1]),
                         Distribution.block(50, 2))

    def test_concentrated_to_block(self):
        check_conversion(Distribution.concentrated(30, 1),
                         Distribution.block(30, 4))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            schedule(Distribution.block(5, 2), Distribution.block(6, 2))

    def test_total_transferred_equals_length(self):
        src = Distribution.block(40, 4)
        dst = Distribution.cyclic(40, 3)
        assert sum(t.size for t in schedule(src, dst)) == 40

    def test_outgoing_incoming_local_partition(self):
        src = Distribution.block(20, 3)
        dst = Distribution.block(20, 2)
        sched = schedule(src, dst)
        for r in range(3):
            out = outgoing(sched, r)
            assert all(t.src_rank == r and t.dst_rank != r for t in out)
        for r in range(2):
            inc = incoming(sched, r)
            assert all(t.dst_rank == r and t.src_rank != r for t in inc)
            loc = local_items(sched, r)
            assert all(t.src_rank == r == t.dst_rank for t in loc)


class TestExtractInsert:
    def test_extract_contiguous(self):
        d = Distribution.block(10, 2)  # rank 0: [0,5)
        local = np.arange(5, dtype=float)
        out = extract(d, 0, local, ((1, 4),))
        np.testing.assert_array_equal(out, [1, 2, 3])

    def test_extract_cyclic(self):
        d = Distribution.cyclic(10, 2)  # rank 0 owns evens
        local = np.array([0, 2, 4, 6, 8], dtype=float)
        out = extract(d, 0, local, ((2, 3), (6, 7)))
        np.testing.assert_array_equal(out, [2, 6])

    def test_insert_contiguous(self):
        d = Distribution.block(10, 2)
        local = np.zeros(5)
        insert(d, 1, local, ((6, 8),), np.array([60.0, 70.0]))
        np.testing.assert_array_equal(local, [0, 60, 70, 0, 0])

    def test_extract_list_storage(self):
        d = Distribution.block(4, 2)
        out = extract(d, 0, ["a", "b"], ((0, 2),))
        assert out == ["a", "b"]

    def test_insert_list_storage(self):
        d = Distribution.block(4, 2)
        local = [None, None]
        insert(d, 1, local, ((2, 4),), ["x", "y"])
        assert local == ["x", "y"]


DIST_KINDS = ["BLOCK", "CYCLIC", "CONCENTRATED"]


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 80),
    sp=st.integers(1, 5),
    dp=st.integers(1, 5),
    skind=st.sampled_from(DIST_KINDS),
    dkind=st.sampled_from(DIST_KINDS),
)
def test_property_any_to_any_conversion_preserves_data(n, sp, dp, skind, dkind):
    check_conversion(Distribution.of_kind(skind, n, sp),
                     Distribution.of_kind(dkind, n, dp))


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 60),
    sp=st.integers(1, 4),
    dp=st.integers(1, 4),
)
def test_property_schedule_covers_every_element_once(n, sp, dp):
    src = Distribution.block(n, sp)
    dst = Distribution.cyclic(n, dp)
    seen = set()
    for item in schedule(src, dst):
        for a, b in item.intervals:
            for i in range(a, b):
                assert i not in seen
                seen.add(i)
    assert seen == set(range(n))
