#!/usr/bin/env python3
"""The paper's §4.2 scenario: an SPMD DNA-database object searched in
parallel, with five *single* list-server objects distributed over the
threads of the same parallel server (Figure 3's topology).

The client issues a non-blocking search, then queries the list servers
while the search is still running (the server interleaves servicing via
POA::process_requests), showing parallel interaction with objects
distributed over a parallel server's resources.

Run:  python examples/dna_search.py [PROCS]
"""

import sys

from repro.core import Simulation
from repro.netsim import ATM_155, Host, Network
from repro.apps.dnadb import CATEGORIES, dna_server_main, list_server_name
from repro.apps.interfaces import dna_stubs

QUERY = "ACGTAC"


def client_main(ctx):
    mod = dna_stubs()
    dna_database = mod.dna_db._bind("dna_database")
    servers = {cat: mod.list_server._bind(list_server_name(cat))
               for cat in CATEGORIES}

    stat = dna_database.search_nb(QUERY)
    rounds = 0
    while not stat.resolved():
        # Query the single objects while the SPMD search is in flight.
        futures = {cat: servers[cat].match_nb(QUERY[:3])
                   for cat in CATEGORIES}
        sizes = {cat: len(fut.value()) for cat, fut in futures.items()}
        rounds += 1
        if rounds <= 3:
            print(f"[client] t={ctx.now():6.2f}s  mid-search list sizes: "
                  + "  ".join(f"{c[:5]}={sizes[c]}" for c in CATEGORIES))
    print(f"[client] search resolved with status {stat.value()} "
          f"after {rounds} interleaved query rounds")

    # final processing
    print(f"[client] final lists at t={ctx.now():.2f}s:")
    for cat in CATEGORIES:
        matches = servers[cat].match(QUERY[:3])
        example = matches[0][:24] + "..." if matches else "-"
        print(f"  {cat:>13}: {len(matches):3d} sequences   e.g. {example}")


def main():
    procs = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    net = Network()
    net.add_host(Host("CLIENT", nodes=1, node_flops=5.2e6))
    net.add_host(Host("SERVER", nodes=8, node_flops=6.6e6))
    net.connect("CLIENT", "SERVER", ATM_155)
    sim = Simulation(network=net)

    print(f"DNA database server on {procs} nodes; list servers "
          f"distributed round-robin (Figure 3 topology):")
    for k, cat in enumerate(CATEGORIES):
        print(f"  {list_server_name(cat):>26} -> server thread {k % procs}")

    sim.server(dna_server_main, host="SERVER", nprocs=procs,
               args=(200, QUERY, "distributed"), name="dna-server")
    sim.client(client_main, host="CLIENT", nprocs=1)
    sim.run()


if __name__ == "__main__":
    main()
