"""Distributed sequences (paper §3.2).

A :class:`DistributedSequence` is "a one-dimensional array with variable
length and distribution": each computing thread holds the local fragment
assigned to it by a :class:`~repro.core.distribution.Distribution`.  It is
primarily a *container for argument data*: it supports no-ownership
construction around existing buffers and exposes its owned data, so
conversions to package-native structures are cheap; ``operator[]`` is
location-transparent (non-local access requires a one-sided runtime such
as :class:`~repro.runtime.tulip.TulipRuntime`).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..cdr import (
    SequenceTC,
    TC_DOUBLE,
    TypeCode,
    is_numeric_primitive,
)
from .distribution import Distribution
from .errors import NonLocalAccess

_ONESIDED_KEY_PREFIX = "_pardis_dseq:"


class DistributedSequence:
    """Per-thread handle on a distributed one-dimensional sequence."""

    def __init__(self, element: TypeCode, dist: Distribution, rank: int,
                 local_data=None, *, copy: bool = True) -> None:
        if not (0 <= rank < dist.p):
            raise ValueError(f"rank {rank} out of range for {dist.p} threads")
        self.element = element
        self.dist = dist
        self.rank = rank
        self._numeric = is_numeric_primitive(element)
        size = dist.local_size(rank)
        if local_data is None:
            if self._numeric:
                self._local = np.zeros(size, dtype=element.dtype)
            else:
                self._local = [element.default() for _ in range(size)]
        else:
            if len(local_data) != size:
                raise ValueError(
                    f"local data has {len(local_data)} elements but rank "
                    f"{rank} owns {size}"
                )
            if self._numeric:
                arr = np.asarray(local_data, dtype=element.dtype)
                self._local = arr.copy() if copy else arr
            else:
                self._local = list(local_data) if copy else local_data
        self._registered_with = None

    # -- constructors ------------------------------------------------------------

    @classmethod
    def create(cls, n: int, element: TypeCode = TC_DOUBLE,
               kind: str = "BLOCK", *, rank: int, nprocs: int
               ) -> "DistributedSequence":
        """A zero-initialized sequence of global length ``n``."""
        return cls(element, Distribution.of_kind(kind, n, nprocs), rank)

    @classmethod
    def adopt(cls, local_data, dist: Distribution, rank: int,
              element: TypeCode = TC_DOUBLE) -> "DistributedSequence":
        """No-ownership constructor: wrap an existing buffer without
        copying — "which allows the programmer to easily build efficient
        conversions between the distributed sequence and data structures
        particular to his or her package"."""
        return cls(element, dist, rank, local_data, copy=False)

    @classmethod
    def from_global(cls, data, dist: Distribution, rank: int,
                    element: TypeCode = TC_DOUBLE) -> "DistributedSequence":
        """Take the rank-local part out of a full (replicated) array."""
        idx = list(dist.global_indices(rank))
        if is_numeric_primitive(element):
            local = np.asarray(data, dtype=element.dtype)[idx]
        else:
            local = [data[i] for i in idx]
        return cls(element, dist, rank, local, copy=False)

    # -- basic container protocol ---------------------------------------------------

    def __len__(self) -> int:
        """Global length."""
        return self.dist.n

    @property
    def local_size(self) -> int:
        return self.dist.local_size(self.rank)

    @property
    def owned_data(self):
        """Direct access to the local fragment (no copy)."""
        return self._local

    @property
    def distribution(self) -> Distribution:
        return self.dist

    def is_local(self, index: int) -> bool:
        return self.dist.owner_of(index) == self.rank

    def __getitem__(self, index: int) -> Any:
        """Location-transparent element access.

        Local elements are returned directly; non-local elements are
        fetched through a one-sided runtime if the sequence has been
        registered with one (see :meth:`enable_remote_access`), else
        :class:`NonLocalAccess` is raised.
        """
        owner, local = self.dist.global_to_local(self._norm(index))
        if owner == self.rank:
            return self._local[local]
        rts = self._registered_with
        if rts is None or not getattr(rts, "supports_onesided", False):
            raise NonLocalAccess(
                f"element {index} lives on thread {owner}; register the "
                "sequence with a one-sided runtime for remote access"
            )
        return rts.get(owner, self._onesided_key(),
                       selector=lambda seq: seq._local[local])

    def __setitem__(self, index: int, value: Any) -> None:
        owner, local = self.dist.global_to_local(self._norm(index))
        if owner == self.rank:
            self._local[local] = value
            return
        rts = self._registered_with
        if rts is None or not getattr(rts, "supports_onesided", False):
            raise NonLocalAccess(
                f"element {index} lives on thread {owner}; register the "
                "sequence with a one-sided runtime for remote access"
            )
        rts.put(owner, self._onesided_key(), (local, value),
                updater=lambda seq, lv: seq._local.__setitem__(lv[0], lv[1]))

    def _norm(self, index: int) -> int:
        if index < 0:
            index += len(self)
        return index

    # -- one-sided access ---------------------------------------------------------------

    def _onesided_key(self) -> str:
        # Must agree across ranks: derive from the distribution's content
        # (each rank builds its own structurally-equal Distribution).
        d = self.dist
        return f"{_ONESIDED_KEY_PREFIX}{d.kind}:{d.n}:{d.p}"

    def enable_remote_access(self, rts) -> None:
        """Register this sequence for location-transparent remote access.

        Collective: every thread registers its own fragment under a shared
        key derived from the (shared) distribution object.
        """
        if not getattr(rts, "supports_onesided", False):
            raise NonLocalAccess(
                f"{type(rts).__name__} has no one-sided support"
            )
        rts.register(self._onesided_key(), self)
        self._registered_with = rts

    # -- redistribution ---------------------------------------------------------------------

    def redistribute(self, new_dist: Distribution, rts) -> "DistributedSequence":
        """Collective: return this sequence laid out as ``new_dist``.

        Every thread exchanges exactly the overlapping fragments computed
        by the transfer engine (direct thread-to-thread messages).
        """
        if new_dist.n != self.dist.n:
            raise ValueError(
                f"cannot redistribute length {self.dist.n} to {new_dist.n}"
            )
        # Late import: the courier package imports marshal, which imports
        # this module.
        from .pipeline.courier import redistribute_exchange

        out = DistributedSequence(self.element, new_dist, self.rank)
        redistribute_exchange(self.element, self.dist, new_dist, self.rank,
                              self._local, out._local, rts)
        return out

    # -- collectives -----------------------------------------------------------------------------

    def gather(self, rts, root: int = 0):
        """Collective: assemble the full sequence on ``root`` (None elsewhere)."""
        from ..runtime import collectives as coll

        pieces = coll.gather(
            rts, (tuple(self.dist.intervals(self.rank)), self._local), root=root
        )
        if pieces is None:
            return None
        if self._numeric:
            full = np.zeros(len(self), dtype=self.element.dtype)
        else:
            full = [None] * len(self)
        for intervals, local in pieces:
            pos = 0
            for a, b in intervals:
                full[a:b] = local[pos:pos + (b - a)]
                pos += b - a
        return full

    # -- misc -----------------------------------------------------------------------------------

    def local_nbytes(self) -> int:
        """Wire-size estimate of the local fragment."""
        if self._numeric:
            return self._local.nbytes + 8
        from ..cdr import wire_size

        return wire_size(SequenceTC(self.element), self._local)

    def __repr__(self) -> str:
        return (f"<DistributedSequence n={len(self)} {self.dist.kind} "
                f"rank={self.rank}/{self.dist.p} local={self.local_size}>")
