"""PARDIS exception hierarchy (CORBA-flavoured)."""

from __future__ import annotations


class PardisError(Exception):
    """Base class for all PARDIS-level errors."""


class SystemException(PardisError):
    """CORBA-style system exception (infrastructure failure)."""


class ObjectNotFound(SystemException):
    """No object with the requested name is registered or activatable."""


class BadOperation(SystemException):
    """Request for an operation the interface does not define."""


class BindingError(SystemException):
    """A binding could not be established or was misused."""


class CollectiveMismatch(SystemException):
    """SPMD threads disagreed on a collective invocation (different
    operations, different request sequence, or a missing participant)."""


class NonLocalAccess(PardisError):
    """Location-transparent element access touched a non-local element and
    no one-sided runtime is available to fetch it (paper §3.2: distributed
    sequences are containers first; remote ``operator[]`` needs an RTS with
    one-sided support such as Tulip)."""


class FutureError(PardisError):
    """Misuse of a future (e.g. rebinding an already-bound future)."""


class ActivationError(SystemException):
    """A server could not be activated (no record, or agent disabled)."""


class TransientException(SystemException):
    """CORBA ``TRANSIENT``: the request was *not* executed (e.g. shed by
    server-side admission control) and may safely be retried later.
    Replies that raise this carry the overload marker in their service
    contexts; the client-side throttle interceptor reacts by backing
    off (see :mod:`repro.services`)."""


class UserException(PardisError):
    """Base class of IDL-declared exceptions.

    Generated exception classes define ``_repo_id``, ``_typecode`` and
    ``_fields``; instances carry one attribute per IDL member.
    """

    _repo_id: str = "IDL:UserException:1.0"
    _typecode = None
    _fields: tuple = ()

    def __init__(self, *args, **fields):
        if args:
            if len(args) > len(self._fields):
                raise TypeError(
                    f"{type(self).__name__} takes at most "
                    f"{len(self._fields)} positional arguments"
                )
            fields.update(zip(self._fields, args))
        unknown = set(fields) - set(self._fields)
        if unknown:
            raise TypeError(
                f"{type(self).__name__} has no members {sorted(unknown)}"
            )
        for name in self._fields:
            setattr(self, name, fields.get(name))
        super().__init__(
            ", ".join(f"{n}={getattr(self, n)!r}" for n in self._fields)
        )

    def _values(self) -> dict:
        return {n: getattr(self, n) for n in self._fields}
