"""The PARDIS ORB core — the paper's primary contribution.

SPMD objects, distributed sequences with distribution templates, futures,
bind/spmd_bind, repositories, activation agents, the POA, and the direct
parallel argument-transfer engine.
"""

from .dii import DynamicProxy, InterfaceRepository, dynamic_bind
from .distribution import Distribution, RowBlock
from .dsequence import DistributedSequence
from .errors import (
    ActivationError,
    BadOperation,
    BindingError,
    CollectiveMismatch,
    FutureError,
    NonLocalAccess,
    ObjectNotFound,
    PardisError,
    SystemException,
    TransientException,
    UserException,
)
from .futures import Future
from .interfacedef import AttrDef, InterfaceDef, OpDef, ParamDef
from .invocation import Binding
from .orb import ORB, ActivationAgent, OrbConfig, PardisContext
from .pipeline import (
    DEADLINE_CONTEXT,
    DeadlineExpired,
    DeadlineInterceptor,
    FaultInjectionInterceptor,
    FaultRule,
    FragmentCourier,
    InterceptorChain,
    RequestInterceptor,
)
from .poa import POA, ServantRecord
from .repository import (
    ActivationRecord,
    ImplementationRepository,
    ObjectRef,
    ObjectRepository,
)
from .simulation import Simulation, default_network

__all__ = [
    "DynamicProxy",
    "InterfaceRepository",
    "ORB",
    "POA",
    "ActivationAgent",
    "ActivationError",
    "ActivationRecord",
    "AttrDef",
    "BadOperation",
    "Binding",
    "BindingError",
    "CollectiveMismatch",
    "DEADLINE_CONTEXT",
    "DeadlineExpired",
    "DeadlineInterceptor",
    "Distribution",
    "DistributedSequence",
    "FaultInjectionInterceptor",
    "FaultRule",
    "FragmentCourier",
    "Future",
    "FutureError",
    "InterceptorChain",
    "RequestInterceptor",
    "ImplementationRepository",
    "InterfaceDef",
    "NonLocalAccess",
    "ObjectNotFound",
    "ObjectRef",
    "ObjectRepository",
    "OpDef",
    "OrbConfig",
    "ParamDef",
    "PardisContext",
    "PardisError",
    "ServantRecord",
    "RowBlock",
    "Simulation",
    "SystemException",
    "TransientException",
    "UserException",
    "default_network",
    "dynamic_bind",
]
