"""Non-persistent servers: activation, exit, and re-activation (§2.2)."""

import pytest

from repro.core import Simulation
from repro.idl import compile_idl

IDL = "interface counter { long next(); };"


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="nonpersistent_stubs")


def test_nonpersistent_server_reactivated_after_exit(mod):
    """A server that deactivates and exits after a few requests is
    re-activated by the agent when a later client binds."""
    launches = []

    def server_main(ctx):
        generation = len(launches)
        launches.append(ctx.now())

        class Impl(mod.counter_skel):
            def __init__(self):
                self.served = 0

            def next(self):
                self.served += 1
                return generation * 100 + self.served

        servant = Impl()
        ctx.poa.activate(servant, "counter", kind="spmd")
        # Serve exactly two requests, then retire (non-persistent).
        while servant.served < 2:
            ctx.poa.process_requests()
            ctx.compute(1e-3)
        ctx.poa.deactivate("counter")

    sim = Simulation()
    sim.register_implementation("counter", server_main,
                                host="HOST_2", nprocs=1)
    results = {}

    def early_client(ctx):
        c = mod.counter._bind("counter")
        results["first"] = (c.next(), c.next())

    def late_client(ctx):
        ctx.compute(1.0)  # bind well after the first server retired
        c = mod.counter._bind("counter")
        results["second"] = c.next()

    sim.client(early_client, host="HOST_1")
    sim.client(late_client, host="HOST_1", node_offset=1)
    sim.run()

    assert results["first"] == (1, 2)
    assert results["second"] == 101  # a fresh server generation
    assert len(launches) == 2


def test_live_server_not_relaunched(mod):
    launches = []

    def server_main(ctx):
        launches.append(1)

        class Impl(mod.counter_skel):
            def next(self):
                return 7

        ctx.poa.activate(Impl(), "counter", kind="spmd")
        ctx.poa.impl_is_ready()

    sim = Simulation()
    sim.register_implementation("counter", server_main,
                                host="HOST_2", nprocs=1)

    def client(ctx, delay):
        ctx.compute(delay)
        c = mod.counter._bind("counter")
        assert c.next() == 7

    sim.client(client, host="HOST_1", args=(0.0,))
    sim.client(client, host="HOST_1", node_offset=1, args=(0.5,))
    sim.run()
    assert len(launches) == 1
