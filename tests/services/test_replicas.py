"""Replica groups: selection policies, repository replica lists, health
probing, and policy-driven binding."""

from types import SimpleNamespace

import pytest

from repro.core import Simulation
from repro.core.repository import ObjectRef, ObjectRepository
from repro.idl import compile_idl
from repro.services import (
    ALIVE,
    DEAD,
    LeastLoaded,
    LocalityAware,
    RoundRobin,
    SelectionPolicy,
    make_policy,
)

IDL = """
    interface echoer {
        long echo(in long x);
    };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="replica_stubs")


def _ref(name="o", program_id=0, host="h"):
    return ObjectRef(name=name, repo_id="IDL:x:1.0", kind="spmd",
                     program_id=program_id, host=host, nthreads=1,
                     owner_rank=0, endpoints=())


def _group(loads=None):
    return SimpleNamespace(_rotation=0,
                           known_loads=lambda: dict(loads or {}))


class TestPolicies:
    def test_make_policy_coerces_names_and_instances(self):
        assert isinstance(make_policy("round_robin"), RoundRobin)
        assert isinstance(make_policy("least_loaded"), LeastLoaded)
        assert isinstance(make_policy("locality"), LocalityAware)
        rr = RoundRobin()
        assert make_policy(rr) is rr

    def test_make_policy_unknown_name(self):
        with pytest.raises(ValueError, match="unknown selection policy"):
            make_policy("random")

    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            SelectionPolicy().choose(_group(), None, [_ref()])

    def test_round_robin_rotates(self):
        group = _group()
        refs = [_ref(program_id=i) for i in range(3)]
        picked = [RoundRobin().choose(group, None, refs).program_id
                  for _ in range(5)]
        assert picked == [0, 1, 2, 0, 1]

    def test_least_loaded_prefers_low_unreported_idle(self):
        refs = [_ref(program_id=i) for i in range(3)]
        # Replica 0 busy, replica 1 idle, replica 2 never reported.
        group = _group(loads={0: 0.9, 1: 0.0})
        picked = LeastLoaded().choose(group, None, refs)
        assert picked.program_id in (1, 2)    # both count as idle

    def test_least_loaded_ties_rotate(self):
        refs = [_ref(program_id=i) for i in range(2)]
        group = _group()
        picked = [LeastLoaded().choose(group, None, refs).program_id
                  for _ in range(4)]
        assert picked == [0, 1, 0, 1]

    def test_locality_prefers_local_host_falls_back(self):
        ctx = SimpleNamespace(program=SimpleNamespace(host="A"))
        refs = [_ref(program_id=0, host="B"), _ref(program_id=1, host="A")]
        group = _group()
        assert LocalityAware().choose(group, ctx, refs).program_id == 1
        far_ctx = SimpleNamespace(program=SimpleNamespace(host="C"))
        picked = [LocalityAware().choose(group, far_ctx, refs).program_id
                  for _ in range(2)]
        assert sorted(picked) == [0, 1]       # no local replica: full set


class TestReplicaRepository:
    def test_lookup_all_returns_replicas_in_order(self):
        repo = ObjectRepository()
        repo.register(_ref("a", program_id=1))
        repo.register(_ref("a", program_id=2), replica=True)
        assert [r.program_id for r in repo.lookup_all("a")] == [1, 2]
        assert repo.lookup("a").program_id == 1
        assert repo.lookup_all("ghost") == ()

    def test_second_program_requires_replica_flag(self):
        repo = ObjectRepository()
        repo.register(_ref("a", program_id=1))
        with pytest.raises(ValueError, match="replica=True"):
            repo.register(_ref("a", program_id=2))

    def test_same_program_rejected_even_as_replica(self):
        repo = ObjectRepository()
        repo.register(_ref("a", program_id=1))
        with pytest.raises(ValueError, match="already"):
            repo.register(_ref("a", program_id=1), replica=True)

    def test_unregister_by_program_id(self):
        repo = ObjectRepository()
        repo.register(_ref("a", program_id=1))
        repo.register(_ref("a", program_id=2), replica=True)
        repo.unregister("a", program_id=1)
        assert [r.program_id for r in repo.lookup_all("a")] == [2]
        repo.unregister("a", program_id=2)
        assert not repo.contains("a")
        repo.unregister("a", program_id=2)    # idempotent


def replica_server(mod, name, log):
    def server_main(ctx):
        class Impl(mod.echoer_skel):
            def echo(self, x):
                log.append(x)
                return x

        ctx.poa.activate(Impl(), name, kind="spmd", replica=True)
        ctx.poa.impl_is_ready()

    return server_main


class TestReplicaBinding:
    def test_round_robin_spreads_binds_across_replicas(self, mod):
        sim = Simulation()
        log_a, log_b = [], []
        sim.server(replica_server(mod, "dup", log_a), host="HOST_2",
                   nprocs=1)
        sim.server(replica_server(mod, "dup", log_b), host="HOST_2",
                   nprocs=1, node_offset=1)

        def client(ctx, value):
            p = mod.echoer._bind("dup", policy="round_robin")
            assert p.echo(value) == value

        sim.client(client, host="HOST_1", args=(1,))
        sim.client(client, host="HOST_1", node_offset=1, args=(2,))
        sim.run()
        # One bind landed on each replica.
        assert len(log_a) == len(log_b) == 1
        group = sim.orb.replica_group("dup")
        assert group.selections == 2
        assert all(h == ALIVE for h in group.health.values())

    def test_locality_prefers_replica_on_own_host(self, mod):
        sim = Simulation()
        local_log, remote_log = [], []
        sim.server(replica_server(mod, "near", remote_log), host="HOST_2",
                   nprocs=1)
        sim.server(replica_server(mod, "near", local_log), host="HOST_1",
                   nprocs=1, node_offset=2)

        def client(ctx):
            p = mod.echoer._bind("near", policy="locality")
            for i in range(3):
                assert p.echo(i) == i

        sim.client(client, host="HOST_1")
        sim.run()
        assert len(local_log) == 3
        assert remote_log == []

    def test_unknown_policy_raises_at_bind(self, mod):
        sim = Simulation()
        log = []
        sim.server(replica_server(mod, "solo", log), host="HOST_2",
                   nprocs=1)
        out = {}

        def client(ctx):
            with pytest.raises(ValueError, match="unknown selection"):
                mod.echoer._bind("solo", policy="fastest")
            out["ok"] = True

        sim.client(client, host="HOST_1")
        sim.run()
        assert out["ok"]

    def test_probe_all_marks_dead_replica(self, mod):
        sim = Simulation()
        log = []

        def mortal_server(ctx):
            class Impl(mod.echoer_skel):
                def __init__(self):
                    self.served = 0

                def echo(self, x):
                    self.served += 1
                    log.append(x)
                    return x

            servant = Impl()
            ctx.poa.activate(servant, "mortal", kind="spmd", replica=True)
            while servant.served < 1:
                ctx.poa.process_requests()
                ctx.compute(1e-3)
            # Exit without deactivating: a crash leaves a stale ref.

        sim.server(mortal_server, host="HOST_2", nprocs=1)
        sim.server(replica_server(mod, "mortal", []), host="HOST_2",
                   nprocs=1, node_offset=1)
        health = {}

        def client(ctx):
            p = mod.echoer._bind("mortal", policy="round_robin")
            assert p.echo(5) == 5             # served, then server exits
            ctx.compute(10e-3)                # let it wind down
            group = ctx.orb.replica_group("mortal")
            health.update(group.probe_all(ctx))
            health["deaths"] = group.deaths

        sim.client(client, host="HOST_1")
        sim.run()
        assert DEAD in health.values()
        assert health["deaths"] == 1
        # The dead replica was unregistered; one survivor remains.
        assert len(sim.orb.repository("default").lookup_all("mortal")) == 1
