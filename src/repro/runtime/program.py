"""Parallel programs and the world they run in.

A :class:`ParallelProgram` is the paper's "parallel server/client": a set
of one or more computing threads on the nodes of one host, communicating
through a run-time system of their choice.  A :class:`World` owns the
kernel, the network and the transport, and launches programs onto it.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Sequence

from ..netsim import Address, Host, Network, Transport
from ..simkernel import SimKernel, SimThread

#: Endpoint "purpose" ports within a program's port block.
PORT_RTS = 0     # intra-program run-time-system traffic
PORT_ORB = 1     # PARDIS ORB traffic (requests, replies, fragments)
PORTS_PER_PROGRAM = 8


class World:
    """Kernel + network + transport + program registry for one simulation."""

    def __init__(self, network: Optional[Network] = None,
                 trace: Callable[[str], None] | None = None) -> None:
        self.kernel = SimKernel(trace=trace)
        self.network = network if network is not None else Network()
        self.transport = Transport(self.kernel, self.network)
        self.programs: list[ParallelProgram] = []
        self._port_counter = itertools.count(0)
        #: Global blackboard used by the ORB layer (repositories, agents).
        self.services: dict[str, Any] = {}

    def launch(self, main: Callable, *, host: str, nprocs: int,
               name: str | None = None, rts_factory: Callable | None = None,
               node_offset: int = 0, daemon: bool = False,
               args: Sequence = (), start_time: float = 0.0) -> "ParallelProgram":
        """Create a parallel program and schedule its computing threads.

        ``main(rts, *args)`` runs once per computing thread;  ``rts`` is
        that thread's :class:`~repro.runtime.interface.RuntimeSystem`.
        """
        from .mpi import MPIRuntime  # default backend; late import avoids a cycle

        factory = rts_factory if rts_factory is not None else MPIRuntime
        prog = ParallelProgram(
            self, main, host=host, nprocs=nprocs,
            name=name or f"prog{len(self.programs)}",
            rts_factory=factory, node_offset=node_offset, daemon=daemon,
            args=tuple(args), start_time=start_time,
        )
        self.programs.append(prog)
        prog._start()
        return prog

    def run(self, until: float | None = None) -> float:
        """Run the simulation to completion (or ``until``)."""
        return self.kernel.run(until=until)


class ParallelProgram:
    """A set of computing threads on consecutive nodes of one host."""

    def __init__(self, world: World, main: Callable, *, host: str, nprocs: int,
                 name: str, rts_factory: Callable, node_offset: int,
                 daemon: bool, args: tuple, start_time: float) -> None:
        hostobj: Host = world.network.host(host)
        if nprocs < 1:
            raise ValueError(f"program {name!r} needs at least one thread")
        if node_offset + nprocs > hostobj.nodes:
            raise ValueError(
                f"program {name!r} needs nodes [{node_offset}, {node_offset + nprocs}) "
                f"but host {host!r} has only {hostobj.nodes} nodes"
            )
        self.world = world
        self.main = main
        self.host = host
        self.host_obj = hostobj
        self.nprocs = nprocs
        self.name = name
        self.node_offset = node_offset
        self.daemon = daemon
        self.args = args
        self.start_time = start_time
        self.rts_factory = rts_factory
        self.program_id = next(world._port_counter)
        self.port_base = self.program_id * PORTS_PER_PROGRAM
        self.threads: list[SimThread] = []
        self.rts: list[Any] = [None] * nprocs
        #: Backing store for one-sided (Tulip-style) runtimes.
        self.onesided_store: dict[tuple[int, Any], Any] = {}
        # Open every endpoint up front so sends never race with opens.
        for rank in range(nprocs):
            for purpose in (PORT_RTS, PORT_ORB):
                world.transport.open(self.address(rank, purpose))

    # -- addressing -----------------------------------------------------------

    def address(self, rank: int, purpose: int = PORT_RTS) -> Address:
        """Transport address of ``rank``'s endpoint for ``purpose``."""
        if not (0 <= rank < self.nprocs):
            raise ValueError(f"rank {rank} out of range for {self.name!r}")
        return Address(self.host, self.node_offset + rank,
                       self.port_base + purpose)

    def rank_of(self, address: Address) -> int:
        """Inverse of :meth:`address` (any purpose)."""
        return address.node - self.node_offset

    # -- lifecycle ---------------------------------------------------------------

    def _start(self) -> None:
        for rank in range(self.nprocs):
            self.threads.append(
                self.world.kernel.spawn(
                    self._run_rank, rank,
                    name=f"{self.name}[{rank}]",
                    daemon=self.daemon,
                    start_time=self.start_time,
                )
            )

    def _run_rank(self, rank: int):
        rts = self.rts_factory(self, rank)
        self.rts[rank] = rts
        th = self.world.kernel.current()
        th.locals["rts"] = rts
        th.locals["program"] = self
        return self.main(rts, *self.args)

    # -- results -------------------------------------------------------------------

    @property
    def results(self) -> list:
        """Per-rank return values of ``main`` (after the world has run)."""
        return [t.result for t in self.threads]

    def __repr__(self) -> str:
        return (f"<ParallelProgram {self.name!r} host={self.host} "
                f"nprocs={self.nprocs} id={self.program_id}>")
