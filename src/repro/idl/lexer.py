"""Lexer for the PARDIS IDL (CORBA IDL subset + extensions).

Produces a flat token stream with line/column positions.  Handles ``//``
and ``/* */`` comments, integer/float/string/char literals, the scope
operator ``::``, and ``#pragma`` lines (kept as first-class tokens — the
PARDIS compiler uses pragmas to select package mappings, paper §3.4).
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class IdlSyntaxError(SyntaxError):
    """Lexical or grammatical error in IDL source."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} (line {line}, column {col})")
        self.line = line
        self.col = col


KEYWORDS = {
    "module", "interface", "typedef", "const", "struct", "enum", "exception",
    "sequence", "dsequence", "string", "void", "in", "out", "inout",
    "oneway", "raises", "attribute", "readonly", "unsigned",
    "union", "switch", "case", "default",
    "octet", "boolean", "char", "short", "long", "float", "double",
    "TRUE", "FALSE",
}

#: token types
T_IDENT = "ident"
T_KEYWORD = "keyword"
T_INT = "int"
T_FLOAT = "float"
T_STRING = "string"
T_CHAR = "char"
T_PUNCT = "punct"
T_PRAGMA = "pragma"
T_EOF = "eof"

_PUNCTS = ("::", "<<", ">>", "{", "}", "(", ")", "<", ">", ",", ";", ":",
           "=", "[", "]", "+", "-", "*", "/", "|", "&", "^", "%", "~")

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<nl>\n)
  | (?P<linecomment>//[^\n]*)
  | (?P<blockcomment>/\*.*?\*/)
  | (?P<pragma>\#\s*pragma[^\n]*)
  | (?P<float>\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<char>'(?:[^'\\\n]|\\.)')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>::|<<|>>|[{}()<>,;:=\[\]+\-*/|&^%~])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    type: str
    value: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r} @{self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`IdlSyntaxError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise IdlSyntaxError(
                f"unexpected character {source[pos]!r}", line, pos - line_start + 1
            )
        kind = m.lastgroup
        text = m.group()
        col = pos - line_start + 1
        if kind == "nl":
            line += 1
            line_start = m.end()
        elif kind in ("ws", "linecomment"):
            pass
        elif kind == "blockcomment":
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = pos + text.rfind("\n") + 1
        elif kind == "pragma":
            tokens.append(Token(T_PRAGMA, text, line, col))
        elif kind == "ident":
            ttype = T_KEYWORD if text in KEYWORDS else T_IDENT
            tokens.append(Token(ttype, text, line, col))
        elif kind == "int":
            tokens.append(Token(T_INT, text, line, col))
        elif kind == "float":
            tokens.append(Token(T_FLOAT, text, line, col))
        elif kind == "string":
            tokens.append(Token(T_STRING, text, line, col))
        elif kind == "char":
            tokens.append(Token(T_CHAR, text, line, col))
        elif kind == "punct":
            tokens.append(Token(T_PUNCT, text, line, col))
        pos = m.end()
    tokens.append(Token(T_EOF, "", line, n - line_start + 1))
    return tokens


def unescape_string(literal: str) -> str:
    """Interpret an IDL string literal (with surrounding quotes)."""
    body = literal[1:-1]
    return (body.replace(r"\\", "\x00")
                .replace(r"\"", '"')
                .replace(r"\n", "\n")
                .replace(r"\t", "\t")
                .replace("\x00", "\\"))
