"""Integration: every example script runs to completion and produces the
narrative output it promises."""

import pathlib
import re
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3


def test_quickstart():
    r = run_example("quickstart.py")
    assert r.returncode == 0, r.stderr
    assert "||v||" in r.stdout
    assert "via future" in r.stdout
    assert "packets" in r.stdout


def test_concurrent_solvers():
    r = run_example("concurrent_solvers.py", "120")
    assert r.returncode == 0, r.stderr
    assert "max |X1 - X2|" in r.stdout
    assert "virtual seconds" in r.stdout


def test_dna_search():
    r = run_example("dna_search.py", "3")
    assert r.returncode == 0, r.stderr
    assert "search resolved" in r.stdout
    for cat in ("exact", "transposition", "deletion", "substitution",
                "addition"):
        assert cat in r.stdout


def test_pipeline():
    r = run_example("pipeline.py", "2", "20")
    assert r.returncode == 0, r.stderr
    assert "gradient requests" in r.stdout
    assert "overall" in r.stdout


def test_distribution_templates():
    r = run_example("distribution_templates.py")
    assert r.returncode == 0, r.stderr
    assert "template [3, 1]" in r.stdout
    assert "CYCLIC" in r.stdout
    assert "rebinned result arrived BLOCK" in r.stdout


def test_dynamic_client():
    r = run_example("dynamic_client.py")
    assert r.returncode == 0, r.stderr
    assert "bound dynamically" in r.stdout
    assert "wire summary" in r.stdout
    assert "arg-fragment" in r.stdout


def test_tracing_pipeline():
    r = run_example("tracing_pipeline.py", "2", "10")
    assert r.returncode == 0, r.stderr
    assert "span(s) 3 programs or more" in r.stdout
    assert "one stitched trace" in r.stdout
    assert "after parent" in r.stdout
    assert "@viz-grad" in r.stdout
    assert 'pardis_requests_total{kind="remote"}' in r.stdout


def test_parameter_study():
    r = run_example("parameter_study.py", "4", "8")
    assert r.returncode == 0, r.stderr
    assert "best regularization" in r.stdout
    assert "farm speedup" in r.stdout


def test_replicated_service():
    r = run_example("replicated_service.py")
    assert r.returncode == 0, r.stderr
    assert "[replica-0] crashing" in r.stdout
    assert "failovers=" in r.stdout
    assert "deaths=1" in r.stdout
    assert "'dead'" in r.stdout
    # Every accepted request completed: no client reports fewer than
    # REQUESTS outcomes, and ok+shed always totals REQUESTS.
    counts = re.findall(r"ok=(\d+) shed=(\d+)", r.stdout)
    assert len(counts) == 8
    assert all(int(ok) + int(shed) == 12 for ok, shed in counts)
