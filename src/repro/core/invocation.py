"""Client-side invocation engine: bindings and request emission.

This module implements what the compiler-generated stubs delegate to:

* :class:`Binding` — the client's connection to an object, created by
  ``_bind`` (one per thread) or ``_spmd_bind`` (collective, representing
  the parallel client to the ORB as one entity, paper §3.1);
* :func:`invoke` — blocking and non-blocking request emission, flow
  control (bounded outstanding requests per binding) and the
  local-bypass optimization (§4.1).

The per-request protocol work — marshaling, direct parallel fragment
transfer, reply/fragment collection, future resolution, interceptor
dispatch — lives in
:class:`repro.core.pipeline.state.ClientRequestState`, which this module
re-exports under its historic name :class:`PendingRequest`.
"""

from __future__ import annotations

from typing import Optional

from ..runtime import collectives as coll
from .errors import BindingError, CollectiveMismatch
from .futures import Future
from .interfacedef import OpDef
from .pipeline.interceptors import ClientRequestInfo
from .pipeline.state import ClientRequestState
from .repository import ObjectRef

#: historic name of the client-side progress engine
PendingRequest = ClientRequestState

__all__ = ["Binding", "PendingRequest", "invoke"]


class Binding:
    """A client thread's (or SPMD client's) connection to an object."""

    def __init__(self, ctx, ref: ObjectRef, collective: bool,
                 max_outstanding: Optional[int] = None,
                 group=None, policy=None) -> None:
        self.ctx = ctx
        self.ref = ref
        self.collective = collective
        scope = "c" if collective else f"r{ctx.rank}"
        self.uid = (ctx.program.program_id, scope, ctx._binding_counter)
        ctx._binding_counter += 1
        self._req_seq = 0
        self.outstanding: list[ClientRequestState] = []
        self.local = ref.program_id == ctx.program.program_id
        #: per-bind flow-control override (None = ORB-wide config value)
        self.max_outstanding = max_outstanding
        #: repro.services.ReplicaGroup when this binding was established
        #: through a selection policy — enables failover rebinds
        self.group = group
        self.policy = policy
        ctx.compute(ctx.orb.config.bind_cost)

    def rebind(self, ref: ObjectRef) -> None:
        """Point this binding at another replica (failover); outstanding
        requests keep draining against the old replica."""
        self.ref = ref
        self.local = ref.program_id == self.ctx.program.program_id
        self.ctx.compute(self.ctx.orb.config.bind_cost)

    @property
    def client_nthreads(self) -> int:
        return self.ctx.nprocs if self.collective else 1

    @property
    def client_index(self) -> int:
        """This thread's index within the invocation (0 for single)."""
        return self.ctx.rank if self.collective else 0

    def next_req_id(self):
        self._req_seq += 1
        return (self.uid, self._req_seq)

    def reply_endpoints(self) -> tuple:
        prog = self.ctx.program
        if self.collective:
            from ..runtime.program import PORT_ORB

            return tuple(prog.address(r, PORT_ORB) for r in range(prog.nprocs))
        return (self.ctx.endpoint.address,)

    def __repr__(self) -> str:
        mode = "spmd" if self.collective else "single"
        return f"<Binding {self.ref.name!r} {mode} local={self.local}>"


# ---------------------------------------------------------------------------
# Invocation
# ---------------------------------------------------------------------------


def invoke(binding: Binding, op: OpDef, in_values: tuple,
           distributions: Optional[dict], placeholders: tuple = (),
           blocking: bool = True):
    """Issue one request on ``binding``.

    Returns the result (blocking), the result future (non-blocking), or
    ``None`` for oneway operations.
    """
    ctx = binding.ctx
    cfg = ctx.orb.config
    if len(in_values) != len(op.in_params):
        raise BindingError(
            f"{op.name} takes {len(op.in_params)} in-arguments, "
            f"got {len(in_values)}"
        )
    if binding.collective and ctx.nprocs > 1 and cfg.collective_checks:
        sig = (binding.uid, op.name, binding._req_seq)
        sigs = coll.allgather(ctx.rts, sig)
        if any(s != sig for s in sigs):
            raise CollectiveMismatch(
                f"SPMD threads disagree on invocation: {sorted(set(map(str, sigs)))}"
            )

    if binding.local:
        return _invoke_local(binding, op, in_values, placeholders, blocking)

    # Flow control: cap unreplied requests per binding (the per-bind
    # override wins over the ORB-wide default).
    limit = (binding.max_outstanding if binding.max_outstanding is not None
             else cfg.max_outstanding)
    while len(binding.outstanding) >= limit:
        binding.outstanding[0].progress(block=True)

    state = ClientRequestState(binding, op, in_values, distributions,
                               placeholders)
    return state.start(blocking)


def _invoke_local(binding: Binding, op: OpDef, in_values: tuple,
                  placeholders: tuple, blocking: bool):
    """Local bypass (§4.1): a direct call on the co-located servant.

    A raising servant behaves like the remote path: blocking calls
    re-raise, non-blocking calls return a *failed* future (and fail the
    placeholders), and the request reaches a "failed" terminal status on
    the interceptor chain.
    """
    ctx = binding.ctx
    ctx.compute(ctx.orb.config.local_call_overhead)
    record = ctx.poa._lookup_record(binding.ref.name)
    rank = ctx.rank if binding.ref.kind == "spmd" else binding.ref.owner_rank
    servant = record.servants[rank]
    ctx.orb.local_bypasses += 1
    req_id = binding.next_req_id()
    chain = ctx.orb.interceptors
    spans = chain.wants_spans
    t0 = ctx.now() if spans else 0.0
    if spans:
        chain.request_started(req_id, op.name, ctx.program.name,
                              binding.client_index, t0)
    # The client interception points still frame the direct call
    # (``info.local`` marks that nothing travels on the wire), so
    # context-scoped interceptors see a balanced send/receive pair.
    info = ClientRequestInfo(
        ctx=ctx, op=op, req_id=req_id, object_name=binding.ref.name,
        rank=binding.client_index, oneway=op.oneway, deadline=None,
        local=True,
    ) if chain.active else None

    def _failed(exc: BaseException):
        if info is not None:
            info.exception = exc
            try:
                chain.receive_exception(info)
            except Exception as replaced:
                exc = replaced
                info.exception = exc
        if spans:
            now = ctx.now()
            chain.span("local", op.name, req_id, ctx.program.name,
                       binding.client_index, t0, now)
            chain.request_finished(req_id, ctx.program.name,
                                   binding.client_index, now, "failed")
        if blocking:
            raise exc
        fut = Future(label=f"{op.name}(local)")
        fut._fail(exc)
        for ph in placeholders:
            ph._fail(exc)
        return fut

    if info is not None:
        try:
            chain.send_request(info)
        except Exception as exc:
            return _failed(exc)
    try:
        result = getattr(servant, op.name)(*in_values)
    except Exception as exc:
        return _failed(exc)
    if info is not None:
        info.result = result
        try:
            chain.receive_reply(info)
        except Exception as exc:
            return _failed(exc)
    if spans:
        now = ctx.now()
        chain.span("local", op.name, req_id, ctx.program.name,
                   binding.client_index, t0, now)
        chain.request_finished(req_id, ctx.program.name,
                               binding.client_index, now, "ok")
    if blocking:
        return result
    fut = Future(label=f"{op.name}(local)")
    fut._resolve(result)
    out_values = (result if isinstance(result, tuple)
                  else (result,) if result is not None else ())
    skip = 1 if op.ret_tc is not None else 0
    for ph, val in zip(placeholders, out_values[skip:]):
        ph._resolve(val)
    return fut
