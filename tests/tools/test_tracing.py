"""Distributed tracing: wire propagation, SPMD fan-out, nested-call
stitching, local bypass, sampling, and coexistence with the other
shipped interceptors."""

import pytest

from repro.core import (
    DeadlineInterceptor,
    FaultInjectionInterceptor,
    Simulation,
    SystemException,
)
from repro.idl import compile_idl
from repro.tools import (
    TRACE_CONTEXT,
    HeadSampling,
    TraceContext,
    attach_observer,
    attach_tracing,
    detach_tracing,
)
from repro.core.pipeline import RequestInterceptor

IDL = """
    interface back { long deep(in long x); };
    interface front { long work(in long x); long boom(in long x); };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="tracing_stubs")


def build_chain(mod, *, client_np=1, front_np=1):
    """client -> front -> back: the front servant invokes the back
    object from inside its own dispatched request."""
    sim = Simulation()

    def back_main(ctx):
        class Back(mod.back_skel):
            def deep(self, x):
                return x * 10

        ctx.poa.activate(Back(), "back", kind="spmd")
        ctx.poa.impl_is_ready()

    def front_main(ctx):
        downstream = mod.back._bind("back")

        class Front(mod.front_skel):
            def work(self, x):
                return downstream.deep(x) + 1

            def boom(self, x):
                raise RuntimeError("kaboom")

        ctx.poa.activate(Front(), "front", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(back_main, host="HOST_2", nprocs=1, name="backworld")
    sim.server(front_main, host="HOST_2", nprocs=front_np,
               name="frontworld")
    return sim


class WireProbe(RequestInterceptor):
    """Captures the trace service contexts seen on each side."""

    name = "wire-probe"

    def __init__(self):
        self.server_saw = []
        self.client_reply_saw = []

    def receive_request(self, info):
        self.server_saw.append(
            (info.op_name, info.service_contexts.get(TRACE_CONTEXT)))

    def receive_reply(self, info):
        self.client_reply_saw.append(
            (info.op_name, info.reply_service_contexts.get(TRACE_CONTEXT)))


def test_wire_context_round_trip(mod):
    sim = build_chain(mod)
    tracer = attach_tracing(sim.world)
    probe = sim.register_interceptor(WireProbe())
    out = {}

    def client(ctx):
        srv = mod.front._bind("front")
        out["v"] = srv.work(4)

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["v"] == 41

    # Both hops (work, deep) carried a context on the request...
    ops = {op for op, wire in probe.server_saw}
    assert ops == {"work", "deep"}
    for op, wire in probe.server_saw:
        assert set(wire) == {"trace_id", "span_id", "sampled"}
        assert wire["span_id"].startswith("c:")
        assert wire["sampled"] is True
    # ... sharing one trace id (deep is nested inside work).
    assert len({wire["trace_id"] for _, wire in probe.server_saw}) == 1
    # Replies echoed the server's context back.
    for op, wire in probe.client_reply_saw:
        assert wire is not None and wire["span_id"].startswith("s:")
    assert tracer.counters["traces_started"] == 1
    assert tracer.counters["traces_joined"] == 2
    assert tracer.counters["replies_echoed"] == 2


def test_nested_invocation_stitches_one_tree(mod):
    sim = build_chain(mod)
    obs = attach_observer(sim.world)
    attach_tracing(sim.world)
    out = {}

    def client(ctx):
        srv = mod.front._bind("front")
        out["v"] = srv.work(7)

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["v"] == 71

    nodes = obs._trace_nodes()
    assert len(nodes) == 4  # client work, server work, client deep, server deep
    assert len({n["trace_id"] for n in nodes.values()}) == 1
    by_id = {sid: n for sid, n in nodes.items()}
    # Walk parent links from the deepest node back to the root.
    deep_server = next(n for n in nodes.values()
                       if n["side"] == "server" and n["op"] == "deep")
    deep_client = by_id[deep_server["parent_id"]]
    assert deep_client["side"] == "client" and deep_client["op"] == "deep"
    work_server = by_id[deep_client["parent_id"]]
    assert work_server["side"] == "server" and work_server["op"] == "work"
    work_client = by_id[work_server["parent_id"]]
    assert work_client["side"] == "client" and work_client["op"] == "work"
    assert work_client["parent_id"] == ""  # the root

    tree = obs.trace_tree()
    assert "after parent" in tree
    assert tree.count("└─") == 4  # one branch glyph per node


def test_spmd_fanout_shares_one_logical_span(mod):
    """Every thread of a collective invocation derives the same ids
    without communicating: the fan-out is one logical span per side."""
    sim = Simulation()

    def back_main(ctx):
        class Back(mod.back_skel):
            def deep(self, x):
                return x * 10

        ctx.poa.activate(Back(), "back", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(back_main, host="HOST_2", nprocs=3, name="backworld")
    obs = attach_observer(sim.world)
    attach_tracing(sim.world)
    results = {}

    def client(ctx):
        srv = mod.back._spmd_bind("back")
        results[ctx.rank] = srv.deep(2)

    sim.client(client, host="HOST_1", nprocs=2)
    sim.run()
    assert results == {0: 20, 1: 20}

    nodes = obs._trace_nodes()
    server_nodes = [n for n in nodes.values() if n["side"] == "server"]
    client_nodes = [n for n in nodes.values() if n["side"] == "client"]
    # One logical span per side, covering every participating rank.
    assert len(server_nodes) == 1 and server_nodes[0]["ranks"] == {0, 1, 2}
    assert len(client_nodes) == 1 and client_nodes[0]["ranks"] == {0, 1}
    assert server_nodes[0]["trace_id"] == client_nodes[0]["trace_id"]
    assert server_nodes[0]["parent_id"] == client_nodes[0]["span_id"]


def test_local_bypass_frames_scope_and_stitches_downstream(mod):
    """A §4.1 local bypass opens a client scope on the calling thread,
    so the servant's own remote invocation joins the same trace."""
    sim = Simulation()

    def back_main(ctx):
        class Back(mod.back_skel):
            def deep(self, x):
                return x * 10

        ctx.poa.activate(Back(), "back", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(back_main, host="HOST_2", nprocs=1, name="backworld")
    obs = attach_observer(sim.world)
    tracer = attach_tracing(sim.world)
    out = {}

    def prog(ctx):
        downstream = mod.back._bind("back")

        class Front(mod.front_skel):
            def work(self, x):
                return downstream.deep(x) + 1

            def boom(self, x):
                raise RuntimeError("kaboom")

        ctx.poa.activate(Front(), "front", kind="spmd")
        srv = mod.front._bind("front")
        assert srv._binding.local
        out["v"] = srv.work(3)

    sim.client(prog, host="HOST_1", name="combined")
    sim.run()
    assert out["v"] == 31
    assert tracer.counters["local_scopes"] == 1

    nodes = obs._trace_nodes()
    assert len({n["trace_id"] for n in nodes.values()}) == 1
    local = next(n for n in nodes.values() if n["op"] == "work")
    deep_server = next(n for n in nodes.values()
                       if n["side"] == "server" and n["op"] == "deep")
    deep_client = nodes[deep_server["parent_id"]]
    # The nested call's client span parents under the bypassed call.
    assert deep_client["parent_id"] == local["span_id"]


def test_servant_failure_keeps_trace_context(mod):
    sim = build_chain(mod)
    obs = attach_observer(sim.world)
    attach_tracing(sim.world)

    def client(ctx):
        srv = mod.front._bind("front")
        with pytest.raises(SystemException):
            srv.boom(1)

    sim.client(client, host="HOST_1")
    sim.run()
    nodes = obs._trace_nodes()
    assert len({n["trace_id"] for n in nodes.values()}) == 1
    assert {n["side"] for n in nodes.values()} == {"client", "server"}


def test_unsampled_trace_promoted_on_error(mod):
    """Head-based sampling at rate 0 records nothing for successes but
    promotes the buffered spans of a failing request."""
    sim = build_chain(mod)
    obs = attach_observer(sim.world)
    attach_tracing(sim.world, sampler=HeadSampling(0.0))

    def client(ctx):
        srv = mod.front._bind("front")
        assert srv.work(1) == 11
        with pytest.raises(SystemException):
            srv.boom(1)

    sim.client(client, host="HOST_1")
    sim.run()
    # The successful chain (work + nested deep) was dropped whole...
    ops = {n["op"] for n in obs._trace_nodes().values()}
    assert "work" not in ops and "deep" not in ops
    # ... and the failing request's spans were promoted.
    assert ops == {"boom"}
    assert obs.spans_promoted > 0
    assert obs.spans_unsampled > 0


def test_unsampled_traces_discarded_without_promotion(mod):
    sim = build_chain(mod)
    obs = attach_observer(sim.world)
    attach_tracing(sim.world, sampler=HeadSampling(0.0),
                   always_on_error=False)

    def client(ctx):
        srv = mod.front._bind("front")
        assert srv.work(1) == 11

    sim.client(client, host="HOST_1")
    sim.run()
    assert not obs._trace_nodes()
    assert obs.spans_promoted == 0
    assert obs.spans_unsampled > 0


@pytest.mark.parametrize("tracer_first", [True, False])
def test_coexists_with_deadline_shedding(mod, tracer_first):
    """A request shed by the deadline interceptor leaves no leaked trace
    scope, whichever side of the tracer it is registered on."""
    sim = build_chain(mod)
    if tracer_first:
        tracer = attach_tracing(sim.world)
        dl = sim.register_interceptor(DeadlineInterceptor(budget=1e-9))
    else:
        dl = sim.register_interceptor(DeadlineInterceptor(budget=1e-9))
        tracer = attach_tracing(sim.world)
    out = {}

    def client(ctx):
        srv = mod.front._bind("front")
        with pytest.raises(SystemException, match="shed"):
            srv.work(1)
        ctx.orb.unregister_interceptor(dl)  # stop shedding; then retry
        out["retry"] = srv.work(2)

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["retry"] == 21
    # The shed request and the retry each rooted a fresh trace: a scope
    # leaked by the shed dispatch would have nested the retry instead.
    assert tracer.counters["traces_started"] == 2


@pytest.mark.parametrize("tracer_first", [True, False])
def test_coexists_with_fault_injection(mod, tracer_first):
    """An abort injected at send_request leaves the tracer consistent in
    both registration orders (its send_request may or may not have run)."""
    sim = build_chain(mod)
    if tracer_first:
        tracer = attach_tracing(sim.world)
        faults = sim.register_interceptor(FaultInjectionInterceptor())
    else:
        faults = sim.register_interceptor(FaultInjectionInterceptor())
        tracer = attach_tracing(sim.world)
    faults.inject("send_request", op="work", times=1)
    out = {}

    def client(ctx):
        srv = mod.front._bind("front")
        with pytest.raises(SystemException, match="injected fault"):
            srv.work(1)
        out["retry"] = srv.work(2)  # rule exhausted

    sim.client(client, host="HOST_1")
    sim.run()
    assert out["retry"] == 21
    # The retried request (and its nested hop) traced normally.
    assert tracer.counters["traces_joined"] == 2


def test_head_sampling_is_deterministic():
    assert HeadSampling(1.0).sample("deadbeef") is True
    assert HeadSampling(0.0).sample("deadbeef") is False
    s = HeadSampling(0.5)
    from repro.tools.tracing import _derive

    ids = [_derive(str(i)) for i in range(200)]  # hash-distributed ids
    first = [s.sample(t) for t in ids]
    assert first == [s.sample(t) for t in ids]  # pure function
    assert 40 < sum(first) < 160  # roughly the configured rate


def test_trace_context_wire_shape():
    t = TraceContext("aa" * 8, "c:" + "bb" * 8, "", True)
    assert t.to_wire() == {"trace_id": "aa" * 8,
                           "span_id": "c:" + "bb" * 8, "sampled": True}
    assert t == TraceContext("aa" * 8, "c:" + "bb" * 8, "", True)
    assert t != TraceContext("aa" * 8, "c:" + "bb" * 8, "", False)
    assert "c:" in repr(t)


def test_detach_tracing_restores_untraced_wire(mod):
    sim = build_chain(mod)
    tracer = attach_tracing(sim.world)
    detach_tracing(sim.world)
    probe = sim.register_interceptor(WireProbe())

    def client(ctx):
        srv = mod.front._bind("front")
        assert srv.work(1) == 11

    sim.client(client, host="HOST_1")
    sim.run()
    assert all(wire is None for _, wire in probe.server_saw)
    assert tracer.counters["traces_started"] == 0
    assert "tracer" not in sim.world.services
    assert detach_tracing(sim.world) is None  # idempotent
